"""Ablation — the interrupt-bottleneck hypothesis of Sec. 4.3.

The paper *hypothesizes* that dual-processor TCP collapses because one CPU
services all NIC interrupts.  Our simulator makes the hypothesis testable:
switch the SMP interrupt penalties off and see whether the dual-processor
collapse disappears.
"""

import dataclasses

from conftest import emit

from repro.cluster import ClusterSpec, NodeSpec, tcp_gigabit_ethernet
from repro.core import format_table
from repro import MDRunConfig, RunOptions, run_parallel_md
from repro.workloads import myoglobin_system, myoglobin_workload


def _measure():
    mg = myoglobin_workload()
    system = myoglobin_system("pme")
    cfg = MDRunConfig(n_steps=10)
    tcp = tcp_gigabit_ethernet()
    no_irq_penalty = dataclasses.replace(
        tcp,
        smp_efficiency_penalty=1.0,
        smp_irq_multiplier=1.0,
        smp_overhead_multiplier=1.0,
    )
    rows = []
    for p in (2, 4, 8):
        with_penalty = run_parallel_md(
            system,
            mg.positions,
            ClusterSpec(n_ranks=p, network=tcp, node=NodeSpec(cpus_per_node=2), seed=31),
            RunOptions(config=cfg),
        )
        without = run_parallel_md(
            system,
            mg.positions,
            ClusterSpec(
                n_ranks=p, network=no_irq_penalty, node=NodeSpec(cpus_per_node=2), seed=31
            ),
            RunOptions(config=cfg),
        )
        rows.append(
            [
                p,
                with_penalty.total_breakdown().total,
                without.total_breakdown().total,
            ]
        )
    return rows


def test_interrupt_bottleneck_ablation(benchmark, report_dir):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table = format_table(
        ["p (dual nodes)", "with IRQ bottleneck (s)", "without (s)"], rows
    )
    emit(
        report_dir,
        "ablation_interrupts",
        "== Ablation: dual-CPU TCP with/without the interrupt bottleneck ==\n" + table,
    )

    # with the bottleneck the time grows from 4 -> 8 ranks; without it the
    # dual-processor cluster scales again
    assert rows[2][1] > rows[1][1]
    assert rows[2][2] < rows[2][1]
