"""Extension — the Sec. 4.1 prior-work claim: Fast Ethernet ~ GigE on TCP."""

from conftest import emit

from repro.experiments import fast_ethernet_comparison


def test_fast_ethernet(benchmark, figure_runner, report_dir):
    result = benchmark.pedantic(
        fast_ethernet_comparison, args=(figure_runner,), rounds=1, iterations=1
    )
    emit(report_dir, "fast_ethernet", result.report)

    gige = result.series["tcp-gige"]
    fast = result.series["tcp-fast-ethernet"]
    # a 10x slower wire costs far less than 10x once TCP overheads dominate
    for i in (1, 2, 3):
        assert fast[i] / gige[i] < 3.0
