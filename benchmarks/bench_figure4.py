"""Figure 4 — % computation/communication/synchronization, reference case."""

from conftest import emit

from repro.experiments import figure4


def test_figure4(benchmark, figure_runner, report_dir):
    result = benchmark.pedantic(figure4, args=(figure_runner,), rounds=1, iterations=1)
    emit(report_dir, "figure4", result.report)

    classic = result.series["classic_overhead"]
    pme = result.series["pme_overhead"]
    assert classic[1] < 0.10  # < 10% at two processors
    assert classic[3] > 0.50  # > ~60% at eight
    assert pme[1] > 0.40  # ~ 50% at two
    assert pme[3] > 0.70  # > 75% at eight
