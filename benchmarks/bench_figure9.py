"""Figure 9 — uni- vs dual-processor nodes on TCP/IP and Myrinet."""

from conftest import emit

from repro.experiments import figure9


def test_figure9(benchmark, figure_runner, report_dir):
    result = benchmark.pedantic(figure9, args=(figure_runner,), rounds=1, iterations=1)
    emit(report_dir, "figure9", result.report)

    tcp_dual = result.series["tcp-gige_dual"]
    assert tcp_dual[3] > tcp_dual[2]  # dual TCP gets worse with node count
    assert tcp_dual[3] > result.series["tcp-gige_uni"][3]
    myr_dual = result.series["myrinet_dual"]
    assert myr_dual[3] < myr_dual[1]  # Myrinet dual keeps scaling
