"""Shared benchmark fixtures.

All figure benchmarks share one :class:`CharacterizationRunner` over the
paper's 3552-atom workload, so each design point is simulated exactly once
per benchmark session (several figures slice the same design).  Every
benchmark writes the regenerated rows/series to ``benchmarks/reports/``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import default_runner

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def figure_runner():
    return default_runner(n_steps=10)


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    REPORT_DIR.mkdir(exist_ok=True)
    return REPORT_DIR


def emit(report_dir: pathlib.Path, name: str, text: str) -> None:
    """Print the regenerated table and persist it next to the benchmarks."""
    print(f"\n{text}\n")
    (report_dir / f"{name}.txt").write_text(text + "\n")
