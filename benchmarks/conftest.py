"""Shared benchmark fixtures.

All figure benchmarks share one :class:`CharacterizationRunner` over the
paper's 3552-atom workload, backed by one persistent content-addressed
result store (``benchmarks/.repro-cache/``): each design point is
simulated exactly once per benchmark session — and, across sessions,
never resimulated until the workload, run config, cost model or schema
changes.  The campaign engine (``bench_full_factorial``) shares the same
store, so ``repro campaign`` sweeps and figure regeneration feed each
other.  Every benchmark writes the regenerated rows/series to
``benchmarks/reports/``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.campaign import CampaignEngine, ResultStore
from repro.experiments import default_runner
from repro.parallel import MDRunConfig

REPORT_DIR = pathlib.Path(__file__).parent / "reports"
CACHE_DIR = pathlib.Path(__file__).parent / ".repro-cache"


@pytest.fixture(scope="session")
def figure_store():
    store = ResultStore(CACHE_DIR)
    yield store
    store.close()


@pytest.fixture(scope="session")
def figure_runner(figure_store):
    return default_runner(n_steps=10, store=figure_store)


@pytest.fixture(scope="session")
def figure_engine(figure_store):
    """Campaign engine over the same workload and store as the runner."""
    return CampaignEngine(
        workload="myoglobin-pme", config=MDRunConfig(n_steps=10), store=figure_store
    )


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    REPORT_DIR.mkdir(exist_ok=True)
    return REPORT_DIR


def emit(report_dir: pathlib.Path, name: str, text: str) -> None:
    """Print the regenerated table and persist it next to the benchmarks."""
    print(f"\n{text}\n")
    (report_dir / f"{name}.txt").write_text(text + "\n")
