"""Figure 3 — wall time of classic vs PME energy calc, reference case.

Regenerates the series of the paper's Figure 3: 10 MD steps of the
3552-atom system on MPI over TCP/IP (uni-processor nodes), p = 1, 2, 4, 8.
"""

from conftest import emit

from repro.experiments import figure3


def test_figure3(benchmark, figure_runner, report_dir):
    result = benchmark.pedantic(figure3, args=(figure_runner,), rounds=1, iterations=1)
    emit(report_dir, "figure3", result.report)

    total = result.series["total"]
    pme = result.series["pme"]
    assert 5.5 < total[0] < 7.0  # paper: ~6.2 s serial
    assert pme[1] >= pme[0]  # PME at p=2 exceeds serial PME
    assert total[3] < total[0]  # some overall speedup remains
