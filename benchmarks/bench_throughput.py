"""The conclusion's trade-off: task parallelism vs a faster single run."""

from conftest import emit

from repro.experiments import throughput_study


def test_throughput_tradeoff(benchmark, figure_runner, report_dir):
    study = benchmark.pedantic(
        throughput_study, args=(figure_runner,), kwargs={"n_jobs": 32}, rounds=1, iterations=1
    )
    emit(report_dir, "throughput", study.report)

    # turnaround: data parallelism on a good network wins
    assert study.best_turnaround("myrinet").ranks_per_job >= 4
    # batch makespan on TCP/IP: task parallelism is already near-optimal
    tcp_best = study.best_makespan("tcp-gige")
    tcp_serial = [
        p for p in study.plans if p.network == "tcp-gige" and p.ranks_per_job == 1
    ][0]
    assert tcp_serial.makespan <= 1.5 * tcp_best.makespan
