"""Ablation — what exactly kills CMPI: the neighbour-ring synchronization.

DESIGN.md calls out the CMPI sync pattern (p-1 one-byte rounds per global
operation) as the reproduced pathology.  This ablation measures the sync
pattern in isolation at increasing rank counts on TCP/IP vs Myrinet,
separating the protocol cost from the data-volume cost.
"""

import numpy as np
from conftest import emit

from repro.cluster import ClusterSpec, myrinet_gm, tcp_gigabit_ethernet
from repro.cmpi import CMPIMiddleware
from repro.core import format_table
from repro.mpi import MPIMiddleware, MPIWorld, collectives
from repro.sim import Simulator


def _sync_cost(network, p, middleware, rounds=20, seed=11):
    sim = Simulator()
    world = MPIWorld(sim, ClusterSpec(n_ranks=p, network=network, seed=seed))

    def prog(ep):
        for _ in range(rounds):
            if middleware == "cmpi":
                yield from CMPIMiddleware().sync(ep)
            else:
                yield from collectives.barrier(ep)

    for r in range(p):
        sim.spawn(prog(world.endpoints[r]), name=f"r{r}")
    sim.run()
    return max(ep.timeline.total_seconds() for ep in world.endpoints) / rounds


def _measure():
    rows = []
    for p in (2, 4, 8, 16):
        rows.append(
            [
                p,
                1e3 * _sync_cost(tcp_gigabit_ethernet(), p, "mpi"),
                1e3 * _sync_cost(tcp_gigabit_ethernet(), p, "cmpi"),
                1e3 * _sync_cost(myrinet_gm(), p, "mpi"),
                1e3 * _sync_cost(myrinet_gm(), p, "cmpi"),
            ]
        )
    return rows


def test_middleware_sync_ablation(benchmark, report_dir):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table = format_table(
        [
            "p", "MPI barrier tcp (ms)", "CMPI sync tcp (ms)",
            "MPI barrier myri (ms)", "CMPI sync myri (ms)",
        ],
        rows,
    )
    emit(
        report_dir,
        "ablation_middleware_sync",
        "== Ablation: synchronization primitives ==\n" + table,
    )

    tcp_mpi = np.array([r[1] for r in rows])
    tcp_cmpi = np.array([r[2] for r in rows])
    # MPI barrier grows ~log p, CMPI sync ~linearly: the gap must widen
    assert tcp_cmpi[-1] / tcp_mpi[-1] > tcp_cmpi[0] / tcp_mpi[0]
    assert tcp_cmpi[-1] > 3 * tcp_mpi[-1]
