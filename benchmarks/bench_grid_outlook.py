"""Extension — the conclusion's grid-computing outlook.

'Migration to widely distributed computing on the Internet (Grid) remains
a particular challenge' — quantify it: the same parallel calculation over
a simulated wide-area path versus the local cluster.
"""

from conftest import emit

from repro.experiments import grid_outlook


def test_grid_outlook(benchmark, figure_runner, report_dir):
    result = benchmark.pedantic(grid_outlook, args=(figure_runner,), rounds=1, iterations=1)
    emit(report_dir, "grid_outlook", result.report)

    # parallel MD over the wide area is slower than just running serially
    assert all(g > result.series["serial"] for g in result.series["grid"])
    # and massively slower than the same run on the local cluster
    assert all(s > 5.0 for s in result.series["slowdown"])
