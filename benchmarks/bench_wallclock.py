"""Real-seconds benchmark of the characterization run: the perf trajectory.

Unlike the figure benchmarks (which regenerate the paper's *virtual*
timings), this script measures **wall-clock** — how fast the simulator
itself executes the p = 1 and p = 8 myoglobin-PME 10-step runs.  It
seeds and then guards the repo's performance trajectory:

* ``python benchmarks/bench_wallclock.py``
      measure and (re)write ``BENCH_wallclock.json`` at the repo root —
      the committed baseline future PRs regress against;
* ``python benchmarks/bench_wallclock.py --check BENCH_wallclock.json``
      measure and exit non-zero if any gated key — the p = 8 run, the
      spatial/replicated pair, or an exec A/B leg present in the
      baseline — is more than ``--factor`` (default 1.25x) slower than
      the committed baseline (the CI gate).

Every measurement also runs the ``--exec-workers`` / ``--kernel`` A/B
on the p = 8 point (``exec_ab`` key): pool sizes 2 and 4 and the numba
backend when installed, each asserted bit-identical to the default
serial-numpy leg before its wall time is recorded.

Every measurement also records the p = 8 decomposition-strategy pair on
the classic myoglobin workload — replicated vs spatial on identical
physics — under the ``spatial`` key, so the baseline tracks what the
halo-exchange schedule costs in host seconds relative to the
replicated allreduce.

With ``--breakdown``, the document also records each gated point's
per-phase **virtual** splits (classic/PME computation, communication,
synchronization) so ``repro campaign analyze trend`` can attribute a
wall-clock regression to a phase — or prove it host-side when the
splits are unchanged.

The workload build is excluded from the timing; each point is run
``--repeats`` times and the minimum is kept (the usual best-of-N guard
against scheduler noise).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_wallclock.json"

WORKLOAD = "myoglobin-pme"
SPATIAL_WORKLOAD = "myoglobin-shift"
N_STEPS = 10
RANK_COUNTS = (1, 8)
SCHEMA = 1


def measure(repeats: int, shared_compute: bool = True) -> dict[str, float]:
    """Best-of-``repeats`` wall seconds per rank count."""
    from repro import MDRunConfig, RunOptions, build_workload, run_parallel_md
    from repro.cluster import ClusterSpec, tcp_gigabit_ethernet

    system, positions = build_workload(WORKLOAD)
    options = RunOptions(config=MDRunConfig(n_steps=N_STEPS), shared_compute=shared_compute)
    seconds: dict[str, float] = {}
    for p in RANK_COUNTS:
        spec = ClusterSpec(n_ranks=p, network=tcp_gigabit_ethernet())
        # untimed warm-up: populates the process-level lru_caches (cell
        # pairs, B-spline moduli, influence function) so the first timed
        # repeat is not charged for one-off setup
        run_parallel_md(system, positions, spec, options)
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            run_parallel_md(system, positions, spec, options)
            best = min(best, time.perf_counter() - t0)
        seconds[f"p{p}"] = round(best, 4)
    return seconds


def measure_spatial(repeats: int) -> dict[str, float]:
    """Best-of-``repeats`` p = 8 wall seconds, replicated vs spatial.

    Uses the classic (cutoff) myoglobin workload — the spatial strategy
    covers the classic path only — so the pair isolates the cost of the
    halo-exchange schedule against the replicated allreduce on identical
    physics (the two runs produce bit-identical energies and
    trajectories; only the communication schedule differs).
    """
    from repro import MDRunConfig, RunOptions, build_workload, run_parallel_md
    from repro.cluster import ClusterSpec, tcp_gigabit_ethernet

    system, positions = build_workload(SPATIAL_WORKLOAD)
    spec = ClusterSpec(n_ranks=8, network=tcp_gigabit_ethernet())
    seconds: dict[str, float] = {}
    for strategy in ("replicated", "spatial"):
        options = RunOptions(config=MDRunConfig(n_steps=N_STEPS), strategy=strategy)
        run_parallel_md(system, positions, spec, options)  # warm-up
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            run_parallel_md(system, positions, spec, options)
            best = min(best, time.perf_counter() - t0)
        seconds[f"{strategy}_p8"] = round(best, 4)
    return seconds


def measure_breakdown() -> dict[str, dict]:
    """Per-phase *virtual* splits of the gated points, one run each.

    Wall seconds say a point regressed; these deterministic virtual
    splits say **where**.  ``campaign analyze trend`` compares the
    splits of a baseline and a candidate bench document: a grown split
    names the phase (classic / PME / comm+sync) responsible, unchanged
    splits prove the slowdown is host-side.  One run suffices — the
    virtual timeline is bit-reproducible, so repeats would measure the
    same numbers.
    """
    from repro import MDRunConfig, RunOptions, build_workload, run_parallel_md
    from repro.cluster import ClusterSpec, tcp_gigabit_ethernet

    system, positions = build_workload(WORKLOAD)
    options = RunOptions(config=MDRunConfig(n_steps=N_STEPS))
    breakdown: dict[str, dict] = {}
    for p in RANK_COUNTS:
        spec = ClusterSpec(n_ranks=p, network=tcp_gigabit_ethernet())
        result = run_parallel_md(system, positions, spec, options)
        classic = result.component("classic")
        pme = result.component("pme")
        breakdown[f"p{p}"] = {
            "classic_comp": classic.comp,
            "classic_comm": classic.comm,
            "classic_sync": classic.sync,
            "pme_comp": pme.comp,
            "pme_comm": pme.comm,
            "pme_sync": pme.sync,
            "virtual_total": classic.total + pme.total,
        }
    return breakdown


def exec_ab(repeats: int) -> tuple[dict, int]:
    """``--exec-workers`` / ``--kernel`` A/B on the p = 8 point.

    The within-point execution knobs are wall-clock-only: every leg must
    produce bit-identical energies, virtual timelines and final
    positions to the default serial-numpy leg.  Legs the interpreter
    cannot run (numba not installed) are skipped, mirroring the
    install-or-skip CI guard.  Returns the per-leg seconds and a
    non-zero status if any leg's results diverge.
    """
    from repro import MDRunConfig, RunOptions, build_workload, run_parallel_md
    from repro.cluster import ClusterSpec, tcp_gigabit_ethernet
    from repro.parallel.exec.kernels import numba_available

    system, positions = build_workload(WORKLOAD)
    config = MDRunConfig(n_steps=N_STEPS)
    spec = ClusterSpec(n_ranks=8, network=tcp_gigabit_ethernet())

    legs: list[tuple[str, dict]] = [
        ("serial-numpy", {}),
        ("pool2-numpy", {"exec_workers": 2}),
        ("pool4-numpy", {"exec_workers": 4}),
    ]
    skipped: list[str] = []
    if numba_available():
        legs.append(("serial-numba", {"kernel": "numba"}))
        legs.append(("pool4-numba", {"exec_workers": 4, "kernel": "numba"}))
    else:
        skipped = ["serial-numba", "pool4-numba"]

    seconds: dict[str, float] = {}
    results: dict[str, object] = {}
    for name, knobs in legs:
        options = RunOptions(config=config, **knobs)
        run_parallel_md(system, positions, spec, options)  # warm-up
        best, result = float("inf"), None
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = run_parallel_md(system, positions, spec, options)
            best = min(best, time.perf_counter() - t0)
        seconds[name] = round(best, 4)
        results[name] = result

    problems: list[str] = []
    base = results["serial-numpy"]
    base_energy = [e.total for e in base.energies]
    for name, _ in legs[1:]:
        other = results[name]
        if [e.total for e in other.energies] != base_energy:
            problems.append(f"{name}: energies differ from serial-numpy")
        if other.timelines != base.timelines:
            problems.append(f"{name}: virtual timelines differ from serial-numpy")
        if other.final_positions.tobytes() != base.final_positions.tobytes():
            problems.append(f"{name}: final positions differ from serial-numpy")

    print(f"  exec A/B (p=8, best of {repeats}):")
    for name, value in seconds.items():
        print(f"    {name}: {value:.3f} s wall")
    for name in skipped:
        print(f"    {name}: skipped (numba not installed)")
    for p in problems:
        print(f"    PROBLEM: {p}")
    if not problems:
        print("    all legs bit-identical to serial-numpy: ok")

    doc = {"seconds": seconds, "skipped": skipped, "problems": problems}
    return doc, 0 if not problems else 1


def trace_ab(repeats: int, overhead_factor: float) -> tuple[dict, int]:
    """Traced-vs-untraced A/B on the p = 8 point.

    Asserts the observability invariant at the wall-clock level:

    * tracing **disabled** (the default ``RunOptions``) is the exact same
      code path as the committed baseline — the virtual results must be
      bit-identical (zero measurable delta);
    * tracing **enabled** must cost < ``overhead_factor`` (default 1.05,
      i.e. 5 %) extra wall time and still produce bit-identical virtual
      results (zero virtual seconds charged).
    """
    from repro import MDRunConfig, RunOptions, build_workload, run_parallel_md
    from repro.cluster import ClusterSpec, tcp_gigabit_ethernet
    from repro.instrument.tracing import SpanTracer

    system, positions = build_workload(WORKLOAD)
    config = MDRunConfig(n_steps=N_STEPS)
    spec = ClusterSpec(n_ranks=8, network=tcp_gigabit_ethernet())

    def best_of(make_options) -> tuple[float, object, RunOptions]:
        run_parallel_md(system, positions, spec, make_options())  # warm-up
        best, result, options = float("inf"), None, None
        for _ in range(repeats):
            options = make_options()  # fresh tracer per repeat: spans from
            t0 = time.perf_counter()  # one run only, not accumulated
            result = run_parallel_md(system, positions, spec, options)
            best = min(best, time.perf_counter() - t0)
        return best, result, options

    plain_s, plain, _ = best_of(lambda: RunOptions(config=config))
    off_s, off, _ = best_of(
        lambda: RunOptions(config=config, span_tracer=None)
    )
    traced_s, traced, traced_opts = best_of(
        lambda: RunOptions(config=config, span_tracer=SpanTracer())
    )
    tracer = traced_opts.span_tracer

    problems: list[str] = []
    for name, other in (("disabled", off), ("enabled", traced)):
        if [e.total for e in other.energies] != [e.total for e in plain.energies]:
            problems.append(f"tracing {name}: energies differ from baseline")
        if other.timelines != plain.timelines:
            problems.append(f"tracing {name}: virtual timelines differ")
    for rank, tl in enumerate(traced.timelines):
        span_total = tracer.virtual_seconds(rank)
        if abs(span_total - tl.total_seconds()) > 1e-9:
            problems.append(
                f"rank {rank}: spans cover {span_total} virtual s but the "
                f"timeline attributed {tl.total_seconds()}"
            )
    overhead = traced_s / plain_s if plain_s > 0 else float("inf")
    if overhead > overhead_factor:
        problems.append(
            f"traced run {traced_s:.3f} s vs untraced {plain_s:.3f} s: "
            f"{overhead:.3f}x exceeds the {overhead_factor:.2f}x budget"
        )

    doc = {
        "untraced_s": round(plain_s, 4),
        "disabled_s": round(off_s, 4),
        "traced_s": round(traced_s, 4),
        "overhead": round(overhead, 4),
        "spans": len(tracer.spans),
        "problems": problems,
    }
    print(f"  trace A/B (p=8, best of {repeats}):")
    print(f"    untraced: {plain_s:.3f} s   tracer=None: {off_s:.3f} s")
    print(f"    traced:   {traced_s:.3f} s  ({overhead:.3f}x, "
          f"{len(tracer.spans)} spans)")
    for p in problems:
        print(f"    PROBLEM: {p}")
    if not problems:
        print("    virtual results bit-identical; overhead within budget: ok")
    return doc, 0 if not problems else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", type=Path, default=None,
        help=f"where to write the measurement (default {DEFAULT_OUTPUT}; in "
        "--check mode, only written when given explicitly)",
    )
    parser.add_argument(
        "--check", type=Path, default=None, metavar="BASELINE",
        help="compare against a committed baseline instead of writing one",
    )
    parser.add_argument(
        "--factor", type=float, default=1.25,
        help="allowed p=8 slowdown vs the baseline in --check mode (default 1.25)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--breakdown", action="store_true",
        help="also record per-phase virtual-time splits (classic/PME/comm) "
        "per gated point, so trend reports can attribute a wall regression "
        "to a phase",
    )
    parser.add_argument(
        "--with-shared-off", action="store_true",
        help="also measure with the shared-compute cache disabled (A/B context)",
    )
    parser.add_argument(
        "--trace-ab", action="store_true",
        help="traced-vs-untraced A/B: fail if span tracing costs more than "
        "--trace-overhead extra wall time or perturbs the virtual results",
    )
    parser.add_argument(
        "--trace-overhead", type=float, default=1.05,
        help="allowed traced/untraced wall ratio in --trace-ab mode (default 1.05)",
    )
    args = parser.parse_args(argv)

    if args.trace_ab:
        ab_doc, ab_status = trace_ab(args.repeats, args.trace_overhead)
        if args.output is not None:
            args.output.write_text(json.dumps(ab_doc, indent=2) + "\n")
            print(f"wrote {args.output}")
        return ab_status

    seconds = measure(args.repeats)
    ab_doc, ab_status = exec_ab(args.repeats)
    doc = {
        "schema": SCHEMA,
        "workload": WORKLOAD,
        "n_steps": N_STEPS,
        "network": "tcp-gige",
        "middleware": "mpi",
        "repeats": args.repeats,
        "seconds": seconds,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    if args.with_shared_off:
        doc["seconds_shared_off"] = measure(args.repeats, shared_compute=False)
    if args.breakdown:
        doc["breakdown"] = measure_breakdown()
    doc["exec_ab"] = {"seconds": ab_doc["seconds"], "skipped": ab_doc["skipped"]}
    doc["spatial"] = {
        "workload": SPATIAL_WORKLOAD,
        "seconds": measure_spatial(args.repeats),
    }
    for key, value in seconds.items():
        print(f"  {key}: {value:.3f} s wall")
    if "seconds_shared_off" in doc:
        for key, value in doc["seconds_shared_off"].items():
            print(f"  {key} (shared-compute off): {value:.3f} s wall")
    for key, value in doc["spatial"]["seconds"].items():
        print(f"  {key} ({SPATIAL_WORKLOAD}): {value:.3f} s wall")

    if args.check is not None:
        if args.output is not None:  # fresh measurement for trend tracking
            args.output.write_text(json.dumps(doc, indent=2) + "\n")
            print(f"wrote {args.output}")
        baseline = json.loads(args.check.read_text())
        regressions: list[str] = []

        def gate(label: str, fresh: float, base: float) -> None:
            limit = base * args.factor
            status = "ok" if fresh <= limit else "REGRESSION"
            print(
                f"check: {label} {fresh:.3f} s vs baseline {base:.3f} s "
                f"(limit {limit:.3f} s at {args.factor:.2f}x): {status}"
            )
            if status != "ok":
                regressions.append(label)

        # every timing key the baseline carries is gated; keys absent
        # from an older baseline are simply not compared
        gate("p8", seconds["p8"], float(baseline["seconds"]["p8"]))
        spatial_base = baseline.get("spatial", {}).get("seconds", {})
        for key in ("replicated_p8", "spatial_p8"):
            if key in spatial_base:
                gate(
                    f"spatial.{key}",
                    doc["spatial"]["seconds"][key],
                    float(spatial_base[key]),
                )
        for leg, base_s in baseline.get("exec_ab", {}).get("seconds", {}).items():
            if leg in ab_doc["seconds"]:
                gate(f"exec_ab.{leg}", ab_doc["seconds"][leg], float(base_s))
        return 0 if not regressions and ab_status == 0 else 1

    output = args.output if args.output is not None else DEFAULT_OUTPUT
    output.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {output}")
    return ab_status


if __name__ == "__main__":
    sys.exit(main())
