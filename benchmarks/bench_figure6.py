"""Figure 6 — breakdown percentages per network, classic and PME."""

from conftest import emit

from repro.experiments import figure6


def test_figure6(benchmark, figure_runner, report_dir):
    result = benchmark.pedantic(figure6, args=(figure_runner,), rounds=1, iterations=1)
    emit(report_dir, "figure6", result.report)

    for component in ("classic", "pme"):
        at8 = {
            net: result.series[f"{net}_{component}"][3]
            for net in ("tcp-gige", "score-gige", "myrinet")
        }
        assert at8["myrinet"] < at8["score-gige"] < at8["tcp-gige"]
