"""Ablation — PME mesh resolution vs cost and parallel overhead.

DESIGN.md: the FFT mesh size sets both the reciprocal-space accuracy and
the volume of the all-to-all transposes.  Sweep the mesh and report serial
PME compute versus p=8 PME wall time on TCP/IP.
"""

from conftest import emit

from repro.cluster import ClusterSpec, tcp_gigabit_ethernet
from repro.core import format_table
from repro.md import CutoffScheme, MDSystem
from repro import MDRunConfig, RunOptions, run_parallel_md
from repro.workloads import myoglobin_workload

GRIDS = [(48, 24, 32), (64, 32, 40), (80, 36, 48), (96, 48, 64)]


def _measure():
    mg = myoglobin_workload()
    cfg = MDRunConfig(n_steps=4)
    rows = []
    for grid in GRIDS:
        system = MDSystem(
            mg.topology,
            mg.forcefield,
            mg.box,
            CutoffScheme(r_cut=10.0),
            electrostatics="pme",
            pme_grid=grid,
        )
        serial = run_parallel_md(
            system,
            mg.positions,
            ClusterSpec(n_ranks=1, network=tcp_gigabit_ethernet(), seed=17),
            RunOptions(config=cfg),
        )
        par8 = run_parallel_md(
            system,
            mg.positions,
            ClusterSpec(n_ranks=8, network=tcp_gigabit_ethernet(), seed=17),
            RunOptions(config=cfg),
        )
        pme8 = par8.component("pme")
        rows.append(
            [
                "x".join(map(str, grid)),
                serial.component_time("pme"),
                pme8.total,
                100 * (pme8.comm + pme8.sync) / pme8.total,
            ]
        )
    return rows


def test_pme_grid_ablation(benchmark, report_dir):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table = format_table(
        ["mesh", "serial pme (s)", "p=8 pme (s)", "p=8 overhead %"], rows
    )
    emit(report_dir, "ablation_pme_grid", "== Ablation: PME mesh sweep ==\n" + table)

    # serial PME cost grows with mesh size
    assert rows[-1][1] > rows[0][1]
    # overheads stay dominant at p=8 on TCP across the sweep
    assert all(r[3] > 50.0 for r in rows)
