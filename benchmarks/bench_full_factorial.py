"""The complete 12-case factorial design (Sec. 3.1) with main effects.

Runs through the campaign engine rather than the bare runner: the 48
points resolve against the shared persistent store (figure benchmarks
already populate many of them), and only the misses execute.
"""

from conftest import emit

from repro.experiments import run_full_factorial


def test_full_factorial(benchmark, figure_engine, report_dir):
    result = benchmark.pedantic(
        run_full_factorial,
        args=(None,),
        kwargs={"engine": figure_engine},
        rounds=1,
        iterations=1,
    )
    emit(report_dir, "full_factorial", result.report)

    assert len(result.records) == 48  # 12 cases x 4 processor counts
    # the paper's ranking of what matters at p=8: middleware and network
    # interactions dominate; every factor has a real effect
    assert result.effects["middleware"] > 1.5
    assert result.effects["network"] > 1.5
    assert result.effects["cpus_per_node"] > 1.1
