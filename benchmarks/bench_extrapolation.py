"""Extension — the conclusion's scalability claims towards 16+ processors.

'The amount of parallelism in CHARMM should suffice ... with up to the 32
to 64 processors' (classic, good software); 'for PME, good scalability is
limited to a reasonable fraction of such a cluster' without Myrinet.
"""

from conftest import emit

from repro.experiments import extrapolation


def test_extrapolation(benchmark, figure_runner, report_dir):
    result = benchmark.pedantic(
        extrapolation, args=(figure_runner,), rounds=1, iterations=1
    )
    emit(report_dir, "extrapolation", result.report)

    p = result.series["p"]
    assert p[-1] == 16
    tcp = result.series["tcp-gige"]
    myr = result.series["myrinet"]
    # on TCP the extra processors beyond 8 buy little or nothing
    assert tcp[4] > 0.8 * tcp[3]
    # on Myrinet p=16 still improves
    assert myr[4] < myr[3]
