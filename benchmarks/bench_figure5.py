"""Figure 5 — total energy calculation time for the three networks."""

from conftest import emit

from repro.experiments import figure5


def test_figure5(benchmark, figure_runner, report_dir):
    result = benchmark.pedantic(figure5, args=(figure_runner,), rounds=1, iterations=1)
    emit(report_dir, "figure5", result.report)

    p8 = {net: result.series[net][3] for net in ("tcp-gige", "score-gige", "myrinet")}
    assert p8["myrinet"] < p8["score-gige"] < p8["tcp-gige"]
