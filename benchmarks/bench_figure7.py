"""Figure 7 — average and variability of communication speed per node."""

from conftest import emit

from repro.experiments import figure7


def test_figure7(benchmark, figure_runner, report_dir):
    result = benchmark.pedantic(figure7, args=(figure_runner,), rounds=1, iterations=1)
    emit(report_dir, "figure7", result.report)

    assert all(m > 100 for m in result.series["myrinet"]["mean"])
    assert all(m < 45 for m in result.series["tcp-gige"]["mean"])
    tcp = result.series["tcp-gige"]
    spreads = [tcp["max"][i] - tcp["min"][i] for i in range(3)]
    assert spreads[1] > spreads[0]  # variability jumps at four processors
