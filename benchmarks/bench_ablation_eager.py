"""Ablation — eager/rendezvous threshold.

The 3N force-combine vector (~85 KB) straddles typical thresholds; this
sweep shows how the protocol switch moves time between the sender's sync
(rendezvous hand-shake wait) and the receiver's sync (unexpected-message
wait), and what it does to the total.
"""

import dataclasses

from conftest import emit

from repro.cluster import ClusterSpec, tcp_gigabit_ethernet
from repro.core import format_table
from repro import MDRunConfig, RunOptions, run_parallel_md
from repro.workloads import myoglobin_system, myoglobin_workload

THRESHOLDS = [4 * 1024, 64 * 1024, 1024 * 1024]


def _measure():
    mg = myoglobin_workload()
    system = myoglobin_system("pme")
    cfg = MDRunConfig(n_steps=4)
    rows = []
    for threshold in THRESHOLDS:
        net = dataclasses.replace(tcp_gigabit_ethernet(), eager_threshold=threshold)
        res = run_parallel_md(
            system,
            mg.positions,
            ClusterSpec(n_ranks=8, network=net, seed=23),
            RunOptions(config=cfg),
        )
        total = res.total_breakdown()
        rows.append([threshold // 1024, total.total, total.comm, total.sync])
    return rows


def test_eager_threshold_ablation(benchmark, report_dir):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table = format_table(["eager KB", "total (s)", "comm (s)", "sync (s)"], rows)
    emit(
        report_dir,
        "ablation_eager",
        "== Ablation: eager/rendezvous threshold (TCP, p=8) ==\n" + table,
    )
    # totals stay in the same regime: the protocol switch shifts time
    # between categories rather than removing it
    totals = [r[1] for r in rows]
    assert max(totals) / min(totals) < 1.6
