"""Figure 8 — MPI vs CMPI middleware on TCP/IP."""

from conftest import emit

from repro.experiments import figure8


def test_figure8(benchmark, figure_runner, report_dir):
    result = benchmark.pedantic(figure8, args=(figure_runner,), rounds=1, iterations=1)
    emit(report_dir, "figure8", result.report)

    cmpi = result.series["cmpi"]
    mpi = result.series["mpi"]
    assert cmpi["total"][3] > cmpi["total"][2]  # 4 -> 8 regression
    assert cmpi["classic"][3] > cmpi["classic"][2]
    assert cmpi["pme"][3] > cmpi["pme"][2]
    assert cmpi["sync"][3] > 3 * mpi["sync"][3]  # sync explosion
