"""Charge spreading onto the PME mesh and force interpolation off it.

Both directions support restriction to a contiguous (wrapping) range of
x-planes.  That is exactly what the slab-parallel PME needs: with
replicated coordinates every rank can spread the *portion of the mesh it
owns* with no communication, and after the inverse FFT it can compute the
*partial* forces contributed by its planes — partial forces are summed by
the same force reduction that the classic energy part already performs
(the B-spline stencil is separable in x).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..md.box import PeriodicBox
from .bspline import bspline_weights
from .plans import PlanCache

__all__ = ["ChargeMesh", "SpreadWorkload"]


@dataclass(frozen=True)
class SpreadWorkload:
    """Operation counts from one spread/interpolate call (for cost models)."""

    n_atoms: int
    stencil_points: int  # n_atoms * order**3 before slab masking
    scattered_points: int  # points actually accumulated (after masking)


class ChargeMesh:
    """B-spline charge assignment for an orthorhombic box.

    Parameters
    ----------
    box:
        Periodic box.
    grid_shape:
        Mesh dimensions ``(Kx, Ky, Kz)``; the paper's system uses
        ``(80, 36, 48)``.
    order:
        B-spline interpolation order (even; 4 by default).
    """

    def __init__(self, box: PeriodicBox, grid_shape: tuple[int, int, int], order: int = 4):
        if len(grid_shape) != 3 or min(grid_shape) < order:
            raise ValueError(f"bad grid shape {grid_shape} for order {order}")
        self.box = box
        self.grid_shape = tuple(int(k) for k in grid_shape)
        self.order = order
        self._k = np.array(self.grid_shape, dtype=np.float64)
        self._offsets = np.arange(order, dtype=np.int64)
        # private work-array cache (never shared across ranks/threads)
        self.plans = PlanCache()
        self.last_workload: SpreadWorkload | None = None

    # ------------------------------------------------------------------
    def stencil(
        self, positions: np.ndarray
    ) -> tuple[list[np.ndarray], list[np.ndarray], list[np.ndarray]]:
        """Per-axis grid indices, weights and weight derivatives.

        Returns three lists (one entry per axis) of arrays shaped
        ``(n_atoms, order)``; derivative weights are per scaled-coordinate
        unit (multiply by ``K/L`` for a spatial derivative).

        The stencil depends only on the positions and the (fixed) mesh
        geometry, so one evaluation can be reused by :meth:`spread` and
        :meth:`interpolate_forces` in both the serial engine and — via
        :class:`repro.parallel.shared.SharedComputeCache` — across every
        simulated rank of a replicated-data step.
        """
        # scratch from the plan cache; the ufunc chain with ``out=`` is the
        # exact rewrite of ``wrap(p) / lengths * k`` (same order, same bits)
        wrapped = self.box.wrap(positions)
        scaled = self.plans.buffer("stencil-scaled", wrapped.shape)
        np.divide(wrapped, self.box.lengths, out=scaled)
        np.multiply(scaled, self._k, out=scaled)
        k0 = np.floor(scaled).astype(np.int64)
        frac = np.subtract(
            scaled, k0, out=self.plans.buffer("stencil-frac", scaled.shape)
        )
        idx, w, dw = [], [], []
        offsets = self._offsets
        for d in range(3):
            wd, dwd = bspline_weights(frac[:, d], self.order)
            idx.append((k0[:, d, None] - self.order + 1 + offsets[None, :]) % self.grid_shape[d])
            w.append(wd)
            dw.append(dwd)
        return idx, w, dw

    # backwards-compatible private alias
    _stencil = stencil

    # ------------------------------------------------------------------
    def spread(
        self,
        positions: np.ndarray,
        charges: np.ndarray,
        x_range: tuple[int, int] | None = None,
        stencil: tuple[list, list, list] | None = None,
    ) -> np.ndarray:
        """Spread charges onto the mesh (or onto an x-slab of it).

        Parameters
        ----------
        positions, charges:
            All atom coordinates and charges (replicated-data convention).
        x_range:
            ``(start, count)`` of owned x-planes, wrapping modulo ``Kx``;
            ``None`` spreads the full mesh.
        stencil:
            Optional precomputed :meth:`stencil` for these positions.

        Returns
        -------
        Real float64 array of shape ``(count, Ky, Kz)`` (full mesh when
        ``x_range`` is None).
        """
        kx, ky, kz = self.grid_shape
        start, count = (0, kx) if x_range is None else x_range
        if not 0 < count <= kx:
            raise ValueError(f"invalid slab count {count}")

        idx, w, _ = stencil if stencil is not None else self.stencil(positions)
        o = self.order
        n = len(positions)

        lix = (idx[0] - start) % kx  # local x-plane index, (n, o)
        mask_x = lix < count

        # An order-o stencil touches o consecutive x-planes, so only atoms
        # whose stencil intersects the owned slab contribute; restricting
        # the dense (n, o, o, o) intermediates to those atoms drops the
        # per-rank cost from O(n) to O(n * (count + o) / Kx).  Dropped
        # atoms have no unmasked points, so the bincount input sequence —
        # and therefore the grid, bit for bit — is unchanged.
        w0, w1, w2 = w[0], w[1], w[2]
        i1, i2 = idx[1], idx[2]
        q = charges
        if count < kx:
            active = mask_x.any(axis=1)
            lix, mask_x = lix[active], mask_x[active]
            w0, w1, w2 = w0[active], w1[active], w2[active]
            i1, i2 = i1[active], i2[active]
            q = charges[active]

        # combined weights (n_active, o, o, o), built up one separable
        # axis at a time (n*o then n*o^2 element products instead of
        # three full n*o^3 broadcasts), and linear local indices
        wgt = ((q[:, None] * w0)[:, :, None] * w1[:, None, :])[
            :, :, :, None
        ] * w2[:, None, None, :]
        lin = (
            (lix[:, :, None, None] * ky + i1[:, None, :, None]) * kz
            + i2[:, None, None, :]
        )
        if count < kx:
            # same elements and order as boolean indexing, via the faster
            # flatnonzero/take compression
            mask = np.broadcast_to(mask_x[:, :, None, None], lin.shape)
            keep = np.flatnonzero(mask.ravel())
            flat_idx = lin.ravel().take(keep)
            flat_wgt = wgt.ravel().take(keep)
        else:
            # full mesh: every stencil point is owned, no compression pass
            flat_idx = lin.ravel()
            flat_wgt = wgt.ravel()
        grid = np.bincount(flat_idx, weights=flat_wgt, minlength=count * ky * kz)
        self.last_workload = SpreadWorkload(
            n_atoms=n, stencil_points=n * o**3, scattered_points=len(flat_idx)
        )
        return grid.reshape(count, ky, kz)

    # ------------------------------------------------------------------
    def interpolate_forces(
        self,
        positions: np.ndarray,
        charges: np.ndarray,
        phi: np.ndarray,
        x_range: tuple[int, int] | None = None,
        stencil: tuple[list, list, list] | None = None,
    ) -> np.ndarray:
        """Forces from the convolved potential mesh ``phi``.

        ``phi`` must be ``K * ifftn(psi * S).real`` (see
        :class:`repro.pme.pme.PME`), restricted to ``x_range`` planes when
        given.  When restricted, the result contains only the *partial*
        forces from those planes; summing the slabs over all ranks yields
        the full reciprocal force.  ``stencil`` optionally supplies a
        precomputed :meth:`stencil` for these positions.
        """
        kx, ky, kz = self.grid_shape
        start, count = (0, kx) if x_range is None else x_range
        if phi.shape != (count, ky, kz):
            raise ValueError(f"phi shape {phi.shape} != expected {(count, ky, kz)}")

        idx, w, dw = stencil if stencil is not None else self.stencil(positions)
        n = len(positions)
        lix = (idx[0] - start) % kx
        owned = lix < count
        self.last_workload = SpreadWorkload(
            n_atoms=n,
            stencil_points=n * self.order**3,
            scattered_points=int(np.count_nonzero(owned)) * self.order**2,
        )

        # Same atom restriction as :meth:`spread`: atoms with no owned
        # stencil plane contribute exactly zero partial force, so the
        # dense intermediates only need the atoms intersecting the slab.
        w0, w1, w2 = w[0], w[1], w[2]
        dw0, dw1, dw2 = dw[0], dw[1], dw[2]
        i1, i2 = idx[1], idx[2]
        q_all = charges
        scatter = None
        if count < kx:
            scatter = owned.any(axis=1)
            lix, owned = lix[scatter], owned[scatter]
            w0, w1, w2 = w0[scatter], w1[scatter], w2[scatter]
            dw0, dw1, dw2 = dw0[scatter], dw1[scatter], dw2[scatter]
            i1, i2 = i1[scatter], i2[scatter]
            q_all = charges[scatter]

        lix_safe = np.where(owned, lix, 0)

        # phi values at every stencil point; a flat-index ``take`` gathers
        # the same elements as the tuple fancy index, substantially faster
        lin = (
            (lix_safe[:, :, None, None] * ky + i1[:, None, :, None]) * kz
            + i2[:, None, None, :]
        )
        vals = phi.ravel().take(lin)

        # The weight cube q * w0 x w1 x w2 (and its three derivative
        # variants) is separable, so contract phi against one axis at a
        # time instead of materializing three dense (n, o, o, o) cubes:
        # z first, then y, then mask the non-owned x-planes (they
        # contribute exactly zero) and contract x.
        a_w = np.einsum("ijkl,il->ijk", vals, w2)
        a_d = np.einsum("ijkl,il->ijk", vals, dw2)
        b_ww = np.einsum("ijk,ik->ij", a_w, w1)
        b_dw = np.einsum("ijk,ik->ij", a_w, dw1)
        b_wd = np.einsum("ijk,ik->ij", a_d, w1)
        if count < kx:
            # the einsum outputs are fresh arrays, so zero the non-owned
            # planes in place (same +0.0 values np.where would produce)
            dead = ~owned
            b_ww[dead] = 0.0
            b_dw[dead] = 0.0
            b_wd[dead] = 0.0

        scale = self._k / self.box.lengths  # d(scaled)/d(position) per axis
        partial = np.empty((len(q_all), 3), dtype=np.float64)
        partial[:, 0] = -scale[0] * (q_all * np.einsum("ij,ij->i", b_ww, dw0))
        partial[:, 1] = -scale[1] * (q_all * np.einsum("ij,ij->i", b_dw, w0))
        partial[:, 2] = -scale[2] * (q_all * np.einsum("ij,ij->i", b_wd, w0))
        if scatter is None:
            return partial
        forces = np.zeros((n, 3), dtype=np.float64)
        forces[scatter] = partial
        return forces
