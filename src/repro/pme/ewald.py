"""Ewald summation building blocks shared by PME and the reference sum.

The total electrostatic energy of a periodic system of point charges is
split as::

    E = E_direct + E_reciprocal + E_self + E_exclusion

* ``E_direct``     — short-range ``q_i q_j erfc(alpha r)/r`` over included
  pairs within the cutoff (computed by
  :class:`repro.md.nonbonded.NonbondedKernel` with ``elec_mode="ewald"``).
* ``E_reciprocal`` — smooth long-range part, by PME or by the explicit
  k-space sum in :mod:`repro.pme.reference`.
* ``E_self``       — removes each Gaussian's interaction with itself.
* ``E_exclusion``  — removes the reciprocal-space interaction between
  bonded (excluded) pairs: ``-q_i q_j erf(alpha r)/r`` with forces.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import erf, erfc

from ..md.box import PeriodicBox
from ..md.units import COULOMB_CONSTANT

__all__ = [
    "choose_alpha",
    "self_energy",
    "exclusion_correction",
]

_TWO_OVER_SQRT_PI = 2.0 / math.sqrt(math.pi)


def choose_alpha(r_cut: float, tolerance: float = 1e-5) -> float:
    """Ewald splitting parameter so that ``erfc(alpha r_cut) = tolerance``.

    Solved by bisection; matches the common ``alpha ~ 3.1 / r_cut`` rule
    for the default tolerance.
    """
    if r_cut <= 0:
        raise ValueError("r_cut must be positive")
    if not 0 < tolerance < 1:
        raise ValueError("tolerance must be in (0, 1)")
    lo, hi = 0.0, 20.0 / r_cut
    for _ in range(100):
        mid = 0.5 * (lo + hi)
        if erfc(mid * r_cut) > tolerance:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def self_energy(charges: np.ndarray, alpha: float) -> float:
    """Gaussian self-interaction term ``-C alpha/sqrt(pi) sum q_i^2``."""
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    return float(-COULOMB_CONSTANT * alpha / math.sqrt(math.pi) * np.sum(charges**2))


def exclusion_correction(
    positions: np.ndarray,
    charges: np.ndarray,
    exclusions: np.ndarray,
    box: PeriodicBox,
    alpha: float,
) -> tuple[float, np.ndarray]:
    """Remove reciprocal-space coupling between excluded pairs.

    Each excluded pair (i, j) contributes ``-C q_i q_j erf(alpha r)/r`` and
    the matching forces.

    Returns
    -------
    (energy, forces):
        Energy in kcal/mol and an (n_atoms, 3) force array.
    """
    forces = np.zeros_like(positions)
    if len(exclusions) == 0:
        return 0.0, forces
    i = exclusions[:, 0]
    j = exclusions[:, 1]
    dr = box.min_image(positions[i] - positions[j])
    r2 = np.einsum("ij,ij->i", dr, dr)
    r = np.sqrt(r2)
    if np.any(r < 1e-10):
        raise FloatingPointError("coincident atoms in an excluded pair")
    inv_r = 1.0 / r
    qq = COULOMB_CONSTANT * charges[i] * charges[j]

    erf_ar = erf(alpha * r)
    energy = float(np.sum(-qq * erf_ar * inv_r))
    # d/dr of (-qq erf(ar)/r):  qq [erf(ar)/r^2 - 2a/sqrt(pi) exp(-a^2 r^2)/r]
    de_dr = qq * inv_r * (erf_ar * inv_r - _TWO_OVER_SQRT_PI * alpha * np.exp(-(alpha * r) ** 2))
    fvec = (-de_dr * inv_r)[:, None] * dr
    for dim in range(3):
        forces[:, dim] += np.bincount(i, weights=fvec[:, dim], minlength=len(positions))
        forces[:, dim] -= np.bincount(j, weights=fvec[:, dim], minlength=len(positions))
    return energy, forces
