"""Smooth particle-mesh Ewald electrostatics (Essmann et al., 1995).

Serial building blocks used both by :class:`repro.md.system.MDSystem`
(serial evaluation) and :mod:`repro.parallel.ppme` (slab-parallel
evaluation over simulated MPI).
"""

from .bspline import bspline_moduli, bspline_weights, mn_values
from .ewald import choose_alpha, exclusion_correction, self_energy
from .grid import ChargeMesh, SpreadWorkload
from .pme import PME, ReciprocalResult, influence_function
from .reference import EwaldReference, ReferenceResult

__all__ = [
    "bspline_moduli",
    "bspline_weights",
    "ChargeMesh",
    "choose_alpha",
    "EwaldReference",
    "exclusion_correction",
    "influence_function",
    "mn_values",
    "PME",
    "ReciprocalResult",
    "ReferenceResult",
    "self_energy",
    "SpreadWorkload",
]
