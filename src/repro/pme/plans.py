"""FFT plan / work-array cache for the PME mesh pipeline.

numpy's pocketfft plans transforms internally, but every step of the
PME pipeline still re-allocates the arrays *around* the transforms: the
complex cast of the spread mesh, the influence-function product fed to
the inverse FFT, the stencil scratch.  :class:`PlanCache` keeps those
work arrays alive across steps, keyed by ``(tag, shape, dtype)`` — the
mesh-shape analogue of the ``lru_cache``'d B-spline moduli and influence
function (:func:`repro.pme.pme.influence_function`).

Rules that keep reuse bitwise-invisible:

* Buffers are only handed to exact-rewrite operations (``out=`` ufunc
  calls, whole-array assignment); ufuncs with ``out=`` produce the same
  bits as their allocating form.
* A cache instance is **never shared across simulated ranks or
  threads**: each :class:`~repro.pme.grid.ChargeMesh` /
  :class:`~repro.pme.pme.PME` / ``ParallelPME`` owns a private cache, so
  a fanned-out rank task can never scribble over another rank's
  in-flight arrays.
* A buffer's contents are assumed stale on every
  :meth:`PlanCache.buffer` call; callers must fully overwrite it.

Hits and misses are reported through the metrics registry
(``exec.plan_cache_{hits,misses}`` with a ``tag`` label split).
"""

from __future__ import annotations

import numpy as np

from ..instrument.metrics import REGISTRY

__all__ = ["PlanCache", "PLAN_CACHE_HITS", "PLAN_CACHE_MISSES"]

PLAN_CACHE_HITS = REGISTRY.counter("exec.plan_cache_hits")
PLAN_CACHE_MISSES = REGISTRY.counter("exec.plan_cache_misses")


class PlanCache:
    """Reusable work arrays keyed by ``(tag, shape, dtype)``.

    One live buffer per key: asking for the same tag with a new shape
    (e.g. the slab-active atom count changed) replaces the old buffer
    rather than accumulating dead ones.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: dict[str, tuple[tuple[int, ...], np.ndarray]] = {}

    def buffer(self, tag: str, shape: tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """An uninitialised array of ``shape``/``dtype``, reused when possible."""
        shape = tuple(int(s) for s in shape)
        key = f"{tag}:{np.dtype(dtype).str}"
        entry = self._buffers.get(key)
        if entry is not None and entry[0] == shape:
            PLAN_CACHE_HITS.increment(tag=tag)
            return entry[1]
        PLAN_CACHE_MISSES.increment(tag=tag)
        buf = np.empty(shape, dtype=dtype)
        self._buffers[key] = (shape, buf)
        return buf

    def complex_buffer(self, tag: str, shape: tuple[int, ...]) -> np.ndarray:
        return self.buffer(tag, shape, np.complex128)

    def __len__(self) -> int:
        return len(self._buffers)
