"""Serial smooth particle-mesh Ewald (Essmann et al., 1995).

:class:`PME` computes the reciprocal-space energy and forces; combined with
the direct-space kernel (:class:`repro.md.nonbonded.NonbondedKernel` in
``"ewald"`` mode), the self term and the exclusion correction
(:mod:`repro.pme.ewald`) it yields the full periodic electrostic energy.

The reciprocal sum on the mesh::

    E_rec = 1/2 sum_m  psi(m) |S(m)|^2
    psi(m) = C/(pi V) * exp(-pi^2 |mt|^2 / alpha^2) / |mt|^2 * B(m),  psi(0) = 0

where ``S = FFT(Q)`` of the spread charge mesh, ``mt`` is the signed
reciprocal vector ``(m1/Lx, m2/Ly, m3/Lz)`` and ``B`` the product of the
squared Euler spline moduli.  Forces come from the convolved potential
``phi = K * IFFT(psi * S).real`` interpolated with B-spline derivative
weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..md.box import PeriodicBox
from ..md.units import COULOMB_CONSTANT
from .bspline import bspline_moduli
from .grid import ChargeMesh
from .plans import PlanCache

__all__ = ["PME", "ReciprocalResult", "influence_function"]


def influence_function(
    box: PeriodicBox, grid_shape: tuple[int, int, int], order: int, alpha: float
) -> np.ndarray:
    """The full PME influence function ``psi(m)`` on the mesh.

    Includes the Coulomb constant, the volume factor and the B-spline
    moduli; ``psi[0, 0, 0]`` is zero (tinfoil boundary conditions).

    The setup is pure in (box, mesh, order, alpha) and those are fixed for
    an NVT/NVE run, so the result is memoized and returned read-only —
    repeated system construction (campaign workers, tests) reuses it.
    """
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    return _influence_function_cached(box, tuple(int(k) for k in grid_shape), order, alpha)


@lru_cache(maxsize=8)
def _influence_function_cached(
    box: PeriodicBox, grid_shape: tuple[int, int, int], order: int, alpha: float
) -> np.ndarray:
    kx, ky, kz = grid_shape
    mx = np.fft.fftfreq(kx) * kx
    my = np.fft.fftfreq(ky) * ky
    mz = np.fft.fftfreq(kz) * kz
    gx = mx / box.lx
    gy = my / box.ly
    gz = mz / box.lz
    m2 = (
        gx[:, None, None] ** 2
        + gy[None, :, None] ** 2
        + gz[None, None, :] ** 2
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        f = np.exp(-(np.pi**2) * m2 / alpha**2) / m2
    f[0, 0, 0] = 0.0

    bx = bspline_moduli(kx, order)
    by = bspline_moduli(ky, order)
    bz = bspline_moduli(kz, order)
    b = bx[:, None, None] * by[None, :, None] * bz[None, None, :]

    psi = COULOMB_CONSTANT / (np.pi * box.volume) * f * b
    psi.setflags(write=False)
    return psi


@dataclass(frozen=True)
class ReciprocalResult:
    """Energy (kcal/mol) and forces from one reciprocal-space evaluation."""

    energy: float
    forces: np.ndarray


class PME:
    """Reciprocal-space PME evaluator for a fixed box/mesh/alpha.

    Parameters
    ----------
    box:
        Periodic box (fixed; NVT/NVE only).
    grid_shape:
        FFT mesh ``(Kx, Ky, Kz)``.
    alpha:
        Ewald splitting parameter (1/A); see
        :func:`repro.pme.ewald.choose_alpha`.
    order:
        B-spline order (even), default 4.
    """

    def __init__(
        self,
        box: PeriodicBox,
        grid_shape: tuple[int, int, int],
        alpha: float,
        order: int = 4,
    ) -> None:
        self.box = box
        self.grid_shape = tuple(int(k) for k in grid_shape)
        self.alpha = float(alpha)
        self.order = int(order)
        self.mesh = ChargeMesh(box, self.grid_shape, order)
        self.psi = influence_function(box, self.grid_shape, order, alpha)
        self.total_points = int(np.prod(self.grid_shape))
        # private work-array cache (never shared across ranks/threads)
        self.plans = PlanCache()

    # ------------------------------------------------------------------
    def reciprocal(self, positions: np.ndarray, charges: np.ndarray) -> ReciprocalResult:
        """Reciprocal-space energy and forces for the given configuration."""
        # one B-spline stencil serves both the spread and the interpolation
        stencil = self.mesh.stencil(positions)
        q_grid = self.mesh.spread(positions, charges, stencil=stencil)
        s = np.fft.fftn(q_grid)
        energy = 0.5 * float(np.sum(self.psi * np.abs(s) ** 2))
        conv = np.multiply(
            self.psi, s, out=self.plans.complex_buffer("conv", self.grid_shape)
        )
        phi = self.total_points * np.fft.ifftn(conv).real
        forces = self.mesh.interpolate_forces(positions, charges, phi, stencil=stencil)
        return ReciprocalResult(energy=energy, forces=forces)

    # ------------------------------------------------------------------
    def energy_from_spectrum(self, s: np.ndarray) -> float:
        """Energy from an already-computed charge-mesh spectrum ``S``.

        Used by the distributed implementation, where each rank holds a
        slab of the (transposed) spectrum and sums its share.
        """
        if s.shape != self.grid_shape:
            raise ValueError(f"spectrum shape {s.shape} != mesh {self.grid_shape}")
        return 0.5 * float(np.sum(self.psi * np.abs(s) ** 2))
