"""Cardinal B-splines for smooth particle-mesh Ewald.

Implements the centred cardinal B-spline ``M_n`` of Essmann et al. (1995),
its derivative, the per-atom interpolation weights, and the Euler
exponential-spline moduli ``|b(m)|^2`` that enter the PME influence
function.

``M_n`` satisfies the recursion::

    M_2(u) = 1 - |u - 1|            for 0 <= u <= 2, else 0
    M_n(u) = u/(n-1) M_{n-1}(u) + (n-u)/(n-1) M_{n-1}(u-1)
    M_n'(u) = M_{n-1}(u) - M_{n-1}(u-1)
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = ["mn_values", "bspline_weights", "bspline_moduli"]


def mn_values(u: np.ndarray, order: int) -> np.ndarray:
    """Evaluate ``M_order`` at arbitrary points (vectorized).

    Uses dynamic programming over the shifted evaluations
    ``M_2(u - s), s = 0..order-2`` so the cost is O(order^2) array ops.
    """
    if order < 2:
        raise ValueError("B-spline order must be >= 2")
    u = np.asarray(u, dtype=np.float64)
    # vals[s] holds M_k(u - s) for the current order k
    vals = [np.clip(1.0 - np.abs((u - s) - 1.0), 0.0, None) for s in range(order - 1)]
    for k in range(3, order + 1):
        nxt = []
        for s in range(order + 1 - k):
            us = u - s
            nxt.append((us * vals[s] + (k - us) * vals[s + 1]) / (k - 1))
        vals = nxt
    return vals[0]


def bspline_weights(frac: np.ndarray, order: int) -> tuple[np.ndarray, np.ndarray]:
    """Interpolation weights and derivatives for scaled fractional offsets.

    For an atom whose scaled coordinate along one axis is ``u`` with
    ``frac = u - floor(u)``, the ``order`` grid points it touches are
    ``floor(u) - order + 1 + t`` for ``t = 0..order-1``, with weights
    ``M_order(frac + order - 1 - t)``.

    Parameters
    ----------
    frac:
        Array of fractional parts in ``[0, 1)``; any shape.
    order:
        Interpolation order (4 is the CHARMM default).

    Returns
    -------
    (w, dw):
        Arrays of shape ``frac.shape + (order,)``; ``dw`` is the derivative
        of the weight with respect to ``u`` (per scaled-coordinate unit).
    """
    frac = np.asarray(frac, dtype=np.float64)
    t = np.arange(order, dtype=np.float64)
    points = frac[..., None] + (order - 1.0) - t  # in (0, order)
    w = mn_values(points, order)
    m_lower = mn_values(points, order - 1) if order > 2 else None
    if order == 2:
        # M_2'(u) = sign(1 - u) on (0, 2)
        dw = np.where(points < 1.0, 1.0, -1.0)
        dw = np.where((points <= 0.0) | (points >= 2.0), 0.0, dw)
    else:
        dw = m_lower - mn_values(points - 1.0, order - 1)
    return w, dw


@lru_cache(maxsize=64)
def bspline_moduli(grid_size: int, order: int) -> np.ndarray:
    """Squared Euler-spline moduli ``|b(m)|^2`` for one FFT axis.

    ``b(m) = exp(2 pi i (n-1) m / K) / sum_{k=0}^{n-2} M_n(k+1) e^{2 pi i m k / K}``

    The numerator has unit modulus, so only the denominator matters.
    For even ``order`` the denominator never vanishes; odd orders would
    require special handling at ``m = K/2`` and are rejected.

    Pure in its integer arguments, so the per-axis setup is memoized; the
    returned array is read-only and shared between callers.
    """
    if order % 2 != 0:
        raise ValueError("only even B-spline orders are supported (PME standard)")
    if grid_size < order:
        raise ValueError(f"grid size {grid_size} smaller than spline order {order}")
    k = np.arange(order - 1, dtype=np.float64)
    mn = mn_values(k + 1.0, order)  # M_n(1) .. M_n(n-1)
    m = np.arange(grid_size)[:, None]
    phases = np.exp(2j * np.pi * m * k[None, :] / grid_size)
    denom = phases @ mn.astype(np.complex128)
    mod2 = np.abs(denom) ** 2
    if np.any(mod2 < 1e-10):
        raise FloatingPointError("vanishing Euler spline denominator")
    out = 1.0 / mod2
    out.setflags(write=False)
    return out
