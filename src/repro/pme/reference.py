"""Brute-force Ewald summation — the validation oracle for PME.

Computes the same ``direct + reciprocal + self`` decomposition as the PME
pipeline but with an *exact* k-space sum (structure factors evaluated per
atom, no mesh, no splines) and a direct sum over all minimum-image pairs.
Intended for small systems in tests; cost is O(N^2 + N * kmax^3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import erfc

from ..md.box import PeriodicBox
from ..md.units import COULOMB_CONSTANT

__all__ = ["EwaldReference", "ReferenceResult"]

_TWO_OVER_SQRT_PI = 2.0 / np.sqrt(np.pi)


@dataclass(frozen=True)
class ReferenceResult:
    """Exact Ewald decomposition for a configuration."""

    direct: float
    reciprocal: float
    self_energy: float
    forces: np.ndarray

    @property
    def total(self) -> float:
        return self.direct + self.reciprocal + self.self_energy


class EwaldReference:
    """Exact Ewald sum over a small periodic system.

    Parameters
    ----------
    box:
        Periodic box.
    alpha:
        Splitting parameter (1/A).  The direct sum uses minimum images
        only, so ``alpha`` must be large enough that
        ``erfc(alpha * L_min / 2)`` is negligible.
    kmax:
        Reciprocal sum includes integer triples with ``|m_i| <= kmax``.
    """

    def __init__(self, box: PeriodicBox, alpha: float, kmax: int = 12) -> None:
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        if kmax < 1:
            raise ValueError("kmax must be >= 1")
        self.box = box
        self.alpha = float(alpha)
        self.kmax = int(kmax)

    # ------------------------------------------------------------------
    def compute(self, positions: np.ndarray, charges: np.ndarray) -> ReferenceResult:
        """Exact direct + reciprocal + self Ewald decomposition with forces."""
        positions = np.asarray(positions, dtype=np.float64)
        charges = np.asarray(charges, dtype=np.float64)
        n = len(positions)
        forces = np.zeros((n, 3), dtype=np.float64)

        # ---- direct space: all minimum-image pairs ---------------------
        e_direct = 0.0
        if n > 1:
            iu, ju = np.triu_indices(n, k=1)
            dr = self.box.min_image(positions[iu] - positions[ju])
            r = np.sqrt(np.einsum("ij,ij->i", dr, dr))
            inv_r = 1.0 / r
            qq = COULOMB_CONSTANT * charges[iu] * charges[ju]
            erfc_ar = erfc(self.alpha * r)
            e_direct = float(np.sum(qq * erfc_ar * inv_r))
            de_dr = -qq * inv_r * (
                erfc_ar * inv_r
                + _TWO_OVER_SQRT_PI * self.alpha * np.exp(-(self.alpha * r) ** 2)
            )
            fvec = (-de_dr * inv_r)[:, None] * dr
            for dim in range(3):
                forces[:, dim] += np.bincount(iu, weights=fvec[:, dim], minlength=n)
                forces[:, dim] -= np.bincount(ju, weights=fvec[:, dim], minlength=n)

        # ---- reciprocal space: exact structure factors -----------------
        k = self.kmax
        grids = np.mgrid[-k : k + 1, -k : k + 1, -k : k + 1].reshape(3, -1).T
        grids = grids[np.any(grids != 0, axis=1)]  # drop m = 0
        m_over_l = grids / self.box.lengths[None, :]  # (M, 3)
        m2 = np.einsum("ij,ij->i", m_over_l, m_over_l)
        coeff = (
            COULOMB_CONSTANT
            / (2.0 * np.pi * self.box.volume)
            * np.exp(-(np.pi**2) * m2 / self.alpha**2)
            / m2
        )

        # S(m) = sum_i q_i exp(2 pi i m . s_i); chunk over m to bound memory
        e_recip = 0.0
        scaled = positions / self.box.lengths[None, :]
        chunk = max(1, 2_000_000 // max(n, 1))
        for start in range(0, len(grids), chunk):
            sl = slice(start, start + chunk)
            phase = 2.0 * np.pi * (scaled @ grids[sl].T)  # (n, M')
            cos_p = np.cos(phase)
            sin_p = np.sin(phase)
            re = charges @ cos_p  # (M',)
            im = charges @ sin_p
            s2 = re * re + im * im
            e_recip += float(np.sum(coeff[sl] * s2))
            # F_i = -dE/dr_i = 2 C' sum_m coeff(m) q_i (2 pi m/L)
            #       * [sin(phase_i) Re(S) - cos(phase_i) Im(S)]
            weight = coeff[sl][None, :] * (sin_p * re[None, :] - cos_p * im[None, :])
            forces += 2.0 * 2.0 * np.pi * charges[:, None] * (weight @ m_over_l[sl])

        # ---- self energy ----------------------------------------------
        e_self = float(
            -COULOMB_CONSTANT * self.alpha / np.sqrt(np.pi) * np.sum(charges**2)
        )

        return ReferenceResult(
            direct=e_direct, reciprocal=e_recip, self_energy=e_self, forces=forces
        )
