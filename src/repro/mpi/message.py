"""Message and receive-post records for the simulated MPI layer."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster.state import TransferPlan
from ..sim.engine import Future

__all__ = ["Message", "RecvPost", "payload_nbytes", "payload_dtype", "copy_payload"]

Payload = "np.ndarray | bytes"


def payload_nbytes(payload) -> int:
    """Size in bytes of an ndarray or bytes payload."""
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    raise TypeError(f"unsupported payload type {type(payload).__name__}")


def payload_dtype(payload) -> str:
    """Dtype label of a payload: the numpy dtype name, or ``"bytes"``."""
    if isinstance(payload, np.ndarray):
        return str(payload.dtype)
    return "bytes"


def copy_payload(payload):
    """Snapshot the payload at send time (MPI buffer semantics)."""
    if isinstance(payload, np.ndarray):
        return payload.copy()
    return bytes(payload)


@dataclass(slots=True)
class Message:
    """An in-flight message."""

    src: int
    dst: int
    tag: int
    payload: object
    nbytes: int
    sender_ready: float  # sim time the payload left the sender's hands
    rendezvous: bool
    plan: TransferPlan | None = None
    #: resolved at transfer completion for rendezvous sends
    fut_sender: Future | None = None

    @property
    def key(self) -> tuple[int, int, int]:
        return (self.src, self.dst, self.tag)


@dataclass(slots=True)
class RecvPost:
    """A posted receive waiting for its matching message.

    ``expect_nbytes``/``expect_dtype`` are the receiver's optional
    declaration of the payload it is prepared for; the runtime sanitizer
    (:mod:`repro.analysis.sanitizer`) asserts agreement at match time.
    """

    src: int
    dst: int
    tag: int
    post_time: float
    expect_nbytes: int | None = None
    expect_dtype: str | None = None
    fut: Future = field(default_factory=Future)  # resolves with the Message

    @property
    def key(self) -> tuple[int, int, int]:
        return (self.src, self.dst, self.tag)
