"""The per-rank MPI interface handed to rank programs.

All operations are generators; rank programs invoke them with
``yield from``.  Real payloads (numpy arrays) move between ranks, so the
parallel physics is bit-for-bit checkable against the serial engine —
only *time* is simulated.

Time attribution (the paper's definitions, Sec. 3.2):

* per-message host overheads and the data-transfer interval -> **comm**
* waiting for a partner / for data to arrive -> **sync**
* :meth:`RankEndpoint.compute` -> **comp**
"""

from __future__ import annotations

from dataclasses import dataclass

from ..instrument.timeline import Category, Timeline
from ..sim.engine import Await, Future, Sleep
from .message import Message, RecvPost, copy_payload, payload_dtype, payload_nbytes

__all__ = ["RankEndpoint", "SendRequest", "RecvRequest", "EMPTY_PAYLOAD"]

#: The one-byte 'empty message' the paper's CMPI middleware exchanges.
EMPTY_PAYLOAD = b"\x00"

#: Tags below this value are free for rank programs; collectives allocate
#: from a per-operation sequence above it.
COLLECTIVE_TAG_BASE = 1 << 20


@dataclass
class SendRequest:
    """Handle for a split-phase send."""

    endpoint: "RankEndpoint"
    message: Message
    issued_at: float

    def wait(self):
        """Block until the send completes (no-op for eager messages)."""
        if self.message.fut_sender is None:
            return
        t0 = self.endpoint.now
        plan = yield Await(self.message.fut_sender)
        t1 = self.endpoint.now
        sync_wait = max(0.0, min(plan.start, t1) - t0)
        self.endpoint.timeline.add(Category.SYNC, sync_wait)
        self.endpoint.timeline.add(Category.COMM, max(0.0, (t1 - t0) - sync_wait))


@dataclass
class RecvRequest:
    """Handle for a split-phase receive."""

    endpoint: "RankEndpoint"
    post: RecvPost

    def wait(self):
        """Block until the payload is delivered; returns it."""
        ep = self.endpoint
        t0 = ep.now
        msg: Message = yield Await(self.post.fut)
        t1 = ep.now
        plan = msg.plan
        assert plan is not None, "delivered message must carry a transfer plan"
        sync_wait = max(0.0, min(plan.start, t1) - t0)
        ep.timeline.add(Category.SYNC, sync_wait)
        ep.timeline.add(Category.COMM, max(0.0, (t1 - t0) - sync_wait))
        # receive-side host processing of the payload (copies, checksums)
        copy_cost = ep.net.host_cost(msg.nbytes) * ep._overhead_scale
        if copy_cost > 0:
            ep.timeline.add(Category.COMM, copy_cost)
            yield Sleep(copy_cost)
        return msg.payload


class RankEndpoint:
    """One rank's window onto the simulated machine."""

    def __init__(self, world, rank: int) -> None:
        self.world = world
        self.rank = rank
        self.timeline = Timeline()
        self._tag_seq = COLLECTIVE_TAG_BASE
        # sim and network are fixed for the world's lifetime; direct
        # references keep the hot-path properties to one attribute hop
        self._sim = world.sim
        self._net = world.spec.network

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self.world.size

    @property
    def now(self) -> float:
        return self._sim.now

    @property
    def net(self):
        return self._net

    @property
    def node(self) -> int:
        return self.world.spec.node_of(self.rank)

    def next_collective_tag(self, op: str = "collective") -> int:
        """Fresh tag for one collective operation named ``op``.

        Rank programs are SPMD, so every rank draws the same sequence and
        tags agree across the job.  When the world records a
        :class:`~repro.instrument.commstats.CommTrace`, the ``(op, tag)``
        pair is logged so the schedule analyzer can detect cross-rank
        collective-order divergence.
        """
        self._tag_seq += 16
        if self.world.trace is not None:
            self.world.trace.record_collective(self.rank, op, self._tag_seq, self.now)
        return self._tag_seq

    # ------------------------------------------------------------------
    def compute(self, seconds: float):
        """Charge ``seconds`` of computation to the current phase."""
        if seconds < 0:
            raise ValueError("compute time must be non-negative")
        scaled = seconds * self.world.spec.compute_scale
        self.timeline.add(Category.COMP, scaled)
        yield Sleep(scaled)

    @property
    def _overhead_scale(self) -> float:
        """Per-message host-overhead multiplier (SMP stack contention)."""
        spec = self.world.spec
        if spec.node.cpus_per_node == 2 and self.net.uses_interrupts:
            return self.net.smp_overhead_multiplier
        return 1.0

    # ------------------------------------------------------------------
    def isend(self, dest: int, payload, tag: int = 0):
        """Split-phase send; returns a :class:`SendRequest`.

        The per-message host cost is charged here (initiating the send is
        CPU work), matching MPI_Isend semantics.
        """
        if not 0 <= dest < self.size:
            raise ValueError(f"bad destination rank {dest}")
        if dest == self.rank:
            raise ValueError("self-sends are not supported")
        nbytes = payload_nbytes(payload)
        overhead = (self.net.send_overhead + self.net.host_cost(nbytes)) * self._overhead_scale
        self.timeline.add(Category.COMM, overhead)
        yield Sleep(overhead)

        rendezvous = nbytes > self.net.eager_threshold
        msg = Message(
            src=self.rank,
            dst=dest,
            tag=tag,
            payload=copy_payload(payload),
            nbytes=nbytes,
            sender_ready=self.now,
            rendezvous=rendezvous,
            fut_sender=Future() if rendezvous else None,
        )
        if self.world.trace is not None:
            self.world.trace.record_send(
                self.rank, dest, tag, nbytes, payload_dtype(payload), self.now,
                rendezvous, overhead=overhead,
            )
        self.world.post_message(msg)
        return SendRequest(endpoint=self, message=msg, issued_at=self.now)

    def irecv(
        self,
        source: int,
        tag: int = 0,
        expect_nbytes: int | None = None,
        expect_dtype: str | None = None,
    ):
        """Split-phase receive; returns a :class:`RecvRequest`.

        ``expect_nbytes``/``expect_dtype`` optionally declare the payload
        the receiver is prepared for; the runtime sanitizer asserts
        agreement when the message is matched.
        """
        if not 0 <= source < self.size:
            raise ValueError(f"bad source rank {source}")
        if source == self.rank:
            raise ValueError("self-receives are not supported")
        overhead = self.net.recv_overhead * self._overhead_scale
        self.timeline.add(Category.COMM, overhead)
        yield Sleep(overhead)
        post = RecvPost(
            src=source,
            dst=self.rank,
            tag=tag,
            post_time=self.now,
            expect_nbytes=expect_nbytes,
            expect_dtype=expect_dtype,
        )
        if self.world.trace is not None:
            self.world.trace.record_recv(
                self.rank,
                source,
                tag,
                self.now,
                -1 if expect_nbytes is None else expect_nbytes,
                expect_dtype or "",
                overhead=overhead,
            )
        self.world.post_recv(post)
        return RecvRequest(endpoint=self, post=post)

    def send(self, dest: int, payload, tag: int = 0):
        """Blocking send (point-to-point blocking routine of raw MPI)."""
        req = yield from self.isend(dest, payload, tag)
        yield from req.wait()

    def recv(
        self,
        source: int,
        tag: int = 0,
        expect_nbytes: int | None = None,
        expect_dtype: str | None = None,
    ):
        """Blocking receive; returns the payload."""
        req = yield from self.irecv(source, tag, expect_nbytes, expect_dtype)
        payload = yield from req.wait()
        return payload

    def sendrecv(
        self,
        dest: int,
        payload,
        source: int,
        tag: int = 0,
        expect_nbytes: int | None = None,
        expect_dtype: str | None = None,
    ):
        """Simultaneous exchange (deadlock-free via split phases)."""
        rreq = yield from self.irecv(source, tag, expect_nbytes, expect_dtype)
        sreq = yield from self.isend(dest, payload, tag)
        incoming = yield from rreq.wait()
        yield from sreq.wait()
        return incoming
