"""Middleware abstraction: how the application invokes global operations.

The paper's second factor (Sec. 4.2): CHARMM ships two communication
styles — raw **MPI** (blocking point-to-point, MPI barriers, the standard
collective algorithms) and **CMPI**, a portability layer built on split
non-blocking calls whose synchronization is p-1 rounds of one-byte
neighbour exchanges.  Rank programs call through this interface so the
experiment runner can swap the middleware without touching the physics.
"""

from __future__ import annotations

import abc
from typing import Callable

import numpy as np

from . import collectives
from .endpoint import RankEndpoint

__all__ = ["Middleware", "MPIMiddleware"]


class Middleware(abc.ABC):
    """Interface: every method is a generator to be driven with yield-from.

    A proper ABC: subclasses must implement every operation, and the
    abstract declarations carry no dead ``yield`` bodies.  The analyzer's
    lint pass (:mod:`repro.analysis.lint`) knows these names as the
    generator-collective protocol: any call site must use ``yield from``
    or the operation silently never runs (rule REP101).
    """

    name = "abstract"

    @abc.abstractmethod
    def barrier(self, ep: RankEndpoint):
        """Generator: block until every rank has entered the barrier."""

    @abc.abstractmethod
    def allreduce(self, ep: RankEndpoint, array: np.ndarray, op: Callable = np.add):
        """Generator: combine ``array`` across ranks; returns the result."""

    @abc.abstractmethod
    def allgatherv(self, ep: RankEndpoint, block: np.ndarray):
        """Generator: gather per-rank blocks everywhere; returns the list."""

    @abc.abstractmethod
    def alltoallv(self, ep: RankEndpoint, send_blocks: list):
        """Generator: personalized exchange; returns the received blocks."""

    def exchange(self, ep: RankEndpoint, dest: int, payload, source: int, tag: int = 0):
        """Generator: paired neighbour exchange; returns the received payload.

        Send ``payload`` to ``dest`` while receiving from ``source`` on the
        same ``tag`` — the halo-exchange primitive of a spatial
        decomposition.  Deadlock-free under rendezvous semantics because
        the receive is posted before the send
        (:meth:`repro.mpi.endpoint.RankEndpoint.sendrecv`).  Concrete
        subclasses restate this method so per-middleware costs apply (and
        so the static verifier, which resolves methods per class, sees
        each middleware's exchange schedule).
        """
        result = yield from ep.sendrecv(dest, payload, source, tag=tag)
        return result


class MPIMiddleware(Middleware):
    """Raw MPI calls: standard algorithms, MPI barriers."""

    name = "mpi"

    def barrier(self, ep: RankEndpoint):
        yield from collectives.barrier(ep)

    def allreduce(self, ep: RankEndpoint, array: np.ndarray, op: Callable = np.add):
        result = yield from collectives.allreduce(ep, array, op)
        return result

    def allgatherv(self, ep: RankEndpoint, block: np.ndarray):
        result = yield from collectives.allgatherv(ep, block)
        return result

    def alltoallv(self, ep: RankEndpoint, send_blocks: list):
        result = yield from collectives.alltoallv(ep, send_blocks)
        return result

    def exchange(self, ep: RankEndpoint, dest: int, payload, source: int, tag: int = 0):
        result = yield from ep.sendrecv(dest, payload, source, tag=tag)
        return result
