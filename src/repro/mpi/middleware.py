"""Middleware abstraction: how the application invokes global operations.

The paper's second factor (Sec. 4.2): CHARMM ships two communication
styles — raw **MPI** (blocking point-to-point, MPI barriers, the standard
collective algorithms) and **CMPI**, a portability layer built on split
non-blocking calls whose synchronization is p-1 rounds of one-byte
neighbour exchanges.  Rank programs call through this interface so the
experiment runner can swap the middleware without touching the physics.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from . import collectives
from .endpoint import RankEndpoint

__all__ = ["Middleware", "MPIMiddleware"]


class Middleware:
    """Interface: every method is a generator to be driven with yield-from."""

    name = "abstract"

    def barrier(self, ep: RankEndpoint):
        raise NotImplementedError
        yield  # pragma: no cover

    def allreduce(self, ep: RankEndpoint, array: np.ndarray, op: Callable = np.add):
        raise NotImplementedError
        yield  # pragma: no cover

    def allgatherv(self, ep: RankEndpoint, block: np.ndarray):
        raise NotImplementedError
        yield  # pragma: no cover

    def alltoallv(self, ep: RankEndpoint, send_blocks: list):
        raise NotImplementedError
        yield  # pragma: no cover


class MPIMiddleware(Middleware):
    """Raw MPI calls: standard algorithms, MPI barriers."""

    name = "mpi"

    def barrier(self, ep: RankEndpoint):
        yield from collectives.barrier(ep)

    def allreduce(self, ep: RankEndpoint, array: np.ndarray, op: Callable = np.add):
        result = yield from collectives.allreduce(ep, array, op)
        return result

    def allgatherv(self, ep: RankEndpoint, block: np.ndarray):
        result = yield from collectives.allgatherv(ep, block)
        return result

    def alltoallv(self, ep: RankEndpoint, send_blocks: list):
        result = yield from collectives.alltoallv(ep, send_blocks)
        return result
