"""Collective algorithms over simulated point-to-point messages.

The algorithms mirror MPICH's choices for the message sizes and process
counts of the paper's runs:

* barrier       — dissemination (log2 p rounds of one-byte exchanges)
* allreduce     — recursive doubling (power-of-two), reduce+bcast otherwise
* allgatherv    — ring (p-1 steps, one block per step)
* alltoallv     — pairwise exchange (XOR partners for powers of two)
* bcast/reduce  — binomial tree

Every function is a generator taking the calling rank's endpoint first;
all ranks of the communicator must call the same operations in the same
order (SPMD), which is also how the per-operation tags stay consistent.

Barrier time is booked entirely as **synchronization** (the paper's
definition of control-transfer cost); data-moving collectives book their
time through the normal send/recv attribution (transfer -> comm,
waiting -> sync).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..instrument.timeline import Category
from .endpoint import EMPTY_PAYLOAD, RankEndpoint

__all__ = [
    "barrier",
    "allreduce",
    "allgatherv",
    "alltoallv",
    "bcast",
    "reduce",
]


def _is_power_of_two(p: int) -> bool:
    return p > 0 and (p & (p - 1)) == 0


def barrier(ep: RankEndpoint):
    """Dissemination barrier; cost booked as synchronization."""
    p = ep.size
    if p == 1:
        return
    tag = ep.next_collective_tag("barrier")
    with ep.timeline.as_category(Category.SYNC):
        k = 1
        round_no = 0
        while k < p:
            dest = (ep.rank + k) % p
            src = (ep.rank - k) % p
            yield from ep.sendrecv(
                dest, EMPTY_PAYLOAD, src, tag + round_no,
                expect_nbytes=len(EMPTY_PAYLOAD), expect_dtype="bytes",
            )
            k <<= 1
            round_no += 1


def allreduce(
    ep: RankEndpoint, array: np.ndarray, op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add
):
    """Combine ``array`` across all ranks; returns the reduced array."""
    p = ep.size
    data = np.asarray(array).copy()
    if p == 1:
        return data
    tag = ep.next_collective_tag("allreduce")
    if _is_power_of_two(p):
        k = 1
        round_no = 0
        while k < p:
            partner = ep.rank ^ k
            # recursive doubling is symmetric: the partner's block has the
            # same shape and dtype as ours, so declare it for the sanitizer
            other = yield from ep.sendrecv(
                partner, data, partner, tag + round_no,
                expect_nbytes=int(data.nbytes), expect_dtype=str(data.dtype),
            )
            data = op(data, other)
            k <<= 1
            round_no += 1
        return data
    # general case: binomial reduce to 0, then binomial bcast
    reduced = yield from reduce(ep, data, root=0, op=op)
    result = yield from bcast(ep, reduced if ep.rank == 0 else None, root=0)
    return result


def allgatherv(ep: RankEndpoint, block: np.ndarray):
    """Gather per-rank blocks everywhere (ring algorithm).

    Returns a list of ``size`` arrays indexed by source rank; blocks may
    have different lengths (the 'v' variant CHARMM needs for its uneven
    atom blocks).
    """
    p = ep.size
    blocks: list[np.ndarray | None] = [None] * p
    blocks[ep.rank] = np.asarray(block).copy()
    if p == 1:
        return blocks
    tag = ep.next_collective_tag("allgatherv")
    right = (ep.rank + 1) % p
    left = (ep.rank - 1) % p
    for step in range(p - 1):
        send_idx = (ep.rank - step) % p
        recv_idx = (ep.rank - step - 1) % p
        incoming = yield from ep.sendrecv(right, blocks[send_idx], left, tag + step)
        blocks[recv_idx] = incoming
    return blocks


def alltoallv(ep: RankEndpoint, send_blocks: list):
    """Personalized all-to-all: block ``i`` goes to rank ``i``.

    Returns the received blocks indexed by source rank.  This is the
    communication pattern of the distributed 3-D FFT transpose.
    """
    p = ep.size
    if len(send_blocks) != p:
        raise ValueError(f"need {p} send blocks, got {len(send_blocks)}")
    recv_blocks: list = [None] * p
    recv_blocks[ep.rank] = send_blocks[ep.rank]
    if p == 1:
        return recv_blocks
    tag = ep.next_collective_tag("alltoallv")
    if _is_power_of_two(p):
        # XOR partners: each step is a symmetric pairwise exchange
        for step in range(1, p):
            partner = ep.rank ^ step
            incoming = yield from ep.sendrecv(
                partner, send_blocks[partner], partner, tag + step
            )
            recv_blocks[partner] = incoming
    else:
        # ring schedule: send k ahead, receive from k behind
        for step in range(1, p):
            dest = (ep.rank + step) % p
            src = (ep.rank - step) % p
            incoming = yield from ep.sendrecv(dest, send_blocks[dest], src, tag + step)
            recv_blocks[src] = incoming
    return recv_blocks


def bcast(ep: RankEndpoint, array, root: int = 0):
    """Binomial-tree broadcast; returns the array on every rank."""
    p = ep.size
    if p == 1:
        return array
    tag = ep.next_collective_tag("bcast")
    vrank = (ep.rank - root) % p
    data = array
    mask = 1
    # find the level at which this rank receives
    while mask < p:
        if vrank & mask:
            src = (ep.rank - mask) % p
            data = yield from ep.recv(src, tag)
            break
        mask <<= 1
    # forward to children below that level
    mask >>= 1
    while mask > 0:
        if vrank + mask < p and (vrank & (mask - 1)) == 0 and not (vrank & mask):
            dest = (ep.rank + mask) % p
            yield from ep.send(dest, data, tag)
        mask >>= 1
    return data


def reduce(
    ep: RankEndpoint,
    array: np.ndarray,
    root: int = 0,
    op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
):
    """Binomial-tree reduction to ``root``; other ranks return None."""
    p = ep.size
    data = np.asarray(array).copy()
    if p == 1:
        return data
    tag = ep.next_collective_tag("reduce")
    vrank = (ep.rank - root) % p
    mask = 1
    while mask < p:
        if vrank & mask:
            dest = (ep.rank - mask) % p
            yield from ep.send(dest, data, tag)
            return None
        partner = vrank | mask
        if partner < p:
            src = (ep.rank + mask) % p
            # reduction partners combine same-shape blocks
            other = yield from ep.recv(
                src, tag, expect_nbytes=int(data.nbytes), expect_dtype=str(data.dtype)
            )
            data = op(data, other)
        mask <<= 1
    return data
