"""Simulated MPI: real payloads between SPMD generators, virtual time."""

from . import collectives
from .endpoint import EMPTY_PAYLOAD, RankEndpoint, RecvRequest, SendRequest
from .message import Message, RecvPost, copy_payload, payload_nbytes
from .middleware import Middleware, MPIMiddleware
from .world import MPIWorld

__all__ = [
    "collectives",
    "copy_payload",
    "EMPTY_PAYLOAD",
    "Message",
    "Middleware",
    "MPIMiddleware",
    "MPIWorld",
    "payload_nbytes",
    "RankEndpoint",
    "RecvPost",
    "RecvRequest",
    "SendRequest",
]
