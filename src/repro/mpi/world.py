"""The simulated MPI world: matching engine over the cluster model.

One :class:`MPIWorld` owns the cluster state and the unexpected-message /
posted-receive queues.  Matching follows MPI semantics: FIFO per
``(source, dest, tag)``; wildcard receives are not needed by CHARMM's
communication structure and are not implemented.

Timing protocol (decided lazily at match time):

* **eager** message (``nbytes <= eager_threshold``): the payload starts
  moving as soon as the sender finishes its per-message host work; the
  sender never blocks.
* **rendezvous** message: the payload starts moving only when both sides
  have arrived (``max(sender_ready, recv post time)``); the sender blocks
  until the transfer completes (CHARMM's standard blocking sends).

The wire timing itself — NIC serialization, congestion-dependent
efficiency, interrupt queueing — is delegated to
:meth:`repro.cluster.state.ClusterState.plan_transfer`.
"""

from __future__ import annotations

from collections import deque

from ..cluster.machine import ClusterSpec
from ..cluster.state import ClusterState
from ..sim.engine import Future, Simulator
from .message import Message, RecvPost

__all__ = ["MPIWorld"]


class MPIWorld:
    """Matching engine + endpoints for one simulated MPI job.

    ``sanitize=True`` installs a :class:`repro.analysis.sanitizer.Sanitizer`
    that asserts size/dtype agreement on every matched message and
    validates every transfer window; ``trace`` (a
    :class:`~repro.instrument.commstats.CommTrace`) records every
    send/recv/collective event for the schedule analyzer; ``span_tracer``
    (a :class:`~repro.instrument.tracing.SpanTracer`) mirrors every
    timeline attribution of every rank as a virtual-clock span.  All
    three are passive: they never charge virtual time or draw random
    numbers, so sanitized/traced runs are bit-identical to plain ones.
    """

    def __init__(
        self,
        sim: Simulator,
        spec: ClusterSpec,
        *,
        sanitize: bool = False,
        trace=None,
        span_tracer=None,
    ) -> None:
        from .endpoint import RankEndpoint  # local import to avoid a cycle

        self.sim = sim
        self.spec = spec
        self.trace = trace
        self.sanitizer = None
        plan_validator = None
        if sanitize:
            from ..analysis.sanitizer import Sanitizer  # local import, avoids a cycle

            self.sanitizer = Sanitizer()
            plan_validator = self.sanitizer.check_plan
        self.state = ClusterState(spec, plan_validator=plan_validator)
        self._msgs: dict[tuple[int, int, int], deque[Message]] = {}
        self._recvs: dict[tuple[int, int, int], deque[RecvPost]] = {}
        self.endpoints = [RankEndpoint(self, r) for r in range(spec.n_ranks)]
        if span_tracer is not None:
            for ep in self.endpoints:
                span_tracer.attach_rank(ep.rank, ep.timeline)

    @property
    def size(self) -> int:
        return self.spec.n_ranks

    # ------------------------------------------------------------------
    def post_message(self, msg: Message) -> None:
        """Called by a sender once its per-message host work is done."""
        queue = self._recvs.get(msg.key)
        if queue:
            self._match(msg, queue.popleft())
        else:
            self._msgs.setdefault(msg.key, deque()).append(msg)

    def post_recv(self, post: RecvPost) -> None:
        """Called by a receiver after its per-message host work."""
        queue = self._msgs.get(post.key)
        if queue:
            self._match(queue.popleft(), post)
        else:
            self._recvs.setdefault(post.key, deque()).append(post)

    # ------------------------------------------------------------------
    def _match(self, msg: Message, post: RecvPost) -> None:
        if self.sanitizer is not None:
            self.sanitizer.check_match(msg, post)
        ready = (
            msg.sender_ready
            if not msg.rendezvous
            else max(msg.sender_ready, post.post_time)
        )
        src_node = self.spec.node_of(msg.src)
        dst_node = self.spec.node_of(msg.dst)
        plan = self.state.plan_transfer(src_node, dst_node, msg.nbytes, ready)
        msg.plan = plan

        delay = max(0.0, plan.end - self.sim.now)
        self.sim.schedule(delay, lambda: post.fut.resolve(self.sim, msg))
        if msg.fut_sender is not None:
            fut: Future = msg.fut_sender
            self.sim.schedule(delay, lambda: fut.resolve(self.sim, plan))

    # ------------------------------------------------------------------
    def assert_drained(self) -> None:
        """Raise if unmatched messages or receives remain (test hook)."""
        leftover_msgs = {k: len(v) for k, v in self._msgs.items() if v}
        leftover_recvs = {k: len(v) for k, v in self._recvs.items() if v}
        if leftover_msgs or leftover_recvs:
            raise AssertionError(
                f"unmatched traffic: messages={leftover_msgs} recvs={leftover_recvs}"
            )
