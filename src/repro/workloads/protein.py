"""Synthetic alpha-helical protein segments.

Residues are built from internal coordinates pulled straight from the
force-field equilibrium values (bond lengths and angles) with ideal
alpha-helix backbone torsions (phi = -57, psi = -47, omega = 180 degrees),
so the generated structure carries essentially zero bonded strain.

A residue is::

    backbone  N, H, CA, HB, C, O                    (6 atoms)
    sidechain k CH2 groups + terminal CH3           (3k + 4 atoms)

plus termini: one extra N-terminal H (two for an NH3+ terminus) and a
second carboxylate oxygen.  Charges follow CHARMM22-like neutral groups;
designated 'basic' residues carry +0.25 on the terminal CH3 carbon, which
is how the synthetic myoglobin acquires its +2 net charge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..md.forcefield import ForceField
from ..md.topology import Atom, Bond, Improper, Topology, derive_angles, derive_dihedrals
from .builder import ChainBuilder

__all__ = ["SegmentSpec", "build_helical_segment", "residue_size"]

# Ideal alpha-helix backbone torsions (radians).
PHI = math.radians(-57.0)
PSI = math.radians(-47.0)
OMEGA = math.radians(180.0)

#: CHARMM22-like neutral-group charges.
BACKBONE_CHARGES = {
    "N": -0.47,
    "H": 0.31,
    "CA": 0.07,
    "HB": 0.09,
    "C": 0.51,
    "O": -0.51,
}
CH2_CHARGES = {"C": -0.18, "H": 0.09}
CH3_CHARGES = {"C": -0.27, "H": 0.09}
TERMINAL_H_CHARGE = 0.25  # balanced by -0.25 on the terminal N
TERMINAL_O_CHARGE = -0.25  # balanced by +0.25 on the terminal C
BASIC_SIDECHAIN_EXTRA = 0.25  # net charge added to a 'basic' residue

MASSES = {"N": 14.007, "C": 12.011, "O": 15.999, "H": 1.008}


def residue_size(sidechain_k: int) -> int:
    """Atom count of a residue with ``k`` CH2 groups (excluding termini)."""
    if sidechain_k < 1:
        raise ValueError("sidechain_k must be >= 1")
    return 6 + 3 * sidechain_k + 4


@dataclass(frozen=True)
class SegmentSpec:
    """Recipe for one helical segment.

    Attributes
    ----------
    sidechain_ks:
        CH2 count per residue (k >= 1; the terminal CH3 is implicit).
    basic_residues:
        Residue indices carrying the +0.25 'basic' sidechain charge.
    nh3_terminus:
        Give the N-terminus three hydrogens instead of two.
    segment_name:
        Segment identifier stored on the atoms.
    """

    sidechain_ks: tuple[int, ...]
    basic_residues: frozenset[int] = field(default_factory=frozenset)
    nh3_terminus: bool = False
    segment_name: str = "PROT"

    @property
    def n_residues(self) -> int:
        return len(self.sidechain_ks)

    @property
    def n_atoms(self) -> int:
        extras = 1 + 1 + (1 if self.nh3_terminus else 0)  # extra H, OT2, third H
        return sum(residue_size(k) for k in self.sidechain_ks) + extras


def build_helical_segment(
    spec: SegmentSpec, forcefield: ForceField
) -> tuple[Topology, np.ndarray]:
    """Build one segment; returns its topology and coordinates.

    The helix is generated in an arbitrary frame; callers orient and place
    it (see :mod:`repro.workloads.myoglobin`).
    """
    if spec.n_residues < 2:
        raise ValueError("a segment needs at least 2 residues")

    ff = forcefield
    deg = math.degrees  # noqa: F841  (kept for debugging)

    # equilibrium geometry straight from the parameter tables
    b_nca = ff.bond_params("NH1", "CT1").r0
    b_cac = ff.bond_params("CT1", "C").r0
    b_cn = ff.bond_params("C", "NH1").r0
    b_co = ff.bond_params("C", "O").r0
    b_nh = ff.bond_params("NH1", "H").r0
    b_cahb = ff.bond_params("CT1", "HB").r0
    b_cacb = ff.bond_params("CT1", "CT2").r0
    b_cc = ff.bond_params("CT2", "CT2").r0
    b_cct3 = ff.bond_params("CT2", "CT3").r0
    b_ch2h = ff.bond_params("CT2", "HA").r0
    b_ch3h = ff.bond_params("CT3", "HA").r0

    a_ncac = ff.angle_params("NH1", "CT1", "C").theta0
    a_cacn = ff.angle_params("CT1", "C", "NH1").theta0
    a_caco = ff.angle_params("CT1", "C", "O").theta0
    a_cnca = ff.angle_params("C", "NH1", "CT1").theta0
    a_cnh = ff.angle_params("C", "NH1", "H").theta0
    a_hnca = ff.angle_params("H", "NH1", "CT1").theta0
    a_ncahb = ff.angle_params("NH1", "CT1", "HB").theta0
    a_ncacb = ff.angle_params("NH1", "CT1", "CT2").theta0
    a_cacbcg = ff.angle_params("CT1", "CT2", "CT2").theta0
    a_cacbh = ff.angle_params("CT1", "CT2", "HA").theta0
    a_ccc = ff.angle_params("CT2", "CT2", "CT2").theta0
    a_cch = ff.angle_params("CT2", "CT2", "HA").theta0
    a_cct3 = ff.angle_params("CT2", "CT2", "CT3").theta0
    a_ct3h = ff.angle_params("CT2", "CT3", "HA").theta0

    cb = ChainBuilder()
    atoms: list[Atom] = []
    bonds: list[Bond] = []
    impropers: list[Improper] = []

    def add_atom(aid: int, name: str, type_name: str, charge: float, element: str, res: int) -> int:
        assert aid == len(atoms)
        atoms.append(
            Atom(
                name=name,
                type_name=type_name,
                charge=charge,
                mass=MASSES[element],
                residue="RES",
                residue_index=res,
                segment=spec.segment_name,
            )
        )
        return aid

    third = 2.0 * math.pi / 3.0  # 120 degrees

    c_prev = -1
    # backbone atoms of residue r+1, pre-placed while finishing residue r
    pending: tuple[int, int, int, int] | None = None
    n_res = spec.n_residues
    for r, k in enumerate(spec.sidechain_ks):
        bb = BACKBONE_CHARGES
        is_basic = r in spec.basic_residues

        # ---- backbone N, H, CA, C -----------------------------------
        if r == 0:
            n_id = cb.add_xyz((0.0, 0.0, 0.0))
            n_charge = bb["N"] - TERMINAL_H_CHARGE * (2 if spec.nh3_terminus else 1)
            add_atom(n_id, "N", "NH1", n_charge, "N", r)
            ca_id = cb.add_xyz((b_nca, 0.0, 0.0))
            add_atom(ca_id, "CA", "CT1", bb["CA"], "C", r)
            c_xyz = np.array(
                [b_nca - b_cac * math.cos(a_ncac), b_cac * math.sin(a_ncac), 0.0]
            )
            c_id = cb.add_xyz(c_xyz)
            # residue 0 is never terminal (n_residues >= 2), so no charge fixup
            add_atom(c_id, "C", "C", bb["C"], "C", r)
            # N-terminal hydrogens, placed around the CA-N axis
            h_torsions = [math.radians(60.0), math.radians(-60.0)]
            if spec.nh3_terminus:
                h_torsions.append(math.radians(180.0))
            for ht in h_torsions:
                h_id = cb.add_internal(c_id, ca_id, n_id, b_nh, a_hnca, ht)
                # placeholder charge; the fixup pass below assigns the
                # backbone charge to the first H and +0.25 to the extras
                add_atom(h_id, "HT", "H", bb["H"], "H", r)
                bonds.append(Bond(n_id, h_id))
        else:
            # N_r, H_r, CA_r, C_r were pre-placed while finishing r-1
            assert pending is not None
            n_id, h_id, ca_id, c_id = pending
            add_atom(n_id, "N", "NH1", bb["N"], "N", r)
            add_atom(h_id, "HN", "H", bb["H"], "H", r)
            add_atom(ca_id, "CA", "CT1", bb["CA"], "C", r)
            c_charge = bb["C"] + (-TERMINAL_O_CHARGE if r == n_res - 1 else 0.0)
            add_atom(c_id, "C", "C", c_charge, "C", r)
            bonds.append(Bond(n_id, h_id))
            bonds.append(Bond(c_prev, n_id))
        bonds.append(Bond(n_id, ca_id))
        bonds.append(Bond(ca_id, c_id))

        # ---- HB and sidechain ----------------------------------------
        hb_id = cb.add_internal(c_id, n_id, ca_id, b_cahb, a_ncahb, +third)
        add_atom(hb_id, "HB", "HB", bb["HB"], "H", r)
        bonds.append(Bond(ca_id, hb_id))

        cbeta_id = cb.add_internal(c_id, n_id, ca_id, b_cacb, a_ncacb, -third)
        add_atom(cbeta_id, "CB", "CT2", CH2_CHARGES["C"], "C", r)
        bonds.append(Bond(ca_id, cbeta_id))

        # CH2 chain: carbons first (all-anti), then hydrogens
        chain = [n_id, ca_id, cbeta_id]  # frame atoms leading into the chain
        for unit in range(1, k):
            bond_len = b_cc
            angle = a_cacbcg if unit == 1 else a_ccc
            c_next = cb.add_internal(
                chain[-3], chain[-2], chain[-1], bond_len, angle, math.pi
            )
            add_atom(c_next, f"C{unit}", "CT2", CH2_CHARGES["C"], "C", r)
            bonds.append(Bond(chain[-1], c_next))
            chain.append(c_next)
        # terminal CH3 carbon
        angle = a_cct3 if k > 1 else a_cacbcg
        ct3_id = cb.add_internal(chain[-3], chain[-2], chain[-1], b_cct3, angle, math.pi)
        ct3_charge = CH3_CHARGES["C"] + (BASIC_SIDECHAIN_EXTRA if is_basic else 0.0)
        add_atom(ct3_id, "CT", "CT3", ct3_charge, "C", r)
        bonds.append(Bond(chain[-1], ct3_id))
        chain.append(ct3_id)

        # hydrogens on every CH2 (two each, +-60 from the anti continuation)
        for pos in range(2, len(chain) - 1):  # chain[2] = CB .. last CH2
            a_ref, b_ref, c_ref = chain[pos - 2], chain[pos - 1], chain[pos]
            h_angle = a_cacbh if pos == 2 else a_cch
            for sign in (+1.0, -1.0):
                h_id2 = cb.add_internal(
                    a_ref, b_ref, c_ref, b_ch2h, h_angle, sign * (third / 2.0)
                )
                add_atom(h_id2, "HC", "HA", CH2_CHARGES["H"], "H", r)
                bonds.append(Bond(c_ref, h_id2))
        # hydrogens on the CH3 (three, staggered)
        a_ref, b_ref, c_ref = chain[-3], chain[-2], chain[-1]
        for tors in (math.radians(60.0), math.radians(180.0), math.radians(-60.0)):
            h_id3 = cb.add_internal(a_ref, b_ref, c_ref, b_ch3h, a_ct3h, tors)
            add_atom(h_id3, "HM", "HA", CH3_CHARGES["H"], "H", r)
            bonds.append(Bond(c_ref, h_id3))

        # ---- carbonyl O, peptide continuation -------------------------
        if r < n_res - 1:
            o_id = cb.add_internal(n_id, ca_id, c_id, b_co, a_caco, PSI + math.pi)
            add_atom(o_id, "O", "O", bb["O"], "O", r)
            bonds.append(Bond(c_id, o_id))
            n_next = cb.add_internal(n_id, ca_id, c_id, b_cn, a_cacn, PSI)
            h_next = cb.add_internal(ca_id, c_id, n_next, b_nh, a_cnh, 0.0)
            ca_next = cb.add_internal(ca_id, c_id, n_next, b_nca, a_cnca, OMEGA)
            c_next2 = cb.add_internal(c_id, n_next, ca_next, b_cac, a_ncac, PHI)
            impropers.append(Improper(o_id, ca_id, n_next, c_id))
            pending = (n_next, h_next, ca_next, c_next2)
        else:
            o_id = cb.add_internal(n_id, ca_id, c_id, b_co, a_caco, PSI + math.pi)
            add_atom(o_id, "O", "O", bb["O"], "O", r)
            bonds.append(Bond(c_id, o_id))
            ot2_id = cb.add_internal(n_id, ca_id, c_id, b_co, a_caco, PSI)
            add_atom(ot2_id, "OT2", "O", TERMINAL_O_CHARGE, "O", r)
            bonds.append(Bond(c_id, ot2_id))

        c_prev = c_id

    # ---- terminal-H charge fixup -------------------------------------
    # The N-terminal hydrogens were appended with the standard backbone H
    # charge; the *extra* ones must carry TERMINAL_H_CHARGE instead so the
    # segment stays neutral (the terminal N already absorbed -0.25 each).
    n_extra = 2 if spec.nh3_terminus else 1
    fixed = 0
    for i, a in enumerate(atoms):
        if a.residue_index == 0 and a.name == "HT":
            if fixed > 0:  # first HT keeps the backbone charge
                atoms[i] = Atom(
                    name=a.name,
                    type_name=a.type_name,
                    charge=TERMINAL_H_CHARGE,
                    mass=a.mass,
                    residue=a.residue,
                    residue_index=a.residue_index,
                    segment=a.segment,
                )
            else:
                atoms[i] = Atom(
                    name=a.name,
                    type_name=a.type_name,
                    charge=BACKBONE_CHARGES["H"],
                    mass=a.mass,
                    residue=a.residue,
                    residue_index=a.residue_index,
                    segment=a.segment,
                )
            fixed += 1
    if fixed != 1 + n_extra:
        raise AssertionError(f"expected {1 + n_extra} N-terminal hydrogens, fixed {fixed}")

    topo = Topology(
        atoms=atoms,
        bonds=bonds,
        angles=derive_angles(bonds, len(atoms)),
        dihedrals=derive_dihedrals(bonds, len(atoms)),
        impropers=impropers,
    )
    return topo, cb.coords()
