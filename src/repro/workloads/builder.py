"""Internal-coordinate structure building (the NeRF algorithm).

Generated coordinates are placed from bond lengths, bond angles and
torsions, so every bonded term of the synthetic molecules starts exactly at
its force-field equilibrium — no minimization is needed before dynamics.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["place_atom", "ChainBuilder"]


def place_atom(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    bond: float,
    angle: float,
    torsion: float,
) -> np.ndarray:
    """Position atom D from reference atoms A, B, C and internal coordinates.

    ``bond`` is |C-D|, ``angle`` the B-C-D angle and ``torsion`` the
    A-B-C-D dihedral, both in radians (Natural Extension Reference Frame).
    """
    if bond <= 0:
        raise ValueError("bond length must be positive")
    bc = c - b
    bc = bc / np.linalg.norm(bc)
    ab = b - a
    n = np.cross(ab, bc)
    n_norm = np.linalg.norm(n)
    if n_norm < 1e-10:
        raise ValueError("reference atoms A, B, C are collinear")
    n = n / n_norm
    m = np.cross(n, bc)

    d_local = np.array(
        [
            -bond * math.cos(angle),
            bond * math.sin(angle) * math.cos(torsion),
            bond * math.sin(angle) * math.sin(torsion),
        ]
    )
    return c + d_local[0] * bc + d_local[1] * m + d_local[2] * n


class ChainBuilder:
    """Accumulates atoms placed by internal coordinates.

    Keeps a growing coordinate array addressed by the integer IDs it
    returns, so callers can use earlier atoms as NeRF references.
    """

    def __init__(self) -> None:
        self._coords: list[np.ndarray] = []

    def __len__(self) -> int:
        return len(self._coords)

    def add_xyz(self, xyz: np.ndarray | tuple[float, float, float]) -> int:
        """Add an atom at explicit coordinates; returns its ID."""
        self._coords.append(np.asarray(xyz, dtype=np.float64).copy())
        return len(self._coords) - 1

    def add_internal(
        self, ref_a: int, ref_b: int, ref_c: int, bond: float, angle: float, torsion: float
    ) -> int:
        """Add an atom by internal coordinates relative to three placed atoms."""
        d = place_atom(
            self._coords[ref_a],
            self._coords[ref_b],
            self._coords[ref_c],
            bond,
            angle,
            torsion,
        )
        self._coords.append(d)
        return len(self._coords) - 1

    def coords(self) -> np.ndarray:
        """All coordinates as an (n, 3) float64 array (a copy)."""
        return np.array(self._coords, dtype=np.float64)

    def position(self, atom_id: int) -> np.ndarray:
        return self._coords[atom_id].copy()
