"""Small systems for tests, examples and quick experiments."""

from __future__ import annotations

import numpy as np

from ..md.box import PeriodicBox
from ..md.forcefield import ForceField, default_forcefield
from ..md.topology import Topology
from .protein import SegmentSpec, build_helical_segment
from .solvent import lattice_points, water_coords, water_topology

__all__ = ["build_water_box", "build_peptide_in_water"]


def build_water_box(
    n_side: int = 4,
    spacing: float = 3.1,
    forcefield: ForceField | None = None,
) -> tuple[Topology, np.ndarray, PeriodicBox]:
    """A cubic box of ``n_side**3`` waters on a lattice.

    Returns ``(topology, positions, box)``.
    """
    if n_side < 1:
        raise ValueError("n_side must be >= 1")
    ff = forcefield or default_forcefield()
    edge = n_side * spacing
    box = PeriodicBox(edge, edge, edge)
    sites = lattice_points(box.lengths, spacing)
    topos = []
    parts = []
    for w, site in enumerate(sites):
        topos.append(water_topology(residue_index=w))
        parts.append(water_coords(ff, site, orientation_seed=w))
    return Topology.concat(topos), np.vstack(parts), box


def build_peptide_in_water(
    n_residues: int = 4,
    n_waters: int = 24,
    forcefield: ForceField | None = None,
) -> tuple[Topology, np.ndarray, PeriodicBox]:
    """A short helical peptide solvated by a shell of waters.

    A miniature of the myoglobin workload for fast tests; returns
    ``(topology, positions, box)``.
    """
    ff = forcefield or default_forcefield()
    spec = SegmentSpec(sidechain_ks=(2,) * n_residues, segment_name="PEP")
    topo, xyz = build_helical_segment(spec, ff)

    extent = float(np.max(np.ptp(xyz, axis=0)))
    edge = max(26.0, extent + 14.0)
    box = PeriodicBox(edge, edge, edge)
    xyz = xyz - xyz.mean(axis=0) + 0.5 * box.lengths

    sites = lattice_points(box.lengths, spacing=3.1, margin=1.8)
    d2 = np.array(
        [np.min(np.einsum("ij,ij->i", xyz - s, xyz - s)) for s in sites]
    )
    open_sites = sites[d2 >= 2.6**2]
    if len(open_sites) < n_waters:
        raise RuntimeError("box too small for the requested water count")
    order = np.argsort(d2[d2 >= 2.6**2], kind="stable")
    parts = [xyz]
    topos = [topo]
    for w in range(n_waters):
        topos.append(water_topology(residue_index=w))
        parts.append(water_coords(ff, open_sites[order[w]], orientation_seed=w))
    return Topology.concat(topos), np.vstack(parts), box
