"""The paper's benchmark system, rebuilt synthetically.

Section 2.2 of the paper: *myoglobin, a 153-residue single-domain protein
of structural class alpha, a carbon monoxide molecule, 337 water molecules
and a sulfate ion for a total of 3552 atoms*, with a PME charge mesh of
80 x 36 x 48.

The substitution (recorded in DESIGN.md): eight alpha-helical segments
(myoglobin's A-H helices) of 19-20 residues arranged as a 2 x 4 bundle,
2534 protein atoms, CO (2), sulfate (5) and 337 waters (1011) — 3552 atoms
total, net charge zero (protein +2, sulfate -2).  Helix-connecting loops
are omitted; the bonded-term count changes by <0.5% and the non-bonded
workload (what the paper measures) is unaffected.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..md.box import PeriodicBox
from ..md.forcefield import ForceField, default_forcefield
from ..md.topology import Topology
from .protein import SegmentSpec, build_helical_segment, residue_size
from .solvent import (
    co_coords,
    co_topology,
    lattice_points,
    sulfate_coords,
    sulfate_topology,
    water_coords,
    water_topology,
)

__all__ = ["MyoglobinSystem", "build_myoglobin", "PME_GRID", "TARGET_ATOMS"]

#: The paper's FFT charge mesh.
PME_GRID: tuple[int, int, int] = (80, 36, 48)
#: The paper's total atom count.
TARGET_ATOMS = 3552
#: Mesh spacing used to size the box from the grid (A per grid point).
GRID_SPACING = 1.2

N_RESIDUES = 153
N_WATERS = 337
N_SEGMENTS = 8
N_LONG_SIDECHAINS = 23  # residues with k=3; the rest use k=2
N_BASIC_RESIDUES = 8  # +0.25 each -> protein charge +2


@dataclass(frozen=True)
class MyoglobinSystem:
    """The assembled benchmark workload."""

    topology: Topology
    positions: np.ndarray
    box: PeriodicBox
    forcefield: ForceField
    pme_grid: tuple[int, int, int]

    @property
    def n_atoms(self) -> int:
        return self.topology.n_atoms


def _sidechain_plan() -> list[int]:
    """Per-residue CH2 counts: 23 long (k=3) spread over 153 residues."""
    ks = [2] * N_RESIDUES
    for i in range(N_LONG_SIDECHAINS):
        ks[(i * N_RESIDUES) // N_LONG_SIDECHAINS] = 3
    return ks


def _rotation_to(vec: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Rodrigues rotation taking direction ``vec`` onto ``target``."""
    a = vec / np.linalg.norm(vec)
    b = target / np.linalg.norm(target)
    v = np.cross(a, b)
    c = float(np.dot(a, b))
    if np.linalg.norm(v) < 1e-12:
        return np.eye(3) if c > 0 else -np.eye(3)
    vx = np.array([[0, -v[2], v[1]], [v[2], 0, -v[0]], [-v[1], v[0], 0]])
    return np.eye(3) + vx + vx @ vx / (1.0 + c)


def _axis_spin(axis: np.ndarray, angle: float) -> np.ndarray:
    """Rotation by ``angle`` about ``axis``."""
    a = axis / np.linalg.norm(axis)
    c, s = math.cos(angle), math.sin(angle)
    ax = np.array([[0, -a[2], a[1]], [a[2], 0, -a[0]], [-a[1], a[0], 0]])
    return c * np.eye(3) + s * ax + (1 - c) * np.outer(a, a)


def build_myoglobin(
    forcefield: ForceField | None = None,
    n_waters: int = N_WATERS,
    grid_spacing: float = GRID_SPACING,
) -> MyoglobinSystem:
    """Assemble the 3552-atom benchmark system.

    Deterministic: the same arguments always produce the same coordinates.
    """
    ff = forcefield or default_forcefield()
    box = PeriodicBox(*(g * grid_spacing for g in PME_GRID))
    center = 0.5 * box.lengths

    # ---- protein: 8 helical segments ---------------------------------
    ks = _sidechain_plan()
    seg_lengths = [19] * (N_SEGMENTS - 1) + [20]
    basic_global = {(i * N_RESIDUES) // N_BASIC_RESIDUES + 3 for i in range(N_BASIC_RESIDUES)}

    # Slots on a 2x2x2 grid: two x-layers (staggered so z/y neighbours in
    # different layers can never touch), y and z offsets of +-9.5 A — wide
    # enough for the ~9.5 A sidechain reach measured on a built helix.
    slots = [
        np.array([sx, sy, sz])
        for sx in (-17.0, 17.0)
        for sy in (-9.5, 9.5)
        for sz in (-9.5, 9.5)
    ]

    topo: Topology | None = None
    coords_parts: list[np.ndarray] = []
    res_cursor = 0
    for s, seg_len in enumerate(seg_lengths):
        seg_ks = tuple(ks[res_cursor : res_cursor + seg_len])
        seg_basic = frozenset(
            r - res_cursor for r in basic_global if res_cursor <= r < res_cursor + seg_len
        )
        spec = SegmentSpec(
            sidechain_ks=seg_ks,
            basic_residues=seg_basic,
            nh3_terminus=(s == 0),
            segment_name=f"HLX{s}",
        )
        seg_topo, seg_xyz = build_helical_segment(spec, ff)

        # orient the helix along +-x and park it in its bundle slot
        ca_idx = [i for i, a in enumerate(seg_topo.atoms) if a.name == "CA"]
        axis = seg_xyz[ca_idx[-1]] - seg_xyz[ca_idx[0]]
        direction = np.array([1.0, 0.0, 0.0]) if s % 2 == 0 else np.array([-1.0, 0.0, 0.0])
        rot = _rotation_to(axis, direction)
        spun = _axis_spin(direction, (2.0 * math.pi / N_SEGMENTS) * s) @ rot
        seg_xyz = (seg_xyz - seg_xyz[ca_idx].mean(axis=0)) @ spun.T
        seg_xyz = seg_xyz + center + slots[s]

        coords_parts.append(seg_xyz)
        topo = seg_topo if topo is None else topo.merge(seg_topo)
        res_cursor += seg_len
    assert topo is not None
    protein_xyz = np.vstack(coords_parts)
    # 1.4 A catches catastrophic overlaps while admitting the tight
    # O...H-N helix hydrogen bonds the ideal-torsion build produces (~1.46 A)
    _assert_no_clashes(topo, protein_xyz, box, min_dist=1.4)

    expected_protein = (
        sum(residue_size(k) for k in ks) + 2 * N_SEGMENTS + 1
    )  # + extra H / OT2 per segment + third H on segment 0
    if len(protein_xyz) != expected_protein:
        raise AssertionError(
            f"protein atom count {len(protein_xyz)} != expected {expected_protein}"
        )

    # ---- hetero groups: CO in the closest free pocket, sulfate next ---
    candidates = lattice_points(box.lengths, spacing=3.1, margin=1.8)
    d_prot = _min_distance_to(candidates, protein_xyz, box)
    pocket_order = np.argsort(
        np.where(d_prot >= 3.2, d_prot, np.inf), kind="stable"
    )
    co_site = candidates[pocket_order[0]]
    co_xyz = co_coords(ff, co_site)
    topo = topo.merge(co_topology())

    far_enough = np.linalg.norm(
        box.min_image(candidates - co_site[None, :]), axis=1
    ) >= 8.0
    sulfate_idx = next(
        int(i) for i in pocket_order if d_prot[i] >= 3.6 and far_enough[i]
    )
    sulfate_xyz = sulfate_coords(ff, candidates[sulfate_idx])
    topo = topo.merge(sulfate_topology())
    placed = np.vstack([protein_xyz, co_xyz, sulfate_xyz])

    # ---- waters: solvation shell on a lattice --------------------------
    # distance of every candidate to the nearest placed atom (min-image)
    d_min = _min_distance_to(candidates, placed, box)
    open_sites = candidates[d_min >= 2.6]
    d_open = d_min[d_min >= 2.6]
    if len(open_sites) < n_waters:
        raise RuntimeError(f"only {len(open_sites)} water sites for {n_waters} waters")
    order = np.argsort(d_open, kind="stable")  # closest to the solute first
    chosen = open_sites[order[:n_waters]]

    water_parts = []
    water_topos = []
    occupied = placed
    for w in range(n_waters):
        water_topos.append(water_topology(residue_index=w))
        # deterministic orientation retries: keep every intermolecular
        # contact above 1.5 A (two hydrogens of adjacent lattice waters can
        # otherwise end up nose-to-nose)
        for attempt in range(16):
            xyz = water_coords(ff, chosen[w], orientation_seed=w + 1000 * attempt)
            d = _min_distance_to(xyz, occupied, box)
            if d.min() >= 1.5:
                break
        water_parts.append(xyz)
        occupied = np.vstack([occupied, xyz])
    topo = Topology.concat([topo] + water_topos)
    positions = np.vstack([placed] + water_parts)

    if len(positions) != TARGET_ATOMS or topo.n_atoms != TARGET_ATOMS:
        if n_waters == N_WATERS:
            raise AssertionError(
                f"assembled {len(positions)} atoms, expected {TARGET_ATOMS}"
            )

    total_q = topo.total_charge()
    if abs(total_q) > 1e-9:
        raise AssertionError(f"system not neutral: total charge {total_q}")

    return MyoglobinSystem(
        topology=topo,
        positions=positions,
        box=box,
        forcefield=ff,
        pme_grid=PME_GRID,
    )


def _assert_no_clashes(
    topo: Topology, positions: np.ndarray, box: PeriodicBox, min_dist: float
) -> None:
    """Fail loudly if any non-bonded pair sits closer than ``min_dist``."""
    from ..md.neighborlist import brute_force_pairs

    pairs = brute_force_pairs(positions, box, min_dist)
    if len(pairs) == 0:
        return
    excl = {(int(i), int(j)) for i, j in topo.exclusion_pairs()}
    for i, j in pairs:
        if (int(i), int(j)) not in excl:
            d = float(np.linalg.norm(box.min_image(positions[i] - positions[j])))
            raise AssertionError(
                f"steric clash: atoms {i} and {j} at {d:.2f} A (< {min_dist} A)"
            )


def _min_distance_to(
    points: np.ndarray, targets: np.ndarray, box: PeriodicBox, chunk: int = 256
) -> np.ndarray:
    """Minimum-image distance from each point to the nearest target atom."""
    out = np.empty(len(points), dtype=np.float64)
    for start in range(0, len(points), chunk):
        sl = slice(start, start + chunk)
        dr = box.min_image(points[sl, None, :] - targets[None, :, :])
        out[sl] = np.sqrt(np.einsum("ijk,ijk->ij", dr, dr).min(axis=1))
    return out
