"""Workload builders: the paper's benchmark system and smaller test systems."""

from .builder import ChainBuilder, place_atom
from .cache import myoglobin_system, myoglobin_workload
from .myoglobin import PME_GRID, TARGET_ATOMS, MyoglobinSystem, build_myoglobin
from .protein import SegmentSpec, build_helical_segment, residue_size
from .small import build_peptide_in_water, build_water_box
from .solvent import (
    co_coords,
    co_topology,
    lattice_points,
    sulfate_coords,
    sulfate_topology,
    water_coords,
    water_topology,
)

__all__ = [
    "build_helical_segment",
    "build_myoglobin",
    "build_peptide_in_water",
    "build_water_box",
    "ChainBuilder",
    "co_coords",
    "co_topology",
    "lattice_points",
    "MyoglobinSystem",
    "myoglobin_system",
    "myoglobin_workload",
    "place_atom",
    "PME_GRID",
    "residue_size",
    "SegmentSpec",
    "sulfate_coords",
    "sulfate_topology",
    "TARGET_ATOMS",
    "water_coords",
    "water_topology",
]
