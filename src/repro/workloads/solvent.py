"""Water, carbon monoxide and sulfate building blocks.

Provides single-molecule topologies plus deterministic placement helpers
(lattice positions, orientation variation) used to assemble the benchmark
system of the paper: myoglobin + CO + 337 waters + one sulfate ion.
"""

from __future__ import annotations

import math

import numpy as np

from ..md.forcefield import ForceField
from ..md.topology import Angle, Atom, Bond, Topology

__all__ = [
    "water_topology",
    "water_coords",
    "co_topology",
    "co_coords",
    "sulfate_topology",
    "sulfate_coords",
    "lattice_points",
]

# TIP3P-like charges
WATER_O_CHARGE = -0.834
WATER_H_CHARGE = 0.417
# CO is almost apolar; tiny dipole
CO_C_CHARGE = 0.021
CO_O_CHARGE = -0.021
# sulfate: net -2
SULFATE_S_CHARGE = 2.0
SULFATE_O_CHARGE = -1.0


def water_topology(segment: str = "SOLV", residue_index: int = 0) -> Topology:
    """One TIP3P-like water (O, H1, H2) with an explicit H-O-H angle."""
    atoms = [
        Atom("OH2", "OT", WATER_O_CHARGE, 15.999, "TIP3", residue_index, segment),
        Atom("H1", "HT", WATER_H_CHARGE, 1.008, "TIP3", residue_index, segment),
        Atom("H2", "HT", WATER_H_CHARGE, 1.008, "TIP3", residue_index, segment),
    ]
    bonds = [Bond(0, 1), Bond(0, 2)]
    return Topology(atoms=atoms, bonds=bonds, angles=[Angle(1, 0, 2)])


def water_coords(
    forcefield: ForceField, origin: np.ndarray, orientation_seed: int = 0
) -> np.ndarray:
    """Coordinates for one water at ``origin``, deterministically oriented."""
    r_oh = forcefield.bond_params("OT", "HT").r0
    theta = forcefield.angle_params("HT", "OT", "HT").theta0
    half = 0.5 * theta
    local = np.array(
        [
            [0.0, 0.0, 0.0],
            [r_oh * math.sin(half), r_oh * math.cos(half), 0.0],
            [-r_oh * math.sin(half), r_oh * math.cos(half), 0.0],
        ]
    )
    rng = np.random.default_rng(orientation_seed)
    rot = _random_rotation(rng)
    return local @ rot.T + np.asarray(origin, dtype=np.float64)


def co_topology(segment: str = "HETERO", residue_index: int = 0) -> Topology:
    """A carbon monoxide molecule."""
    atoms = [
        Atom("C", "CM", CO_C_CHARGE, 12.011, "CO", residue_index, segment),
        Atom("O", "OM", CO_O_CHARGE, 15.999, "CO", residue_index, segment),
    ]
    return Topology(atoms=atoms, bonds=[Bond(0, 1)])


def co_coords(forcefield: ForceField, origin: np.ndarray) -> np.ndarray:
    """Coordinates for one CO molecule with C at ``origin``."""
    r = forcefield.bond_params("CM", "OM").r0
    origin = np.asarray(origin, dtype=np.float64)
    return np.array([origin, origin + np.array([r, 0.0, 0.0])])


def sulfate_topology(segment: str = "HETERO", residue_index: int = 0) -> Topology:
    """A sulfate ion SO4(2-) with tetrahedral connectivity."""
    atoms = [Atom("S", "SUL", SULFATE_S_CHARGE, 32.06, "SO4", residue_index, segment)]
    atoms += [
        Atom(f"O{i + 1}", "OSL", SULFATE_O_CHARGE, 15.999, "SO4", residue_index, segment)
        for i in range(4)
    ]
    bonds = [Bond(0, i) for i in range(1, 5)]
    angles = [Angle(i, 0, j) for i in range(1, 5) for j in range(i + 1, 5)]
    return Topology(atoms=atoms, bonds=bonds, angles=angles)


def sulfate_coords(forcefield: ForceField, origin: np.ndarray) -> np.ndarray:
    """Tetrahedral sulfate geometry centred on the sulfur."""
    r = forcefield.bond_params("SUL", "OSL").r0
    s = r / math.sqrt(3.0)
    directions = np.array(
        [[1, 1, 1], [1, -1, -1], [-1, 1, -1], [-1, -1, 1]], dtype=np.float64
    )
    origin = np.asarray(origin, dtype=np.float64)
    return np.vstack([origin, origin + s * directions])


def lattice_points(
    box_lengths: np.ndarray, spacing: float, margin: float = 0.0
) -> np.ndarray:
    """Regular cubic lattice of candidate positions inside a box.

    Points are at least ``margin`` away from the box faces (useful when the
    consumer does not want wrapped near-duplicates).
    """
    if spacing <= 0:
        raise ValueError("spacing must be positive")
    axes = []
    for length in box_lengths:
        n = max(1, int((length - 2 * margin) // spacing))
        start = 0.5 * (length - (n - 1) * spacing)
        axes.append(start + spacing * np.arange(n))
    gx, gy, gz = np.meshgrid(*axes, indexing="ij")
    return np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1)


def _random_rotation(rng: np.random.Generator) -> np.ndarray:
    """A uniformly random rotation matrix (QR of a Gaussian matrix)."""
    m = rng.normal(size=(3, 3))
    q, r = np.linalg.qr(m)
    q *= np.sign(np.diag(r))
    if np.linalg.det(q) < 0:
        q[:, 0] = -q[:, 0]
    return q
