"""Process-level caches for the expensive benchmark workloads.

Experiment drivers and tests call these instead of the raw builders so
the 3552-atom system is assembled once per process.
"""

from __future__ import annotations

from functools import lru_cache

from ..md.cutoff import CutoffScheme
from ..md.system import MDSystem
from .myoglobin import MyoglobinSystem, build_myoglobin

__all__ = ["myoglobin_workload", "myoglobin_system"]


@lru_cache(maxsize=1)
def myoglobin_workload() -> MyoglobinSystem:
    """The paper's 3552-atom benchmark system (built once per process)."""
    return build_myoglobin()


@lru_cache(maxsize=2)
def myoglobin_system(electrostatics: str = "pme") -> MDSystem:
    """A ready :class:`~repro.md.system.MDSystem` over the benchmark workload.

    ``electrostatics`` is ``"pme"`` (the paper's measured configuration)
    or ``"shift"`` (the classic-only variant of Figure 2, left).
    """
    mg = myoglobin_workload()
    kwargs = {"pme_grid": mg.pme_grid} if electrostatics == "pme" else {}
    return MDSystem(
        mg.topology,
        mg.forcefield,
        mg.box,
        CutoffScheme(r_cut=10.0),
        electrostatics=electrostatics,
        **kwargs,
    )
