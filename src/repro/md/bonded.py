"""Vectorized bonded-energy kernels: bonds, angles, dihedrals, impropers.

Every kernel returns ``(energy, forces)`` where ``forces`` has shape
``(n_atoms, 3)`` and contains only the contribution of that term type;
callers accumulate.  Displacements use minimum-image so the kernels keep
working on wrapped coordinates.

CHARMM functional forms (no factor 1/2 on the harmonic terms):

* bond       ``E = kb (r - r0)^2``
* angle      ``E = ktheta (theta - theta0)^2``
* dihedral   ``E = kchi (1 + cos(n chi - delta))``
* improper   ``E = kpsi (psi - psi0)^2``  (psi measured as a torsion)
"""

from __future__ import annotations

import numpy as np

from .box import PeriodicBox
from .forcefield import ForceField
from .topology import Topology

__all__ = [
    "BondedTables",
    "bond_row_terms",
    "angle_row_terms",
    "dihedral_row_terms",
    "improper_row_terms",
    "bond_energy_forces",
    "angle_energy_forces",
    "dihedral_energy_forces",
    "improper_energy_forces",
    "bonded_energy_forces",
]

_SIN_FLOOR = 1e-8  # guards 1/sin(theta) at collinear geometries


class BondedTables:
    """Pre-extracted parameter arrays for all bonded terms of a topology.

    Building these once at system setup keeps the per-step kernels free of
    Python-level dictionary lookups.
    """

    def __init__(self, topology: Topology, forcefield: ForceField) -> None:
        types = topology.type_names

        self.bond_idx = topology.bond_index_array()
        kb, r0 = [], []
        for b in topology.bonds:
            p = forcefield.bond_params(types[b.i], types[b.j])
            kb.append(p.kb)
            r0.append(p.r0)
        self.bond_kb = np.array(kb, dtype=np.float64)
        self.bond_r0 = np.array(r0, dtype=np.float64)

        self.angle_idx = topology.angle_index_array()
        kt, t0 = [], []
        for a in topology.angles:
            p = forcefield.angle_params(types[a.i], types[a.j], types[a.k])
            kt.append(p.ktheta)
            t0.append(p.theta0)
        self.angle_k = np.array(kt, dtype=np.float64)
        self.angle_t0 = np.array(t0, dtype=np.float64)

        self.dihedral_idx = topology.dihedral_index_array()
        kc, nn, dd = [], [], []
        for d in topology.dihedrals:
            p = forcefield.dihedral_params(types[d.i], types[d.j], types[d.k], types[d.l])
            kc.append(p.kchi)
            nn.append(p.n)
            dd.append(p.delta)
        self.dihedral_k = np.array(kc, dtype=np.float64)
        self.dihedral_n = np.array(nn, dtype=np.float64)
        self.dihedral_delta = np.array(dd, dtype=np.float64)

        self.improper_idx = topology.improper_index_array()
        kp, p0 = [], []
        for im in topology.impropers:
            p = forcefield.improper_params(types[im.i], types[im.j], types[im.k], types[im.l])
            kp.append(p.kpsi)
            p0.append(p.psi0)
        self.improper_k = np.array(kp, dtype=np.float64)
        self.improper_psi0 = np.array(p0, dtype=np.float64)

    @property
    def n_terms(self) -> int:
        """Total number of bonded interaction terms (for the cost model)."""
        return (
            len(self.bond_idx)
            + len(self.angle_idx)
            + len(self.dihedral_idx)
            + len(self.improper_idx)
        )


#: one (column, force-rows) scatter call per entry, in the exact order the
#: kernels issue their ``np.add.at`` calls — sequential accumulation order
#: is part of the bitwise contract the spatial replay engine depends on
ScatterCalls = tuple[tuple[int, np.ndarray], ...]


def bond_row_terms(
    positions: np.ndarray,
    box: PeriodicBox,
    idx: np.ndarray,
    kb: np.ndarray,
    r0: np.ndarray,
) -> tuple[np.ndarray, ScatterCalls]:
    """Per-row bond energies and the ordered force-scatter calls.

    Every returned value is an elementwise function of its own row, so any
    row subset yields bitwise-identical rows — the property the spatial
    engine uses to replay each replicated rank's accumulation exactly.
    """
    dr = box.min_image(positions[idx[:, 0]] - positions[idx[:, 1]])
    r = np.sqrt(np.einsum("ij,ij->i", dr, dr))
    delta = r - r0
    e_rows = kb * delta * delta
    # F_i = -dE/dr * rhat, dE/dr = 2 kb (r - r0)
    coeff = (-2.0 * kb * delta / r)[:, None]
    fij = coeff * dr
    return e_rows, ((0, fij), (1, -fij))


def bond_energy_forces(
    positions: np.ndarray, box: PeriodicBox, tables: BondedTables
) -> tuple[float, np.ndarray]:
    """Harmonic bond energy and forces."""
    forces = np.zeros_like(positions)
    idx = tables.bond_idx
    if len(idx) == 0:
        return 0.0, forces
    e_rows, scatter = bond_row_terms(positions, box, idx, tables.bond_kb, tables.bond_r0)
    energy = float(np.sum(e_rows))
    for col, rows in scatter:
        np.add.at(forces, idx[:, col], rows)
    return energy, forces


def angle_row_terms(
    positions: np.ndarray,
    box: PeriodicBox,
    idx: np.ndarray,
    k: np.ndarray,
    t0: np.ndarray,
) -> tuple[np.ndarray, ScatterCalls]:
    """Per-row angle energies and the ordered force-scatter calls."""
    u = box.min_image(positions[idx[:, 0]] - positions[idx[:, 1]])
    v = box.min_image(positions[idx[:, 2]] - positions[idx[:, 1]])
    nu = np.sqrt(np.einsum("ij,ij->i", u, u))
    nv = np.sqrt(np.einsum("ij,ij->i", v, v))
    uhat = u / nu[:, None]
    vhat = v / nv[:, None]
    cos_t = np.clip(np.einsum("ij,ij->i", uhat, vhat), -1.0, 1.0)
    theta = np.arccos(cos_t)
    sin_t = np.maximum(np.sqrt(1.0 - cos_t * cos_t), _SIN_FLOOR)

    delta = theta - t0
    e_rows = k * delta * delta

    de_dtheta = 2.0 * k * delta
    dth_di = (cos_t[:, None] * uhat - vhat) / (nu * sin_t)[:, None]
    dth_dk = (cos_t[:, None] * vhat - uhat) / (nv * sin_t)[:, None]
    fi = -de_dtheta[:, None] * dth_di
    fk = -de_dtheta[:, None] * dth_dk
    return e_rows, ((0, fi), (2, fk), (1, -(fi + fk)))


def angle_energy_forces(
    positions: np.ndarray, box: PeriodicBox, tables: BondedTables
) -> tuple[float, np.ndarray]:
    """Harmonic angle energy and forces."""
    forces = np.zeros_like(positions)
    idx = tables.angle_idx
    if len(idx) == 0:
        return 0.0, forces
    e_rows, scatter = angle_row_terms(positions, box, idx, tables.angle_k, tables.angle_t0)
    energy = float(np.sum(e_rows))
    for col, rows in scatter:
        np.add.at(forces, idx[:, col], rows)
    return energy, forces


def _cross3(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise cross product for ``(n, 3)`` arrays.

    Same component expressions (multiplies and subtractions) as
    ``np.cross``, so results are bit-identical — this just skips its
    general-shape broadcasting machinery, which dominates at the small
    row counts of bonded tables.
    """
    out = np.empty_like(a)
    out[:, 0] = a[:, 1] * b[:, 2] - a[:, 2] * b[:, 1]
    out[:, 1] = a[:, 2] * b[:, 0] - a[:, 0] * b[:, 2]
    out[:, 2] = a[:, 0] * b[:, 1] - a[:, 1] * b[:, 0]
    return out


def _torsion_geometry(
    positions: np.ndarray, box: PeriodicBox, idx: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Torsion angles and the per-atom gradients d(phi)/dr.

    Returns ``(phi, gi, gj, gk, gl)`` with ``sum(g) = 0`` row-wise
    (Bekker et al. formulation).
    """
    b1 = box.min_image(positions[idx[:, 1]] - positions[idx[:, 0]])
    b2 = box.min_image(positions[idx[:, 2]] - positions[idx[:, 1]])
    b3 = box.min_image(positions[idx[:, 3]] - positions[idx[:, 2]])

    c1 = _cross3(b1, b2)
    c2 = _cross3(b2, b3)
    nb2 = np.sqrt(np.einsum("ij,ij->i", b2, b2))

    x = np.einsum("ij,ij->i", c1, c2)
    y = np.einsum("ij,ij->i", _cross3(c1, c2), b2) / nb2
    phi = np.arctan2(y, x)

    c1_sq = np.maximum(np.einsum("ij,ij->i", c1, c1), _SIN_FLOOR)
    c2_sq = np.maximum(np.einsum("ij,ij->i", c2, c2), _SIN_FLOOR)

    gi = (-nb2 / c1_sq)[:, None] * c1
    gl = (nb2 / c2_sq)[:, None] * c2
    # projections of the outer bonds onto the axis (note the sign: the
    # classic derivation orients b1 from j to i)
    t = (-np.einsum("ij,ij->i", b1, b2) / (nb2 * nb2))[:, None]
    s = (-np.einsum("ij,ij->i", b3, b2) / (nb2 * nb2))[:, None]
    gj = (t - 1.0) * gi - s * gl
    gk = (s - 1.0) * gl - t * gi
    return phi, gi, gj, gk, gl


def dihedral_row_terms(
    positions: np.ndarray,
    box: PeriodicBox,
    idx: np.ndarray,
    k: np.ndarray,
    n: np.ndarray,
    delta_: np.ndarray,
) -> tuple[np.ndarray, ScatterCalls]:
    """Per-row dihedral energies and the ordered force-scatter calls."""
    phi, gi, gj, gk, gl = _torsion_geometry(positions, box, idx)
    arg = n * phi - delta_
    e_rows = k * (1.0 + np.cos(arg))
    de_dphi = -k * n * np.sin(arg)
    return e_rows, tuple(
        (col, -de_dphi[:, None] * grad)
        for col, grad in zip(range(4), (gi, gj, gk, gl))
    )


def dihedral_energy_forces(
    positions: np.ndarray, box: PeriodicBox, tables: BondedTables
) -> tuple[float, np.ndarray]:
    """Cosine proper-dihedral energy and forces."""
    forces = np.zeros_like(positions)
    idx = tables.dihedral_idx
    if len(idx) == 0:
        return 0.0, forces
    e_rows, scatter = dihedral_row_terms(
        positions, box, idx, tables.dihedral_k, tables.dihedral_n, tables.dihedral_delta
    )
    energy = float(np.sum(e_rows))
    for col, rows in scatter:
        np.add.at(forces, idx[:, col], rows)
    return energy, forces


def improper_row_terms(
    positions: np.ndarray,
    box: PeriodicBox,
    idx: np.ndarray,
    k: np.ndarray,
    psi0: np.ndarray,
) -> tuple[np.ndarray, ScatterCalls]:
    """Per-row improper energies and the ordered force-scatter calls."""
    psi, gi, gj, gk, gl = _torsion_geometry(positions, box, idx)
    # wrap psi - psi0 into (-pi, pi] so the harmonic well is periodic
    delta = psi - psi0
    delta = delta - 2.0 * np.pi * np.round(delta / (2.0 * np.pi))
    e_rows = k * delta * delta
    de_dpsi = 2.0 * k * delta
    return e_rows, tuple(
        (col, -de_dpsi[:, None] * grad)
        for col, grad in zip(range(4), (gi, gj, gk, gl))
    )


def improper_energy_forces(
    positions: np.ndarray, box: PeriodicBox, tables: BondedTables
) -> tuple[float, np.ndarray]:
    """Harmonic improper-torsion energy and forces."""
    forces = np.zeros_like(positions)
    idx = tables.improper_idx
    if len(idx) == 0:
        return 0.0, forces
    e_rows, scatter = improper_row_terms(
        positions, box, idx, tables.improper_k, tables.improper_psi0
    )
    energy = float(np.sum(e_rows))
    for col, rows in scatter:
        np.add.at(forces, idx[:, col], rows)
    return energy, forces


def bonded_energy_forces(
    positions: np.ndarray, box: PeriodicBox, tables: BondedTables
) -> tuple[dict[str, float], np.ndarray]:
    """All bonded terms at once.

    Returns
    -------
    (energies, forces):
        ``energies`` maps term name (``"bond"``, ``"angle"``, ``"dihedral"``,
        ``"improper"``) to kcal/mol; ``forces`` is the summed contribution.
    """
    e_bond, f = bond_energy_forces(positions, box, tables)
    e_angle, fa = angle_energy_forces(positions, box, tables)
    e_dih, fd = dihedral_energy_forces(positions, box, tables)
    e_imp, fi = improper_energy_forces(positions, box, tables)
    f += fa
    f += fd
    f += fi
    return (
        {"bond": e_bond, "angle": e_angle, "dihedral": e_dih, "improper": e_imp},
        f,
    )
