"""Thermostats: velocity rescaling and Berendsen weak coupling.

Used by the examples to equilibrate the synthetic systems before NVE
measurement runs.  Both act on velocities in place-free style (they
return the new velocities).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .observables import temperature

__all__ = ["VelocityRescale", "BerendsenThermostat"]


@dataclass(frozen=True)
class VelocityRescale:
    """Hard isokinetic rescaling to the target temperature.

    Simple and aggressive: multiply all velocities by
    ``sqrt(T_target / T_now)`` every time it is applied.

    ``n_constraints`` must match the holonomic constraints acting on the
    system, or the measured temperature (and hence the reached
    temperature) is biased by the ratio of apparent to true degrees of
    freedom.
    """

    target: float
    n_constraints: int = 0

    def __post_init__(self) -> None:
        if self.target <= 0:
            raise ValueError("target temperature must be positive")
        if self.n_constraints < 0:
            raise ValueError("n_constraints must be non-negative")

    def apply(self, masses: np.ndarray, velocities: np.ndarray) -> np.ndarray:
        """Return velocities rescaled exactly onto the target temperature."""
        t_now = temperature(masses, velocities, n_constraints=self.n_constraints)
        if t_now <= 0:
            return velocities
        return velocities * np.sqrt(self.target / t_now)


@dataclass(frozen=True)
class BerendsenThermostat:
    """Berendsen weak coupling: exponential relaxation towards the target.

    ``lambda^2 = 1 + (dt / tau) * (T_target / T_now - 1)``

    Parameters
    ----------
    target:
        Bath temperature (K).
    tau:
        Coupling time constant (ps); larger = gentler.
    """

    target: float
    tau: float = 0.1
    n_constraints: int = 0

    def __post_init__(self) -> None:
        if self.target <= 0:
            raise ValueError("target temperature must be positive")
        if self.tau <= 0:
            raise ValueError("tau must be positive")
        if self.n_constraints < 0:
            raise ValueError("n_constraints must be non-negative")

    def apply(
        self, masses: np.ndarray, velocities: np.ndarray, dt: float
    ) -> np.ndarray:
        """Return velocities after one weak-coupling relaxation step."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        t_now = temperature(masses, velocities, n_constraints=self.n_constraints)
        if t_now <= 0:
            return velocities
        lam2 = 1.0 + (dt / self.tau) * (self.target / t_now - 1.0)
        lam2 = max(lam2, 0.0)
        return velocities * np.sqrt(lam2)
