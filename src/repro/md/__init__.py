"""CHARMM-style molecular dynamics engine (the paper's application substrate).

Public surface:

* :class:`~repro.md.topology.Topology` and friends — molecular structure.
* :func:`~repro.md.forcefield.default_forcefield` — parameter tables.
* :class:`~repro.md.box.PeriodicBox`, :class:`~repro.md.cutoff.CutoffScheme`.
* :class:`~repro.md.system.MDSystem` — energy/force evaluators with the
  classic/PME split the paper characterizes.
* :class:`~repro.md.integrator.VelocityVerlet` — dynamics.
"""

from .bonded import BondedTables, bonded_energy_forces
from .box import PeriodicBox
from .constraints import (
    ConstrainedVerlet,
    ConstraintSet,
    hydrogen_bond_constraints,
    rigid_water_constraints,
)
from .cutoff import CutoffScheme, shift_function, switch_function
from .energy import EnergyBreakdown
from .forcefield import ForceField, default_forcefield
from .integrator import MDState, VelocityVerlet, kinetic_energy, maxwell_boltzmann_velocities
from .io import read_pdb_coordinates, read_xyz, write_pdb, write_xyz
from .neighborlist import NeighborList, brute_force_pairs
from .nonbonded import NonbondedKernel, PairEnergies
from .observables import (
    center_of_mass,
    dipole_moment,
    mean_squared_displacement,
    radius_of_gyration,
    rmsd,
    temperature,
)
from .system import ElectrostaticsModel, MDSystem
from .thermostats import BerendsenThermostat, VelocityRescale
from .topology import Angle, Atom, Bond, Dihedral, Improper, Topology

__all__ = [
    "Angle",
    "Atom",
    "BerendsenThermostat",
    "Bond",
    "center_of_mass",
    "ConstrainedVerlet",
    "ConstraintSet",
    "dipole_moment",
    "hydrogen_bond_constraints",
    "rigid_water_constraints",
    "mean_squared_displacement",
    "radius_of_gyration",
    "read_pdb_coordinates",
    "read_xyz",
    "rmsd",
    "temperature",
    "VelocityRescale",
    "write_pdb",
    "write_xyz",
    "BondedTables",
    "bonded_energy_forces",
    "brute_force_pairs",
    "CutoffScheme",
    "Dihedral",
    "ElectrostaticsModel",
    "EnergyBreakdown",
    "ForceField",
    "default_forcefield",
    "Improper",
    "kinetic_energy",
    "maxwell_boltzmann_velocities",
    "MDState",
    "MDSystem",
    "NeighborList",
    "NonbondedKernel",
    "PairEnergies",
    "PeriodicBox",
    "shift_function",
    "switch_function",
    "Topology",
    "VelocityVerlet",
]
