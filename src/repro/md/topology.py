"""Molecular topology: atoms, bonded connectivity and exclusion lists.

A :class:`Topology` is the static description of a molecular system — which
atoms exist, their types, charges and masses, and how they are connected.
It deliberately mirrors the information in a CHARMM PSF file, because the
parallel decomposition in :mod:`repro.parallel` distributes work over the
entries of these tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "Atom",
    "Bond",
    "Angle",
    "Dihedral",
    "Improper",
    "Topology",
    "derive_angles",
    "derive_dihedrals",
]


@dataclass(frozen=True)
class Atom:
    """One atom record.

    Attributes
    ----------
    name:
        Atom name within its residue (e.g. ``"CA"``).
    type_name:
        Force-field atom type (key into :class:`repro.md.forcefield.ForceField`).
    charge:
        Partial charge in units of the elementary charge.
    mass:
        Mass in amu.
    residue:
        Residue name (e.g. ``"ALA"``, ``"TIP3"``).
    residue_index:
        0-based index of the residue the atom belongs to.
    segment:
        Segment identifier (``"PROT"``, ``"SOLV"``, ...).
    """

    name: str
    type_name: str
    charge: float
    mass: float
    residue: str = "UNK"
    residue_index: int = 0
    segment: str = "MAIN"


@dataclass(frozen=True)
class Bond:
    """Harmonic bond between atoms ``i`` and ``j``."""

    i: int
    j: int


@dataclass(frozen=True)
class Angle:
    """Harmonic angle ``i - j - k`` centred on ``j``."""

    i: int
    j: int
    k: int


@dataclass(frozen=True)
class Dihedral:
    """Proper torsion ``i - j - k - l`` about the ``j - k`` bond."""

    i: int
    j: int
    k: int
    l: int


@dataclass(frozen=True)
class Improper:
    """Improper torsion keeping ``i`` in the plane of ``j, k, l``."""

    i: int
    j: int
    k: int
    l: int


@dataclass
class Topology:
    """Complete bonded description of a molecular system.

    The constructor performs index validation; use :meth:`validate` after
    mutating the tables in place.
    """

    atoms: list[Atom] = field(default_factory=list)
    bonds: list[Bond] = field(default_factory=list)
    angles: list[Angle] = field(default_factory=list)
    dihedrals: list[Dihedral] = field(default_factory=list)
    impropers: list[Improper] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def n_atoms(self) -> int:
        return len(self.atoms)

    @property
    def charges(self) -> np.ndarray:
        """Partial charges as a float64 array of shape (n_atoms,)."""
        return np.array([a.charge for a in self.atoms], dtype=np.float64)

    @property
    def masses(self) -> np.ndarray:
        """Masses as a float64 array of shape (n_atoms,)."""
        return np.array([a.mass for a in self.atoms], dtype=np.float64)

    @property
    def type_names(self) -> list[str]:
        return [a.type_name for a in self.atoms]

    def total_charge(self) -> float:
        return float(sum(a.charge for a in self.atoms))

    # ------------------------------------------------------------------
    # validation and merging
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range or degenerate terms."""
        n = len(self.atoms)

        def check(indices: Iterable[int], what: str) -> None:
            seen = set()
            for idx in indices:
                if not 0 <= idx < n:
                    raise ValueError(f"{what}: atom index {idx} out of range [0, {n})")
                if idx in seen:
                    raise ValueError(f"{what}: repeated atom index {idx}")
                seen.add(idx)

        for b in self.bonds:
            check((b.i, b.j), f"bond {b}")
        for a in self.angles:
            check((a.i, a.j, a.k), f"angle {a}")
        for d in self.dihedrals:
            check((d.i, d.j, d.k, d.l), f"dihedral {d}")
        for im in self.impropers:
            check((im.i, im.j, im.k, im.l), f"improper {im}")

    def merge(self, other: "Topology") -> "Topology":
        """Concatenate two topologies, re-indexing the second one."""
        return Topology.concat([self, other])

    @classmethod
    def concat(cls, parts: Sequence["Topology"]) -> "Topology":
        """Concatenate many topologies in one pass (linear, not quadratic)."""
        atoms: list[Atom] = []
        bonds: list[Bond] = []
        angles: list[Angle] = []
        dihedrals: list[Dihedral] = []
        impropers: list[Improper] = []
        offset = 0
        res_offset = 0
        for part in parts:
            atoms.extend(
                Atom(
                    name=a.name,
                    type_name=a.type_name,
                    charge=a.charge,
                    mass=a.mass,
                    residue=a.residue,
                    residue_index=a.residue_index + res_offset,
                    segment=a.segment,
                )
                for a in part.atoms
            )
            bonds.extend(Bond(b.i + offset, b.j + offset) for b in part.bonds)
            angles.extend(
                Angle(a.i + offset, a.j + offset, a.k + offset) for a in part.angles
            )
            dihedrals.extend(
                Dihedral(d.i + offset, d.j + offset, d.k + offset, d.l + offset)
                for d in part.dihedrals
            )
            impropers.extend(
                Improper(i.i + offset, i.j + offset, i.k + offset, i.l + offset)
                for i in part.impropers
            )
            offset += part.n_atoms
            res_offset += 1 + max((a.residue_index for a in part.atoms), default=-1)
        merged = cls.__new__(cls)
        merged.atoms = atoms
        merged.bonds = bonds
        merged.angles = angles
        merged.dihedrals = dihedrals
        merged.impropers = impropers
        merged.validate()
        return merged

    # ------------------------------------------------------------------
    # exclusions
    # ------------------------------------------------------------------
    def bonded_neighbours(self) -> list[set[int]]:
        """Adjacency sets implied by the bond table."""
        adj: list[set[int]] = [set() for _ in range(self.n_atoms)]
        for b in self.bonds:
            adj[b.i].add(b.j)
            adj[b.j].add(b.i)
        return adj

    def exclusion_pairs(self, max_separation: int = 3) -> np.ndarray:
        """Pairs (i < j) within ``max_separation`` bonds of each other.

        CHARMM excludes 1-2 and 1-3 interactions and scales 1-4; this engine
        follows the common simplification of excluding 1-2, 1-3 **and** 1-4
        (``max_separation=3``) outright, which keeps the workload shape
        identical while avoiding a second scaled non-bonded pass.

        Returns
        -------
        ndarray of shape (n_excl, 2), int64, lexicographically sorted.
        """
        if max_separation < 1:
            raise ValueError("max_separation must be >= 1")
        adj = self.bonded_neighbours()
        pairs: set[tuple[int, int]] = set()
        for start in range(self.n_atoms):
            # breadth-first search out to max_separation bonds
            frontier = {start}
            visited = {start}
            for _ in range(max_separation):
                nxt: set[int] = set()
                for u in frontier:
                    nxt |= adj[u] - visited
                visited |= nxt
                frontier = nxt
            for other in visited - {start}:
                pairs.add((min(start, other), max(start, other)))
        if not pairs:
            return np.empty((0, 2), dtype=np.int64)
        arr = np.array(sorted(pairs), dtype=np.int64)
        return arr

    # ------------------------------------------------------------------
    # term tables as arrays (what the vectorized kernels consume)
    # ------------------------------------------------------------------
    def bond_index_array(self) -> np.ndarray:
        return _index_array([(b.i, b.j) for b in self.bonds], 2)

    def angle_index_array(self) -> np.ndarray:
        return _index_array([(a.i, a.j, a.k) for a in self.angles], 3)

    def dihedral_index_array(self) -> np.ndarray:
        return _index_array([(d.i, d.j, d.k, d.l) for d in self.dihedrals], 4)

    def improper_index_array(self) -> np.ndarray:
        return _index_array([(i.i, i.j, i.k, i.l) for i in self.impropers], 4)


def _index_array(rows: Sequence[tuple[int, ...]], width: int) -> np.ndarray:
    if not rows:
        return np.empty((0, width), dtype=np.int64)
    return np.array(rows, dtype=np.int64)


def derive_angles(bonds: Sequence[Bond], n_atoms: int) -> list[Angle]:
    """All angle terms implied by the bond graph (every i-j-k path).

    This matches how CHARMM's ``AUTOGENERATE ANGLES`` fills the angle
    table from connectivity.
    """
    adj: list[list[int]] = [[] for _ in range(n_atoms)]
    for b in bonds:
        adj[b.i].append(b.j)
        adj[b.j].append(b.i)
    angles: list[Angle] = []
    for j in range(n_atoms):
        nbrs = sorted(adj[j])
        for a in range(len(nbrs)):
            for b in range(a + 1, len(nbrs)):
                angles.append(Angle(nbrs[a], j, nbrs[b]))
    return angles


def derive_dihedrals(bonds: Sequence[Bond], n_atoms: int) -> list[Dihedral]:
    """All proper torsions implied by the bond graph (every i-j-k-l path).

    Matches CHARMM's ``AUTOGENERATE DIHEDRALS``: one term per distinct
    four-atom path through a central bond, excluding three-membered rings.
    """
    adj: list[list[int]] = [[] for _ in range(n_atoms)]
    for b in bonds:
        adj[b.i].append(b.j)
        adj[b.j].append(b.i)
    dihedrals: list[Dihedral] = []
    for b in bonds:
        j, k = (b.i, b.j) if b.i < b.j else (b.j, b.i)
        for i in sorted(adj[j]):
            if i == k:
                continue
            for l in sorted(adj[k]):
                if l == j or l == i:
                    continue
                dihedrals.append(Dihedral(i, j, k, l))
    return dihedrals
