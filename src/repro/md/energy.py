"""Energy bookkeeping: the classic / PME split the paper measures.

:class:`EnergyBreakdown` mirrors Figure 2 of the paper: the *classic*
component holds every term evaluated in the time domain (bonded terms plus
cutoff non-bonded), the *PME* component holds the frequency-domain terms
(reciprocal sum, Gaussian self term, exclusion correction).
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["EnergyBreakdown"]


@dataclass(frozen=True)
class EnergyBreakdown:
    """All energy components of one evaluation, in kcal/mol."""

    bond: float = 0.0
    angle: float = 0.0
    dihedral: float = 0.0
    improper: float = 0.0
    lj: float = 0.0
    elec_direct: float = 0.0
    pme_reciprocal: float = 0.0
    pme_self: float = 0.0
    pme_exclusion: float = 0.0

    @property
    def bonded(self) -> float:
        return self.bond + self.angle + self.dihedral + self.improper

    @property
    def classic_total(self) -> float:
        """Time-domain component (Figure 2's 'classic routine')."""
        return self.bonded + self.lj + self.elec_direct

    @property
    def pme_total(self) -> float:
        """Frequency-domain component (Figure 2's 'PME routine')."""
        return self.pme_reciprocal + self.pme_self + self.pme_exclusion

    @property
    def electrostatic(self) -> float:
        """Full electrostatic energy (direct + reciprocal + self + exclusion)."""
        return self.elec_direct + self.pme_total

    @property
    def total(self) -> float:
        return self.classic_total + self.pme_total

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def as_dict(self) -> dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}
