"""Physical units and constants for the MD engine.

The engine works in the AKMA-like unit system used by CHARMM:

========  =======================
quantity  unit
========  =======================
length    angstrom (A)
energy    kcal/mol
mass      atomic mass unit (amu)
charge    elementary charge (e)
time      picosecond (ps)
========  =======================

Newton's second law in these units needs a conversion factor because
``kcal/mol / (A * amu)`` is not ``A/ps^2``; the factor is
:data:`ACCEL_CONVERT`.
"""

from __future__ import annotations

import math

#: Coulomb constant in kcal*A/(mol*e^2).  CHARMM's ``CCELEC`` value.
COULOMB_CONSTANT: float = 332.0716

#: Boltzmann constant in kcal/(mol*K).
BOLTZMANN_KCAL: float = 0.001987204259

#: Conversion from (kcal/mol/A)/amu to A/ps^2.
#:
#: 1 kcal/mol = 4184 J/mol; dividing by Avogadro's number, an amu and an
#: angstrom and rescaling seconds to picoseconds gives exactly
#: ``4184 * 1e-4 = 418.4``.
ACCEL_CONVERT: float = 418.4

#: Convenient alias used by the integrator: kinetic energy prefactor so that
#: ``0.5 * m * v**2 / KINETIC_CONVERT`` is in kcal/mol when ``v`` is in A/ps.
KINETIC_CONVERT: float = ACCEL_CONVERT

#: Degrees-to-radians multiplier.
DEG2RAD: float = math.pi / 180.0


def kinetic_energy_to_kcal(mass_amu: float, speed_a_per_ps: float) -> float:
    """Kinetic energy of a particle in kcal/mol.

    Parameters
    ----------
    mass_amu:
        Particle mass in amu.
    speed_a_per_ps:
        Speed in angstrom per picosecond.
    """
    return 0.5 * mass_amu * speed_a_per_ps**2 / KINETIC_CONVERT


def temperature_from_kinetic(kinetic_kcal: float, n_dof: int) -> float:
    """Instantaneous temperature (K) from total kinetic energy.

    Parameters
    ----------
    kinetic_kcal:
        Total kinetic energy in kcal/mol.
    n_dof:
        Number of kinetic degrees of freedom (3N minus constraints).
    """
    if n_dof <= 0:
        raise ValueError(f"n_dof must be positive, got {n_dof}")
    return 2.0 * kinetic_kcal / (n_dof * BOLTZMANN_KCAL)


def thermal_speed(mass_amu: float, temperature_k: float) -> float:
    """RMS speed (A/ps) of a particle of ``mass_amu`` at ``temperature_k``.

    Used to draw Maxwell-Boltzmann initial velocities.
    """
    if mass_amu <= 0.0:
        raise ValueError(f"mass must be positive, got {mass_amu}")
    if temperature_k < 0.0:
        raise ValueError(f"temperature must be non-negative, got {temperature_k}")
    return math.sqrt(3.0 * BOLTZMANN_KCAL * temperature_k * KINETIC_CONVERT / mass_amu)
