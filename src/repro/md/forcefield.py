"""Force-field parameter tables.

A deliberately small, self-contained parameter set in the spirit of the
CHARMM all-atom force field: harmonic bonds and angles, cosine dihedrals,
harmonic impropers and 12-6 Lennard-Jones non-bonded parameters with
Lorentz-Berthelot combination.

The numerical values are CHARMM-like (same orders of magnitude and
functional forms) but trimmed to the atom types the synthetic workloads in
:mod:`repro.workloads` emit.  The engine validates at system-build time that
every type referenced by a topology has parameters, so extending the tables
is a pure data change.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "LJParams",
    "BondParams",
    "AngleParams",
    "DihedralParams",
    "ImproperParams",
    "ForceField",
    "default_forcefield",
]


@dataclass(frozen=True)
class LJParams:
    """Lennard-Jones well depth (kcal/mol) and Rmin/2 (A), CHARMM convention."""

    epsilon: float
    rmin_half: float

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if self.rmin_half <= 0:
            raise ValueError("rmin_half must be positive")


@dataclass(frozen=True)
class BondParams:
    """Harmonic bond: ``E = kb * (r - r0)**2`` (CHARMM convention, no 1/2)."""

    kb: float
    r0: float


@dataclass(frozen=True)
class AngleParams:
    """Harmonic angle: ``E = ktheta * (theta - theta0)**2``, theta0 in radians."""

    ktheta: float
    theta0: float


@dataclass(frozen=True)
class DihedralParams:
    """Cosine dihedral: ``E = kchi * (1 + cos(n*chi - delta))``, delta in radians."""

    kchi: float
    n: int
    delta: float

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("multiplicity n must be >= 1")


@dataclass(frozen=True)
class ImproperParams:
    """Harmonic improper: ``E = kpsi * (psi - psi0)**2``, psi0 in radians."""

    kpsi: float
    psi0: float


def _key2(a: str, b: str) -> tuple[str, str]:
    return (a, b) if a <= b else (b, a)


def _key3(a: str, b: str, c: str) -> tuple[str, str, str]:
    return (a, b, c) if a <= c else (c, b, a)


def _key4(a: str, b: str, c: str, d: str) -> tuple[str, str, str, str]:
    return (a, b, c, d) if (b, a) <= (c, d) else (d, c, b, a)


@dataclass
class ForceField:
    """Parameter lookup tables keyed by atom type names.

    Bond/angle/dihedral/improper keys are canonicalized so that the reversed
    type sequence maps to the same parameters.  Dihedral and improper lookups
    fall back to a wildcard entry keyed ``("X", b, c, "X")`` when the exact
    quadruple is absent, mirroring CHARMM's ``X`` wildcards.
    """

    lj: dict[str, LJParams] = field(default_factory=dict)
    bonds: dict[tuple[str, str], BondParams] = field(default_factory=dict)
    angles: dict[tuple[str, str, str], AngleParams] = field(default_factory=dict)
    dihedrals: dict[tuple[str, str, str, str], DihedralParams] = field(default_factory=dict)
    impropers: dict[tuple[str, str, str, str], ImproperParams] = field(default_factory=dict)

    # -- registration ---------------------------------------------------
    def add_lj(self, type_name: str, epsilon: float, rmin_half: float) -> None:
        self.lj[type_name] = LJParams(epsilon, rmin_half)

    def add_bond(self, a: str, b: str, kb: float, r0: float) -> None:
        self.bonds[_key2(a, b)] = BondParams(kb, r0)

    def add_angle(self, a: str, b: str, c: str, ktheta: float, theta0: float) -> None:
        self.angles[_key3(a, b, c)] = AngleParams(ktheta, theta0)

    def add_dihedral(
        self, a: str, b: str, c: str, d: str, kchi: float, n: int, delta: float
    ) -> None:
        self.dihedrals[_key4(a, b, c, d)] = DihedralParams(kchi, n, delta)

    def add_improper(
        self, a: str, b: str, c: str, d: str, kpsi: float, psi0: float
    ) -> None:
        self.impropers[_key4(a, b, c, d)] = ImproperParams(kpsi, psi0)

    # -- lookup ----------------------------------------------------------
    def lj_params(self, type_name: str) -> LJParams:
        try:
            return self.lj[type_name]
        except KeyError:
            raise KeyError(f"no Lennard-Jones parameters for atom type {type_name!r}") from None

    def bond_params(self, a: str, b: str) -> BondParams:
        try:
            return self.bonds[_key2(a, b)]
        except KeyError:
            raise KeyError(f"no bond parameters for types ({a!r}, {b!r})") from None

    def angle_params(self, a: str, b: str, c: str) -> AngleParams:
        try:
            return self.angles[_key3(a, b, c)]
        except KeyError:
            raise KeyError(f"no angle parameters for types ({a!r}, {b!r}, {c!r})") from None

    def dihedral_params(self, a: str, b: str, c: str, d: str) -> DihedralParams:
        key = _key4(a, b, c, d)
        if key in self.dihedrals:
            return self.dihedrals[key]
        wild = _key4("X", b, c, "X")
        if wild in self.dihedrals:
            return self.dihedrals[wild]
        raise KeyError(f"no dihedral parameters for types ({a!r}, {b!r}, {c!r}, {d!r})")

    def improper_params(self, a: str, b: str, c: str, d: str) -> ImproperParams:
        key = _key4(a, b, c, d)
        if key in self.impropers:
            return self.impropers[key]
        wild = _key4("X", b, c, "X")
        if wild in self.impropers:
            return self.impropers[wild]
        raise KeyError(f"no improper parameters for types ({a!r}, {b!r}, {c!r}, {d!r})")

    # -- vectorized extraction -------------------------------------------
    def lj_tables(self, type_names: list[str]) -> tuple[np.ndarray, np.ndarray]:
        """Per-atom (epsilon, rmin_half) arrays for the given atom types."""
        eps = np.empty(len(type_names), dtype=np.float64)
        rmh = np.empty(len(type_names), dtype=np.float64)
        for i, t in enumerate(type_names):
            p = self.lj_params(t)
            eps[i] = p.epsilon
            rmh[i] = p.rmin_half
        return eps, rmh


def default_forcefield() -> ForceField:
    """The parameter set used by the built-in workloads.

    Atom types
    ----------
    ``NH1``  backbone amide nitrogen          ``H``    polar hydrogen
    ``CT1``  alpha carbon (CH1)               ``HB``   aliphatic hydrogen
    ``CT2``  aliphatic CH2 carbon             ``HA``   nonpolar hydrogen
    ``CT3``  aliphatic CH3 carbon             ``C``    carbonyl carbon
    ``O``    carbonyl oxygen                  ``OT``   water oxygen (TIP3-like)
    ``HT``   water hydrogen                   ``CM``   carbon monoxide C
    ``OM``   carbon monoxide O                ``SUL``  sulfate S
    ``OSL``  sulfate O
    """
    ff = ForceField()

    # Lennard-Jones (epsilon kcal/mol, Rmin/2 A) — CHARMM22-like magnitudes.
    ff.add_lj("NH1", 0.20, 1.85)
    ff.add_lj("H", 0.046, 0.2245)
    ff.add_lj("CT1", 0.02, 2.275)
    ff.add_lj("CT2", 0.055, 2.175)
    ff.add_lj("CT3", 0.08, 2.06)
    ff.add_lj("HB", 0.022, 1.32)
    ff.add_lj("HA", 0.022, 1.32)
    ff.add_lj("C", 0.11, 2.0)
    ff.add_lj("O", 0.12, 1.7)
    ff.add_lj("OT", 0.1521, 1.7682)
    ff.add_lj("HT", 0.046, 0.2245)
    ff.add_lj("CM", 0.11, 2.1)
    ff.add_lj("OM", 0.12, 1.7)
    ff.add_lj("SUL", 0.47, 2.2)
    ff.add_lj("OSL", 0.12, 1.7)

    # Bonds (kb kcal/mol/A^2, r0 A)
    ff.add_bond("NH1", "H", 440.0, 0.997)
    ff.add_bond("NH1", "CT1", 320.0, 1.434)
    ff.add_bond("CT1", "C", 250.0, 1.490)
    ff.add_bond("C", "O", 620.0, 1.230)
    ff.add_bond("C", "NH1", 370.0, 1.345)
    ff.add_bond("CT1", "HB", 330.0, 1.080)
    ff.add_bond("CT1", "CT2", 222.5, 1.538)
    ff.add_bond("CT2", "HA", 309.0, 1.111)
    ff.add_bond("CT2", "CT2", 222.5, 1.530)
    ff.add_bond("CT2", "CT3", 222.5, 1.528)
    ff.add_bond("CT3", "HA", 322.0, 1.111)
    ff.add_bond("OT", "HT", 450.0, 0.9572)
    ff.add_bond("CM", "OM", 1115.0, 1.128)
    ff.add_bond("SUL", "OSL", 540.0, 1.448)

    # Angles (ktheta kcal/mol/rad^2, theta0 rad)
    rad = np.pi / 180.0
    ff.add_angle("H", "NH1", "CT1", 35.0, 117.0 * rad)
    ff.add_angle("NH1", "CT1", "C", 50.0, 107.0 * rad)
    ff.add_angle("CT1", "C", "O", 80.0, 121.0 * rad)
    ff.add_angle("CT1", "C", "NH1", 80.0, 116.5 * rad)
    ff.add_angle("C", "NH1", "CT1", 50.0, 120.0 * rad)
    ff.add_angle("C", "NH1", "H", 34.0, 123.0 * rad)
    ff.add_angle("O", "C", "NH1", 80.0, 122.5 * rad)
    ff.add_angle("NH1", "CT1", "HB", 48.0, 108.0 * rad)
    ff.add_angle("HB", "CT1", "C", 50.0, 109.5 * rad)
    ff.add_angle("NH1", "CT1", "CT2", 70.0, 113.5 * rad)
    ff.add_angle("CT2", "CT1", "C", 52.0, 108.0 * rad)
    ff.add_angle("HB", "CT1", "CT2", 35.0, 111.0 * rad)
    ff.add_angle("CT1", "CT2", "HA", 33.4, 110.1 * rad)
    ff.add_angle("CT1", "CT2", "CT2", 58.35, 113.5 * rad)
    ff.add_angle("CT1", "CT2", "CT3", 58.35, 113.5 * rad)
    ff.add_angle("HA", "CT2", "HA", 35.5, 109.0 * rad)
    ff.add_angle("CT2", "CT2", "HA", 26.5, 110.1 * rad)
    ff.add_angle("CT2", "CT2", "CT3", 58.0, 115.0 * rad)
    ff.add_angle("CT2", "CT3", "HA", 34.6, 110.1 * rad)
    ff.add_angle("CT3", "CT2", "HA", 34.6, 110.1 * rad)
    ff.add_angle("HA", "CT3", "HA", 35.5, 108.4 * rad)
    ff.add_angle("CT2", "CT2", "CT2", 58.35, 113.6 * rad)
    ff.add_angle("HT", "OT", "HT", 55.0, 104.52 * rad)
    ff.add_angle("H", "NH1", "H", 35.0, 120.0 * rad)  # N-terminus
    ff.add_angle("O", "C", "O", 100.0, 118.0 * rad)  # C-terminus carboxylate
    ff.add_angle("OSL", "SUL", "OSL", 85.0, 109.47 * rad)

    # Dihedrals (kchi kcal/mol, n, delta rad) — wildcard backbone terms.
    ff.add_dihedral("X", "CT1", "C", "X", 0.0, 1, 0.0)
    ff.add_dihedral("X", "C", "NH1", "X", 2.5, 2, 180.0 * rad)
    ff.add_dihedral("X", "NH1", "CT1", "X", 0.0, 1, 0.0)
    ff.add_dihedral("X", "CT1", "CT2", "X", 0.20, 3, 0.0)
    ff.add_dihedral("X", "CT2", "CT2", "X", 0.19, 3, 0.0)
    ff.add_dihedral("X", "CT2", "CT3", "X", 0.16, 3, 0.0)

    # Impropers — keep the peptide carbonyl planar.
    ff.add_improper("O", "CT1", "NH1", "C", 120.0, 0.0)

    return ff
