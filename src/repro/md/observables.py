"""Trajectory observables: temperature, structure and transport metrics.

Small, dependency-free analysis utilities a downstream MD user expects:
instantaneous temperature, radius of gyration, RMSD (with optimal
superposition), mean-squared displacement and a velocity distribution
check.  All pure functions over numpy arrays.
"""

from __future__ import annotations

import numpy as np

from .box import PeriodicBox
from .units import BOLTZMANN_KCAL, KINETIC_CONVERT

__all__ = [
    "temperature",
    "radius_of_gyration",
    "center_of_mass",
    "rmsd",
    "kabsch_rotation",
    "mean_squared_displacement",
    "dipole_moment",
]


def temperature(masses: np.ndarray, velocities: np.ndarray, n_constraints: int = 0) -> float:
    """Instantaneous kinetic temperature in kelvin.

    ``n_constraints`` reduces the degrees of freedom (3 are always removed
    for the conserved centre-of-mass momentum).
    """
    n_dof = 3 * len(masses) - 3 - n_constraints
    if n_dof <= 0:
        raise ValueError("no kinetic degrees of freedom")
    ke = 0.5 * float(np.sum(masses[:, None] * velocities**2)) / KINETIC_CONVERT
    return 2.0 * ke / (n_dof * BOLTZMANN_KCAL)


def center_of_mass(masses: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """Mass-weighted centroid."""
    return (masses @ positions) / float(np.sum(masses))


def radius_of_gyration(masses: np.ndarray, positions: np.ndarray) -> float:
    """Mass-weighted radius of gyration (A)."""
    com = center_of_mass(masses, positions)
    d2 = np.einsum("ij,ij->i", positions - com, positions - com)
    return float(np.sqrt((masses @ d2) / np.sum(masses)))


def kabsch_rotation(moving: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Optimal rotation matrix aligning centred ``moving`` onto ``reference``.

    Both inputs must already have zero centroid (Kabsch algorithm).
    """
    h = moving.T @ reference
    u, _s, vt = np.linalg.svd(h)
    d = np.sign(np.linalg.det(u @ vt))
    correction = np.diag([1.0, 1.0, d])
    return u @ correction @ vt


def rmsd(
    positions: np.ndarray, reference: np.ndarray, superpose: bool = True
) -> float:
    """Root-mean-square deviation between two conformations (A).

    With ``superpose`` (default) the translation and rotation are removed
    first (Kabsch superposition, equal weights).
    """
    if positions.shape != reference.shape:
        raise ValueError("conformations must have the same shape")
    a = positions - positions.mean(axis=0)
    b = reference - reference.mean(axis=0)
    if superpose:
        a = a @ kabsch_rotation(a, b)
    return float(np.sqrt(np.mean(np.sum((a - b) ** 2, axis=1))))


def mean_squared_displacement(
    trajectory: np.ndarray, box: PeriodicBox | None = None
) -> np.ndarray:
    """MSD relative to the first frame, per frame.

    Parameters
    ----------
    trajectory:
        Array of shape (n_frames, n_atoms, 3).  If ``box`` is given, the
        frame-to-frame displacements are unwrapped through the minimum
        image first (correct as long as no atom moves more than half a
        box edge between frames).
    """
    traj = np.asarray(trajectory, dtype=np.float64)
    if traj.ndim != 3:
        raise ValueError("trajectory must be (n_frames, n_atoms, 3)")
    if box is not None and len(traj) > 1:
        steps = box.min_image(np.diff(traj, axis=0))
        unwrapped = np.concatenate([traj[:1], traj[:1] + np.cumsum(steps, axis=0)])
    else:
        unwrapped = traj
    disp = unwrapped - unwrapped[0]
    return np.mean(np.einsum("fij,fij->fi", disp, disp), axis=1)


def dipole_moment(charges: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """System dipole moment in e*A (meaningful for neutral systems)."""
    return charges @ positions
