"""Holonomic distance constraints: SHAKE / RATTLE.

CHARMM production runs constrain X-H bonds (and keep waters rigid) so the
timestep can reach 2 fs.  This module provides:

* :class:`ConstraintSet` — iterative SHAKE position projection and the
  RATTLE velocity projection;
* :func:`hydrogen_bond_constraints` — every bond involving a hydrogen, at
  its force-field equilibrium length;
* :func:`rigid_water_constraints` — three distance constraints per water
  (O-H, O-H, H-H), making TIP3-like waters fully rigid;
* :class:`ConstrainedVerlet` — velocity Verlet with both projections.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .box import PeriodicBox
from .forcefield import ForceField
from .integrator import MDState
from .system import MDSystem
from .topology import Topology
from .units import ACCEL_CONVERT

__all__ = [
    "ConstraintSet",
    "ConstrainedVerlet",
    "hydrogen_bond_constraints",
    "rigid_water_constraints",
]


@dataclass
class ConstraintSet:
    """A set of pairwise distance constraints ``|r_i - r_j| = d``.

    Parameters
    ----------
    pairs:
        Integer array of shape (n_constraints, 2).
    distances:
        Target distances (A), shape (n_constraints,).
    tolerance:
        Convergence criterion on the *relative* squared-distance error.
    max_iterations:
        SHAKE/RATTLE Gauss-Seidel sweep limit; exceeded -> RuntimeError.
    """

    pairs: np.ndarray
    distances: np.ndarray
    tolerance: float = 1e-10
    max_iterations: int = 500

    def __post_init__(self) -> None:
        self.pairs = np.asarray(self.pairs, dtype=np.int64).reshape(-1, 2)
        self.distances = np.asarray(self.distances, dtype=np.float64).reshape(-1)
        if len(self.pairs) != len(self.distances):
            raise ValueError("pairs/distances length mismatch")
        if np.any(self.distances <= 0):
            raise ValueError("constraint distances must be positive")
        if len(self.pairs) and np.any(self.pairs[:, 0] == self.pairs[:, 1]):
            raise ValueError("constraint cannot join an atom to itself")

    def __len__(self) -> int:
        return len(self.pairs)

    @property
    def n_constraints(self) -> int:
        return len(self.pairs)

    # ------------------------------------------------------------------
    def project_positions(
        self,
        old_positions: np.ndarray,
        new_positions: np.ndarray,
        masses: np.ndarray,
        box: PeriodicBox | None = None,
    ) -> np.ndarray:
        """SHAKE: adjust ``new_positions`` so every constraint holds.

        ``old_positions`` must satisfy the constraints (the corrections
        act along the old bond vectors).  Returns the corrected positions.
        """
        if len(self.pairs) == 0:
            return new_positions.copy()
        pos = new_positions.copy()
        inv_m = 1.0 / masses
        i = self.pairs[:, 0]
        j = self.pairs[:, 1]
        d2 = self.distances**2

        def wrap(v: np.ndarray) -> np.ndarray:
            return box.min_image(v) if box is not None else v

        r_old = wrap(old_positions[i] - old_positions[j])
        for _sweep in range(self.max_iterations):
            r_new = wrap(pos[i] - pos[j])
            diff = np.einsum("ij,ij->i", r_new, r_new) - d2
            if np.all(np.abs(diff) < self.tolerance * d2):
                return pos
            # Gauss-Seidel: apply each violated constraint in sequence
            for c in np.nonzero(np.abs(diff) >= self.tolerance * d2)[0]:
                a, b = i[c], j[c]
                s = wrap(pos[a] - pos[b])
                denom = 2.0 * (inv_m[a] + inv_m[b]) * float(s @ r_old[c])
                if abs(denom) < 1e-14:
                    raise RuntimeError(
                        f"SHAKE constraint {c} degenerate (perpendicular update)"
                    )
                g = (float(s @ s) - d2[c]) / denom
                pos[a] -= g * inv_m[a] * r_old[c]
                pos[b] += g * inv_m[b] * r_old[c]
        raise RuntimeError(f"SHAKE did not converge in {self.max_iterations} sweeps")

    # ------------------------------------------------------------------
    def project_velocities(
        self,
        positions: np.ndarray,
        velocities: np.ndarray,
        masses: np.ndarray,
        box: PeriodicBox | None = None,
    ) -> np.ndarray:
        """RATTLE: remove velocity components along the constraints."""
        if len(self.pairs) == 0:
            return velocities.copy()
        vel = velocities.copy()
        inv_m = 1.0 / masses
        i = self.pairs[:, 0]
        j = self.pairs[:, 1]
        d2 = self.distances**2

        def wrap(v: np.ndarray) -> np.ndarray:
            return box.min_image(v) if box is not None else v

        r = wrap(positions[i] - positions[j])
        for _sweep in range(self.max_iterations):
            v_rel = vel[i] - vel[j]
            rv = np.einsum("ij,ij->i", r, v_rel)
            # velocity tolerance: A/ps along the bond, scaled by d
            if np.all(np.abs(rv) < self.tolerance * d2 / 1e-3):
                return vel
            for c in np.nonzero(np.abs(rv) >= self.tolerance * d2 / 1e-3)[0]:
                a, b = i[c], j[c]
                k = rv[c] / (d2[c] * (inv_m[a] + inv_m[b]))
                vel[a] -= k * inv_m[a] * r[c]
                vel[b] += k * inv_m[b] * r[c]
        raise RuntimeError(f"RATTLE did not converge in {self.max_iterations} sweeps")


# ----------------------------------------------------------------------
def hydrogen_bond_constraints(
    topology: Topology, forcefield: ForceField
) -> ConstraintSet:
    """Constrain every bond that involves a hydrogen at its r0."""
    pairs = []
    dists = []
    types = topology.type_names
    for b in topology.bonds:
        mi = topology.atoms[b.i].mass
        mj = topology.atoms[b.j].mass
        if min(mi, mj) < 3.5:  # a hydrogen
            pairs.append((b.i, b.j))
            dists.append(forcefield.bond_params(types[b.i], types[b.j]).r0)
    return ConstraintSet(np.array(pairs or np.empty((0, 2))), np.array(dists))


def rigid_water_constraints(topology: Topology, forcefield: ForceField) -> ConstraintSet:
    """Three constraints per TIP3-like water: O-H1, O-H2 and H1-H2."""
    import math

    r_oh = forcefield.bond_params("OT", "HT").r0
    theta = forcefield.angle_params("HT", "OT", "HT").theta0
    r_hh = 2.0 * r_oh * math.sin(theta / 2.0)

    pairs = []
    dists = []
    by_residue: dict[tuple[str, int], list[int]] = {}
    for idx, atom in enumerate(topology.atoms):
        if atom.residue == "TIP3":
            by_residue.setdefault((atom.segment, atom.residue_index), []).append(idx)
    for atoms in by_residue.values():
        if len(atoms) != 3:
            raise ValueError(f"malformed water residue: atoms {atoms}")
        o, h1, h2 = atoms  # builder order: OH2, H1, H2
        pairs += [(o, h1), (o, h2), (h1, h2)]
        dists += [r_oh, r_oh, r_hh]
    return ConstraintSet(np.array(pairs or np.empty((0, 2))), np.array(dists))


# ----------------------------------------------------------------------
@dataclass
class ConstrainedVerlet:
    """Velocity Verlet with SHAKE/RATTLE projections.

    The constrained degrees of freedom are removed from the dynamics, so
    a 3-constraint rigid water loses exactly its three fastest modes and
    the timestep can grow accordingly.
    """

    system: MDSystem
    constraints: ConstraintSet
    dt: float = 0.002
    n_force_evals: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.dt <= 0:
            raise ValueError("dt must be positive")

    def initialize(
        self,
        positions: np.ndarray,
        velocities: np.ndarray | None = None,
        temperature: float = 300.0,
        seed: int = 2002,
    ) -> MDState:
        """Build the initial state; velocities are RATTLE-projected."""
        from .integrator import maxwell_boltzmann_velocities

        positions = np.asarray(positions, dtype=np.float64)
        if velocities is None:
            rng = np.random.default_rng(seed)
            velocities = maxwell_boltzmann_velocities(
                self.system.masses, temperature, rng
            )
        velocities = self.constraints.project_velocities(
            positions, np.asarray(velocities, dtype=np.float64), self.system.masses,
            self.system.box,
        )
        potential, forces = self.system.energy_forces(positions)
        self.n_force_evals += 1
        return MDState(
            positions=positions.copy(),
            velocities=velocities,
            forces=forces,
            potential=potential,
        )

    def step(self, state: MDState) -> MDState:
        """One constrained velocity-Verlet step (SHAKE + RATTLE)."""
        masses = self.system.masses[:, None]
        box = self.system.box
        accel = state.forces / masses * ACCEL_CONVERT

        half_v = state.velocities + 0.5 * self.dt * accel
        trial = state.positions + self.dt * half_v
        new_pos = self.constraints.project_positions(
            state.positions, trial, self.system.masses, box
        )
        # the projection is part of the position update: fold it back into
        # the half-step velocity
        half_v = (new_pos - state.positions) / self.dt

        potential, new_forces = self.system.energy_forces(new_pos)
        self.n_force_evals += 1
        new_v = half_v + 0.5 * self.dt * (new_forces / masses * ACCEL_CONVERT)
        new_v = self.constraints.project_velocities(
            new_pos, new_v, self.system.masses, box
        )

        return MDState(
            positions=new_pos,
            velocities=new_v,
            forces=new_forces,
            potential=potential,
            step=state.step + 1,
        )

    def run(self, state: MDState, n_steps: int) -> MDState:
        """Advance ``n_steps`` constrained timesteps."""
        if n_steps < 0:
            raise ValueError("n_steps must be non-negative")
        for _ in range(n_steps):
            state = self.step(state)
        return state

    @property
    def n_dof(self) -> int:
        """Kinetic degrees of freedom (3N - 3 - constraints)."""
        return 3 * self.system.n_atoms - 3 - self.constraints.n_constraints
