"""Non-bonded pair kernels: Lennard-Jones + electrostatics over a pair list.

Two electrostatic modes, matching the two energy calculations the paper
characterizes:

* ``"shift"`` — classic CHARMM truncation: ``C q_i q_j / r`` multiplied by
  the shift function that takes energy and force to zero at the cutoff.
* ``"ewald"`` — the PME *direct-space* term ``C q_i q_j erfc(alpha r) / r``;
  the reciprocal-space complement lives in :mod:`repro.pme`.

The Lennard-Jones term uses the CHARMM switching function over
``[r_on, r_cut]`` in both modes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import erfc

from ..instrument.counters import FORCE_EVALUATIONS
from .box import PeriodicBox
from .cutoff import CutoffScheme, shift_function, switch_function
from .forcefield import ForceField
from .units import COULOMB_CONSTANT

__all__ = ["NonbondedKernel", "PairEnergies"]

_TWO_OVER_SQRT_PI = 2.0 / np.sqrt(np.pi)


@dataclass(frozen=True)
class PairEnergies:
    """Energies (kcal/mol) from one non-bonded evaluation."""

    lj: float
    elec: float

    @property
    def total(self) -> float:
        return self.lj + self.elec


def _scatter_forces(
    forces: np.ndarray, i: np.ndarray, j: np.ndarray, contrib: np.ndarray
) -> None:
    """Accumulate pair forces (+contrib on ``i``, -contrib on ``j``) in place.

    ``bincount`` wants contiguous 1-D weights; one transposed copy of the
    contribution matrix up front beats six strided column extractions.
    """
    n = len(forces)
    c = np.ascontiguousarray(contrib.T)
    for dim in range(3):
        forces[:, dim] += np.bincount(i, weights=c[dim], minlength=n)
        forces[:, dim] -= np.bincount(j, weights=c[dim], minlength=n)


class NonbondedKernel:
    """Evaluates LJ + electrostatics over an explicit pair list.

    Parameters
    ----------
    forcefield:
        Source of per-type LJ parameters.
    type_names:
        Atom types, length ``n_atoms``.
    charges:
        Partial charges (e), length ``n_atoms``.
    box, scheme:
        Geometry and cutoff parameters.
    elec_mode:
        ``"shift"`` or ``"ewald"``.
    ewald_alpha:
        Ewald splitting parameter (1/A); required when ``elec_mode="ewald"``.
    lj_tables:
        Optional precomputed ``(eps, rmin_half)`` per-atom tables — the
        tables are identical on every replicated-data rank, so the shared
        compute layer builds them once and hands them to each kernel.
    """

    def __init__(
        self,
        forcefield: ForceField,
        type_names: list[str],
        charges: np.ndarray,
        box: PeriodicBox,
        scheme: CutoffScheme,
        elec_mode: str = "shift",
        ewald_alpha: float | None = None,
        lj_tables: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> None:
        if elec_mode not in ("shift", "ewald"):
            raise ValueError(f"unknown elec_mode {elec_mode!r}")
        if elec_mode == "ewald" and (ewald_alpha is None or ewald_alpha <= 0):
            raise ValueError("elec_mode='ewald' requires a positive ewald_alpha")
        self.box = box
        self.scheme = scheme
        self.elec_mode = elec_mode
        self.ewald_alpha = ewald_alpha
        self.charges = np.asarray(charges, dtype=np.float64)
        if lj_tables is None:
            lj_tables = forcefield.lj_tables(type_names)
        self.eps, self.rmin_half = lj_tables
        if len(self.charges) != len(self.eps):
            raise ValueError("charges and type_names disagree on atom count")
        #: number of pair interactions evaluated in the last call (cost model)
        self.last_pair_count: int = 0

    # ------------------------------------------------------------------
    def pair_terms(
        self, positions: np.ndarray, pairs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-pair energies and forces for the pairs within the true cutoff.

        Returns ``(i, j, e_lj_pair, e_el_pair, fvec)`` where every array is
        restricted to the pairs inside ``scheme.r_cut`` and ``fvec`` is the
        force on atom ``i`` (atom ``j`` receives ``-fvec``).  Every value is
        a pure elementwise function of its own pair, so callers holding any
        sub- or superset of a pair list obtain bitwise-identical rows — the
        property the spatial-decomposition engine relies on to reproduce
        the replicated-data forces exactly.
        """
        i = pairs[:, 0]
        j = pairs[:, 1]
        dr = self.box.min_image(positions[i] - positions[j])
        r2 = np.einsum("ij,ij->i", dr, dr)
        within = r2 <= self.scheme.r_cut**2
        i, j, dr, r2 = i[within], j[within], dr[within], r2[within]
        self.last_pair_count = len(i)
        if len(i) == 0:
            empty = np.empty(0, dtype=np.float64)
            return i, j, empty, empty, np.empty((0, 3), dtype=np.float64)
        r = np.sqrt(r2)
        inv_r = 1.0 / r

        # --- Lennard-Jones with switching ------------------------------
        eps_ij = np.sqrt(self.eps[i] * self.eps[j])
        rmin_ij = self.rmin_half[i] + self.rmin_half[j]
        x6 = (rmin_ij * inv_r) ** 6
        x12 = x6 * x6
        e_lj_raw = eps_ij * (x12 - 2.0 * x6)
        de_lj_raw = -12.0 * eps_ij * inv_r * (x12 - x6)
        s, ds = switch_function(r, self.scheme.switch_on, self.scheme.r_cut)
        e_lj_pair = e_lj_raw * s
        de_lj = de_lj_raw * s + e_lj_raw * ds

        # --- electrostatics ---------------------------------------------
        qq = COULOMB_CONSTANT * self.charges[i] * self.charges[j]
        if self.elec_mode == "shift":
            sh, dsh = shift_function(r, self.scheme.r_cut)
            e_el_pair = qq * inv_r * sh
            de_el = qq * (-inv_r * inv_r * sh + inv_r * dsh)
        else:
            alpha = float(self.ewald_alpha)  # validated in __init__
            erfc_ar = erfc(alpha * r)
            e_el_pair = qq * inv_r * erfc_ar
            de_el = -qq * inv_r * (
                erfc_ar * inv_r + _TWO_OVER_SQRT_PI * alpha * np.exp(-(alpha * r) ** 2)
            )

        de_total = de_lj + de_el
        fvec = (-de_total * inv_r)[:, None] * dr  # force on atom i
        return i, j, e_lj_pair, e_el_pair, fvec

    # ------------------------------------------------------------------
    def compute(
        self, positions: np.ndarray, pairs: np.ndarray
    ) -> tuple[PairEnergies, np.ndarray]:
        """Energy and forces for the pairs within the true cutoff.

        ``pairs`` may include the neighbour-list skin; pairs beyond
        ``scheme.r_cut`` are filtered in :meth:`pair_terms`.
        """
        FORCE_EVALUATIONS.increment()
        n = len(positions)
        forces = np.zeros((n, 3), dtype=np.float64)
        if len(pairs) == 0:
            self.last_pair_count = 0
            return PairEnergies(0.0, 0.0), forces
        i, j, e_lj_pair, e_el_pair, fvec = self.pair_terms(positions, pairs)
        if len(i) == 0:
            return PairEnergies(0.0, 0.0), forces
        _scatter_forces(forces, i, j, fvec)
        return PairEnergies(float(np.sum(e_lj_pair)), float(np.sum(e_el_pair))), forces
