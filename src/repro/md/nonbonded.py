"""Non-bonded pair kernels: Lennard-Jones + electrostatics over a pair list.

Two electrostatic modes, matching the two energy calculations the paper
characterizes:

* ``"shift"`` — classic CHARMM truncation: ``C q_i q_j / r`` multiplied by
  the shift function that takes energy and force to zero at the cutoff.
* ``"ewald"`` — the PME *direct-space* term ``C q_i q_j erfc(alpha r) / r``;
  the reciprocal-space complement lives in :mod:`repro.pme`.

The Lennard-Jones term uses the CHARMM switching function over
``[r_on, r_cut]`` in both modes.

The per-pair arithmetic itself lives in
:mod:`repro.parallel.exec.kernels`: this class performs the cutoff
filter and the force scatter, then hands the surviving rows to the
selected backend (``"numpy"`` reference or the opt-in compiled
``"numba"`` mirror).  Backend choice never changes a single bit of the
results — only how fast they arrive.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..instrument.counters import FORCE_EVALUATIONS
from .box import PeriodicBox
from .cutoff import CutoffScheme
from .forcefield import ForceField
from .units import COULOMB_CONSTANT

__all__ = ["NonbondedKernel", "PairEnergies"]


@dataclass(frozen=True)
class PairEnergies:
    """Energies (kcal/mol) from one non-bonded evaluation."""

    lj: float
    elec: float

    @property
    def total(self) -> float:
        return self.lj + self.elec


def _scatter_forces(
    forces: np.ndarray, i: np.ndarray, j: np.ndarray, contrib: np.ndarray
) -> None:
    """Accumulate pair forces (+contrib on ``i``, -contrib on ``j``) in place.

    ``bincount`` wants contiguous 1-D weights; one transposed copy of the
    contribution matrix up front beats six strided column extractions.
    """
    n = len(forces)
    c = np.ascontiguousarray(contrib.T)
    for dim in range(3):
        forces[:, dim] += np.bincount(i, weights=c[dim], minlength=n)
        forces[:, dim] -= np.bincount(j, weights=c[dim], minlength=n)


class NonbondedKernel:
    """Evaluates LJ + electrostatics over an explicit pair list.

    Parameters
    ----------
    forcefield:
        Source of per-type LJ parameters.
    type_names:
        Atom types, length ``n_atoms``.
    charges:
        Partial charges (e), length ``n_atoms``.
    box, scheme:
        Geometry and cutoff parameters.
    elec_mode:
        ``"shift"`` or ``"ewald"``.
    ewald_alpha:
        Ewald splitting parameter (1/A); required when ``elec_mode="ewald"``.
    lj_tables:
        Optional precomputed ``(eps, rmin_half)`` per-atom tables — the
        tables are identical on every replicated-data rank, so the shared
        compute layer builds them once and hands them to each kernel.
    backend:
        Force-kernel backend name (``"numpy"`` or ``"numba"``); see
        :mod:`repro.parallel.exec.kernels`.  Bit-identical by contract.
    """

    def __init__(
        self,
        forcefield: ForceField,
        type_names: list[str],
        charges: np.ndarray,
        box: PeriodicBox,
        scheme: CutoffScheme,
        elec_mode: str = "shift",
        ewald_alpha: float | None = None,
        lj_tables: tuple[np.ndarray, np.ndarray] | None = None,
        backend: str = "numpy",
        shared_statics: Callable | None = None,
    ) -> None:
        if elec_mode not in ("shift", "ewald"):
            raise ValueError(f"unknown elec_mode {elec_mode!r}")
        if elec_mode == "ewald" and (ewald_alpha is None or ewald_alpha <= 0):
            raise ValueError("elec_mode='ewald' requires a positive ewald_alpha")
        self.box = box
        self.scheme = scheme
        self.elec_mode = elec_mode
        self.ewald_alpha = ewald_alpha
        self.charges = np.asarray(charges, dtype=np.float64)
        if lj_tables is None:
            lj_tables = forcefield.lj_tables(type_names)
        self.eps, self.rmin_half = lj_tables
        if len(self.charges) != len(self.eps):
            raise ValueError("charges and type_names disagree on atom count")
        # local import: md must not depend on the parallel package at
        # module-import time (parallel imports md)
        from ..parallel.exec.kernels import get_backend

        self.backend = backend
        self._physics = get_backend(backend)
        # per-pair statics (eps_ij, rmin_ij, qq) cached for the lifetime
        # of one pair-list base array; see _statics_rows.  shared_statics,
        # when given, deduplicates that computation across rank kernels
        # (every replicated rank sees the same base array and identical
        # parameter tables, so one evaluation serves all)
        self._shared_statics = shared_statics
        self._statics_base: weakref.ref | None = None
        self._statics: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        # optional certified candidate pre-drop; see attach_prefilter
        self._prefilter: Callable | None = None
        #: number of pair interactions evaluated in the last call (cost model)
        self.last_pair_count: int = 0

    # ------------------------------------------------------------------
    def attach_prefilter(self, fn: Callable | None) -> None:
        """Install a certified candidate pre-drop hook.

        ``fn(positions, base)`` returns ``(ref_d, bound)`` or ``None``;
        see :meth:`repro.md.neighborlist.NeighborList.step_prefilter`.
        Rows of ``base`` whose ``ref_d`` exceeds ``bound`` are dropped
        *before* the minimum-image chain in :meth:`pair_terms` — by the
        hook's contract they cannot pass the exact cutoff test, so the
        accepted pair rows (and every downstream bit) are unchanged.
        """
        self._prefilter = fn

    @staticmethod
    def _row_slice(pairs: np.ndarray) -> tuple[np.ndarray, int] | None:
        """``(base, offset)`` when ``pairs`` is a plain row-slice view.

        Returns ``None`` for views that are not contiguous row slices of
        their base (callers fall back to per-call computation, bitwise
        identical either way).
        """
        base = pairs.base if isinstance(pairs.base, np.ndarray) else pairs
        if (
            pairs.ndim != 2
            or base.ndim != 2
            or base.shape[1:] != pairs.shape[1:]
            or base.strides != pairs.strides
        ):
            return None
        span = base.strides[0]
        if span <= 0:
            return None
        delta = pairs.__array_interface__["data"][0] - base.__array_interface__["data"][0]
        if delta < 0 or delta % span:
            return None
        off = delta // span
        if off + len(pairs) > len(base):
            return None
        return base, int(off)

    def _statics_rows(
        self, pairs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """Combined LJ/charge parameters for every row of ``pairs``.

        A pair list is reused across many steps (a neighbour list keeps
        one array alive between rebuilds, and each rank's block is a
        row-slice view of it), while the gathered parameters depend only
        on the pair *indices*.  So compute them once per base array and
        serve row-slices from the cache.  Identity of the base array is
        the cache key (held by weakref): any rebuild allocates a new
        array and naturally invalidates.  Views that are not plain
        row-slices fall back to ``None`` (caller recomputes exactly as
        before), so this is bitwise invisible either way.
        """
        sliced = self._row_slice(pairs)
        if sliced is None:
            return None
        base, off = sliced
        cached = self._statics_base() if self._statics_base is not None else None
        if cached is not base:
            if self._shared_statics is not None:
                self._statics = self._shared_statics(base, self._compute_statics)
            else:
                self._statics = self._compute_statics(base)
            self._statics_base = weakref.ref(base)
        eps_ij, rmin_ij, qq = self._statics
        stop = off + len(pairs)
        return eps_ij[off:stop], rmin_ij[off:stop], qq[off:stop]

    def _compute_statics(
        self, base: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-pair (eps_ij, rmin_ij, qq) for every row of ``base``."""
        bi = base[:, 0]
        bj = base[:, 1]
        return (
            np.sqrt(self.eps.take(bi) * self.eps.take(bj)),
            self.rmin_half.take(bi) + self.rmin_half.take(bj),
            COULOMB_CONSTANT * self.charges.take(bi) * self.charges.take(bj),
        )

    # ------------------------------------------------------------------
    def pair_terms(
        self, positions: np.ndarray, pairs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-pair energies and forces for the pairs within the true cutoff.

        Returns ``(i, j, e_lj_pair, e_el_pair, fvec)`` where every array is
        restricted to the pairs inside ``scheme.r_cut`` and ``fvec`` is the
        force on atom ``i`` (atom ``j`` receives ``-fvec``).  Every value is
        a pure elementwise function of its own pair, so callers holding any
        sub- or superset of a pair list obtain bitwise-identical rows — the
        property the spatial-decomposition engine relies on to reproduce
        the replicated-data forces exactly.
        """
        # index-based gathers and compression (``take``/``flatnonzero``)
        # produce the same values as fancy/boolean indexing several times
        # faster; the arithmetic on the gathered rows is untouched
        i = pairs[:, 0]
        j = pairs[:, 1]
        pre = None
        if self._prefilter is not None:
            sliced = self._row_slice(pairs)
            if sliced is not None:
                hit = self._prefilter(positions, sliced[0])
                if hit is not None:
                    # rows beyond the certified bound cannot pass the
                    # exact test below; dropping them up front skips
                    # their share of the minimum-image chain
                    ref_d, bound = hit
                    off = sliced[1]
                    pre = np.flatnonzero(ref_d[off : off + len(pairs)] <= bound)
                    if len(pre) == len(pairs):
                        pre = None
                    else:
                        i, j = i.take(pre), j.take(pre)
        pi = positions.take(i, axis=0)
        dr = self.box.min_image(np.subtract(pi, positions.take(j, axis=0), out=pi))
        r2 = np.einsum("ij,ij->i", dr, dr)
        within = r2 <= self.scheme.r_cut**2
        statics = self._statics_rows(pairs)
        sel = np.flatnonzero(within)
        i, j, dr, r2 = i.take(sel), j.take(sel), dr.take(sel, axis=0), r2.take(sel)
        self.last_pair_count = len(i)
        if len(i) == 0:
            empty = np.empty(0, dtype=np.float64)
            return i, j, empty, empty, np.empty((0, 3), dtype=np.float64)

        if statics is not None:
            eps_rows, rmin_rows, qq_rows = statics
            rows = sel if pre is None else pre.take(sel)
            eps_ij = eps_rows.take(rows)
            rmin_ij = rmin_rows.take(rows)
            qq = qq_rows.take(rows)
        else:
            eps_ij = np.sqrt(self.eps[i] * self.eps[j])
            rmin_ij = self.rmin_half[i] + self.rmin_half[j]
            qq = COULOMB_CONSTANT * self.charges[i] * self.charges[j]

        e_lj_pair, e_el_pair, fvec = self._physics(
            r2, dr, eps_ij, rmin_ij, qq, self.scheme, self.elec_mode, self.ewald_alpha
        )
        return i, j, e_lj_pair, e_el_pair, fvec

    # ------------------------------------------------------------------
    def compute(
        self, positions: np.ndarray, pairs: np.ndarray
    ) -> tuple[PairEnergies, np.ndarray]:
        """Energy and forces for the pairs within the true cutoff.

        ``pairs`` may include the neighbour-list skin; pairs beyond
        ``scheme.r_cut`` are filtered in :meth:`pair_terms`.
        """
        FORCE_EVALUATIONS.increment()
        n = len(positions)
        forces = np.zeros((n, 3), dtype=np.float64)
        if len(pairs) == 0:
            self.last_pair_count = 0
            return PairEnergies(0.0, 0.0), forces
        i, j, e_lj_pair, e_el_pair, fvec = self.pair_terms(positions, pairs)
        if len(i) == 0:
            return PairEnergies(0.0, 0.0), forces
        _scatter_forces(forces, i, j, fvec)
        return PairEnergies(float(np.sum(e_lj_pair)), float(np.sum(e_el_pair))), forces
