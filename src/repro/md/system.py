"""The MD system: topology + force field + box + energy evaluators.

:class:`MDSystem` wires the kernels together in exactly the structure the
paper's Figure 2 describes:

* **classic energy calculation** — bonded terms plus cutoff non-bonded
  (shift/switch truncation without PME, or the erfc direct-space term with
  PME);
* **PME energy calculation** — B-spline spreading, 3-D FFT, influence
  function, inverse FFT, force interpolation, plus self and exclusion
  terms.

The same evaluators are reused by the parallel rank program in
:mod:`repro.parallel.pmd`, which slices their inputs per rank.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..pme.ewald import choose_alpha, exclusion_correction, self_energy
from ..pme.pme import PME
from .bonded import BondedTables, bonded_energy_forces
from .box import PeriodicBox
from .cutoff import CutoffScheme
from .energy import EnergyBreakdown
from .forcefield import ForceField
from .neighborlist import NeighborList
from .nonbonded import NonbondedKernel
from .topology import Topology

__all__ = ["MDSystem", "ElectrostaticsModel"]


class ElectrostaticsModel:
    """Electrostatics treatment selector (string enum)."""

    SHIFT = "shift"  # classic CHARMM: shifted truncation at the cutoff
    PME = "pme"  # particle-mesh Ewald


@dataclass
class _PMEBundle:
    pme: PME
    alpha: float
    e_self: float


class MDSystem:
    """A ready-to-simulate molecular system.

    Parameters
    ----------
    topology:
        Atoms and bonded terms.
    forcefield:
        Parameter tables covering every type in ``topology``.
    box:
        Periodic box.
    scheme:
        Cutoff parameters (10 A truncation in the paper's runs).
    electrostatics:
        ``"shift"`` (classic) or ``"pme"``.
    pme_grid:
        FFT mesh, required when ``electrostatics="pme"``; the paper's
        system uses ``(80, 36, 48)``.
    pme_order:
        B-spline order, default 4.
    ewald_tolerance:
        Direct-space truncation error target used to pick alpha.
    """

    def __init__(
        self,
        topology: Topology,
        forcefield: ForceField,
        box: PeriodicBox,
        scheme: CutoffScheme | None = None,
        electrostatics: str = ElectrostaticsModel.SHIFT,
        pme_grid: tuple[int, int, int] | None = None,
        pme_order: int = 4,
        ewald_tolerance: float = 1e-5,
    ) -> None:
        if electrostatics not in (ElectrostaticsModel.SHIFT, ElectrostaticsModel.PME):
            raise ValueError(f"unknown electrostatics model {electrostatics!r}")
        self.topology = topology
        self.forcefield = forcefield
        self.box = box
        self.scheme = scheme or CutoffScheme()
        self.electrostatics = electrostatics

        self.charges = topology.charges
        self.masses = topology.masses
        self.exclusions = topology.exclusion_pairs()
        self.bonded_tables = BondedTables(topology, forcefield)
        self.neighbor_list = NeighborList(box, self.scheme, self.exclusions)

        self._pme: _PMEBundle | None = None
        if electrostatics == ElectrostaticsModel.PME:
            if pme_grid is None:
                raise ValueError("electrostatics='pme' requires pme_grid")
            alpha = choose_alpha(self.scheme.r_cut, ewald_tolerance)
            self._pme = _PMEBundle(
                pme=PME(box, pme_grid, alpha, pme_order),
                alpha=alpha,
                e_self=self_energy(self.charges, alpha),
            )
            elec_mode, ewald_alpha = "ewald", alpha
        else:
            elec_mode, ewald_alpha = "shift", None

        self.nonbonded = NonbondedKernel(
            forcefield,
            topology.type_names,
            self.charges,
            box,
            self.scheme,
            elec_mode=elec_mode,
            ewald_alpha=ewald_alpha,
        )
        # let the kernel drop neighbour-list rows the list itself can
        # certify as out of reach this step (bitwise invisible)
        self.nonbonded.attach_prefilter(self.neighbor_list.step_prefilter)

    # ------------------------------------------------------------------
    @property
    def n_atoms(self) -> int:
        return self.topology.n_atoms

    @property
    def uses_pme(self) -> bool:
        return self._pme is not None

    @property
    def pme(self) -> PME:
        if self._pme is None:
            raise RuntimeError("system was built without PME")
        return self._pme.pme

    @property
    def ewald_alpha(self) -> float:
        if self._pme is None:
            raise RuntimeError("system was built without PME")
        return self._pme.alpha

    # ------------------------------------------------------------------
    def classic_energy_forces(
        self, positions: np.ndarray, pairs: np.ndarray | None = None
    ) -> tuple[EnergyBreakdown, np.ndarray]:
        """The time-domain component: bonded + cutoff non-bonded.

        ``pairs`` overrides the neighbour list (used by the parallel code
        to evaluate a rank's block of the pair list).
        """
        if pairs is None:
            pairs = self.neighbor_list.ensure(positions)
        bonded_e, forces = bonded_energy_forces(positions, self.box, self.bonded_tables)
        nb_e, nb_f = self.nonbonded.compute(positions, pairs)
        forces += nb_f
        return (
            EnergyBreakdown(
                bond=bonded_e["bond"],
                angle=bonded_e["angle"],
                dihedral=bonded_e["dihedral"],
                improper=bonded_e["improper"],
                lj=nb_e.lj,
                elec_direct=nb_e.elec,
            ),
            forces,
        )

    def pme_energy_forces(self, positions: np.ndarray) -> tuple[EnergyBreakdown, np.ndarray]:
        """The frequency-domain component: reciprocal + self + exclusion."""
        if self._pme is None:
            raise RuntimeError("system was built without PME")
        rec = self._pme.pme.reciprocal(positions, self.charges)
        e_excl, f_excl = exclusion_correction(
            positions, self.charges, self.exclusions, self.box, self._pme.alpha
        )
        return (
            EnergyBreakdown(
                pme_reciprocal=rec.energy,
                pme_self=self._pme.e_self,
                pme_exclusion=e_excl,
            ),
            rec.forces + f_excl,
        )

    def energy_forces(self, positions: np.ndarray) -> tuple[EnergyBreakdown, np.ndarray]:
        """Full potential energy and forces (classic + PME when enabled)."""
        breakdown, forces = self.classic_energy_forces(positions)
        if self._pme is not None:
            pme_breakdown, pme_forces = self.pme_energy_forces(positions)
            breakdown = breakdown + pme_breakdown
            forces = forces + pme_forces
        return breakdown, forces

    # ------------------------------------------------------------------
    def minimize(
        self,
        positions: np.ndarray,
        n_steps: int = 200,
        max_step: float = 0.02,
        tolerance: float = 1.0,
    ) -> np.ndarray:
        """Crude steepest-descent relaxation with displacement capping.

        Used by the workload builders to remove steric clashes from
        generated coordinates before dynamics.  Stops early once the
        RMS force drops below ``tolerance`` (kcal/mol/A).
        """
        pos = np.array(positions, dtype=np.float64)
        for _ in range(n_steps):
            _, forces = self.energy_forces(pos)
            rms = float(np.sqrt(np.mean(forces**2)))
            if rms < tolerance:
                break
            norms = np.linalg.norm(forces, axis=1, keepdims=True)
            step = forces * (max_step / np.maximum(norms, 1e-12))
            # full step along small forces, capped step along large ones
            small = norms < 1.0
            step = np.where(small, forces * max_step, step)
            pos = pos + step
        return pos
