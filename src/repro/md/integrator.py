"""Velocity-Verlet integration of Newton's equations.

CHARMM's production integrator is leapfrog Verlet; velocity Verlet is
algebraically equivalent for the trajectory and keeps positions and
velocities synchronous, which simplifies energy-conservation tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .energy import EnergyBreakdown
from .system import MDSystem
from .units import ACCEL_CONVERT, BOLTZMANN_KCAL, KINETIC_CONVERT

__all__ = ["MDState", "VelocityVerlet", "maxwell_boltzmann_velocities", "kinetic_energy"]


def maxwell_boltzmann_velocities(
    masses: np.ndarray, temperature: float, rng: np.random.Generator
) -> np.ndarray:
    """Draw velocities (A/ps) from the Maxwell-Boltzmann distribution.

    Removes centre-of-mass drift, so the sampled kinetic energy matches
    3(N-1)/2 kT on average.
    """
    if temperature < 0:
        raise ValueError("temperature must be non-negative")
    sigma = np.sqrt(BOLTZMANN_KCAL * temperature * KINETIC_CONVERT / masses)
    v = rng.normal(size=(len(masses), 3)) * sigma[:, None]
    total_mass = float(np.sum(masses))
    v -= (masses @ v) / total_mass  # remove COM momentum
    return v


def kinetic_energy(masses: np.ndarray, velocities: np.ndarray) -> float:
    """Total kinetic energy in kcal/mol."""
    return float(0.5 * np.sum(masses[:, None] * velocities**2) / KINETIC_CONVERT)


@dataclass
class MDState:
    """Dynamic state of a simulation: synchronous positions/velocities."""

    positions: np.ndarray
    velocities: np.ndarray
    forces: np.ndarray
    potential: EnergyBreakdown
    step: int = 0

    @property
    def n_atoms(self) -> int:
        return len(self.positions)


@dataclass
class VelocityVerlet:
    """Velocity-Verlet propagator.

    Parameters
    ----------
    system:
        The MD system providing ``energy_forces``.
    dt:
        Timestep in picoseconds (0.001 ps = 1 fs typical without
        constraints).
    """

    system: MDSystem
    dt: float = 0.001
    n_force_evals: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.dt <= 0:
            raise ValueError("dt must be positive")

    def initialize(
        self,
        positions: np.ndarray,
        velocities: np.ndarray | None = None,
        temperature: float = 300.0,
        seed: int = 2002,
    ) -> MDState:
        """Build the initial state, drawing velocities if none are given."""
        positions = np.asarray(positions, dtype=np.float64)
        if velocities is None:
            rng = np.random.default_rng(seed)
            velocities = maxwell_boltzmann_velocities(
                self.system.masses, temperature, rng
            )
        potential, forces = self.system.energy_forces(positions)
        self.n_force_evals += 1
        return MDState(
            positions=positions.copy(),
            velocities=np.asarray(velocities, dtype=np.float64).copy(),
            forces=forces,
            potential=potential,
        )

    def step(self, state: MDState) -> MDState:
        """Advance one timestep and return the new state."""
        masses = self.system.masses[:, None]
        accel = state.forces / masses * ACCEL_CONVERT  # A/ps^2

        half_v = state.velocities + 0.5 * self.dt * accel
        new_pos = state.positions + self.dt * half_v

        potential, new_forces = self.system.energy_forces(new_pos)
        self.n_force_evals += 1
        new_accel = new_forces / masses * ACCEL_CONVERT
        new_v = half_v + 0.5 * self.dt * new_accel

        return MDState(
            positions=new_pos,
            velocities=new_v,
            forces=new_forces,
            potential=potential,
            step=state.step + 1,
        )

    def run(self, state: MDState, n_steps: int) -> MDState:
        """Advance ``n_steps`` timesteps."""
        if n_steps < 0:
            raise ValueError("n_steps must be non-negative")
        for _ in range(n_steps):
            state = self.step(state)
        return state
