"""Cell-list based Verlet neighbour list.

Builds the pair list that both the classic cutoff kernel and the PME
direct-space kernel iterate over.  Candidate pairs come from a periodic
``cKDTree`` query (with the cell-enumeration path kept as the fallback
for boxes too small for a toroidal tree query); the *final* pair set is
decided by the same exact minimum-image distance filter in both cases,
so the candidate source is unobservable in the results:

* the tree query radius is padded by a relative ``1e-9`` so pairs the
  tree metric and ``min_image`` disagree about at the ulp level are
  still proposed (and then settled by the exact filter);
* ``last_candidates`` — the cost-model's neighbour-search workload — is
  still *defined* as the cell-enumeration candidate count, computed
  arithmetically from the cell populations (identical to the length of
  the enumerated candidate list, without materializing it), so virtual
  timings are bit-identical to the enumerating build.

The list carries a ``skin`` margin so it stays valid while no atom has moved
more than ``skin / 2`` since the build (:meth:`NeighborList.needs_rebuild`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np
from scipy.spatial import cKDTree

from ..instrument.counters import NEIGHBOR_BUILDS
from .box import PeriodicBox
from .cutoff import CutoffScheme

__all__ = ["NeighborList", "brute_force_pairs"]


def brute_force_pairs(
    positions: np.ndarray, box: PeriodicBox, cutoff: float
) -> np.ndarray:
    """All pairs (i < j) within ``cutoff`` by direct O(N^2) search.

    Reference implementation used by the tests to validate the cell list;
    chunked over rows to bound memory.
    """
    n = len(positions)
    cutoff2 = cutoff * cutoff
    chunks: list[np.ndarray] = []
    chunk_rows = max(1, 2_000_000 // max(n, 1))
    for start in range(0, n, chunk_rows):
        stop = min(start + chunk_rows, n)
        dr = positions[start:stop, None, :] - positions[None, :, :]
        dr = box.min_image(dr)
        d2 = np.einsum("ijk,ijk->ij", dr, dr)
        ii, jj = np.nonzero(d2 <= cutoff2)
        ii = ii + start
        keep = ii < jj
        chunks.append(np.stack([ii[keep], jj[keep]], axis=1))
    if not chunks:
        return np.empty((0, 2), dtype=np.int64)
    pairs = np.concatenate(chunks, axis=0)
    order = np.lexsort((pairs[:, 1], pairs[:, 0]))
    return pairs[order].astype(np.int64)


def _cell_grid(box: PeriodicBox, cutoff: float) -> tuple[np.ndarray, np.ndarray]:
    """Number of cells per dimension and the cell edge lengths."""
    n_cells = np.maximum(1, np.floor(box.lengths / cutoff).astype(np.int64))
    return n_cells, box.lengths / n_cells


def _neighbour_cell_pairs(n_cells: np.ndarray) -> np.ndarray:
    """Unique unordered pairs of (linear) cell indices that can host a pair.

    Includes the self pair (c, c).  With very small grids (fewer than three
    cells along an axis) different offsets alias to the same neighbour, so
    the result is deduplicated.

    The box and cutoff are fixed for the lifetime of a list, so the grid —
    and therefore this O(cells x 27) set loop — never changes between
    rebuilds; the result is memoized on the grid tuple.
    """
    return _neighbour_cell_pairs_cached(*(int(v) for v in n_cells))


@lru_cache(maxsize=32)
def _neighbour_cell_pairs_cached(nx: int, ny: int, nz: int) -> np.ndarray:
    coords = np.array(
        [(x, y, z) for x in range(nx) for y in range(ny) for z in range(nz)],
        dtype=np.int64,
    )
    lin = coords[:, 0] * ny * nz + coords[:, 1] * nz + coords[:, 2]

    offsets = np.array(
        [(dx, dy, dz) for dx in (-1, 0, 1) for dy in (-1, 0, 1) for dz in (-1, 0, 1)],
        dtype=np.int64,
    )
    pairs: set[tuple[int, int]] = set()
    for off in offsets:
        nb = (coords + off) % np.array([nx, ny, nz])
        nb_lin = nb[:, 0] * ny * nz + nb[:, 1] * nz + nb[:, 2]
        for a, b in zip(lin, nb_lin):
            pairs.add((min(int(a), int(b)), max(int(a), int(b))))
    out = np.array(sorted(pairs), dtype=np.int64)
    out.setflags(write=False)  # shared across builds via the memo
    return out


def _gather_candidates(
    order: np.ndarray, starts: np.ndarray, cell_pairs: np.ndarray
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Candidate atom pairs for every neighbouring cell pair, vectorized.

    The ragged cartesian products (one per cross-cell pair, sizes
    ``len_a * len_b``) are flattened with ``repeat``/``cumsum`` index
    arithmetic instead of a Python loop over cell pairs; within-cell
    candidates are batched per cell size so one ``triu_indices`` template
    serves every cell of that population.  Produces exactly the candidate
    multiset of the per-cell-pair loop it replaces — the candidate count
    feeds the cost model, so it must not change.
    """
    sizes = starts[1:] - starts[:-1]
    ca, cb = cell_pairs[:, 0], cell_pairs[:, 1]
    cand_i: list[np.ndarray] = []
    cand_j: list[np.ndarray] = []

    # within-cell pairs: cells of equal population share one triu template
    self_cells = ca[(ca == cb) & (sizes[ca] >= 2)]
    for m in np.unique(sizes[self_cells]):
        cells = self_cells[sizes[self_cells] == m]
        block = order[starts[cells][:, None] + np.arange(m)]  # (n_cells, m)
        iu, ju = np.triu_indices(int(m), k=1)
        cand_i.append(block[:, iu].ravel())
        cand_j.append(block[:, ju].ravel())

    # cross-cell pairs: ragged cartesian products, batched per B-cell
    # size.  Within one batch the B side is rectangular, so the product
    # reduces to two plain repeats: each A atom repeated ``lb`` times,
    # and each B row repeated ``la`` times.  Only the A-side gather is
    # ragged (repeat/cumsum index arithmetic), and it touches one slot
    # per A atom — not one per candidate — so every per-candidate pass
    # is a contiguous repeat, with no division in sight.
    cross = (ca != cb) & (sizes[ca] > 0) & (sizes[cb] > 0)
    xa, xb = ca[cross], cb[cross]
    las, lbs = sizes[xa], sizes[xb]
    for lb in np.unique(lbs):
        sel = lbs == lb
        xa_g, xb_g = xa[sel], xb[sel]
        la_g = las[sel]
        n_slots = int(la_g.sum())
        rep = np.repeat(np.arange(len(xa_g)), la_g)
        offsets = np.concatenate(([0], np.cumsum(la_g)[:-1]))
        atoms_a = order[starts[xa_g][rep] + (np.arange(n_slots) - offsets[rep])]
        cand_i.append(np.repeat(atoms_a, int(lb)))
        block_b = order[starts[xb_g][:, None] + np.arange(int(lb))]  # (g, lb)
        cand_j.append(np.repeat(block_b, la_g, axis=0).ravel())
    return cand_i, cand_j


def _encode(pairs: np.ndarray, n_atoms: int) -> np.ndarray:
    """Encode (i, j) pairs as i * n_atoms + j for fast membership tests."""
    return pairs[:, 0] * np.int64(n_atoms) + pairs[:, 1]


@dataclass
class NeighborList:
    """A rebuildable Verlet pair list with exclusions applied at build time.

    Parameters
    ----------
    box:
        The periodic box (fixed for the lifetime of the list).
    scheme:
        Cutoff parameters; pairs are collected out to
        ``scheme.list_cutoff = r_cut + skin``.
    exclusions:
        Array of shape (n_excl, 2) with ``i < j`` rows to omit from the
        list (bonded exclusions).
    """

    box: PeriodicBox
    scheme: CutoffScheme
    exclusions: np.ndarray = field(default_factory=lambda: np.empty((0, 2), dtype=np.int64))

    pairs: np.ndarray = field(init=False, default_factory=lambda: np.empty((0, 2), dtype=np.int64))
    _ref_positions: np.ndarray | None = field(init=False, default=None)
    _excl_codes: np.ndarray | None = field(init=False, default=None)
    n_builds: int = field(init=False, default=0)
    #: candidate pairs examined by the last build (cost-model input)
    last_candidates: int = field(init=False, default=0)
    #: True when the most recent ``ensure`` call rebuilt the list
    last_ensure_rebuilt: bool = field(init=False, default=False)
    #: build-time pair distances aligned with ``pairs`` rows; together
    #: with :attr:`last_max_disp` they certify :meth:`step_prefilter`
    pair_ref_d: np.ndarray | None = field(init=False, default=None, repr=False)
    #: largest atom displacement since the build, as measured by the most
    #: recent rebuild check (inf until a check validates the list)
    last_max_disp: float = field(init=False, default=float("inf"))
    _checked_positions: np.ndarray | None = field(init=False, default=None, repr=False)

    def __post_init__(self) -> None:
        self.box.check_cutoff(self.scheme.r_cut)
        if self.exclusions.size and np.any(self.exclusions[:, 0] >= self.exclusions[:, 1]):
            raise ValueError("exclusion rows must satisfy i < j")

    # ------------------------------------------------------------------
    def build(self, positions: np.ndarray) -> np.ndarray:
        """(Re)build the pair list for the given positions.

        Returns the new ``pairs`` array of shape (n_pairs, 2), ``i < j``.
        """
        NEIGHBOR_BUILDS.increment()
        checked = positions  # the caller's object, for prefilter identity
        positions = np.asarray(positions, dtype=np.float64)
        n = len(positions)
        if self._excl_codes is None:
            if self.exclusions.size:
                self._excl_codes = np.sort(_encode(self.exclusions, n))
            else:
                self._excl_codes = np.empty(0, dtype=np.int64)

        cutoff = self.scheme.list_cutoff
        wrapped = self.box.wrap(positions)
        n_cells, cell_len = _cell_grid(self.box, cutoff)
        ny, nz = int(n_cells[1]), int(n_cells[2])

        cell_xyz = np.minimum(
            (wrapped / cell_len).astype(np.int64), n_cells - 1
        )
        cell_of_atom = cell_xyz[:, 0] * ny * nz + cell_xyz[:, 1] * nz + cell_xyz[:, 2]
        total_cells = int(np.prod(n_cells))

        # The cost model's neighbour-search workload is the cell
        # enumeration's candidate count.  It only depends on the cell
        # populations — self cells contribute m*(m-1)/2, cross cells
        # la*lb — so it is computed arithmetically (identically to the
        # length of the enumerated list) even when the tree proposes the
        # actual candidates.
        cell_pairs = _neighbour_cell_pairs(n_cells)
        sizes = np.bincount(cell_of_atom, minlength=total_cells).astype(np.int64)
        ca, cb = cell_pairs[:, 0], cell_pairs[:, 1]
        sa, sb = sizes[ca], sizes[cb]
        self_pair = ca == cb
        self.last_candidates = int(
            (sa[self_pair] * (sa[self_pair] - 1) // 2).sum()
            + (sa[~self_pair] * sb[~self_pair]).sum()
        )

        padded = cutoff * (1.0 + 1e-9)
        if n and padded < 0.5 * float(np.min(self.box.lengths)):
            # tree proposes a padded superset; the exact filter below
            # decides (``wrap`` guarantees coordinates in [0, L))
            cand = cKDTree(wrapped, boxsize=self.box.lengths).query_pairs(
                padded, output_type="ndarray"
            )
            lo = cand[:, 0].astype(np.int64, copy=False)
            hi = cand[:, 1].astype(np.int64, copy=False)
        else:
            order = np.argsort(cell_of_atom, kind="stable")
            sorted_cells = cell_of_atom[order]
            # start offset of each cell in the sorted atom order
            starts = np.searchsorted(sorted_cells, np.arange(total_cells + 1))
            cand_i, cand_j = _gather_candidates(order, starts, cell_pairs)
            if cand_i:
                ii = np.concatenate(cand_i)
                jj = np.concatenate(cand_j)
                lo = np.minimum(ii, jj)
                hi = np.maximum(ii, jj)
            else:
                lo = np.empty(0, dtype=np.int64)
                hi = np.empty(0, dtype=np.int64)

        if len(lo):
            # the exact accept test — identical arithmetic for both
            # candidate sources, so the final pair set is too
            plo = positions.take(lo, axis=0)
            dr = self.box.min_image(np.subtract(plo, positions.take(hi, axis=0), out=plo))
            d2 = np.einsum("ij,ij->i", dr, dr)
            sel = np.flatnonzero(d2 <= cutoff * cutoff)
            lo, hi, d2 = lo.take(sel), hi.take(sel), d2.take(sel)
        else:
            d2 = np.empty(0, dtype=np.float64)
        if self._excl_codes.size and len(lo):
            codes = lo * np.int64(n) + hi
            # sorted-membership test; same booleans as np.isin
            at = np.searchsorted(self._excl_codes, codes)
            at[at == len(self._excl_codes)] = 0
            keep2 = self._excl_codes[at] != codes
            lo, hi, d2 = lo[keep2], hi[keep2], d2[keep2]
        # single-key argsort of the (unique) packed codes gives exactly
        # the lexsort((hi, lo)) permutation, in about half the time
        pair_order = np.argsort(lo * np.int64(n) + hi)
        self.pairs = np.stack([lo[pair_order], hi[pair_order]], axis=1)
        self.pair_ref_d = np.sqrt(d2.take(pair_order))

        self._ref_positions = positions.copy()
        self.last_max_disp = 0.0
        self._checked_positions = checked
        self.n_builds += 1
        return self.pairs

    # ------------------------------------------------------------------
    def needs_rebuild(self, positions: np.ndarray) -> bool:
        """True if any atom moved more than ``skin / 2`` since the build."""
        if self._ref_positions is None or self.scheme.skin == 0.0:
            self.last_max_disp = float("inf")
            self._checked_positions = None
            return True
        dr = self.box.min_image(np.asarray(positions) - self._ref_positions)
        max_disp2 = float(np.max(np.einsum("ij,ij->i", dr, dr))) if len(dr) else 0.0
        if max_disp2 > (0.5 * self.scheme.skin) ** 2:
            self.last_max_disp = float("inf")
            self._checked_positions = None
            return True
        self.last_max_disp = float(np.sqrt(max_disp2))
        self._checked_positions = positions
        return False

    def ensure(self, positions: np.ndarray) -> np.ndarray:
        """Rebuild if required; return the current pair list."""
        self.last_ensure_rebuilt = self.needs_rebuild(positions)
        if self.last_ensure_rebuilt:
            self.build(positions)
        return self.pairs

    def adopt(
        self,
        pairs: np.ndarray,
        ref_positions: np.ndarray | None,
        last_candidates: int,
        rebuilt: bool,
        ref_d: np.ndarray | None = None,
        max_disp: float = float("inf"),
        checked_positions: np.ndarray | None = None,
    ) -> None:
        """Take over the outcome of an identical build performed elsewhere.

        Used by the shared-compute layer (:mod:`repro.parallel.shared`):
        with replicated coordinates every rank's build is bit-identical, so
        mirror ranks adopt the building rank's pair list and reference
        positions instead of recomputing them.  ``n_builds`` counts *real*
        builds only and is deliberately not touched.

        ``ref_d``/``max_disp`` replay the builder's prefilter state —
        valid for this rank because its coordinates are bit-identical to
        the builder's — and ``checked_positions`` is *this rank's own*
        positions object, re-binding the identity certificate of
        :meth:`step_prefilter` to the array this rank will evaluate.
        """
        self.pairs = pairs
        self._ref_positions = ref_positions
        self.last_candidates = last_candidates
        self.last_ensure_rebuilt = rebuilt
        self.pair_ref_d = ref_d
        self.last_max_disp = max_disp
        self._checked_positions = checked_positions

    def step_prefilter(
        self, positions: np.ndarray, base: np.ndarray
    ) -> tuple[np.ndarray, float] | None:
        """Certified candidate pre-drop for this step's exact cutoff test.

        Returns ``(ref_d, bound)`` — the build-time pair distances aligned
        with ``base`` rows, and the largest build-time distance a pair can
        have while still reaching ``r_cut`` at the checked coordinates —
        or ``None`` when no bound can be certified.  The minimum-image
        distance is a metric on the torus, so a pair's separation changes
        by at most the sum of its two atoms' displacements since the
        build: rows with ``ref_d > r_cut + 2 * max_disp`` cannot pass the
        exact ``r2 <= r_cut**2`` test, and dropping them before the
        minimum-image chain leaves every surviving row — and therefore
        the accepted pair set, bit for bit — unchanged.  The ``1e-6`` A
        margin swallows the rounding of the stored ``sqrt`` and of the
        displacement measurement.

        Certification is by object identity: ``positions`` must be the
        exact array the last rebuild decision was taken for.  (Mutating
        coordinates in place after that check already voids the Verlet
        list's own skin guarantee, so this adds no new contract.)
        """
        if (
            base is not self.pairs
            or self.pair_ref_d is None
            or len(self.pair_ref_d) != len(base)
            or positions is not self._checked_positions
            or not np.isfinite(self.last_max_disp)
        ):
            return None
        return self.pair_ref_d, self.scheme.r_cut + 2.0 * self.last_max_disp + 1e-6

    @property
    def n_pairs(self) -> int:
        return len(self.pairs)
