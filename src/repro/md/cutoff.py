"""Cutoff schemes: CHARMM-style shifting and switching functions.

The *classic* CHARMM energy calculation studied in the paper truncates
non-bonded interactions at 10 A, with the electrostatic term **shifted** to
zero at the cutoff and the Lennard-Jones term **switched** off smoothly over
a window below the cutoff.  Both schemes and their exact derivatives live
here so the force kernels and the finite-difference tests share one source
of truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CutoffScheme", "shift_function", "switch_function"]


def shift_function(r: np.ndarray, r_cut: float) -> tuple[np.ndarray, np.ndarray]:
    """CHARMM electrostatic shift ``S(r) = (1 - (r/rc)^2)^2`` for ``r <= rc``.

    Multiplying ``q_i q_j / r`` by ``S(r)`` takes both the energy and the
    force smoothly to zero at the cutoff.

    Returns
    -------
    (s, ds_dr):
        The shift factor and its derivative with respect to ``r``; both are
        zero beyond the cutoff.
    """
    if r_cut <= 0:
        raise ValueError("r_cut must be positive")
    x = np.asarray(r, dtype=np.float64) / r_cut
    inside = x <= 1.0
    u = np.where(inside, 1.0 - x * x, 0.0)
    s = u * u
    ds_dr = np.where(inside, -4.0 * x * u / r_cut, 0.0)
    return s, ds_dr


def switch_function(
    r: np.ndarray, r_on: float, r_off: float
) -> tuple[np.ndarray, np.ndarray]:
    """CHARMM switching function over the window ``[r_on, r_off]``.

    ``S = 1`` below ``r_on``; ``S = 0`` above ``r_off``; in between::

        S(r) = (roff^2 - r^2)^2 (roff^2 + 2 r^2 - 3 ron^2) / (roff^2 - ron^2)^3

    Returns ``(s, ds_dr)``, both float64 arrays.
    """
    if not 0 < r_on < r_off:
        raise ValueError(f"require 0 < r_on < r_off, got ({r_on}, {r_off})")
    r = np.asarray(r, dtype=np.float64)
    r2 = r * r
    ron2 = r_on * r_on
    roff2 = r_off * r_off
    denom = (roff2 - ron2) ** 3

    a = roff2 - r2
    s_mid = a * a * (roff2 + 2.0 * r2 - 3.0 * ron2) / denom
    # dS/dr = 12 r (roff^2 - r^2)(ron^2 - r^2) / denom
    ds_mid = 12.0 * r * a * (ron2 - r2) / denom

    below = r < r_on
    above = r > r_off
    s = np.where(below, 1.0, np.where(above, 0.0, s_mid))
    ds = np.where(below | above, 0.0, ds_mid)
    return s, ds


@dataclass(frozen=True)
class CutoffScheme:
    """Bundle of cutoff parameters used by the non-bonded kernels.

    Attributes
    ----------
    r_cut:
        Truncation distance for both LJ and electrostatics (A).  The paper's
        system uses 10 A.
    r_on:
        Inner edge of the LJ switching window.  Defaults to ``0.8 * r_cut``
        (CHARMM inputs commonly use ctonnb = ctofnb - 2 A; the ratio is what
        matters for smoothness, not the exact value).
    skin:
        Extra margin added when building neighbour lists so they stay valid
        for several steps (A).
    """

    r_cut: float = 10.0
    r_on: float | None = None
    skin: float = 2.0

    def __post_init__(self) -> None:
        if self.r_cut <= 0:
            raise ValueError("r_cut must be positive")
        if self.skin < 0:
            raise ValueError("skin must be non-negative")
        if self.r_on is not None and not 0 < self.r_on < self.r_cut:
            raise ValueError("r_on must lie in (0, r_cut)")

    @property
    def switch_on(self) -> float:
        return self.r_on if self.r_on is not None else 0.8 * self.r_cut

    @property
    def list_cutoff(self) -> float:
        """Neighbour-list build radius (cutoff plus skin)."""
        return self.r_cut + self.skin
