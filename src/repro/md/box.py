"""Orthorhombic periodic simulation box.

All minimum-image arithmetic in the engine goes through this class so that
the cutoff code, the cell list and the Ewald sums agree about geometry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PeriodicBox"]


@dataclass(frozen=True)
class PeriodicBox:
    """An orthorhombic box with edge lengths ``(lx, ly, lz)`` in angstrom."""

    lx: float
    ly: float
    lz: float

    def __post_init__(self) -> None:
        if min(self.lx, self.ly, self.lz) <= 0:
            raise ValueError(
                f"box edges must be positive, got ({self.lx}, {self.ly}, {self.lz})"
            )
        # min_image/wrap run on every force evaluation; precompute the edge
        # vector (and its reciprocal, so the hot path multiplies instead of
        # divides) once.  Read-only so the cached arrays cannot be mutated
        # through the `lengths` property.
        lengths = np.array([self.lx, self.ly, self.lz], dtype=np.float64)
        lengths.setflags(write=False)
        inv = 1.0 / lengths
        inv.setflags(write=False)
        object.__setattr__(self, "_lengths", lengths)
        object.__setattr__(self, "_inv_lengths", inv)

    @property
    def lengths(self) -> np.ndarray:
        return self._lengths

    @property
    def volume(self) -> float:
        return self.lx * self.ly * self.lz

    def min_image(self, dr: np.ndarray) -> np.ndarray:
        """Apply the minimum-image convention to displacement vectors.

        Parameters
        ----------
        dr:
            Array of shape (..., 3) of raw displacement vectors.

        Returns
        -------
        Wrapped displacements, same shape; each component in
        ``[-L/2, L/2)`` for the corresponding edge ``L``.
        """
        # in-place chain: one temporary instead of five
        shift = dr * self._inv_lengths
        shift += 0.5
        np.floor(shift, out=shift)
        shift *= self._lengths
        np.subtract(dr, shift, out=shift)
        return shift

    def wrap(self, positions: np.ndarray) -> np.ndarray:
        """Wrap absolute positions into ``[0, L)`` per component."""
        lengths = self._lengths
        wrapped = positions - lengths * np.floor(positions * self._inv_lengths)
        # rounding can land a tiny negative exactly on L; fold it to 0
        return np.where(wrapped >= lengths, 0.0, wrapped)

    def check_cutoff(self, cutoff: float) -> None:
        """Raise if ``cutoff`` violates the minimum-image requirement."""
        half_min = 0.5 * float(min(self.lx, self.ly, self.lz))
        if cutoff > half_min:
            raise ValueError(
                f"cutoff {cutoff} A exceeds half the smallest box edge "
                f"({half_min} A); minimum-image convention would be wrong"
            )
