"""repro — reproduction of Taufer et al., *Performance Characterization of
a Molecular Dynamics Code on PC Clusters* (IPPS 2002).

Subpackages
-----------
``repro.md``          CHARMM-style MD engine (bonded, cutoff non-bonded, Verlet)
``repro.pme``         smooth particle-mesh Ewald + exact Ewald reference
``repro.workloads``   synthetic myoglobin benchmark and smaller systems
``repro.sim``         discrete-event simulation kernel
``repro.cluster``     PC-cluster platform models (networks, nodes, NIC/IRQ)
``repro.mpi``         simulated MPI (real payloads, virtual time)
``repro.cmpi``        CHARMM's portable middleware layer
``repro.parallel``    SPMD rank programs, distributed FFT/PME, cost model
``repro.instrument``  comp/comm/sync timelines, communication-rate stats
``repro.core``        the characterization method (factors, designs, runner)
``repro.experiments`` drivers reproducing every figure of the paper
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
