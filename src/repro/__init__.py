"""repro — reproduction of Taufer et al., *Performance Characterization of
a Molecular Dynamics Code on PC Clusters* (IPPS 2002).

Public surface
--------------
The names in ``__all__`` are the supported API; import them from the
package root (``from repro import run_parallel_md, RunOptions``) rather
than from the implementing submodules, whose layout may change.  Exports
resolve lazily (PEP 562), so ``import repro`` stays cheap and the CLI
keeps its fast startup.

Subpackages
-----------
``repro.md``          CHARMM-style MD engine (bonded, cutoff non-bonded, Verlet)
``repro.pme``         smooth particle-mesh Ewald + exact Ewald reference
``repro.workloads``   synthetic myoglobin benchmark and smaller systems
``repro.sim``         discrete-event simulation kernel
``repro.cluster``     PC-cluster platform models (networks, nodes, NIC/IRQ)
``repro.mpi``         simulated MPI (real payloads, virtual time)
``repro.cmpi``        CHARMM's portable middleware layer
``repro.parallel``    SPMD rank programs, distributed FFT/PME, cost model
``repro.instrument``  timelines, comm stats, metrics registry, span tracing, run logs
``repro.core``        the characterization method (factors, designs, runner)
``repro.campaign``    content-addressed store, campaign engine, federation
``repro.experiments`` drivers reproducing every figure of the paper
"""

from __future__ import annotations

__version__ = "1.0.0"

#: Public name -> implementing module.  ``from repro import X`` resolves
#: through :func:`__getattr__`, importing the submodule on first use.
_PUBLIC_API = {
    # run one parallel MD job
    "run_parallel_md": "repro.parallel.run",
    "RunOptions": "repro.parallel.run",
    "MDRunConfig": "repro.parallel.pmd",
    "ParallelRunResult": "repro.parallel.result",
    # the characterization method
    "CharacterizationRunner": "repro.core.runner",
    "DesignPoint": "repro.core.design",
    "PlatformConfig": "repro.core.factors",
    "ResponseRecord": "repro.core.responses",
    "full_factorial": "repro.core.design",
    "one_factor_at_a_time": "repro.core.design",
    # campaigns: store, engine, federation, boards
    "CampaignEngine": "repro.campaign.engine",
    "ResultStore": "repro.campaign.store",
    "CampaignManifest": "repro.campaign.manifest",
    "merge_into_store": "repro.campaign.federation",
    "work_campaign": "repro.campaign.federation",
    "publish_campaign": "repro.campaign.federation",
    "Board": "repro.campaign.board",
    "board_from_url": "repro.campaign.board",
    "HttpBoardClient": "repro.campaign.coordinator",
    "CoordinatorServer": "repro.campaign.coordinator",
    # observability: spans, metrics, structured logs, dashboard
    "SpanTracer": "repro.instrument.tracing",
    "validate_chrome_trace": "repro.instrument.tracing",
    "MetricsRegistry": "repro.instrument.metrics",
    "REGISTRY": "repro.instrument.metrics",
    "merge_metrics": "repro.instrument.metrics",
    "RunLog": "repro.instrument.runlog",
    "read_runlog": "repro.instrument.runlog",
    "reconstruct_history": "repro.instrument.runlog",
    "register_phase": "repro.instrument.timeline",
    "dashboard": "repro.campaign.dashboard",
    # post-hoc analytics over a warm store
    "run_analysis": "repro.campaign.analytics",
    "AnalysisError": "repro.campaign.analytics",
    # analyzers
    "analyze_trace": "repro.analysis",
    "lint_paths": "repro.analysis",
    # workload builders
    "build_workload": "repro.campaign.workloads",
    "myoglobin_system": "repro.workloads",
    "myoglobin_workload": "repro.workloads",
    "build_peptide_in_water": "repro.workloads",
    "build_water_box": "repro.workloads",
}

__all__ = ["__version__", *sorted(_PUBLIC_API)]


def __getattr__(name: str):
    try:
        module = _PUBLIC_API[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_PUBLIC_API))
