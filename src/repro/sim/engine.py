"""Discrete-event simulation kernel with generator-based processes.

Rank programs are plain Python generators: real (numpy) computation runs
inline, and *virtual time* advances only at explicit yield points.  A
process yields :class:`Sleep` to advance its clock and :class:`Await` to
block on a :class:`Future`; nested protocol code composes with
``yield from``.

The kernel is deterministic: events at equal timestamps fire in scheduling
order (a monotonically increasing sequence number breaks ties).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Generator

__all__ = ["Simulator", "Future", "Sleep", "Await", "Process", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


@dataclass
class Sleep:
    """Effect: resume the yielding process after ``duration`` sim-seconds."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"negative sleep duration {self.duration}")


class Future:
    """A one-shot value that processes can await.

    ``resolve`` may be called at most once; awaiting an already-resolved
    future resumes the process without advancing time.
    """

    __slots__ = ("resolved", "value", "_waiters")

    def __init__(self) -> None:
        self.resolved = False
        self.value: Any = None
        self._waiters: list[Process] = []

    def resolve(self, sim: "Simulator", value: Any = None) -> None:
        if self.resolved:
            raise SimulationError("future resolved twice")
        self.resolved = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            sim.schedule(0.0, lambda p=proc: p._step(self.value))

    def add_waiter(self, proc: "Process") -> None:
        self._waiters.append(proc)


@dataclass
class Await:
    """Effect: block until ``future`` resolves; yields its value back."""

    future: Future


ProcessGen = Generator["Sleep | Await", Any, Any]


class Process:
    """One running generator inside the simulator."""

    __slots__ = ("sim", "gen", "name", "done", "result")

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = "proc") -> None:
        self.sim = sim
        self.gen = gen
        self.name = name
        self.done = False
        self.result: Any = None

    def _step(self, send_value: Any = None) -> None:
        if self.done:
            raise SimulationError(f"stepping finished process {self.name}")
        try:
            effect = self.gen.send(send_value)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            self.sim._process_finished(self)
            return
        if isinstance(effect, Sleep):
            self.sim.schedule(effect.duration, lambda: self._step(None))
        elif isinstance(effect, Await):
            fut = effect.future
            if fut.resolved:
                self.sim.schedule(0.0, lambda: self._step(fut.value))
            else:
                fut.add_waiter(self)
        else:
            raise SimulationError(
                f"process {self.name} yielded {effect!r}; expected Sleep or Await"
            )


# heap entries are plain (time, seq, fn) tuples: the unique seq breaks
# time ties before fn is ever compared, and tuple comparison runs in C —
# the event loop's hottest operation
_Event = tuple[float, int, Callable[[], None]]


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()
        procs = [sim.spawn(rank_main(...), name=f"rank{r}") for r in range(p)]
        sim.run()
        results = [p.result for p in procs]
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[_Event] = []
        self._seq = 0
        self._processes: list[Process] = []
        self._live = 0

    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` after ``delay`` sim-seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay {delay})")
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn))
        self._seq += 1

    def spawn(self, gen: ProcessGen, name: str = "proc") -> Process:
        """Register a process; it takes its first step at the current time."""
        proc = Process(self, gen, name)
        self._processes.append(proc)
        self._live += 1
        self.schedule(0.0, lambda: proc._step(None))
        return proc

    def _process_finished(self, proc: Process) -> None:
        self._live -= 1

    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> float:
        """Drain the event queue; returns the final simulation time.

        Raises :class:`SimulationError` if processes remain blocked when
        the queue empties (deadlock), which is how lost messages and
        mismatched collectives surface in tests.
        """
        while self._heap:
            ev = heapq.heappop(self._heap)
            ev_time = ev[0]
            if until is not None and ev_time > until:
                heapq.heappush(self._heap, ev)
                self.now = until
                return self.now
            if ev_time < self.now - 1e-15:
                raise SimulationError("event queue went backwards")
            self.now = ev_time
            ev[2]()
        if self._live > 0:
            stuck = [p.name for p in self._processes if not p.done]
            raise SimulationError(f"deadlock: processes never finished: {stuck}")
        return self.now
