"""Discrete-event simulation kernel (virtual time, generator processes)."""

from .engine import Await, Future, Process, SimulationError, Simulator, Sleep

__all__ = ["Await", "Future", "Process", "SimulationError", "Simulator", "Sleep"]
