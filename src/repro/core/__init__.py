"""The paper's primary contribution: the workload-characterization method.

Factors and levels (Fig. 1), experimental designs (full and fractional
factorial), the measurement runner and the response-variable records.
"""

from .design import PROCESSOR_LEVELS, DesignPoint, full_factorial, one_factor_at_a_time
from .factors import FOCAL_POINT, PAPER_FACTOR_SPACE, Factor, FactorSpace, PlatformConfig
from .metrics import ScalingMetrics, karp_flatt, recommended_processors, scaling_metrics
from .report import breakdown_table, format_table, speed_table, text_bar, time_series_table
from .responses import ResponseRecord
from .runner import CharacterizationRunner

__all__ = [
    "breakdown_table",
    "CharacterizationRunner",
    "DesignPoint",
    "Factor",
    "FactorSpace",
    "FOCAL_POINT",
    "format_table",
    "full_factorial",
    "one_factor_at_a_time",
    "PAPER_FACTOR_SPACE",
    "PlatformConfig",
    "PROCESSOR_LEVELS",
    "recommended_processors",
    "ResponseRecord",
    "ScalingMetrics",
    "scaling_metrics",
    "karp_flatt",
    "speed_table",
    "text_bar",
    "time_series_table",
]
