"""Response variables: what one measured run reports.

The paper's response variables (Sec. 3.1): wall-clock time of the classic
and PME energy calculations, their computation/communication/
synchronization breakdowns, and per-node communication speeds.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from ..parallel.result import ParallelRunResult
from .design import DesignPoint

__all__ = ["ResponseRecord"]


@dataclass(frozen=True)
class ResponseRecord:
    """Flat response-variable row for one design point."""

    network: str
    middleware: str
    cpus_per_node: int
    n_ranks: int
    replicate: int

    wall_time: float
    classic_time: float
    pme_time: float
    classic_comp: float
    classic_comm: float
    classic_sync: float
    pme_comp: float
    pme_comm: float
    pme_sync: float
    comm_mean_mbs: float
    comm_min_mbs: float
    comm_max_mbs: float
    final_energy: float
    strategy: str = "replicated"

    # ------------------------------------------------------------------
    @property
    def total_time(self) -> float:
        return self.classic_time + self.pme_time

    @property
    def classic_overhead_fraction(self) -> float:
        if self.classic_time <= 0:
            return 0.0
        return (self.classic_comm + self.classic_sync) / self.classic_time

    @property
    def pme_overhead_fraction(self) -> float:
        if self.pme_time <= 0:
            return 0.0
        return (self.pme_comm + self.pme_sync) / self.pme_time

    @property
    def total_comp(self) -> float:
        return self.classic_comp + self.pme_comp

    @property
    def total_comm(self) -> float:
        return self.classic_comm + self.pme_comm

    @property
    def total_sync(self) -> float:
        return self.classic_sync + self.pme_sync

    # ------------------------------------------------------------------
    @classmethod
    def from_run(cls, point: DesignPoint, result: ParallelRunResult) -> "ResponseRecord":
        classic = result.component("classic")
        pme = result.component("pme")
        stats = result.comm_stats()
        return cls(
            network=point.config.network,
            middleware=point.config.middleware,
            cpus_per_node=point.config.cpus_per_node,
            n_ranks=point.n_ranks,
            replicate=point.replicate,
            wall_time=result.wall_time(),
            classic_time=classic.total,
            pme_time=pme.total,
            classic_comp=classic.comp,
            classic_comm=classic.comm,
            classic_sync=classic.sync,
            pme_comp=pme.comp,
            pme_comm=pme.comm,
            pme_sync=pme.sync,
            comm_mean_mbs=stats.mean,
            comm_min_mbs=stats.minimum,
            comm_max_mbs=stats.maximum,
            final_energy=result.energies[-1].total if result.energies else float("nan"),
            strategy=getattr(point, "strategy", "replicated"),
        )

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}
