"""Parallel-performance metrics derived from response records.

Speedup, parallel efficiency, the Karp-Flatt experimentally determined
serial fraction, and a crossover finder — the quantities one reads off
scaling charts like the paper's Figures 3/5 when deciding how many
processors to give a single calculation (the question the paper poses in
its conclusion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .responses import ResponseRecord

__all__ = [
    "ScalingMetrics",
    "scaling_metrics",
    "karp_flatt",
    "recommended_processors",
]


@dataclass(frozen=True)
class ScalingMetrics:
    """Scaling numbers for one processor count relative to serial."""

    n_ranks: int
    time: float
    speedup: float
    efficiency: float
    serial_fraction: float | None  # Karp-Flatt; None at p=1


def karp_flatt(speedup: float, p: int) -> float:
    """Experimentally determined serial fraction ``e``.

    ``e = (1/S - 1/p) / (1 - 1/p)``.  Rising ``e`` with ``p`` signals
    overhead growth (not just Amdahl saturation).
    """
    if p < 2:
        raise ValueError("Karp-Flatt needs p >= 2")
    if speedup <= 0:
        raise ValueError("speedup must be positive")
    return (1.0 / speedup - 1.0 / p) / (1.0 - 1.0 / p)


def scaling_metrics(records: Sequence[ResponseRecord]) -> list[ScalingMetrics]:
    """Per-record scaling metrics relative to the p=1 entry.

    ``records`` must contain exactly one record with ``n_ranks == 1`` and
    be all from the same platform configuration.
    """
    serial = [r for r in records if r.n_ranks == 1]
    if len(serial) != 1:
        raise ValueError("need exactly one serial (p=1) record")
    t1 = serial[0].total_time
    out = []
    for r in sorted(records, key=lambda r: r.n_ranks):
        s = t1 / r.total_time if r.total_time > 0 else float("inf")
        out.append(
            ScalingMetrics(
                n_ranks=r.n_ranks,
                time=r.total_time,
                speedup=s,
                efficiency=s / r.n_ranks,
                serial_fraction=None if r.n_ranks == 1 else karp_flatt(s, r.n_ranks),
            )
        )
    return out


def recommended_processors(
    records: Sequence[ResponseRecord], min_efficiency: float = 0.5
) -> int:
    """Largest processor count whose parallel efficiency stays acceptable.

    The paper's practical question: 'which number of processors can be
    assigned to a single calculation ... until we reach the limits of
    scalability'.
    """
    if not 0 < min_efficiency <= 1:
        raise ValueError("min_efficiency must be in (0, 1]")
    best = 1
    for m in scaling_metrics(records):
        if m.efficiency >= min_efficiency and m.n_ranks > best:
            best = m.n_ranks
    return best
