"""Plain-text rendering of response tables and breakdown charts.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep the formatting in one place.
"""

from __future__ import annotations

from typing import Sequence

from .responses import ResponseRecord

__all__ = ["format_table", "time_series_table", "breakdown_table", "speed_table", "text_bar"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence], precision: int = 3) -> str:
    """A fixed-width text table."""

    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.{precision}f}"
        return str(value)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in cells)) if cells else len(headers[c])
        for c in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def text_bar(fraction: float, width: int = 30, fill: str = "#") -> str:
    """A proportional text bar for breakdown charts."""
    fraction = min(max(fraction, 0.0), 1.0)
    n = round(fraction * width)
    return fill * n + "." * (width - n)


def time_series_table(records: Sequence[ResponseRecord], label: str = "") -> str:
    """Wall-time rows (classic / PME / total) per processor count."""
    headers = ["platform", "p", "classic (s)", "pme (s)", "total (s)"]
    rows = [
        [
            f"{r.network}/{r.middleware}/{'uni' if r.cpus_per_node == 1 else 'dual'}",
            r.n_ranks,
            r.classic_time,
            r.pme_time,
            r.total_time,
        ]
        for r in records
    ]
    title = f"== {label} ==\n" if label else ""
    return title + format_table(headers, rows)


def breakdown_table(
    records: Sequence[ResponseRecord], component: str = "classic", label: str = ""
) -> str:
    """Percentage comp/comm/sync rows per processor count.

    ``component`` is ``"classic"``, ``"pme"`` or ``"total"``.
    """
    headers = ["platform", "p", "comp %", "comm %", "sync %", "bar (comp#comm+sync-)"]
    rows = []
    for r in records:
        if component == "classic":
            comp, comm, sync = r.classic_comp, r.classic_comm, r.classic_sync
        elif component == "pme":
            comp, comm, sync = r.pme_comp, r.pme_comm, r.pme_sync
        elif component == "total":
            comp, comm, sync = r.total_comp, r.total_comm, r.total_sync
        else:
            raise ValueError(f"unknown component {component!r}")
        total = comp + comm + sync
        fc = comp / total if total else 0.0
        fm = comm / total if total else 0.0
        fs = sync / total if total else 0.0
        bar = (
            text_bar(fc, 20, "#")[: round(fc * 20)]
            + text_bar(fm, 20, "+")[: round(fm * 20)]
            + text_bar(fs, 20, "-")[: round(fs * 20)]
        )
        rows.append(
            [
                f"{r.network}/{r.middleware}/{'uni' if r.cpus_per_node == 1 else 'dual'}",
                r.n_ranks,
                100 * fc,
                100 * fm,
                100 * fs,
                bar,
            ]
        )
    title = f"== {label} ({component}) ==\n" if label else ""
    return title + format_table(headers, rows, precision=1)


def speed_table(records: Sequence[ResponseRecord], label: str = "") -> str:
    """Per-node communication speed rows (mean, min, max in MB/s)."""
    headers = ["platform", "p", "mean MB/s", "min MB/s", "max MB/s"]
    rows = [
        [
            f"{r.network}/{r.middleware}/{'uni' if r.cpus_per_node == 1 else 'dual'}",
            r.n_ranks,
            r.comm_mean_mbs,
            r.comm_min_mbs,
            r.comm_max_mbs,
        ]
        for r in records
        if r.n_ranks > 1
    ]
    title = f"== {label} ==\n" if label else ""
    return title + format_table(headers, rows, precision=1)
