"""The characterization runner: execute design points, collect responses.

This is the paper's measurement harness: for each design point it runs
the 10-step MD energy calculation on the simulated platform and records
the response variables.  Results are memoized per runner instance so the
figure drivers can share runs (several figures slice the same design).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from ..md.system import MDSystem
from ..parallel.costmodel import PIII_1GHZ, MachineCostModel
from ..parallel.pmd import MDRunConfig
from ..parallel.result import ParallelRunResult
from ..parallel.run import run_parallel_md
from .design import DesignPoint
from .factors import PlatformConfig
from .responses import ResponseRecord

__all__ = ["CharacterizationRunner"]


@dataclass
class CharacterizationRunner:
    """Runs design points over one workload.

    Parameters
    ----------
    system:
        The MD system under study (the paper's myoglobin benchmark, or
        any other workload).
    positions:
        Initial coordinates.
    config:
        MD run parameters; the paper measures 10 steps.
    cost:
        Machine cost model.
    base_seed:
        Per-point seeds are derived deterministically from this.
    """

    system: MDSystem
    positions: np.ndarray
    config: MDRunConfig = field(default_factory=MDRunConfig)
    cost: MachineCostModel = PIII_1GHZ
    base_seed: int = 2002

    _cache: dict[tuple, ParallelRunResult] = field(default_factory=dict, init=False)

    # ------------------------------------------------------------------
    def _point_seed(self, point: DesignPoint) -> int:
        """Deterministic, distinct seed per design point and replicate.

        Uses a stable digest, not ``hash()``: string hashing is randomized
        per process (PYTHONHASHSEED), which would give every run of the
        same experiment different platform noise.
        """
        key = (
            point.config.network,
            point.config.middleware,
            point.config.cpus_per_node,
            point.n_ranks,
            point.replicate,
        )
        digest = zlib.crc32(repr(key).encode())
        return (self.base_seed + digest) % (2**31 - 1)

    def run_point(self, point: DesignPoint) -> ParallelRunResult:
        """Execute (or recall) one design point."""
        key = (
            point.config.network,
            point.config.middleware,
            point.config.cpus_per_node,
            point.n_ranks,
            point.replicate,
        )
        if key not in self._cache:
            spec = point.config.cluster_spec(point.n_ranks, seed=self._point_seed(point))
            self._cache[key] = run_parallel_md(
                self.system,
                self.positions,
                spec,
                middleware=point.config.middleware,
                config=self.config,
                cost=self.cost,
            )
        return self._cache[key]

    # ------------------------------------------------------------------
    def measure(self, points: list[DesignPoint]) -> list[ResponseRecord]:
        """Run a whole design; returns one response row per point."""
        return [ResponseRecord.from_run(p, self.run_point(p)) for p in points]

    def sweep(
        self, config: PlatformConfig, processor_levels: tuple[int, ...] = (1, 2, 4, 8)
    ) -> list[ResponseRecord]:
        """Processor-count sweep at a fixed platform configuration."""
        points = [DesignPoint(config=config, n_ranks=p) for p in processor_levels]
        return self.measure(points)
