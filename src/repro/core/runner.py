"""The characterization runner: execute design points, collect responses.

This is the paper's measurement harness: for each design point it runs
the 10-step MD energy calculation on the simulated platform and records
the response variables.  Results are memoized through the campaign
layer's content-addressed store (:mod:`repro.campaign.store`): response
records are keyed by (workload fingerprint, design point, run config,
cost model, schema version), so any two runners over the same workload —
in the same process or via a shared persistent store, across processes —
resolve to the same entries and never duplicate work.  Full
:class:`ParallelRunResult` objects are additionally memoized per process
for callers that need timelines and transfers, not just responses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..campaign.keys import cache_key, point_seed, workload_fingerprint
from ..campaign.store import ResultStore, shared_memory_store
from ..md.system import MDSystem
from ..parallel.costmodel import PIII_1GHZ, MachineCostModel
from ..parallel.pmd import MDRunConfig
from ..parallel.result import ParallelRunResult
from ..parallel.run import RunOptions, run_parallel_md
from .design import DesignPoint
from .factors import PlatformConfig
from .responses import ResponseRecord

__all__ = ["CharacterizationRunner"]

#: Process-wide memo of full run results, keyed by the campaign cache key.
#: Shared across runner instances so two runners over the same workload
#: never re-simulate a design point within one process.
_RUN_MEMO: dict[str, ParallelRunResult] = {}


@dataclass
class CharacterizationRunner:
    """Runs design points over one workload.

    Parameters
    ----------
    system:
        The MD system under study (the paper's myoglobin benchmark, or
        any other workload).
    positions:
        Initial coordinates.
    config:
        MD run parameters; the paper measures 10 steps.
    cost:
        Machine cost model.
    base_seed:
        Per-point seeds are derived deterministically from this.
    store:
        Response-record store.  Defaults to the process-wide in-memory
        store; pass a persistent :class:`ResultStore` to share records
        across processes (warm-cache figure regeneration then performs
        zero MD work).
    """

    system: MDSystem
    positions: np.ndarray
    config: MDRunConfig = field(default_factory=MDRunConfig)
    cost: MachineCostModel = PIII_1GHZ
    base_seed: int = 2002
    store: ResultStore | None = None

    _fingerprint: str | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.store is None:
            self.store = shared_memory_store()

    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """Content hash of this runner's workload (computed once)."""
        if self._fingerprint is None:
            self._fingerprint = workload_fingerprint(self.system, self.positions)
        return self._fingerprint

    def point_key(self, point: DesignPoint) -> str:
        """The content address of one design point's response record."""
        return cache_key(self.fingerprint, point, self.config, self.cost, self.base_seed)

    def _point_seed(self, point: DesignPoint) -> int:
        """Deterministic, distinct seed per design point and replicate."""
        return point_seed(self.base_seed, point)

    def run_point(self, point: DesignPoint) -> ParallelRunResult:
        """Execute (or recall) one design point's full run result."""
        key = self.point_key(point)
        if key not in _RUN_MEMO:
            spec = point.config.cluster_spec(point.n_ranks, seed=self._point_seed(point))
            options = RunOptions.for_point(point, config=self.config, cost=self.cost)
            _RUN_MEMO[key] = run_parallel_md(self.system, self.positions, spec, options)
        return _RUN_MEMO[key]

    # ------------------------------------------------------------------
    def run_record(self, point: DesignPoint) -> ResponseRecord:
        """One response row, through the store: hits perform no MD work."""
        key = self.point_key(point)
        cached = self.store.get(key)
        if cached is not None:
            return cached
        record = ResponseRecord.from_run(point, self.run_point(point))
        self.store.put(key, record, {"label": point.label(), "source": "runner"})
        return record

    def measure(self, points: list[DesignPoint]) -> list[ResponseRecord]:
        """Run a whole design; returns one response row per point."""
        return [self.run_record(p) for p in points]

    def sweep(
        self, config: PlatformConfig, processor_levels: tuple[int, ...] = (1, 2, 4, 8)
    ) -> list[ResponseRecord]:
        """Processor-count sweep at a fixed platform configuration."""
        points = [DesignPoint(config=config, n_ranks=p) for p in processor_levels]
        return self.measure(points)
