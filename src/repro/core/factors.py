"""The experimental factor space (the paper's Figure 1).

Three platform factors, each with discrete levels:

* **networking** — ``tcp-gige`` | ``score-gige`` | ``myrinet``
  (plus the prior-work ``tcp-fast-ethernet`` extension level);
* **middleware** — ``mpi`` | ``cmpi``;
* **cpus per node** — ``1`` | ``2``.

A :class:`PlatformConfig` is one point of the space; the *focal point* of
the paper's fractional design is MPI over TCP/IP on Gigabit Ethernet with
uni-processor nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator

from ..cluster.machine import ClusterSpec, NodeSpec
from ..cluster.network import NETWORKS

__all__ = ["Factor", "FactorSpace", "PlatformConfig", "FOCAL_POINT", "PAPER_FACTOR_SPACE"]

MIDDLEWARE_LEVELS = ("mpi", "cmpi")
CPU_LEVELS = (1, 2)


@dataclass(frozen=True)
class Factor:
    """One experimental factor and its discrete levels."""

    name: str
    levels: tuple

    def __post_init__(self) -> None:
        if len(self.levels) < 2:
            raise ValueError(f"factor {self.name!r} needs at least two levels")
        if len(set(self.levels)) != len(self.levels):
            raise ValueError(f"factor {self.name!r} has duplicate levels")

    def index_of(self, level) -> int:
        try:
            return self.levels.index(level)
        except ValueError:
            raise ValueError(f"{level!r} is not a level of factor {self.name!r}") from None


@dataclass(frozen=True)
class PlatformConfig:
    """One point in the factor space."""

    network: str = "tcp-gige"
    middleware: str = "mpi"
    cpus_per_node: int = 1

    def __post_init__(self) -> None:
        if self.network not in NETWORKS:
            raise ValueError(f"unknown network level {self.network!r}")
        if self.middleware not in MIDDLEWARE_LEVELS:
            raise ValueError(f"unknown middleware level {self.middleware!r}")
        if self.cpus_per_node not in CPU_LEVELS:
            raise ValueError(f"cpus_per_node must be one of {CPU_LEVELS}")

    def cluster_spec(self, n_ranks: int, seed: int = 2002, max_nodes: int = 16) -> ClusterSpec:
        """Materialize this configuration for a given processor count."""
        return ClusterSpec(
            n_ranks=n_ranks,
            network=NETWORKS[self.network](),
            node=NodeSpec(cpus_per_node=self.cpus_per_node),
            max_nodes=max_nodes,
            seed=seed,
        )

    def label(self) -> str:
        cpus = "uni" if self.cpus_per_node == 1 else "dual"
        return f"{self.network}/{self.middleware}/{cpus}"

    def with_level(self, factor_name: str, level) -> "PlatformConfig":
        """A copy with one factor moved to a different level."""
        if factor_name == "network":
            return replace(self, network=level)
        if factor_name == "middleware":
            return replace(self, middleware=level)
        if factor_name == "cpus_per_node":
            return replace(self, cpus_per_node=level)
        raise ValueError(f"unknown factor {factor_name!r}")


#: The reference case of the paper's fractional factorial design.
FOCAL_POINT = PlatformConfig(network="tcp-gige", middleware="mpi", cpus_per_node=1)


@dataclass(frozen=True)
class FactorSpace:
    """A set of factors spanning a discrete design space."""

    factors: tuple[Factor, ...] = field(
        default_factory=lambda: (
            Factor("network", ("tcp-gige", "score-gige", "myrinet")),
            Factor("middleware", MIDDLEWARE_LEVELS),
            Factor("cpus_per_node", CPU_LEVELS),
        )
    )

    def __post_init__(self) -> None:
        names = [f.name for f in self.factors]
        if len(set(names)) != len(names):
            raise ValueError("duplicate factor names")

    def factor(self, name: str) -> Factor:
        for f in self.factors:
            if f.name == name:
                return f
        raise KeyError(f"no factor named {name!r}")

    @property
    def n_points(self) -> int:
        n = 1
        for f in self.factors:
            n *= len(f.levels)
        return n

    def points(self) -> Iterator[PlatformConfig]:
        """Every configuration of the full factorial design."""

        def rec(i: int, cfg: PlatformConfig) -> Iterator[PlatformConfig]:
            if i == len(self.factors):
                yield cfg
                return
            f = self.factors[i]
            for level in f.levels:
                yield from rec(i + 1, cfg.with_level(f.name, level))

        yield from rec(0, FOCAL_POINT)


#: The 3 x 2 x 2 = 12-point space of the paper (Sec. 3.1: "all 12 cases").
PAPER_FACTOR_SPACE = FactorSpace()
