"""Experimental designs over the platform factor space.

The paper gathers the full factorial (all 12 platform points) but reports
a *fractional factorial design centred on the focal point*: vary one
factor at a time, moving along the axes of Figure 1 (Sec. 3.1).  Both
designs are provided, plus processor-count sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

from .factors import FOCAL_POINT, FactorSpace, PlatformConfig

__all__ = ["DesignPoint", "full_factorial", "one_factor_at_a_time", "PROCESSOR_LEVELS"]

#: The processor counts of every chart in the paper.
PROCESSOR_LEVELS: tuple[int, ...] = (1, 2, 4, 8)


@dataclass(frozen=True)
class DesignPoint:
    """One run to execute: a platform config at one processor count.

    ``strategy`` selects the decomposition (``"replicated"`` — CHARMM's
    scheme, the paper's subject — or ``"spatial"``, the domain
    decomposition of :mod:`repro.parallel.spatial`).  The default keeps
    every historical design point, wire document, cache key and platform
    seed unchanged: the field is serialized only when off-default.
    """

    config: PlatformConfig
    n_ranks: int
    replicate: int = 0
    strategy: str = "replicated"

    def label(self) -> str:
        suffix = "" if self.strategy == "replicated" else f" {self.strategy}"
        return f"{self.config.label()} p={self.n_ranks}{suffix}"

    # -- wire format (lease boards, worker hand-off) -------------------
    def to_doc(self) -> dict:
        """A JSON-able document round-tripping through :meth:`from_doc`."""
        doc = {
            "network": self.config.network,
            "middleware": self.config.middleware,
            "cpus_per_node": self.config.cpus_per_node,
            "n_ranks": self.n_ranks,
            "replicate": self.replicate,
        }
        if self.strategy != "replicated":
            doc["strategy"] = self.strategy
        return doc

    @classmethod
    def from_doc(cls, doc: dict) -> "DesignPoint":
        return cls(
            config=PlatformConfig(
                network=doc["network"],
                middleware=doc["middleware"],
                cpus_per_node=doc["cpus_per_node"],
            ),
            n_ranks=doc["n_ranks"],
            replicate=doc.get("replicate", 0),
            strategy=doc.get("strategy", "replicated"),
        )


def full_factorial(
    space: FactorSpace | None = None,
    processor_levels: tuple[int, ...] = PROCESSOR_LEVELS,
    replicates: int = 1,
) -> list[DesignPoint]:
    """Every platform point at every processor count."""
    space = space or FactorSpace()
    if replicates < 1:
        raise ValueError("replicates must be >= 1")
    return [
        DesignPoint(config=cfg, n_ranks=p, replicate=r)
        for cfg in space.points()
        for p in processor_levels
        for r in range(replicates)
    ]


def one_factor_at_a_time(
    space: FactorSpace | None = None,
    focal: PlatformConfig = FOCAL_POINT,
    processor_levels: tuple[int, ...] = PROCESSOR_LEVELS,
) -> list[DesignPoint]:
    """The paper's fractional design: move along one axis at a time.

    Includes the focal point itself once, then each off-focal level of
    each factor, each at every processor count.
    """
    space = space or FactorSpace()
    configs: list[PlatformConfig] = [focal]
    for factor in space.factors:
        focal_level = getattr(focal, factor.name)
        for level in factor.levels:
            if level != focal_level:
                configs.append(focal.with_level(factor.name, level))
    return [
        DesignPoint(config=cfg, n_ranks=p)
        for cfg in configs
        for p in processor_levels
    ]
