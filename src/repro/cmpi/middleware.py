"""CMPI — CHARMM's portable message-passing middleware, reconstructed.

Section 4.2 of the paper describes it precisely:

* heavy use of **non-blocking communication with split send/receive
  calls** as the only primitives;
* all remaining synchronization "implemented by repeated exchanges of
  empty messages (or one byte) among nearest neighbor-processes", and a
  single synchronization "is repeated p-1 times for p processors".

Global operations are therefore naive: every rank split-sends its full
contribution to every peer and combines locally, bracketed by the
neighbour-ring synchronization.  On per-packet-overhead networks (TCP/IP
on Ethernet) the p-1 tiny-message rounds and the O(p^2) full-size
messages destroy scalability — the Figure 8 pathology.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..instrument.timeline import Category
from ..mpi.endpoint import EMPTY_PAYLOAD, RankEndpoint
from ..mpi.middleware import Middleware
from ..sim.engine import Sleep

__all__ = ["CMPIMiddleware"]


class CMPIMiddleware(Middleware):
    """The portable CHARMM middleware layer."""

    name = "cmpi"

    #: extra host time per split-phase call (argument marshalling in the
    #: portability layer); small but it multiplies the message count
    call_overhead: float = 4.0e-6

    # ------------------------------------------------------------------
    def _charge_call(self, ep: RankEndpoint):
        """Generator: book and *spend* the per-call marshalling time.

        The cost must advance the virtual clock as well as the timeline —
        booking without sleeping would attribute seconds that never
        existed on the clock, which the runtime sanitizer's
        timeline-accounting invariant (REP304) rejects.
        """
        ep.timeline.add(Category.COMM, self.call_overhead)
        yield Sleep(self.call_overhead)

    def sync(self, ep: RankEndpoint):
        """Neighbour-ring synchronization: p-1 one-byte exchange rounds."""
        p = ep.size
        if p == 1:
            return
        tag = ep.next_collective_tag("cmpi-sync")
        with ep.timeline.as_category(Category.SYNC):
            for k in range(1, p):
                dest = (ep.rank + k) % p
                src = (ep.rank - k) % p
                yield from self._charge_call(ep)
                yield from ep.sendrecv(
                    dest, EMPTY_PAYLOAD, src, tag + k,
                    expect_nbytes=len(EMPTY_PAYLOAD), expect_dtype="bytes",
                )

    # ------------------------------------------------------------------
    def barrier(self, ep: RankEndpoint):
        yield from self.sync(ep)

    def allreduce(self, ep: RankEndpoint, array: np.ndarray, op: Callable = np.add):
        """Everyone split-sends the full vector to everyone, combines locally."""
        p = ep.size
        data = np.asarray(array).copy()
        if p == 1:
            return data
        tag = ep.next_collective_tag("allreduce")
        send_reqs = []
        recv_reqs = []
        for k in range(1, p):
            peer = (ep.rank + k) % p
            yield from self._charge_call(ep)
            # every peer contributes a block shaped like ours (SPMD)
            recv_reqs.append(
                (
                    yield from ep.irecv(
                        (ep.rank - k) % p, tag,
                        expect_nbytes=int(data.nbytes), expect_dtype=str(data.dtype),
                    )
                )
            )
            send_reqs.append((yield from ep.isend(peer, data, tag)))
        for rreq in recv_reqs:
            other = yield from rreq.wait()
            data = op(data, other)
        for sreq in send_reqs:
            yield from sreq.wait()
        yield from self.sync(ep)
        return data

    def allgatherv(self, ep: RankEndpoint, block: np.ndarray):
        """Split-send own block to all peers, receive all blocks."""
        p = ep.size
        blocks: list[np.ndarray | None] = [None] * p
        blocks[ep.rank] = np.asarray(block).copy()
        if p == 1:
            return blocks
        tag = ep.next_collective_tag("allgatherv")
        send_reqs = []
        recv_reqs = []
        for k in range(1, p):
            peer = (ep.rank + k) % p
            src = (ep.rank - k) % p
            yield from self._charge_call(ep)
            recv_reqs.append((src, (yield from ep.irecv(src, tag))))
            send_reqs.append((yield from ep.isend(peer, blocks[ep.rank], tag)))
        for src, rreq in recv_reqs:
            blocks[src] = yield from rreq.wait()
        for sreq in send_reqs:
            yield from sreq.wait()
        yield from self.sync(ep)
        return blocks

    def exchange(self, ep: RankEndpoint, dest: int, payload, source: int, tag: int = 0):
        """Paired neighbour exchange through the portability layer.

        One marshalling charge per call — CMPI's split-phase primitives
        sit behind the same argument-packing shim as every other entry
        point — then the receive-first paired exchange.
        """
        yield from self._charge_call(ep)
        result = yield from ep.sendrecv(dest, payload, source, tag=tag)
        return result

    def alltoallv(self, ep: RankEndpoint, send_blocks: list):
        """Direct split sends/receives of the personalized blocks."""
        p = ep.size
        if len(send_blocks) != p:
            raise ValueError(f"need {p} send blocks, got {len(send_blocks)}")
        recv_blocks: list = [None] * p
        recv_blocks[ep.rank] = send_blocks[ep.rank]
        if p == 1:
            return recv_blocks
        tag = ep.next_collective_tag("alltoallv")
        send_reqs = []
        recv_reqs = []
        for k in range(1, p):
            peer = (ep.rank + k) % p
            src = (ep.rank - k) % p
            yield from self._charge_call(ep)
            recv_reqs.append((src, (yield from ep.irecv(src, tag))))
            send_reqs.append((yield from ep.isend(peer, send_blocks[peer], tag)))
        for src, rreq in recv_reqs:
            recv_blocks[src] = yield from rreq.wait()
        for sreq in send_reqs:
            yield from sreq.wait()
        yield from self.sync(ep)
        return recv_blocks
