"""CMPI: CHARMM's portable middleware layer (split ops + neighbour sync)."""

from .middleware import CMPIMiddleware

__all__ = ["CMPIMiddleware"]
