"""Cost-model calibration: fit machine constants to target serial times.

The paper's serial measurement (Figure 3, one processor, 10 steps) pins
two totals: the classic energy calculation (~3.4 s) and the PME energy
calculation (~2.8 s).  Given the measured operation counts of a workload,
:func:`calibrate` rescales a base :class:`MachineCostModel` so the model
reproduces those totals exactly — the procedure used to produce
:data:`repro.parallel.costmodel.PIII_1GHZ`, kept as code so recalibrating
against a different machine (or a rescaled workload) is one call.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..md.system import MDSystem
from .costmodel import MachineCostModel, fft_units

__all__ = ["WorkloadCounts", "measure_counts", "calibrate"]


@dataclass(frozen=True)
class WorkloadCounts:
    """Per-step operation counts of a workload (serial execution)."""

    pairs_in_cutoff: int
    bonded_terms: int
    exclusions: int
    n_atoms: int
    spread_points: int  # spreading + interpolation stencil points per step
    fft_unit_count: float  # forward + inverse butterfly units per step
    grid_points: int  # pointwise mesh passes per step

    def classic_seconds(self, m: MachineCostModel) -> float:
        return (
            m.classic_pairs(self.pairs_in_cutoff)
            + m.bonded(self.bonded_terms)
            + m.integrate(self.n_atoms)
        )

    def pme_seconds(self, m: MachineCostModel) -> float:
        return (
            m.spread(self.spread_points)
            + m.fft(self.fft_unit_count)
            + m.grid_pass(self.grid_points)
            + m.exclusions(self.exclusions)
        )


def measure_counts(system: MDSystem, positions: np.ndarray) -> WorkloadCounts:
    """Run one serial energy evaluation and collect its operation counts."""
    pairs = system.neighbor_list.ensure(positions)
    system.classic_energy_forces(positions, pairs)
    n_pairs = system.nonbonded.last_pair_count

    if system.uses_pme:
        kx, ky, kz = system.pme.grid_shape
        order = system.pme.order
        spread_points = 2 * system.n_atoms * order**3
        units = 2 * fft_units((ky * kz, kx), (kx * kz, ky), (kx * ky, kz))
        grid_points = 2 * kx * ky * kz
    else:
        spread_points = 0
        units = 0.0
        grid_points = 0

    return WorkloadCounts(
        pairs_in_cutoff=n_pairs,
        bonded_terms=system.bonded_tables.n_terms,
        exclusions=len(system.exclusions),
        n_atoms=system.n_atoms,
        spread_points=spread_points,
        fft_unit_count=units,
        grid_points=grid_points,
    )


def calibrate(
    counts: WorkloadCounts,
    classic_target: float,
    pme_target: float,
    base: MachineCostModel | None = None,
) -> MachineCostModel:
    """Rescale a cost model so the workload hits the target step times.

    Parameters
    ----------
    counts:
        Operation counts per step (:func:`measure_counts`).
    classic_target, pme_target:
        Target seconds *per step* for the classic and PME components.
    base:
        Model providing the relative weights within each component;
        defaults to :class:`MachineCostModel`'s reference values.

    Returns a new :class:`MachineCostModel`; the classic-side constants
    (pair, bonded, integrate, neighbour-candidate) are scaled by one
    factor and the PME-side constants (spread, fft, grid, exclusion) by
    another, preserving the base model's internal ratios.
    """
    if classic_target <= 0 or pme_target <= 0:
        raise ValueError("targets must be positive")
    base = base or MachineCostModel()

    classic_now = counts.classic_seconds(base)
    pme_now = counts.pme_seconds(base)
    if classic_now <= 0 or pme_now <= 0:
        raise ValueError("workload counts produce zero model time")

    k_classic = classic_target / classic_now
    k_pme = pme_target / pme_now
    return replace(
        base,
        pair_cost=base.pair_cost * k_classic,
        pair_candidate_cost=base.pair_candidate_cost * k_classic,
        bonded_cost=base.bonded_cost * k_classic,
        integrate_cost=base.integrate_cost * k_classic,
        spread_cost=base.spread_cost * k_pme,
        fft_cost=base.fft_cost * k_pme,
        grid_cost=base.grid_cost * k_pme,
        exclusion_cost=base.exclusion_cost * k_pme,
    )
