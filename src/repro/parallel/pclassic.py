"""Replicated-data classic energy calculation (one rank's share).

The classic component of the energy routine: the rank's slice of the
bonded-term tables plus its block of the cutoff pair list.  Coordinates
are replicated, so no communication happens here; the all-to-all
collective combine is issued by the step driver afterwards
(:mod:`repro.parallel.pmd`), exactly as in the paper's Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.contract import ScheduleContract
from ..md.bonded import bonded_energy_forces
from ..md.energy import EnergyBreakdown
from ..md.nonbonded import NonbondedKernel
from ..md.system import MDSystem
from .costmodel import MachineCostModel
from .decomposition import AtomDecomposition, slice_bonded_tables
from .shared import SharedComputeCache

__all__ = ["ParallelClassic", "SCHEDULE_CONTRACT"]

#: The classic phase is replicated-data compute: no communication at
#: all — the combine is the step driver's allreduce, not ours.  The
#: static verifier holds us to that (rule REP406).
SCHEDULE_CONTRACT = ScheduleContract(name="classic-phase", per_step=())


@dataclass(frozen=True)
class ClassicResult:
    """One rank's classic-energy output plus its cost-model counters."""

    energies: EnergyBreakdown
    forces: np.ndarray
    #: pairs actually evaluated inside the cutoff (cost-model input)
    n_pairs: int
    #: bonded terms evaluated
    n_terms: int


class ParallelClassic:
    """One rank's classic-energy evaluator."""

    def __init__(
        self,
        system: MDSystem,
        decomp: AtomDecomposition,
        rank: int,
        cost: MachineCostModel,
        shared: SharedComputeCache | None = None,
        kernel_backend: str = "numpy",
    ) -> None:
        self.system = system
        self.decomp = decomp
        self.rank = rank
        self.cost = cost
        self.tables = slice_bonded_tables(system.bonded_tables, decomp, rank)
        # the per-atom LJ tables are identical on every rank: build once
        lj_tables = None
        if shared is not None:
            lj_tables = shared.once(
                "lj-tables",
                lambda: system.forcefield.lj_tables(system.topology.type_names),
            )
        # a private kernel so per-rank pair counters do not interleave
        self.kernel = NonbondedKernel(
            system.forcefield,
            system.topology.type_names,
            system.charges,
            system.box,
            system.scheme,
            elec_mode=system.nonbonded.elec_mode,
            ewald_alpha=system.nonbonded.ewald_alpha,
            lj_tables=lj_tables,
            backend=kernel_backend,
            shared_statics=shared.pair_statics if shared is not None else None,
        )
        # this rank's pair blocks are row slices of its neighbour list's
        # base array, so the list can certify a candidate pre-drop
        self.kernel.attach_prefilter(system.neighbor_list.step_prefilter)

    def compute(self, positions: np.ndarray, pairs: np.ndarray) -> ClassicResult:
        """Evaluate this rank's block; pure computation, no yields.

        Touches only this rank's private state (kernel counters, bonded
        slice), so the exec layer's rank fanout may evaluate different
        ranks' ``compute`` calls concurrently.
        """
        my_pairs = self.decomp.pair_block(pairs, self.rank)
        bonded_e, forces = bonded_energy_forces(positions, self.system.box, self.tables)
        nb_e, nb_f = self.kernel.compute(positions, my_pairs)
        forces += nb_f
        energies = EnergyBreakdown(
            bond=bonded_e["bond"],
            angle=bonded_e["angle"],
            dihedral=bonded_e["dihedral"],
            improper=bonded_e["improper"],
            lj=nb_e.lj,
            elec_direct=nb_e.elec,
        )
        return ClassicResult(
            energies=energies,
            forces=forces,
            n_pairs=self.kernel.last_pair_count,
            n_terms=self.tables.n_terms,
        )

    def compute_seconds(self, result: ClassicResult) -> float:
        """Virtual compute time for a :meth:`compute` call."""
        return self.cost.classic_pairs(result.n_pairs) + self.cost.bonded(result.n_terms)
