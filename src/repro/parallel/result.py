"""Result container for one simulated parallel MD run."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster.machine import ClusterSpec
from ..cluster.state import TransferRecord
from ..instrument.commstats import CommSpeedStats, communication_speeds
from ..instrument.timeline import PhaseTotals, Timeline
from ..md.energy import EnergyBreakdown
from .pmd import MDRunConfig

__all__ = ["ParallelRunResult"]


@dataclass
class ParallelRunResult:
    """Everything one run of the simulated cluster produced.

    Time conventions (matching how the paper reports):

    * :meth:`wall_time` — the job's wall clock: the maximum over ranks of
      their total attributed time.
    * :meth:`component` — per-phase breakdown averaged over ranks (the
      stacked-bar charts of Figures 3-9 show per-calculation times; the
      average is the standard way to aggregate per-rank timelines).
    """

    spec: ClusterSpec
    config: MDRunConfig
    energies: list[EnergyBreakdown]
    timelines: list[Timeline]
    transfers: list[TransferRecord]
    final_positions: np.ndarray
    middleware: str = "mpi"
    extra: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def n_ranks(self) -> int:
        return self.spec.n_ranks

    def wall_time(self) -> float:
        return max(tl.total_seconds() for tl in self.timelines)

    def component(self, phase: str) -> PhaseTotals:
        """Mean per-rank breakdown of one phase (seconds)."""
        totals = [tl.phase_totals(phase) for tl in self.timelines]
        n = len(totals)
        return PhaseTotals(
            comp=sum(t.comp for t in totals) / n,
            comm=sum(t.comm for t in totals) / n,
            sync=sum(t.sync for t in totals) / n,
        )

    def component_time(self, phase: str) -> float:
        return self.component(phase).total

    def total_breakdown(self) -> PhaseTotals:
        """Mean per-rank breakdown of the whole energy calculation."""
        out = PhaseTotals()
        phases = {p for tl in self.timelines for p in tl.phases}
        for phase in phases:
            out = out + self.component(phase)
        return out

    def comm_stats(self) -> CommSpeedStats:
        """Figure 7 statistics: per-node communication speeds (MB/s)."""
        return communication_speeds(self.transfers)

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Flat record for tables and reports."""
        classic = self.component("classic")
        pme = self.component("pme")
        stats = self.comm_stats()
        return {
            "platform": self.spec.describe(),
            "middleware": self.middleware,
            "n_ranks": self.n_ranks,
            "wall_time": self.wall_time(),
            "classic_time": classic.total,
            "pme_time": pme.total,
            "classic_comp": classic.comp,
            "classic_comm": classic.comm,
            "classic_sync": classic.sync,
            "pme_comp": pme.comp,
            "pme_comm": pme.comm,
            "pme_sync": pme.sync,
            "comm_mean_mbs": stats.mean,
            "comm_min_mbs": stats.minimum,
            "comm_max_mbs": stats.maximum,
            "final_energy": self.energies[-1].total if self.energies else float("nan"),
        }
