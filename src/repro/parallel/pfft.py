"""Slab-decomposed distributed 3-D FFT over simulated MPI.

The PME routine's communication pattern (paper Fig. 2): a parallel 3-D
FFT needs one *all-to-all personalized* exchange (the distributed
transpose) per direction change.

Forward transform of a mesh distributed as x-slabs:

1. each rank 2-D-FFTs its ``(cx, Ky, Kz)`` slab along (y, z)    [local]
2. transpose: rank j receives every rank's y-block j             [alltoallv]
3. each rank 1-D-FFTs its ``(Kx, cy, Kz)`` slab along x          [local]

leaving the spectrum distributed as y-slabs.  The inverse reverses the
pipeline.  Local transforms use numpy; compute time is charged through
the cost model with exact butterfly unit counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mpi.endpoint import RankEndpoint
from ..mpi.middleware import Middleware
from .costmodel import MachineCostModel, fft_units
from .decomposition import SlabDecomposition

__all__ = ["DistributedFFT"]


@dataclass
class DistributedFFT:
    """One rank's view of a distributed 3-D FFT of shape ``grid_shape``.

    Parameters
    ----------
    grid_shape:
        Full mesh ``(Kx, Ky, Kz)``.
    n_ranks, rank:
        Job geometry; x-planes and y-planes are decomposed into
        contiguous slabs.
    cost:
        Machine model used to charge local transform time.
    """

    grid_shape: tuple[int, int, int]
    n_ranks: int
    rank: int
    cost: MachineCostModel

    def __post_init__(self) -> None:
        kx, ky, _ = self.grid_shape
        self.x_slabs = SlabDecomposition(kx, self.n_ranks)
        self.y_slabs = SlabDecomposition(ky, self.n_ranks)

    # ------------------------------------------------------------------
    @property
    def my_x_range(self) -> tuple[int, int]:
        return self.x_slabs.plane_range(self.rank)

    @property
    def my_y_range(self) -> tuple[int, int]:
        return self.y_slabs.plane_range(self.rank)

    # ------------------------------------------------------------------
    def forward(self, ep: RankEndpoint, mw: Middleware, x_slab: np.ndarray):
        """x-slab (real or complex) -> y-slab of the full 3-D spectrum."""
        kx, ky, kz = self.grid_shape
        _, cx = self.my_x_range
        if x_slab.shape != (cx, ky, kz):
            raise ValueError(f"x-slab shape {x_slab.shape} != {(cx, ky, kz)}")

        # stage 1: local 2-D FFT along (y, z)
        yield from ep.compute(
            self.cost.fft(fft_units((cx * kz, ky), (cx * ky, kz)))
        )
        s = np.fft.fftn(x_slab, axes=(1, 2))

        # stage 2: transpose to y-slabs
        s = yield from self._transpose_x_to_y(ep, mw, s)

        # stage 3: local 1-D FFT along x
        _, cy = self.my_y_range
        yield from ep.compute(self.cost.fft(fft_units((cy * kz, kx))))
        return np.fft.fft(s, axis=0)

    def inverse(self, ep: RankEndpoint, mw: Middleware, y_slab: np.ndarray):
        """y-slab spectrum -> x-slab of the inverse-transformed mesh."""
        kx, ky, kz = self.grid_shape
        _, cy = self.my_y_range
        if y_slab.shape != (kx, cy, kz):
            raise ValueError(f"y-slab shape {y_slab.shape} != {(kx, cy, kz)}")

        yield from ep.compute(self.cost.fft(fft_units((cy * kz, kx))))
        s = np.fft.ifft(y_slab, axis=0)

        s = yield from self._transpose_y_to_x(ep, mw, s)

        _, cx = self.my_x_range
        yield from ep.compute(
            self.cost.fft(fft_units((cx * kz, ky), (cx * ky, kz)))
        )
        return np.fft.ifftn(s, axes=(1, 2))

    # ------------------------------------------------------------------
    def _transpose_x_to_y(self, ep: RankEndpoint, mw: Middleware, s: np.ndarray):
        """(cx, Ky, Kz) per rank -> (Kx, cy, Kz) per rank."""
        send = [np.ascontiguousarray(block) for block in self.y_slabs.split(s, axis=1)]
        recv = yield from mw.alltoallv(ep, send)
        return np.concatenate(recv, axis=0)

    def _transpose_y_to_x(self, ep: RankEndpoint, mw: Middleware, s: np.ndarray):
        """(Kx, cy, Kz) per rank -> (cx, Ky, Kz) per rank."""
        send = [np.ascontiguousarray(block) for block in self.x_slabs.split(s, axis=0)]
        recv = yield from mw.alltoallv(ep, send)
        return np.concatenate(recv, axis=1)
