"""Shared computation across simulated replicated-data ranks.

The paper's decomposition replicates coordinates: every rank holds the
*same* positions and rebuilds the *same* neighbour list, the *same*
B-spline stencil and the *same* per-axis PME setup.  On real hardware
that redundancy is the price of the replicated-data design; in this
simulator it is pure wall-clock waste — p ranks re-derive bit-identical
results from bit-identical inputs.

:class:`SharedComputeCache` deduplicates that work per *run* while
leaving virtual time untouched:

* one real :meth:`~repro.md.neighborlist.NeighborList.build` per rebuild
  event — mirror ranks adopt the builder's pair list, reference positions
  and candidate count, so every rank still charges its own
  ``cost.neighbor_build`` virtual seconds and keeps its own
  rebuild-decision state;
* one B-spline stencil evaluation per step, reused across the spread and
  interpolate directions and across every rank;
* per-run once-only setup (LJ parameter tables, Ewald self energy)
  computed by the first rank and shared read-only.

Entries are keyed by a cheap *positions generation counter* — the rank's
step index.  Coordinates only change at the step-end allgather, and the
simulator's collectives guarantee no rank enters generation ``g + 1``
before every rank has finished computing with generation ``g``, so a
single-generation cache is sufficient and race-free.

**Why this cannot perturb the measured virtual timelines:** cost-model
seconds are charged from *counters* (candidate pairs, scattered stencil
points, term counts), never from wall-clock.  The cache changes who
performs a numpy computation, not what any rank observes: adopted
results are bit-identical to locally computed ones, so every charged
counter — and therefore every virtual timeline — is bit-identical with
the cache on or off.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..md.neighborlist import NeighborList

__all__ = ["SharedComputeCache"]


@dataclass
class _NeighborOutcome:
    """The shared outcome of one generation's neighbour-list maintenance."""

    generation: int
    rebuilt: bool
    pairs: np.ndarray
    ref_positions: np.ndarray | None
    candidates: int
    #: prefilter replay state (see NeighborList.step_prefilter)
    ref_d: np.ndarray | None
    max_disp: float


@dataclass
class SharedComputeCache:
    """Per-run deduplication of replicated-data computations.

    One instance is created per :func:`repro.parallel.run.run_parallel_md`
    call (and per campaign design point) and handed to every rank
    program.  All methods are synchronous — ranks interleave only at the
    simulator's yield points, so no locking is needed.
    """

    #: real neighbour-list builds performed through this cache
    n_real_builds: int = 0
    #: neighbour maintenance calls answered from the cache
    n_mirrored: int = 0
    #: B-spline stencil evaluations performed through this cache
    n_stencils: int = 0
    #: stencil requests answered from the cache
    n_stencil_hits: int = 0

    _neighbors: _NeighborOutcome | None = field(default=None, repr=False)
    _stencil_key: tuple | None = field(default=None, repr=False)
    _stencil: tuple | None = field(default=None, repr=False)
    _once: dict[Any, Any] = field(default_factory=dict, repr=False)
    _statics_ref: weakref.ref | None = field(default=None, repr=False)
    _statics: tuple | None = field(default=None, repr=False)
    # pair_statics is reached from inside ParallelClassic.compute, which
    # the exec layer's rank fanout may run in pool threads concurrently —
    # unlike the yield-point-serialized methods above, it needs a lock
    _statics_lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    # ------------------------------------------------------------------
    def neighbor_pairs(
        self, nl: NeighborList, positions: np.ndarray, generation: int
    ) -> np.ndarray:
        """Neighbour-list maintenance for one rank at one generation.

        The first rank to reach ``generation`` takes the rebuild decision
        and (when due) performs the one real build; every later rank
        adopts the identical outcome.  ``nl.last_ensure_rebuilt`` and
        ``nl.last_candidates`` are left exactly as a private
        :meth:`~repro.md.neighborlist.NeighborList.ensure` call would,
        so the step driver's cost charging is unchanged.
        """
        cached = self._neighbors
        if cached is not None and cached.generation == generation:
            self.n_mirrored += 1
            # checked_positions is this rank's own array: its coordinates
            # are bit-identical to the builder's, so the builder's
            # ref_d/max_disp bound holds for it verbatim
            nl.adopt(
                cached.pairs,
                cached.ref_positions,
                cached.candidates,
                cached.rebuilt,
                ref_d=cached.ref_d,
                max_disp=cached.max_disp,
                checked_positions=positions,
            )
            return cached.pairs

        rebuilt = nl.needs_rebuild(positions)
        if rebuilt:
            nl.build(positions)
            self.n_real_builds += 1
        nl.last_ensure_rebuilt = rebuilt
        self._neighbors = _NeighborOutcome(
            generation=generation,
            rebuilt=rebuilt,
            pairs=nl.pairs,
            ref_positions=nl._ref_positions,
            candidates=nl.last_candidates,
            ref_d=nl.pair_ref_d,
            max_disp=nl.last_max_disp,
        )
        return nl.pairs

    # ------------------------------------------------------------------
    def pme_stencil(self, mesh, positions: np.ndarray, generation: int):
        """One B-spline stencil per generation, shared across ranks *and*
        across the spread/interpolate directions of each rank's step."""
        key = (generation, mesh.grid_shape, mesh.order)
        if self._stencil_key == key:
            self.n_stencil_hits += 1
            return self._stencil
        self._stencil = mesh.stencil(positions)
        self._stencil_key = key
        self.n_stencils += 1
        return self._stencil

    # ------------------------------------------------------------------
    def pair_statics(
        self, base: np.ndarray, factory: Callable[[np.ndarray], tuple]
    ) -> tuple:
        """Per-pair static coefficients for one pair-list base array.

        Every replicated rank holds the same base array (via
        :meth:`neighbor_pairs`) and identical parameter tables, so
        ``factory(base)`` is computed once per rebuild and replayed to
        every rank kernel — bit-identical to a private evaluation.
        Identity of ``base`` is the key (held by weakref): a rebuild
        allocates a new array and naturally invalidates.
        """
        with self._statics_lock:
            cached = self._statics_ref() if self._statics_ref is not None else None
            if cached is not base:
                self._statics = factory(base)
                self._statics_ref = weakref.ref(base)
            return self._statics

    # ------------------------------------------------------------------
    def once(self, key: Any, factory: Callable[[], Any]) -> Any:
        """Compute ``factory()`` for the first caller of ``key``; replay it
        for every later one (per-run immutable setup: LJ tables, Ewald
        self energy, ...)."""
        if key not in self._once:
            self._once[key] = factory()
        return self._once[key]
