"""Parallel CHARMM: SPMD rank programs over the simulated cluster."""

from .calibrate import WorkloadCounts, calibrate, measure_counts
from .costmodel import PIII_1GHZ, MachineCostModel, fft_units
from .decomposition import AtomDecomposition, SlabDecomposition, slice_bonded_tables
from .pclassic import ParallelClassic
from .pfft import DistributedFFT
from .pmd import (
    MDRunConfig,
    RankOutcome,
    energy_to_vector,
    rank_program,
    serial_reference_run,
    vector_to_energy,
)
from .ppme import ParallelPME, ParallelPMEResult
from .result import ParallelRunResult
from .run import RunOptions, make_middleware, rank_system_clone, run_parallel_md
from .shared import SharedComputeCache

__all__ = [
    "AtomDecomposition",
    "calibrate",
    "measure_counts",
    "WorkloadCounts",
    "DistributedFFT",
    "energy_to_vector",
    "fft_units",
    "MachineCostModel",
    "make_middleware",
    "MDRunConfig",
    "ParallelClassic",
    "ParallelPME",
    "ParallelPMEResult",
    "ParallelRunResult",
    "PIII_1GHZ",
    "rank_program",
    "rank_system_clone",
    "RankOutcome",
    "run_parallel_md",
    "RunOptions",
    "serial_reference_run",
    "SharedComputeCache",
    "SlabDecomposition",
    "slice_bonded_tables",
    "vector_to_energy",
]
