"""FFT plan / work-array cache (exec-layer surface).

The implementation lives in :mod:`repro.pme.plans` so the mesh code in
``pme/`` can use it without importing the ``parallel`` package (which
would be circular); this module is the execution subsystem's canonical
import point for it.
"""

from ...pme.plans import PLAN_CACHE_HITS, PLAN_CACHE_MISSES, PlanCache

__all__ = ["PlanCache", "PLAN_CACHE_HITS", "PLAN_CACHE_MISSES"]
