"""Force-kernel backends: the numpy reference and an optional numba JIT.

The non-bonded pair physics — everything :meth:`NonbondedKernel.pair_terms`
does *after* the cutoff filter — is a pure elementwise function of one
pair row.  This module owns that function in two interchangeable forms:

* :func:`pair_physics_numpy` — the reference, vectorized numpy.  This is
  the single source of truth for the arithmetic; every other path
  (serial, replicated, spatial, compiled) produces its exact bits.
* :func:`pair_physics_numba` — an opt-in compiled backend
  (``--kernel numba``).  numba is **not** a dependency: the import is
  guarded, :func:`available_backends` reports what this interpreter can
  actually run, and requesting an unavailable backend raises with an
  install hint instead of crashing mid-run.

**Bitwise parity contract.**  The compiled loop replays the reference
expression tree operation for operation using only IEEE-754 basic
operations (add/sub/mul/div/sqrt), which are exactly rounded and
therefore identical between numpy's ufunc loops and scalar machine code.
Transcendentals (``erfc``, ``exp``) carry no such guarantee — libm, SIMD
and scipy implementations legitimately differ by ulps — so the numba
wrapper precomputes them with the *same numpy/scipy calls* as the
reference and passes the arrays into the jitted loop.  Parity to the ulp
is asserted by ``tests/parallel/test_exec.py`` whenever numba is
installed; nothing about the choice of backend may leak into energies,
trajectories, virtual timelines or store cache keys.
"""

from __future__ import annotations

import numpy as np
from scipy.special import erfc

from ...instrument.metrics import REGISTRY
from ...md.cutoff import CutoffScheme, shift_function, switch_function

__all__ = [
    "KERNEL_BACKENDS",
    "available_backends",
    "get_backend",
    "numba_available",
    "pair_physics_numpy",
    "pair_physics_numba",
]

_TWO_OVER_SQRT_PI = 2.0 / np.sqrt(np.pi)

#: per-backend call counter (label ``backend=...``)
KERNEL_CALLS = REGISTRY.counter("md.kernel_calls")

try:  # pragma: no cover - exercised only on numba-equipped CI legs
    import numba as _numba
except ImportError:  # the common case: numba is optional
    _numba = None


def numba_available() -> bool:
    """True when the numba backend can actually compile and run."""
    return _numba is not None


def pair_physics_numpy(
    r2: np.ndarray,
    dr: np.ndarray,
    eps_ij: np.ndarray,
    rmin_ij: np.ndarray,
    qq: np.ndarray,
    scheme: CutoffScheme,
    elec_mode: str,
    ewald_alpha: float | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reference pair physics on cutoff-filtered rows.

    Parameters are per-pair arrays: squared separation ``r2``, the
    minimum-image displacement ``dr`` (force direction), the combined LJ
    parameters ``eps_ij``/``rmin_ij`` and the charge product ``qq``
    (Coulomb constant included).  Returns ``(e_lj, e_el, fvec)``.
    """
    r = np.sqrt(r2)
    inv_r = 1.0 / r

    # --- Lennard-Jones with switching ------------------------------
    u = rmin_ij * inv_r
    u2 = u * u
    x6 = u2 * u2 * u2
    x12 = x6 * x6
    e_lj_raw = eps_ij * (x12 - 2.0 * x6)
    de_lj_raw = -12.0 * eps_ij * inv_r * (x12 - x6)
    # Below the switch-on radius S = 1 and dS/dr = 0, so the raw values
    # pass through untouched; evaluate the switching polynomial only on
    # the rows inside the [r_on, r_cut] window (elementwise, so the
    # windowed rows carry the exact bits switch_function would give on
    # the full array).  The raw arrays are fresh temporaries, so the
    # windowed rows are patched in place after their raw values are
    # captured — no copies of the full arrays.
    e_lj_pair = e_lj_raw
    de_lj = de_lj_raw
    window = np.flatnonzero(r >= scheme.switch_on)
    if len(window):
        s, ds = switch_function(r.take(window), scheme.switch_on, scheme.r_cut)
        e_w = e_lj_raw.take(window)
        d_w = de_lj_raw.take(window)
        e_lj_pair[window] = e_w * s
        de_lj[window] = d_w * s + e_w * ds

    # --- electrostatics ---------------------------------------------
    if elec_mode == "shift":
        sh, dsh = shift_function(r, scheme.r_cut)
        e_el_pair = qq * inv_r * sh
        de_el = qq * (-inv_r * inv_r * sh + inv_r * dsh)
    else:
        alpha = float(ewald_alpha)  # validated by the kernel constructor
        erfc_ar = erfc(alpha * r)
        e_el_pair = qq * inv_r * erfc_ar
        de_el = -qq * inv_r * (
            erfc_ar * inv_r + _TWO_OVER_SQRT_PI * alpha * np.exp(-(alpha * r) ** 2)
        )

    de_total = de_lj + de_el
    fvec = (-de_total * inv_r)[:, None] * dr  # force on atom i
    return e_lj_pair, e_el_pair, fvec


def _numpy_backend(r2, dr, eps_ij, rmin_ij, qq, scheme, elec_mode, ewald_alpha):
    KERNEL_CALLS.increment(backend="numpy")
    return pair_physics_numpy(r2, dr, eps_ij, rmin_ij, qq, scheme, elec_mode, ewald_alpha)


_JIT_LOOP = None


def _build_jit_loop():  # pragma: no cover - needs numba installed
    """Compile the elementwise replay of :func:`pair_physics_numpy`.

    Only IEEE basic operations appear here; ``erfc_ar`` and ``gauss``
    arrive precomputed (see the module docstring).  ``fastmath`` stays
    OFF — reassociation would break the parity contract.
    """

    @_numba.njit(cache=True)
    def loop(
        r2, dr, eps_ij, rmin_ij, qq,
        r_on, r_cut, sw_denom, mode_shift, alpha_c, erfc_ar, gauss,
        e_lj_out, e_el_out, fvec_out,
    ):
        ron2 = r_on * r_on
        roff2 = r_cut * r_cut
        for k in range(r2.shape[0]):
            r = np.sqrt(r2[k])
            inv_r = 1.0 / r

            u = rmin_ij[k] * inv_r
            u2 = u * u
            x6 = u2 * u2 * u2
            x12 = x6 * x6
            e_lj_raw = eps_ij[k] * (x12 - 2.0 * x6)
            de_lj_raw = -12.0 * eps_ij[k] * inv_r * (x12 - x6)

            # switch region, mirroring the reference: raw values pass
            # through untouched below r_on, the polynomial applies on
            # the [r_on, r_cut] window
            if r < r_on:
                e_lj = e_lj_raw
                de_lj = de_lj_raw
            else:
                rr = r * r
                a = roff2 - rr
                if r > r_cut:
                    s = 0.0
                    ds = 0.0
                else:
                    s = a * a * (roff2 + 2.0 * rr - 3.0 * ron2) / sw_denom
                    ds = 12.0 * r * a * (ron2 - rr) / sw_denom
                e_lj = e_lj_raw * s
                de_lj = de_lj_raw * s + e_lj_raw * ds

            if mode_shift:
                # shift_function, element for element
                x = r / r_cut
                if x <= 1.0:
                    v = 1.0 - x * x
                    sh = v * v
                    dsh = -4.0 * x * v / r_cut
                else:
                    sh = 0.0
                    dsh = 0.0
                e_el = qq[k] * inv_r * sh
                de_el = qq[k] * (-inv_r * inv_r * sh + inv_r * dsh)
            else:
                e_el = qq[k] * inv_r * erfc_ar[k]
                de_el = -qq[k] * inv_r * (erfc_ar[k] * inv_r + alpha_c * gauss[k])

            de_total = de_lj + de_el
            f = -de_total * inv_r
            e_lj_out[k] = e_lj
            e_el_out[k] = e_el
            fvec_out[k, 0] = f * dr[k, 0]
            fvec_out[k, 1] = f * dr[k, 1]
            fvec_out[k, 2] = f * dr[k, 2]

    return loop


def pair_physics_numba(
    r2, dr, eps_ij, rmin_ij, qq, scheme, elec_mode, ewald_alpha
):  # pragma: no cover - needs numba installed
    """Compiled pair physics; bitwise identical to the numpy reference."""
    global _JIT_LOOP
    if _JIT_LOOP is None:
        _JIT_LOOP = _build_jit_loop()
    n = len(r2)
    r = np.sqrt(r2)
    if elec_mode == "shift":
        mode_shift = True
        alpha_c = 0.0
        erfc_ar = gauss = np.empty(0, dtype=np.float64)
    else:
        mode_shift = False
        alpha = float(ewald_alpha)
        # transcendentals with the reference's own numpy/scipy calls
        erfc_ar = erfc(alpha * r)
        gauss = np.exp(-(alpha * r) ** 2)
        alpha_c = _TWO_OVER_SQRT_PI * alpha
    r_on = scheme.switch_on
    r_cut = scheme.r_cut
    sw_denom = (r_cut * r_cut - r_on * r_on) ** 3
    e_lj = np.empty(n, dtype=np.float64)
    e_el = np.empty(n, dtype=np.float64)
    fvec = np.empty((n, 3), dtype=np.float64)
    _JIT_LOOP(
        np.ascontiguousarray(r2), np.ascontiguousarray(dr),
        np.ascontiguousarray(eps_ij), np.ascontiguousarray(rmin_ij),
        np.ascontiguousarray(qq),
        r_on, r_cut, sw_denom, mode_shift, alpha_c, erfc_ar, gauss,
        e_lj, e_el, fvec,
    )
    return e_lj, e_el, fvec


def _numba_backend(r2, dr, eps_ij, rmin_ij, qq, scheme, elec_mode, ewald_alpha):
    KERNEL_CALLS.increment(backend="numba")
    return pair_physics_numba(r2, dr, eps_ij, rmin_ij, qq, scheme, elec_mode, ewald_alpha)


KERNEL_BACKENDS = {"numpy": _numpy_backend, "numba": _numba_backend}


def available_backends() -> tuple[str, ...]:
    """Backend names this interpreter can actually execute."""
    names = ["numpy"]
    if numba_available():
        names.append("numba")
    return tuple(names)


def get_backend(name: str):
    """Resolve a backend name to its physics callable (or raise clearly)."""
    if name not in KERNEL_BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r}; expected one of "
            f"{sorted(KERNEL_BACKENDS)}"
        )
    if name == "numba" and not numba_available():
        raise RuntimeError(
            "kernel backend 'numba' requested but numba is not installed; "
            "install numba or use --kernel numpy (the reference backend)"
        )
    return KERNEL_BACKENDS[name]
