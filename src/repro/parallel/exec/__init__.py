"""Within-point execution engine: rank fanout, kernels, plan cache.

This package owns *how* one design point's arithmetic executes — on how
many threads (:class:`.pool.RankFanout`), with which force-kernel
backend (:mod:`.kernels`), and with which reusable FFT work arrays
(:class:`.plancache.PlanCache`).  None of it may change *what* is
computed: every knob here is required to leave energies, trajectories,
virtual timelines and campaign store content addresses bit-identical,
and the test suite asserts exactly that.
"""

from .kernels import available_backends, get_backend, numba_available
from .plancache import PlanCache
from .pool import RankFanout

__all__ = [
    "available_backends",
    "get_backend",
    "numba_available",
    "PlanCache",
    "RankFanout",
]
