"""Rank fanout: evaluate every rank's private arithmetic in one round.

The shared-computation layer (:mod:`..shared`) removed *redundant* work:
quantities every rank computes identically are computed once.  What is
left is the genuinely per-rank work — each rank's nonbonded/bonded force
block, each rank's PME charge-spread slab — which the replicated rank
programs still evaluate one rank after another on the driving thread.
:class:`RankFanout` lifts exactly that work onto a
:class:`~concurrent.futures.ThreadPoolExecutor`:

* The driver registers a **task family**: one callable per rank (bound
  to that rank's private engine, e.g. ``ParallelClassic.compute``).
* The **first rank** to reach a step calls :meth:`round`; the fanout
  submits all ranks' tasks (in rank order) and collects results with
  ``future.result()`` **in rank order** — never ``as_completed``, which
  the REP506 determinism lint forbids in this package.  Later ranks
  consume their precomputed slot, exactly like the first-rank-builds /
  mirrors-adopt protocol of ``SharedComputeCache``.
* The first arrival's arguments are used for every rank's task.  This is
  sound for the same reason the shared cache is: under replicated data
  the per-rank copies of positions/pairs are bit-identical, so whose
  array object evaluates is unobservable in the results.

Determinism: task *scheduling* may interleave arbitrarily, but each task
touches only its own rank's engine, the arithmetic per task is the
unchanged kernel, and consumption order is the rank program order — so
energies, trajectories and virtual timelines are bit-identical to the
serial path for every pool size (``workers=0`` runs tasks inline with no
executor at all).  Virtual time is never charged here: the fanout is
wall-clock machinery, reported only through wall spans and counters.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Hashable, Sequence

from ...instrument.metrics import REGISTRY

__all__ = ["RankFanout"]

FANOUT_ROUNDS = REGISTRY.counter("exec.fanout_rounds")
FANOUT_TASKS = REGISTRY.counter("exec.fanout_tasks")
POOL_WORKERS = REGISTRY.gauge("exec.pool_workers")


class RankFanout:
    """Evaluates registered per-rank task families round by round.

    ``workers=0`` (the default everywhere) keeps a pure inline path:
    no executor is created and ``round`` simply calls the tasks in rank
    order on the caller's thread.
    """

    def __init__(self, n_ranks: int, workers: int = 0, span_tracer=None) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.n_ranks = n_ranks
        self.workers = workers
        self._tracer = span_tracer
        self._families: dict[str, Sequence[Callable[..., Any]]] = {}
        # (family, key) -> [per-rank results, ranks still to consume]
        self._pending: dict[tuple[str, Hashable], list] = {}
        self._executor = (
            ThreadPoolExecutor(
                max_workers=min(workers, n_ranks),
                thread_name_prefix="rank-fanout",
            )
            if workers > 0
            else None
        )
        POOL_WORKERS.set(workers)

    # ------------------------------------------------------------------
    def register(self, family: str, tasks: Sequence[Callable[..., Any]]) -> None:
        """Install one callable per rank under ``family``.

        Registration happens on the driver before any rank program runs,
        so there is no race between a program reaching a round and its
        family existing.
        """
        if len(tasks) != self.n_ranks:
            raise ValueError(
                f"family {family!r}: got {len(tasks)} tasks for "
                f"{self.n_ranks} ranks"
            )
        self._families[family] = list(tasks)

    def has_family(self, family: str) -> bool:
        return family in self._families

    # ------------------------------------------------------------------
    def round(self, family: str, key: Hashable, rank: int, *args) -> Any:
        """Return rank ``rank``'s result for round ``key`` of ``family``.

        The first caller for a given ``key`` evaluates *all* ranks' tasks
        (with its own ``args``); every rank consumes exactly once and the
        round's slot is dropped after the last consumer.
        """
        tasks = self._families[family]
        slot = (family, key)
        entry = self._pending.get(slot)
        if entry is None:
            FANOUT_ROUNDS.increment(family=family)
            FANOUT_TASKS.increment(self.n_ranks, family=family)
            if self._executor is None:
                results = [tasks[r](*args) for r in range(self.n_ranks)]
            elif self._tracer is not None:
                with self._tracer.span(f"exec.fanout:{family}", workers=self.workers):
                    results = self._run_pooled(tasks, args)
            else:
                results = self._run_pooled(tasks, args)
            entry = [results, self.n_ranks]
            self._pending[slot] = entry
        value = entry[0][rank]
        entry[1] -= 1
        if entry[1] == 0:
            del self._pending[slot]
        return value

    def _run_pooled(self, tasks, args) -> list:
        futures = [self._executor.submit(tasks[r], *args) for r in range(self.n_ranks)]
        # rank order, never as_completed: the reduction order downstream
        # must not depend on thread scheduling
        return [f.result() for f in futures]

    # ------------------------------------------------------------------
    def assert_drained(self) -> None:
        """Every started round was consumed by all ranks (end-of-run check)."""
        if self._pending:
            leftovers = sorted(str(k) for k in self._pending)
            raise AssertionError(f"fanout rounds never fully consumed: {leftovers}")

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "RankFanout":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
