"""Work decomposition for the replicated-data parallel CHARMM.

CHARMM's parallelization of the period distributes *work items* while
replicating coordinates on every rank:

* **atoms** — contiguous blocks; a rank integrates its own atoms and owns
  the pair-list entries whose first atom falls in its block (the source
  of the natural load imbalance the paper's sync times show);
* **bonded terms** — contiguous slices of each term table;
* **mesh planes** — contiguous x-slabs for the spreading/FFT stages and
  y-slabs for the transposed layout.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..analysis.contract import ScheduleContract
from ..md.bonded import BondedTables

__all__ = [
    "Decomposition",
    "AtomDecomposition",
    "SlabDecomposition",
    "slice_bonded_tables",
]


class Decomposition(abc.ABC):
    """How work is split over ranks — and what that costs in messages.

    The paper's question is whether CHARMM's replicated-data scheme has
    "easy" parallelism left; the answer lives in the communication
    schedule each decomposition induces.  Every implementation therefore
    declares its per-step schedule as a
    :class:`~repro.analysis.contract.ScheduleContract`, which the static
    verifier (:mod:`repro.analysis.static_schedule`) checks against the
    schedule actually extracted from the rank program (rule REP406).
    How ownership is expressed differs per scheme — contiguous atom
    blocks (:class:`AtomDecomposition`), mesh-plane slabs
    (:class:`SlabDecomposition`), cells of the periodic box
    (:class:`repro.parallel.spatial.SpatialDecomposition`) — so the only
    shared obligation is the contract itself.
    """

    @abc.abstractmethod
    def schedule_contract(self) -> ScheduleContract:
        """The per-MD-step communication schedule this decomposition induces."""


def _block_bounds(n_items: int, n_parts: int) -> np.ndarray:
    """Boundaries of ``n_parts`` near-equal contiguous blocks (len n_parts+1)."""
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    base = n_items // n_parts
    extra = n_items % n_parts
    sizes = np.full(n_parts, base, dtype=np.int64)
    sizes[:extra] += 1
    return np.concatenate([[0], np.cumsum(sizes)])


@dataclass(frozen=True)
class AtomDecomposition(Decomposition):
    """Contiguous atom blocks over ``n_ranks`` ranks (replicated data)."""

    n_atoms: int
    n_ranks: int

    def __post_init__(self) -> None:
        if self.n_ranks < 1 or self.n_atoms < self.n_ranks:
            raise ValueError(
                f"cannot split {self.n_atoms} atoms over {self.n_ranks} ranks"
            )

    def schedule_contract(self) -> ScheduleContract:
        # replicated data induces the step driver's all-to-all schedule
        from .pmd import STEP_SCHEDULE_CONTRACT

        return STEP_SCHEDULE_CONTRACT

    @property
    def bounds(self) -> np.ndarray:
        return _block_bounds(self.n_atoms, self.n_ranks)

    def atom_range(self, rank: int) -> tuple[int, int]:
        b = self.bounds
        return int(b[rank]), int(b[rank + 1])

    def owner_of(self, atom: int) -> int:
        return int(np.searchsorted(self.bounds, atom, side="right") - 1)

    def pair_block(self, pairs: np.ndarray, rank: int) -> np.ndarray:
        """The slice of a (sorted-by-i) pair list owned by ``rank``.

        Ownership: the rank whose atom block contains ``i`` (the smaller
        index).  Pair lists from :class:`repro.md.neighborlist.NeighborList`
        are lexicographically sorted, so the block is contiguous.
        """
        lo, hi = self.atom_range(rank)
        start = int(np.searchsorted(pairs[:, 0], lo, side="left"))
        stop = int(np.searchsorted(pairs[:, 0], hi, side="left"))
        return pairs[start:stop]

    def slice_rows(self, array: np.ndarray, rank: int) -> np.ndarray:
        lo, hi = self.atom_range(rank)
        return array[lo:hi]

    def term_slice(self, n_terms: int, rank: int) -> slice:
        """Contiguous slice of a bonded-term table for ``rank``."""
        b = _block_bounds(n_terms, self.n_ranks)
        return slice(int(b[rank]), int(b[rank + 1]))


def slice_bonded_tables(tables: BondedTables, decomp: AtomDecomposition, rank: int) -> BondedTables:
    """A rank's share of the bonded-term tables (contiguous slices)."""
    out = BondedTables.__new__(BondedTables)
    s = decomp.term_slice(len(tables.bond_idx), rank)
    out.bond_idx = tables.bond_idx[s]
    out.bond_kb = tables.bond_kb[s]
    out.bond_r0 = tables.bond_r0[s]
    s = decomp.term_slice(len(tables.angle_idx), rank)
    out.angle_idx = tables.angle_idx[s]
    out.angle_k = tables.angle_k[s]
    out.angle_t0 = tables.angle_t0[s]
    s = decomp.term_slice(len(tables.dihedral_idx), rank)
    out.dihedral_idx = tables.dihedral_idx[s]
    out.dihedral_k = tables.dihedral_k[s]
    out.dihedral_n = tables.dihedral_n[s]
    out.dihedral_delta = tables.dihedral_delta[s]
    s = decomp.term_slice(len(tables.improper_idx), rank)
    out.improper_idx = tables.improper_idx[s]
    out.improper_k = tables.improper_k[s]
    out.improper_psi0 = tables.improper_psi0[s]
    return out


@dataclass(frozen=True)
class SlabDecomposition(Decomposition):
    """Contiguous plane slabs along one mesh axis."""

    n_planes: int
    n_ranks: int

    def __post_init__(self) -> None:
        if self.n_ranks < 1 or self.n_planes < self.n_ranks:
            raise ValueError(
                f"cannot split {self.n_planes} planes over {self.n_ranks} ranks"
            )

    def schedule_contract(self) -> ScheduleContract:
        # slab-decomposed mesh work communicates exactly through the two
        # distributed-FFT transposes (all-to-all personalized)
        from .ppme import SCHEDULE_CONTRACT

        return SCHEDULE_CONTRACT

    @property
    def bounds(self) -> np.ndarray:
        return _block_bounds(self.n_planes, self.n_ranks)

    def plane_range(self, rank: int) -> tuple[int, int]:
        """(start, count) of the planes owned by ``rank``."""
        b = self.bounds
        return int(b[rank]), int(b[rank + 1] - b[rank])

    def split(self, array: np.ndarray, axis: int = 0) -> list[np.ndarray]:
        """Split an array along ``axis`` into the per-rank slabs."""
        b = self.bounds
        return [
            np.take(array, np.arange(b[r], b[r + 1]), axis=axis)
            for r in range(self.n_ranks)
        ]
