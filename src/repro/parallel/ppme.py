"""Slab-parallel particle-mesh Ewald (the paper's 'PME energy calculation').

Replicated-data scheme matching CHARMM's parallel PME:

1. every rank spreads *all* charges onto the x-planes it owns (no
   communication — coordinates are replicated);
2. distributed forward FFT (all-to-all personalized transpose);
3. influence-function multiply + partial reciprocal energy on the owned
   y-slab of the spectrum;
4. distributed inverse FFT back to x-slabs;
5. every rank interpolates the *partial* forces contributed by its
   planes — the B-spline stencil is separable in x, so the later global
   force reduction (classic phase) completes them.

The rank additionally handles its slice of the exclusion corrections and
its share of the (constant) self energy, so the reduced energies add up
to the serial values exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.contract import ContractOp, ScheduleContract
from ..md.box import PeriodicBox
from ..mpi.endpoint import RankEndpoint
from ..mpi.middleware import Middleware
from ..pme.ewald import exclusion_correction, self_energy
from ..pme.grid import ChargeMesh
from ..pme.plans import PlanCache
from ..pme.pme import PME
from .costmodel import MachineCostModel
from .decomposition import AtomDecomposition
from .pfft import DistributedFFT
from .shared import SharedComputeCache

__all__ = ["ParallelPME", "ParallelPMEResult", "SCHEDULE_CONTRACT"]

#: The PME phase's promised communication: exactly the two distributed
#: FFT transposes (all-to-all personalized), nothing else — spreading and
#: interpolation stay local because coordinates are replicated.
SCHEDULE_CONTRACT = ScheduleContract(
    name="pme-phase",
    per_step=(
        ContractOp("alltoallv", note="forward-FFT transpose"),
        ContractOp("alltoallv", note="inverse-FFT transpose"),
    ),
)


@dataclass(frozen=True)
class ParallelPMEResult:
    """One rank's partial contribution from the PME phase."""

    reciprocal_energy: float  # partial; sums to the serial value over ranks
    self_energy: float  # this rank's share of the constant term
    exclusion_energy: float  # from this rank's exclusion slice
    forces: np.ndarray  # partial forces (full-size array)


class ParallelPME:
    """One rank's PME engine.

    Parameters
    ----------
    pme:
        The serial PME object (shared, read-only: box, mesh shape, psi).
    box:
        Periodic box.
    decomp:
        Atom decomposition (for the exclusion slice).
    exclusions:
        Full exclusion pair table (i < j rows).
    charges:
        All partial charges (replicated).
    n_ranks, rank:
        Job geometry.
    cost:
        Machine cost model.
    shared:
        Optional run-wide :class:`SharedComputeCache`; when given, the
        B-spline stencil and the once-per-run setup (total self energy)
        are computed by the first rank and reused by every other.
    fanout:
        Optional :class:`repro.parallel.exec.RankFanout` with a
        ``"pme-spread"`` family registered (one :meth:`_spread_slab` per
        rank); when given, the charge spread of every rank's slab for a
        step is evaluated in one pooled round triggered by the first
        rank to reach it.  Force interpolation is deliberately *not*
        fanned out: it consumes the rank-specific inverse-FFT slab, so
        no other rank's arrival can supply its inputs.
    """

    def __init__(
        self,
        pme: PME,
        box: PeriodicBox,
        decomp: AtomDecomposition,
        exclusions: np.ndarray,
        charges: np.ndarray,
        n_ranks: int,
        rank: int,
        cost: MachineCostModel,
        shared: SharedComputeCache | None = None,
        fanout=None,
    ) -> None:
        self.pme = pme
        self.box = box
        self.rank = rank
        self.n_ranks = n_ranks
        self.cost = cost
        self.charges = charges
        self.shared = shared
        self.fanout = fanout
        # private work-array cache (never shared across ranks/threads)
        self.plans = PlanCache()
        self.fft = DistributedFFT(pme.grid_shape, n_ranks, rank, cost)
        # private mesh so per-rank workload counters do not interleave
        self.mesh = ChargeMesh(box, pme.grid_shape, pme.order)
        # exclusion slice: contiguous block of the (sorted) exclusion table
        bounds = np.linspace(0, len(exclusions), n_ranks + 1).astype(int)
        self.my_exclusions = exclusions[bounds[rank] : bounds[rank + 1]]
        if shared is not None:
            e_self_total = shared.once(
                "pme-self-energy", lambda: self_energy(charges, pme.alpha)
            )
        else:
            e_self_total = self_energy(charges, pme.alpha)
        self.self_energy_share = e_self_total / n_ranks
        # psi restricted to the y-slab this rank owns after the forward FFT
        y0, cy = self.fft.my_y_range
        self.psi_slab = pme.psi[:, y0 : y0 + cy, :]

    # ------------------------------------------------------------------
    def _stencil_for(self, positions: np.ndarray, generation: int | None):
        if self.shared is not None and generation is not None:
            return self.shared.pme_stencil(self.mesh, positions, generation)
        return self.mesh.stencil(positions)

    def _spread_slab(self, positions: np.ndarray, stencil) -> np.ndarray:
        """Spread all charges onto this rank's x-planes.

        This is the per-rank task registered under the fanout's
        ``"pme-spread"`` family: it touches only this rank's private
        mesh (whose ``last_workload`` feeds this rank's virtual cost),
        so concurrent evaluation across ranks is race-free.  The shared
        stencil is computed *before* the round and passed in, keeping
        ``SharedComputeCache`` access single-threaded.
        """
        return self.mesh.spread(
            positions, self.charges, x_range=self.fft.my_x_range, stencil=stencil
        )

    def reciprocal(
        self,
        ep: RankEndpoint,
        mw: Middleware,
        positions: np.ndarray,
        generation: int | None = None,
    ):
        """Generator: the full PME phase for one step; returns the result.

        ``generation`` is the step driver's positions generation counter;
        it keys the shared stencil, which is computed once per step and
        reused across the spread and interpolate directions of all ranks.
        """
        kx, ky, kz = self.pme.grid_shape
        x_range = self.fft.my_x_range
        stencil = self._stencil_for(positions, generation)

        # 1. spread all charges onto owned planes (pooled across ranks
        # when a fanout with the "pme-spread" family is attached)
        if self.fanout is not None and generation is not None:
            q_slab = self.fanout.round(
                "pme-spread", generation, self.rank, positions, stencil
            )
        else:
            q_slab = self._spread_slab(positions, stencil)
        assert self.mesh.last_workload is not None
        yield from ep.compute(self.cost.spread(self.mesh.last_workload.scattered_points))

        # 2. forward distributed FFT; the complex cast reuses a plan-cache
        # buffer (whole-array assignment == astype, bit for bit)
        cplx = self.plans.complex_buffer("fft-in", q_slab.shape)
        cplx[...] = q_slab
        spectrum = yield from self.fft.forward(ep, mw, cplx)

        # 3. influence multiply and partial energy on the owned y-slab
        n_slab_points = spectrum.size
        yield from ep.compute(self.cost.grid_pass(2 * n_slab_points))
        energy = 0.5 * float(np.sum(self.psi_slab * np.abs(spectrum) ** 2))
        conv = np.multiply(
            self.psi_slab,
            spectrum,
            out=self.plans.complex_buffer("conv", spectrum.shape),
        )

        # 4. inverse distributed FFT
        phi_slab = yield from self.fft.inverse(ep, mw, conv)
        phi = self.pme.total_points * phi_slab.real

        # 5. partial force interpolation from owned planes
        forces = self.mesh.interpolate_forces(
            positions, self.charges, phi, x_range=x_range, stencil=stencil
        )
        assert self.mesh.last_workload is not None
        yield from ep.compute(self.cost.spread(self.mesh.last_workload.scattered_points))

        # exclusion corrections (this rank's slice) + self-energy share
        e_excl, f_excl = exclusion_correction(
            positions, self.charges, self.my_exclusions, self.box, self.pme.alpha
        )
        yield from ep.compute(self.cost.exclusions(len(self.my_exclusions)))
        forces += f_excl

        return ParallelPMEResult(
            reciprocal_energy=energy,
            self_energy=self.self_energy_share,
            exclusion_energy=e_excl,
            forces=forces,
        )
