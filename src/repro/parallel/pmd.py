"""The SPMD rank program: parallel CHARMM MD over simulated MPI.

Structure of one step (the paper's Figure 2, 'with PME model'):

* **classic phase** — (optional) barrier, neighbour-list maintenance,
  this rank's bonded slice + pair block;
* **PME phase** — slab spread, forward FFT (all-to-all personalized),
  influence multiply, inverse FFT (all-to-all personalized), partial
  force interpolation, exclusion slice;
* **classic phase** — the all-to-all *collective*: one allreduce of
  energies + forces, leapfrog integration of the rank's atoms, coordinate
  allgather.

Every rank computes real numpy forces on real coordinates; the step
asserts nothing about time — virtual seconds are charged through the
cost model.  :func:`serial_reference_run` performs the identical update
sequence without MPI so the tests can assert trajectory equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

import numpy as np

from ..analysis.contract import ContractOp, ScheduleContract
from ..md.energy import EnergyBreakdown
from ..md.neighborlist import NeighborList
from ..md.system import MDSystem
from ..md.units import ACCEL_CONVERT
from ..mpi.endpoint import RankEndpoint
from ..mpi.middleware import Middleware
from .costmodel import MachineCostModel
from .decomposition import AtomDecomposition
from .pclassic import ParallelClassic
from .ppme import ParallelPME
from .shared import SharedComputeCache

__all__ = [
    "MDRunConfig",
    "RankOutcome",
    "STEP_SCHEDULE_CONTRACT",
    "rank_program",
    "serial_reference_run",
    "energy_to_vector",
    "vector_to_energy",
]

#: The communication schedule one MD step promises (paper Figure 2).
#: The static verifier extracts the actual sequence from
#: :func:`rank_program` and checks conformance (rule REP406); flags gate
#: the optional per-step barrier and the PME phase.
STEP_SCHEDULE_CONTRACT = ScheduleContract(
    name="replicated-data-step",
    per_step=(
        ContractOp("barrier", when="barrier", note="per-step synchronization"),
        ContractOp("alltoallv", when="pme", note="forward-FFT transpose"),
        ContractOp("alltoallv", when="pme", note="inverse-FFT transpose"),
        ContractOp("allreduce", note="energies + forces combine"),
        ContractOp("allgatherv", note="coordinate redistribution"),
    ),
    flags=("barrier", "pme"),
)

_ENERGY_FIELDS = [f.name for f in fields(EnergyBreakdown)]


def energy_to_vector(e: EnergyBreakdown) -> np.ndarray:
    return np.array([getattr(e, name) for name in _ENERGY_FIELDS], dtype=np.float64)


def vector_to_energy(v: np.ndarray) -> EnergyBreakdown:
    return EnergyBreakdown(**{name: float(v[i]) for i, name in enumerate(_ENERGY_FIELDS)})


@dataclass(frozen=True)
class MDRunConfig:
    """Parameters of one measured MD run (the paper uses 10 steps)."""

    n_steps: int = 10
    dt: float = 0.0005  # ps
    temperature: float = 300.0
    velocity_seed: int = 2002
    barrier_per_step: bool = True

    def __post_init__(self) -> None:
        if self.n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        if self.dt <= 0:
            raise ValueError("dt must be positive")


@dataclass
class RankOutcome:
    """What one rank returns when its program finishes."""

    rank: int
    energies: list[EnergyBreakdown] = field(default_factory=list)
    final_positions: np.ndarray | None = None


def rank_program(
    ep: RankEndpoint,
    mw: Middleware,
    system: MDSystem,
    decomp: AtomDecomposition,
    cost: MachineCostModel,
    config: MDRunConfig,
    positions0: np.ndarray,
    velocities0: np.ndarray,
    shared: SharedComputeCache | None = None,
    fanout=None,
    kernel: str = "numpy",
    classic: ParallelClassic | None = None,
    ppme: ParallelPME | None = None,
):
    """Generator driven by the simulator; returns a :class:`RankOutcome`.

    ``system`` must be this rank's private clone (it owns mutable
    neighbour-list state); ``positions0``/``velocities0`` are the shared
    initial conditions — velocities follow the leapfrog convention
    (v at t - dt/2).  ``shared``, when given, is the run-wide
    :class:`SharedComputeCache` deduplicating replicated-data work across
    ranks; physics, trajectories and virtual timelines are bit-identical
    with or without it.

    ``fanout`` is the run-wide :class:`repro.parallel.exec.RankFanout`
    (or None).  When it carries a ``"classic"`` family, the first rank
    to reach a step evaluates every rank's classic block in one pooled
    round and this rank consumes its slot; the driver registers that
    family from the same pre-built ``classic``/``ppme`` engines it
    passes in here, so the pooled and inline paths run the identical
    per-rank objects.  ``kernel`` selects the force-kernel backend for
    an internally-constructed ``classic`` engine (ignored when one is
    passed in).  None of these knobs may change any result bit.
    """
    tl = ep.timeline
    lo, hi = decomp.atom_range(ep.rank)
    positions = positions0.copy()
    velocities = velocities0[lo:hi].copy()
    masses = system.masses[lo:hi, None]

    if classic is None:
        classic = ParallelClassic(
            system, decomp, ep.rank, cost, shared=shared, kernel_backend=kernel
        )
    if ppme is None and system.uses_pme:
        ppme = ParallelPME(
            pme=system.pme,
            box=system.box,
            decomp=decomp,
            exclusions=system.exclusions,
            charges=system.charges,
            n_ranks=ep.size,
            rank=ep.rank,
            cost=cost,
            shared=shared,
            fanout=fanout,
        )

    nl: NeighborList = system.neighbor_list
    outcome = RankOutcome(rank=ep.rank)

    for _step in range(config.n_steps):
        # ---- classic energy calculation --------------------------------
        with tl.phase("classic"):
            if config.barrier_per_step:
                yield from mw.barrier(ep)
            if shared is not None:
                # positions generation counter == step index: coordinates
                # only change at the step-end allgather
                pairs = shared.neighbor_pairs(nl, positions, _step)
            else:
                pairs = nl.ensure(positions)
            if nl.last_ensure_rebuilt:
                yield from ep.compute(cost.neighbor_build(nl.last_candidates))
            if fanout is not None and fanout.has_family("classic"):
                res = fanout.round("classic", _step, ep.rank, positions, pairs)
            else:
                res = classic.compute(positions, pairs)
            yield from ep.compute(classic.compute_seconds(res))
            forces = res.forces
            energies = res.energies

        # ---- PME energy calculation -------------------------------------
        if ppme is not None:
            with tl.phase("pme"):
                pres = yield from ppme.reciprocal(ep, mw, positions, generation=_step)
                forces = forces + pres.forces
                energies = energies + EnergyBreakdown(
                    pme_reciprocal=pres.reciprocal_energy,
                    pme_self=pres.self_energy,
                    pme_exclusion=pres.exclusion_energy,
                )

        # ---- combine, integrate, redistribute ---------------------------
        with tl.phase("classic"):
            packed = np.concatenate([energy_to_vector(energies), forces.ravel()])
            packed = yield from mw.allreduce(ep, packed)
            total_energy = vector_to_energy(packed[: len(_ENERGY_FIELDS)])
            all_forces = packed[len(_ENERGY_FIELDS) :].reshape(-1, 3)
            outcome.energies.append(total_energy)

            yield from ep.compute(cost.integrate(hi - lo))
            accel = all_forces[lo:hi] / masses * ACCEL_CONVERT
            velocities = velocities + accel * config.dt
            own_positions = positions[lo:hi] + velocities * config.dt

            blocks = yield from mw.allgatherv(ep, own_positions)
            positions = np.concatenate(blocks, axis=0)

    outcome.final_positions = positions
    return outcome


def serial_reference_run(
    system: MDSystem,
    config: MDRunConfig,
    positions0: np.ndarray,
    velocities0: np.ndarray,
) -> tuple[list[EnergyBreakdown], np.ndarray]:
    """The identical leapfrog update sequence, single process, no MPI.

    Ground truth for the parallel-equals-serial tests and the p=1 level
    of the experiments.
    """
    positions = positions0.copy()
    velocities = velocities0.copy()
    masses = system.masses[:, None]
    energies_log: list[EnergyBreakdown] = []
    for _step in range(config.n_steps):
        pairs = system.neighbor_list.ensure(positions)
        energies, forces = system.classic_energy_forces(positions, pairs)
        if system.uses_pme:
            pme_e, pme_f = system.pme_energy_forces(positions)
            energies = energies + pme_e
            forces = forces + pme_f
        energies_log.append(energies)
        accel = forces / masses * ACCEL_CONVERT
        velocities = velocities + accel * config.dt
        positions = positions + velocities * config.dt
    return energies_log, positions
