"""Virtual compute-time model, calibrated to the paper's serial run.

Rank programs run the *real* numpy arithmetic but charge virtual seconds
derived from measured operation counts — pair interactions evaluated,
stencil points scattered, FFT butterfly units, bonded terms.  Load
imbalance between ranks therefore emerges from the genuine workload
distribution, not from an analytic approximation.

Calibration (Figure 3, one processor, 10 MD steps of the 3552-atom
system): classic energy calculation ~= 3.4 s, PME energy calculation
~= 2.8 s on a 1 GHz Pentium III.  The constants below hit those totals
with the measured counts of our synthetic myoglobin (~451k cutoff pairs,
~18k bonded terms, 80 x 36 x 48 mesh, order-4 splines).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["MachineCostModel", "PIII_1GHZ", "fft_units"]


def fft_units(*shape_and_axes: tuple[int, ...]) -> float:
    """Butterfly work units for a set of 1-D FFT passes.

    Each argument is a tuple ``(n_transforms, length)``; the unit count is
    ``n_transforms * length * log2(length)``.
    """
    total = 0.0
    for n_transforms, length in shape_and_axes:
        if length < 1 or n_transforms < 0:
            raise ValueError(f"bad FFT pass ({n_transforms}, {length})")
        total += n_transforms * length * math.log2(max(length, 2))
    return total


@dataclass(frozen=True)
class MachineCostModel:
    """Per-operation virtual compute costs (seconds on the reference CPU)."""

    #: one non-bonded pair interaction inside the cutoff (LJ + electrostatics)
    pair_cost: float = 1.02e-6
    #: one candidate pair examined during a neighbour-list build
    pair_candidate_cost: float = 0.06e-6
    #: one bonded term (bond, angle, dihedral or improper)
    bonded_cost: float = 0.40e-6
    #: one excluded-pair Ewald correction
    exclusion_cost: float = 0.40e-6
    #: integrating one atom for one step
    integrate_cost: float = 0.10e-6
    #: one B-spline stencil point scattered or gathered
    spread_cost: float = 2.6e-7
    #: one FFT butterfly unit (see :func:`fft_units`)
    fft_cost: float = 3.0e-8
    #: one mesh point in a pointwise pass (influence multiply, energy sum)
    grid_cost: float = 5.0e-8

    # ---- derived helpers ------------------------------------------------
    def classic_pairs(self, n_pairs: int) -> float:
        return n_pairs * self.pair_cost

    def neighbor_build(self, n_candidates: int) -> float:
        return n_candidates * self.pair_candidate_cost

    def bonded(self, n_terms: int) -> float:
        return n_terms * self.bonded_cost

    def exclusions(self, n_pairs: int) -> float:
        return n_pairs * self.exclusion_cost

    def integrate(self, n_atoms: int) -> float:
        return n_atoms * self.integrate_cost

    def spread(self, n_points: int) -> float:
        return n_points * self.spread_cost

    def fft(self, units: float) -> float:
        return units * self.fft_cost

    def grid_pass(self, n_points: int) -> float:
        return n_points * self.grid_cost


#: The paper's compute node: 1 GHz Pentium III.
PIII_1GHZ = MachineCostModel()
