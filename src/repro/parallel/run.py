"""Run one parallel MD job on a simulated cluster.

The public entry point is :func:`run_parallel_md`.  Everything about
*how* a run executes — middleware, run configuration, cost model,
sanitizer, tracing, shared-compute deduplication — travels in one frozen
:class:`RunOptions` value.  (The pre-:class:`RunOptions` keyword form
went through a deprecation cycle and has been removed; passing the old
keywords is now a :class:`TypeError`.)
"""

from __future__ import annotations

import copy
import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..cluster.machine import ClusterSpec
from ..cmpi.middleware import CMPIMiddleware
from ..md.integrator import maxwell_boltzmann_velocities
from ..md.neighborlist import NeighborList
from ..md.system import MDSystem
from ..mpi.middleware import Middleware, MPIMiddleware
from ..mpi.world import MPIWorld
from ..sim.engine import Simulator
from .costmodel import PIII_1GHZ, MachineCostModel
from .decomposition import AtomDecomposition
from .pmd import MDRunConfig, RankOutcome, rank_program
from .result import ParallelRunResult
from .shared import SharedComputeCache

if TYPE_CHECKING:  # avoid the core -> parallel -> core import cycle
    from ..core.design import DesignPoint
    from ..instrument.commstats import CommTrace
    from ..instrument.tracing import SpanTracer

__all__ = ["RunOptions", "run_parallel_md", "make_middleware", "rank_system_clone"]


def make_middleware(name: str) -> Middleware:
    """Middleware factory for the experimental design levels."""
    if name == "mpi":
        return MPIMiddleware()
    if name == "cmpi":
        return CMPIMiddleware()
    raise ValueError(f"unknown middleware level {name!r}")


def rank_system_clone(base: MDSystem) -> MDSystem:
    """A per-rank view of the system.

    Replicated-data CHARMM gives every rank its own neighbour-list state;
    everything immutable (topology, parameter tables, PME influence
    function) is shared.
    """
    clone = copy.copy(base)
    clone.neighbor_list = NeighborList(base.box, base.scheme, base.exclusions)
    return clone


@dataclass(frozen=True)
class RunOptions:
    """How one parallel MD run executes — the whole knob surface.

    Parameters
    ----------
    middleware:
        ``"mpi"``, ``"cmpi"`` or a :class:`Middleware` instance.
    config:
        Steps/dt/seed; ``None`` means the paper's 10-step measurement run.
    cost:
        Machine cost model (defaults to the calibrated 1 GHz PIII).
    sanitize:
        Run under the communication sanitizer
        (:mod:`repro.analysis.sanitizer`): every matched message, transfer
        window and timeline is invariant-checked; the first violation
        raises.  Passive — timings are bit-identical to a plain run.
    trace:
        Optional :class:`~repro.instrument.commstats.CommTrace`; when
        given, every send/recv/collective event is recorded for the
        schedule analyzer and the trace is attached to
        ``result.extra["comm_trace"]``.
    span_tracer:
        Optional :class:`~repro.instrument.tracing.SpanTracer`; when
        given, every timeline attribution of every rank is mirrored as a
        virtual-clock span (exportable as Chrome trace-event JSON).
        Passive — the run is bit-identical with or without it, and the
        spans charge zero virtual seconds.
    shared_compute:
        Deduplicate replicated-data computations (neighbour-list builds,
        PME stencils, once-per-run setup) across the simulated ranks via
        a run-wide :class:`SharedComputeCache`.  A wall-clock
        optimization only: energies, trajectories and virtual timelines
        are bit-identical with it on or off.  Default on.
    strategy:
        ``"replicated"`` (CHARMM's replicated-data scheme, the default)
        or ``"spatial"`` (cell-grid domain decomposition with halo
        exchange, :mod:`repro.parallel.spatial`).  Spatial runs produce
        bit-identical energies and trajectories at the same rank count;
        only the communication schedule differs.  Spatial covers the
        classic (cutoff) path only — combining it with PME raises.
    spatial_grid:
        Optional forced rank grid ``(gx, gy, gz)`` for the spatial
        strategy (product must equal the rank count); ``None`` picks the
        greedy near-cubic grid.  Ignored for ``strategy="replicated"``.
    exec_workers:
        Thread-pool size for the within-point rank fanout
        (:class:`repro.parallel.exec.RankFanout`): ``0`` (default) keeps
        the serial inline path, ``N > 0`` evaluates the non-shared
        per-rank arithmetic (classic force blocks, PME spread slabs) of
        one step concurrently.  A wall-clock knob only — results,
        virtual timelines and store cache keys are bit-identical for
        every value.
    kernel:
        Force-kernel backend, ``"numpy"`` (reference, default) or
        ``"numba"`` (opt-in compiled mirror; raises at engine
        construction if numba is not installed).  Bit-identical by
        contract and — like ``exec_workers`` — deliberately not part of
        :class:`~repro.core.design.DesignPoint`, so it can never leak
        into campaign content addresses.
    """

    middleware: str | Middleware = "mpi"
    config: MDRunConfig | None = None
    cost: MachineCostModel = PIII_1GHZ
    sanitize: bool = False
    trace: "CommTrace | None" = None
    span_tracer: "SpanTracer | None" = None
    shared_compute: bool = True
    strategy: str = "replicated"
    spatial_grid: tuple[int, int, int] | None = None
    exec_workers: int = 0
    kernel: str = "numpy"

    def __post_init__(self) -> None:
        if self.strategy not in ("replicated", "spatial"):
            raise ValueError(
                f"unknown strategy {self.strategy!r}; expected 'replicated' or 'spatial'"
            )
        if self.exec_workers < 0:
            raise ValueError("exec_workers must be >= 0")
        if self.kernel not in ("numpy", "numba"):
            raise ValueError(
                f"unknown kernel {self.kernel!r}; expected 'numpy' or 'numba'"
            )

    @classmethod
    def for_point(
        cls,
        point: "DesignPoint",
        *,
        config: MDRunConfig | None = None,
        cost: MachineCostModel = PIII_1GHZ,
        sanitize: bool = False,
        trace: "CommTrace | None" = None,
        span_tracer: "SpanTracer | None" = None,
        shared_compute: bool = True,
        exec_workers: int = 0,
        kernel: str = "numpy",
    ) -> "RunOptions":
        """THE :class:`DesignPoint` → :class:`RunOptions` conversion.

        A design point fixes *what* is measured (the platform levels —
        including the middleware factor and the decomposition strategy);
        everything else about *how* the run executes is supplied here.
        The campaign engine, the CLI ``run`` verb,
        :class:`~repro.core.runner.CharacterizationRunner` and the
        benchmarks all build their options through this one classmethod,
        so a design point means the same run everywhere.
        """
        return cls(
            middleware=point.config.middleware,
            config=config,
            cost=cost,
            sanitize=sanitize,
            trace=trace,
            span_tracer=span_tracer,
            shared_compute=shared_compute,
            strategy=getattr(point, "strategy", "replicated"),
            exec_workers=exec_workers,
            kernel=kernel,
        )

    def replace(self, **changes) -> "RunOptions":
        """A copy with the given fields replaced (options are frozen)."""
        return dataclasses.replace(self, **changes)


def _coerce_options(options) -> RunOptions:
    """Validate the ``options`` argument to one :class:`RunOptions` value."""
    if options is None:
        return RunOptions()
    if isinstance(options, (str, Middleware)):
        raise TypeError(
            "run_parallel_md() no longer accepts a bare middleware as the "
            f"options argument; pass RunOptions(middleware={options!r})"
        )
    if not isinstance(options, RunOptions):
        raise TypeError(f"options must be a RunOptions, got {type(options).__name__}")
    return options


def run_parallel_md(
    system: MDSystem,
    positions: np.ndarray,
    cluster: ClusterSpec,
    options: RunOptions | None = None,
) -> ParallelRunResult:
    """Simulate one parallel CHARMM MD run and collect its timelines.

    Parameters
    ----------
    system:
        The (serial) MD system; per-rank clones are derived internally.
    positions:
        Initial coordinates, shape (n_atoms, 3).
    cluster:
        Platform: rank count, placement, network.
    options:
        Everything about *how* the run executes (middleware, run config,
        cost model, sanitizer, tracing, shared compute) — see
        :class:`RunOptions`.  ``None`` means all defaults.
    """
    opts = _coerce_options(options)
    config = opts.config or MDRunConfig()
    mw = (
        opts.middleware
        if isinstance(opts.middleware, Middleware)
        else make_middleware(opts.middleware)
    )

    rng = np.random.default_rng(config.velocity_seed)
    velocities = maxwell_boltzmann_velocities(system.masses, config.temperature, rng)

    decomp = AtomDecomposition(system.n_atoms, cluster.n_ranks)
    sim = Simulator()
    world = MPIWorld(
        sim, cluster,
        sanitize=opts.sanitize, trace=opts.trace, span_tracer=opts.span_tracer,
    )
    if world.sanitizer is not None:
        # hook every collective, not just the point-to-point matches: CMPI
        # books its per-call overhead inside the middleware, where only a
        # per-operation window check can see it (rule REP304)
        from ..analysis.sanitizer import SanitizedMiddleware

        mw = SanitizedMiddleware(mw, world.sanitizer)

    if opts.strategy == "spatial":
        return _run_spatial(
            system, positions, velocities, cluster, opts, config, mw, sim, world
        )

    shared = SharedComputeCache() if opts.shared_compute else None

    # The rank fanout needs its per-rank engines to exist before any rank
    # program runs (a family is registered once, on the driver), so with
    # exec_workers > 0 the engines are pre-built here and handed into the
    # programs; with exec_workers == 0 each program builds its own, as
    # before.  Either way the engines are the same objects the programs
    # use inline, so pooled and serial execution share every code path.
    n_ranks = cluster.n_ranks
    fanout = None
    classics: list = [None] * n_ranks
    ppmes: list = [None] * n_ranks
    if opts.exec_workers > 0:
        from .exec import RankFanout
        from .pclassic import ParallelClassic
        from .ppme import ParallelPME

        fanout = RankFanout(n_ranks, opts.exec_workers, span_tracer=opts.span_tracer)
        systems = [rank_system_clone(system) for _ in range(n_ranks)]
        classics = [
            ParallelClassic(
                systems[r], decomp, r, opts.cost,
                shared=shared, kernel_backend=opts.kernel,
            )
            for r in range(n_ranks)
        ]
        fanout.register("classic", [c.compute for c in classics])
        if system.uses_pme:
            ppmes = [
                ParallelPME(
                    pme=system.pme,
                    box=system.box,
                    decomp=decomp,
                    exclusions=system.exclusions,
                    charges=system.charges,
                    n_ranks=n_ranks,
                    rank=r,
                    cost=opts.cost,
                    shared=shared,
                    fanout=fanout,
                )
                for r in range(n_ranks)
            ]
            fanout.register("pme-spread", [p._spread_slab for p in ppmes])
    else:
        systems = None

    try:
        procs = []
        for rank in range(n_ranks):
            gen = rank_program(
                ep=world.endpoints[rank],
                mw=mw,
                system=systems[rank] if systems is not None else rank_system_clone(system),
                decomp=decomp,
                cost=opts.cost,
                config=config,
                positions0=positions,
                velocities0=velocities,
                shared=shared,
                fanout=fanout,
                kernel=opts.kernel,
                classic=classics[rank],
                ppme=ppmes[rank],
            )
            procs.append(sim.spawn(gen, name=f"rank{rank}"))

        sim.run()
    finally:
        if fanout is not None:
            fanout.close()
    world.assert_drained()
    if fanout is not None:
        fanout.assert_drained()
    if world.sanitizer is not None:
        world.sanitizer.check_final(world)

    outcomes: list[RankOutcome] = [p.result for p in procs]
    result = ParallelRunResult(
        spec=cluster,
        config=config,
        energies=outcomes[0].energies,
        timelines=[ep.timeline for ep in world.endpoints],
        transfers=world.state.transfers,
        final_positions=outcomes[0].final_positions,
        middleware=mw.name,
    )
    if opts.trace is not None:
        result.extra["comm_trace"] = opts.trace
    return result


def _run_spatial(
    system: MDSystem,
    positions: np.ndarray,
    velocities: np.ndarray,
    cluster: ClusterSpec,
    opts: RunOptions,
    config: MDRunConfig,
    mw: Middleware,
    sim: Simulator,
    world: MPIWorld,
) -> ParallelRunResult:
    """The spatial-decomposition leg of :func:`run_parallel_md`.

    Same simulator/world/sanitizer plumbing as the replicated leg; what
    differs is the decomposition (cells of the box instead of atom
    blocks), the rank program (halo exchange + migration instead of
    allreduce + allgather) and the energy path (driver-side ledger
    assembly instead of an in-band collective).
    """
    from .spatial import SpatialDecomposition, SpatialEngine, SpatialLedger
    from .spatial import spatial_rank_program
    from .spatial.engine import SpatialOutcome

    if system.uses_pme:
        raise ValueError(
            "strategy='spatial' covers the classic (cutoff) path only; "
            "PME's slab FFT needs the replicated strategy"
        )
    decomp = SpatialDecomposition.for_cluster(
        system.box, cluster.n_ranks, system.scheme.r_cut, grid=opts.spatial_grid
    )
    vdecomp = AtomDecomposition(system.n_atoms, cluster.n_ranks)
    ledger = SpatialLedger(system, vdecomp)

    procs = []
    for rank in range(cluster.n_ranks):
        engine = SpatialEngine(
            system=system,
            decomp=decomp,
            vdecomp=vdecomp,
            rank=rank,
            cost=opts.cost,
            middleware=mw.name,
            ledger=ledger,
            positions0=positions,
            velocities0=velocities,
            kernel_backend=opts.kernel,
        )
        gen = spatial_rank_program(
            ep=world.endpoints[rank],
            mw=mw,
            decomp=decomp,
            engine=engine,
            config=config,
        )
        procs.append(sim.spawn(gen, name=f"rank{rank}"))

    sim.run()
    world.assert_drained()
    if world.sanitizer is not None:
        world.sanitizer.check_final(world)

    outcomes: list[SpatialOutcome] = [p.result for p in procs]
    final_positions = np.full((system.n_atoms, 3), np.nan)
    for out in outcomes:
        final_positions[out.owned] = out.positions
    if not np.isfinite(final_positions).all():
        raise RuntimeError("spatial run lost atoms: final ownership is not a partition")

    result = ParallelRunResult(
        spec=cluster,
        config=config,
        energies=ledger.assemble(mw.name),
        timelines=[ep.timeline for ep in world.endpoints],
        transfers=world.state.transfers,
        final_positions=final_positions,
        middleware=mw.name,
    )
    if opts.trace is not None:
        result.extra["comm_trace"] = opts.trace
    return result
