"""Run one parallel MD job on a simulated cluster."""

from __future__ import annotations

import copy

import numpy as np

from ..cluster.machine import ClusterSpec
from ..cmpi.middleware import CMPIMiddleware
from ..md.integrator import maxwell_boltzmann_velocities
from ..md.neighborlist import NeighborList
from ..md.system import MDSystem
from ..mpi.middleware import Middleware, MPIMiddleware
from ..mpi.world import MPIWorld
from ..sim.engine import Simulator
from .costmodel import PIII_1GHZ, MachineCostModel
from .decomposition import AtomDecomposition
from .pmd import MDRunConfig, RankOutcome, rank_program
from .result import ParallelRunResult
from .shared import SharedComputeCache

__all__ = ["run_parallel_md", "make_middleware", "rank_system_clone"]


def make_middleware(name: str) -> Middleware:
    """Middleware factory for the experimental design levels."""
    if name == "mpi":
        return MPIMiddleware()
    if name == "cmpi":
        return CMPIMiddleware()
    raise ValueError(f"unknown middleware level {name!r}")


def rank_system_clone(base: MDSystem) -> MDSystem:
    """A per-rank view of the system.

    Replicated-data CHARMM gives every rank its own neighbour-list state;
    everything immutable (topology, parameter tables, PME influence
    function) is shared.
    """
    clone = copy.copy(base)
    clone.neighbor_list = NeighborList(base.box, base.scheme, base.exclusions)
    return clone


def run_parallel_md(
    system: MDSystem,
    positions: np.ndarray,
    cluster: ClusterSpec,
    middleware: str | Middleware = "mpi",
    config: MDRunConfig | None = None,
    cost: MachineCostModel = PIII_1GHZ,
    sanitize: bool = False,
    trace=None,
    shared_compute: bool = True,
) -> ParallelRunResult:
    """Simulate one parallel CHARMM MD run and collect its timelines.

    Parameters
    ----------
    system:
        The (serial) MD system; per-rank clones are derived internally.
    positions:
        Initial coordinates, shape (n_atoms, 3).
    cluster:
        Platform: rank count, placement, network.
    middleware:
        ``"mpi"``, ``"cmpi"`` or a :class:`Middleware` instance.
    config:
        Steps/dt/seed; defaults to the paper's 10-step measurement run.
    cost:
        Machine cost model (defaults to the calibrated 1 GHz PIII).
    sanitize:
        Run under the communication sanitizer
        (:mod:`repro.analysis.sanitizer`): every matched message, transfer
        window and timeline is invariant-checked; the first violation
        raises.  Passive — timings are bit-identical to a plain run.
    trace:
        Optional :class:`~repro.instrument.commstats.CommTrace`; when
        given, every send/recv/collective event is recorded for the
        schedule analyzer and the trace is attached to
        ``result.extra["comm_trace"]``.
    shared_compute:
        Deduplicate replicated-data computations (neighbour-list builds,
        PME stencils, once-per-run setup) across the simulated ranks via
        a run-wide :class:`SharedComputeCache`.  A wall-clock
        optimization only: energies, trajectories and virtual timelines
        are bit-identical with it on or off.  Default on.
    """
    config = config or MDRunConfig()
    mw = middleware if isinstance(middleware, Middleware) else make_middleware(middleware)

    rng = np.random.default_rng(config.velocity_seed)
    velocities = maxwell_boltzmann_velocities(system.masses, config.temperature, rng)

    decomp = AtomDecomposition(system.n_atoms, cluster.n_ranks)
    sim = Simulator()
    world = MPIWorld(sim, cluster, sanitize=sanitize, trace=trace)
    shared = SharedComputeCache() if shared_compute else None

    procs = []
    for rank in range(cluster.n_ranks):
        gen = rank_program(
            ep=world.endpoints[rank],
            mw=mw,
            system=rank_system_clone(system),
            decomp=decomp,
            cost=cost,
            config=config,
            positions0=positions,
            velocities0=velocities,
            shared=shared,
        )
        procs.append(sim.spawn(gen, name=f"rank{rank}"))

    sim.run()
    world.assert_drained()
    if world.sanitizer is not None:
        world.sanitizer.check_final(world)

    outcomes: list[RankOutcome] = [p.result for p in procs]
    result = ParallelRunResult(
        spec=cluster,
        config=config,
        energies=outcomes[0].energies,
        timelines=[ep.timeline for ep in world.endpoints],
        transfers=world.state.transfers,
        final_positions=outcomes[0].final_positions,
        middleware=mw.name,
    )
    if trace is not None:
        result.extra["comm_trace"] = trace
    return result
