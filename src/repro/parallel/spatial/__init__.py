"""Spatial domain decomposition with halo exchange.

A second answer to the paper's title question: instead of replicating
every coordinate and paying the all-to-all combine, assign each rank a
cell of the periodic box and communicate only with grid neighbours —
ghost coordinates in before the force evaluation, migrating atoms out
after the integration.  Physics stays bit-identical to the replicated
path (the engine replays its accumulation and fold orders exactly);
only the communication schedule changes shape.
"""

from __future__ import annotations

from ...instrument.timeline import register_phase
from .decomposition import SpatialDecomposition, grid_for, halo_pulses
from .engine import SpatialEngine, SpatialLedger, SpatialOutcome, binomial_fold
from .program import spatial_rank_program

# the spatial step introduces two new timeline phases
register_phase("halo")
register_phase("migrate")

__all__ = [
    "SpatialDecomposition",
    "SpatialEngine",
    "SpatialLedger",
    "SpatialOutcome",
    "binomial_fold",
    "grid_for",
    "halo_pulses",
    "spatial_rank_program",
]
