"""Spatial domain decomposition: cells of the periodic box over a rank grid.

The second answer to the paper's title question.  Replicated-data CHARMM
keeps every coordinate everywhere and pays for it with all-to-all
combines; a spatial decomposition assigns each rank a rectangular cell
of the box, so a step only needs *neighbour* traffic: ghost coordinates
within the cutoff flow inward before the force evaluation (halo
exchange) and atoms that crossed a cell face migrate outward after the
integration.  Per-rank message counts are then independent of p — the
communication shape the all-to-all schedule can never reach.

This module is pure geometry: the rank grid, cell ownership, halo
depths, and the declared :class:`~repro.analysis.contract.ScheduleContract`.
The physics replay lives in :mod:`repro.parallel.spatial.engine`, the
communication skeleton in :mod:`repro.parallel.spatial.program`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ...analysis.contract import ContractOp, ScheduleContract
from ...md.box import PeriodicBox
from ..decomposition import Decomposition

__all__ = ["SpatialDecomposition", "grid_for", "halo_pulses"]


def _prime_factors_desc(n: int) -> list[int]:
    """Prime factors of ``n`` in descending order (largest first)."""
    factors: list[int] = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors.append(d)
            n //= d
        d += 1
    if n > 1:
        factors.append(n)
    return sorted(factors, reverse=True)


def grid_for(box: PeriodicBox, n_ranks: int) -> tuple[int, int, int]:
    """Greedy rank grid: repeatedly split the dimension with the widest region.

    Prime factors of ``n_ranks`` are assigned largest-first to the
    dimension whose current region width ``L_d / g_d`` is largest (ties
    go to the lowest dimension index), which keeps regions as cubic as
    the box allows — the shape that minimizes halo surface per volume.
    """
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    grid = [1, 1, 1]
    lengths = [float(v) for v in box.lengths]
    for prime in _prime_factors_desc(n_ranks):
        dim = max(range(3), key=lambda d: (lengths[d] / grid[d], -d))
        grid[dim] *= prime
    return (grid[0], grid[1], grid[2])


def halo_pulses(box: PeriodicBox, grid: tuple[int, int, int], r_cut: float) -> tuple[int, int, int]:
    """Systolic pulse count per dimension so ghost coverage reaches ``r_cut``.

    Each pulse imports coordinates one region further away, so a
    dimension needs ``ceil(r_cut / region_width)`` pulses — more than one
    when the cutoff exceeds a region width.  The count is capped at
    ``G_d - 1`` (beyond that a pulse would re-import the rank's own
    atoms); the cap never loses coverage because ``r_cut <= L/2`` and
    ``(G_d - 1) * width = L - width >= L/2`` for any split dimension.
    A dimension of grid size 1 spans the whole box — minimum-image
    arithmetic covers its periodicity with no messages at all.
    """
    pulses = []
    for d in range(3):
        g = int(grid[d])
        if g == 1:
            pulses.append(0)
            continue
        width = float(box.lengths[d]) / g
        pulses.append(min(int(math.ceil(r_cut / width)), g - 1))
    return (pulses[0], pulses[1], pulses[2])


@dataclass(frozen=True)
class SpatialDecomposition(Decomposition):
    """Cell-grid partition of the periodic box over a rank grid.

    Ranks are laid out row-major over ``grid = (gx, gy, gz)``:
    ``rank = cx * gy * gz + cy * gz + cz``.  An atom belongs to the cell
    containing its wrapped coordinate; an atom exactly on a cell
    boundary belongs to the upper cell (``floor`` of the scaled
    coordinate), deterministically on every rank.
    """

    box: PeriodicBox
    n_ranks: int
    r_cut: float
    grid: tuple[int, int, int]

    def __post_init__(self) -> None:
        gx, gy, gz = self.grid
        if gx < 1 or gy < 1 or gz < 1:
            raise ValueError(f"grid dimensions must be >= 1, got {self.grid}")
        if gx * gy * gz != self.n_ranks:
            raise ValueError(
                f"grid {self.grid} has {gx * gy * gz} cells for {self.n_ranks} ranks"
            )
        if self.r_cut <= 0:
            raise ValueError("r_cut must be positive")
        self.box.check_cutoff(self.r_cut)

    @classmethod
    def for_cluster(
        cls,
        box: PeriodicBox,
        n_ranks: int,
        r_cut: float,
        grid: tuple[int, int, int] | None = None,
    ) -> "SpatialDecomposition":
        """The standard construction: greedy grid unless one is forced."""
        if grid is None:
            grid = grid_for(box, n_ranks)
        return cls(box=box, n_ranks=n_ranks, r_cut=r_cut, grid=tuple(int(g) for g in grid))

    # -- geometry ------------------------------------------------------
    @property
    def pulses(self) -> tuple[int, int, int]:
        """Halo pulses per dimension (0 where the grid dimension is 1)."""
        return halo_pulses(self.box, self.grid, self.r_cut)

    def rank_coords(self, rank: int) -> tuple[int, int, int]:
        gx, gy, gz = self.grid
        return (rank // (gy * gz), (rank // gz) % gy, rank % gz)

    def rank_of(self, coords: tuple[int, int, int]) -> int:
        gx, gy, gz = self.grid
        return coords[0] * gy * gz + coords[1] * gz + coords[2]

    def neighbor(self, rank: int, dim: int, step: int) -> int:
        """The rank ``step`` cells away along ``dim`` (periodic)."""
        coords = list(self.rank_coords(rank))
        coords[dim] = (coords[dim] + step) % self.grid[dim]
        return self.rank_of((coords[0], coords[1], coords[2]))

    def region(self, rank: int, dim: int) -> tuple[float, float]:
        """The ``[lo, hi)`` interval of ``rank``'s cell along ``dim``."""
        c = self.rank_coords(rank)[dim]
        width_num = float(self.box.lengths[dim])
        g = self.grid[dim]
        return (c * width_num / g, (c + 1) * width_num / g)

    def cell_coords(self, positions: np.ndarray) -> np.ndarray:
        """Integer cell coordinates, shape (n, 3); boundary atoms go up."""
        wrapped = self.box.wrap(np.asarray(positions, dtype=np.float64))
        lengths = self.box.lengths
        grid = np.asarray(self.grid, dtype=np.int64)
        cells = np.floor(wrapped / lengths * grid).astype(np.int64)
        return np.clip(cells, 0, grid - 1)

    def owners(self, positions: np.ndarray) -> np.ndarray:
        """Owning rank of every position, shape (n,)."""
        gx, gy, gz = self.grid
        c = self.cell_coords(positions)
        return c[:, 0] * (gy * gz) + c[:, 1] * gz + c[:, 2]

    # -- contract ------------------------------------------------------
    def schedule_contract(self) -> ScheduleContract:
        """The neighbour-only halo/migration schedule of one MD step.

        Per split dimension: ``pulses`` paired exchanges toward each
        side before the force evaluation, then one paired exchange per
        side for atom migration after the integration.  No all-to-all
        anywhere — per-rank message counts depend on the grid's split
        dimensions and halo depths, never on p itself.
        """
        ops: list[ContractOp] = [
            ContractOp("barrier", when="barrier", note="per-step synchronization")
        ]
        pulses = self.pulses
        for dim in range(3):
            if self.grid[dim] > 1:
                for k in range(pulses[dim]):
                    ops.append(
                        ContractOp("exchange", note=f"halo dim {dim} pulse {k} down")
                    )
                    ops.append(
                        ContractOp("exchange", note=f"halo dim {dim} pulse {k} up")
                    )
        for dim in range(3):
            if self.grid[dim] > 1:
                ops.append(ContractOp("exchange", note=f"migrate dim {dim} down"))
                ops.append(ContractOp("exchange", note=f"migrate dim {dim} up"))
        return ScheduleContract(
            name="spatial-halo-step",
            per_step=tuple(ops),
            flags=("barrier",),
        )
