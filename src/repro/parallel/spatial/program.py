"""The spatial SPMD rank program: halo exchange, compute, migrate.

Structure of one step:

* **classic phase** — (optional) barrier;
* **halo phase** — for every split grid dimension, ``pulses[dim]``
  paired neighbour exchanges per side: ghost coordinates within the
  cutoff flow in from both neighbours, multi-pulse when the cutoff
  exceeds a region width (arrivals are forwarded verbatim one region
  further per pulse);
* **classic phase** — force evaluation and leapfrog integration of the
  rank's owned atoms (the engine replays the replicated-data
  accumulation orders so trajectories are bit-identical);
* **migrate phase** — one paired exchange per side per split dimension
  moving atoms that crossed a cell face, with their velocities.

This module is deliberately *only* the communication skeleton: control
flow depends on nothing but the decomposition's grid and pulse counts,
so the static verifier (:mod:`repro.analysis.static_schedule`) can
instantiate it per (rank, p) and prove the schedule deadlock-free
without executing any physics.  All numerics live behind the opaque
``engine`` object (:class:`repro.parallel.spatial.engine.SpatialEngine`).

Every exchange draws a fresh collective tag and posts its receive
before its send (:meth:`~repro.mpi.endpoint.RankEndpoint.sendrecv`), so
the neighbour rings cannot deadlock under rendezvous semantics.
"""

from __future__ import annotations

__all__ = ["spatial_rank_program"]


def spatial_rank_program(ep, mw, decomp, engine, config):
    """Generator driven by the simulator; returns the engine's outcome.

    ``decomp`` supplies the concrete rank-grid geometry (``grid`` and
    ``pulses`` tuples); ``engine`` owns every coordinate, force and
    ledger operation.  The communication schedule below is a pure
    function of (rank, grid, pulses) — identical on every rank, which
    is what makes the paired exchanges match up.
    """
    tl = ep.timeline
    grid = decomp.grid
    pulses = decomp.pulses
    gx, gy, gz = grid
    strides = (gy * gz, gz, 1)
    coords = (ep.rank // (gy * gz), (ep.rank // gz) % gy, ep.rank % gz)

    for _step in range(config.n_steps):
        with tl.phase("classic"):
            if config.barrier_per_step:
                yield from mw.barrier(ep)

        with tl.phase("halo"):
            engine.begin_step()
            for dim in range(3):
                if grid[dim] > 1:
                    minus_c = (coords[dim] - 1) % grid[dim]
                    plus_c = (coords[dim] + 1) % grid[dim]
                    minus = ep.rank + (minus_c - coords[dim]) * strides[dim]
                    plus = ep.rank + (plus_c - coords[dim]) * strides[dim]
                    for k in range(pulses[dim]):
                        tag_down = ep.next_collective_tag("halo")
                        down = engine.halo_payload(dim, k, 0)
                        from_plus = yield from mw.exchange(ep, minus, down, plus, tag_down)
                        engine.halo_receive(dim, k, 0, from_plus)
                        tag_up = ep.next_collective_tag("halo")
                        up = engine.halo_payload(dim, k, 1)
                        from_minus = yield from mw.exchange(ep, plus, up, minus, tag_up)
                        engine.halo_receive(dim, k, 1, from_minus)

        with tl.phase("classic"):
            yield from ep.compute(engine.compute_forces())
            yield from ep.compute(engine.integrate(config.dt))

        with tl.phase("migrate"):
            for dim in range(3):
                if grid[dim] > 1:
                    minus_c = (coords[dim] - 1) % grid[dim]
                    plus_c = (coords[dim] + 1) % grid[dim]
                    minus = ep.rank + (minus_c - coords[dim]) * strides[dim]
                    plus = ep.rank + (plus_c - coords[dim]) * strides[dim]
                    tag_down = ep.next_collective_tag("migrate")
                    down = engine.migrate_payload(dim, 0)
                    from_plus = yield from mw.exchange(ep, minus, down, plus, tag_down)
                    engine.migrate_receive(dim, from_plus)
                    tag_up = ep.next_collective_tag("migrate")
                    up = engine.migrate_payload(dim, 1)
                    from_minus = yield from mw.exchange(ep, plus, up, minus, tag_up)
                    engine.migrate_receive(dim, from_minus)
            engine.end_step()

    return engine.outcome()
