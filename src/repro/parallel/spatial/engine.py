"""Bit-exact spatial replay engine: forces, energies, halo bookkeeping.

The acceptance bar for the spatial decomposition is not "close": energies
and trajectories must be **bitwise identical** to the replicated-data run
at the same rank count.  Floating-point addition is not associative, so
the engine cannot simply "sum what it owns" — it must *replay* the exact
accumulation orders the replicated path uses:

* per-pair and per-bonded-row values are pure elementwise functions of
  their own row (:meth:`repro.md.nonbonded.NonbondedKernel.pair_terms`,
  ``*_row_terms`` in :mod:`repro.md.bonded`), so any subset evaluates to
  bitwise-identical rows;
* ``np.bincount`` and ``np.add.at`` accumulate sequentially in array
  order, so restricting a scatter to the subsequence touching one bin
  preserves that bin's bits — the engine buckets every contribution by
  *(virtual replicated rank, owned atom)* and scatters in the replicated
  call order;
* the replicated allreduce folds per-rank blocks in a fixed tree (MPI:
  binomial/recursive-doubling, both equal :func:`binomial_fold`; CMPI:
  each rank's chain over raw peer blocks), which the engine replays per
  owned atom after local accumulation.

Energies need full per-block contiguous arrays under ``np.sum`` (pairwise
summation), which no single spatial rank holds — so ranks post per-row
energies to a driver-side :class:`SpatialLedger` and the driver assembles
the per-virtual-rank sums and folds *after* the simulation, with zero
simulated communication.

Unknown coordinates are NaN-poisoned each step: if the halo ever fails to
cover an interaction, forces go NaN and the fold assertion fails loudly
instead of silently drifting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from ...instrument.counters import FORCE_EVALUATIONS
from ...md.bonded import (
    angle_row_terms,
    bond_row_terms,
    dihedral_row_terms,
    improper_row_terms,
)
from ...md.energy import EnergyBreakdown
from ...md.nonbonded import NonbondedKernel
from ...md.system import MDSystem
from ...md.units import ACCEL_CONVERT
from ..costmodel import MachineCostModel
from ..decomposition import AtomDecomposition, _block_bounds
from ..pmd import energy_to_vector, vector_to_energy
from .decomposition import SpatialDecomposition

__all__ = ["SpatialEngine", "SpatialLedger", "SpatialOutcome", "binomial_fold"]


def binomial_fold(blocks: list[np.ndarray]) -> np.ndarray:
    """Fold per-rank blocks exactly as the simulated MPI allreduce does.

    Power-of-two rank counts use recursive doubling, other counts use a
    binomial-tree reduce to rank 0 plus broadcast — both produce the
    balanced-binary combination tree this loop builds (IEEE addition is
    commutative bitwise, so the pairings are all that matters).
    """
    acc = list(blocks)
    p = len(acc)
    mask = 1
    while mask < p:
        for r in range(0, p, 2 * mask):
            if r + mask < p:
                acc[r] = acc[r] + acc[r + mask]
        mask *= 2
    return acc[0]


@dataclass
class SpatialOutcome:
    """What one spatial rank returns when its program finishes."""

    rank: int
    owned: np.ndarray
    positions: np.ndarray
    velocities: np.ndarray


class SpatialLedger:
    """Driver-side energy assembly for a spatial run.

    Ranks post raw per-row energies for the rows they spatially own
    (bonded terms by their column-0 atom, pairs by the smaller index), so
    coverage is exactly-once by construction.  After the simulation the
    driver assembles the full per-term arrays, slices them by the
    *replicated* block bounds, sums each slice with ``np.sum`` — the
    identical contiguous array the replicated rank summed — and folds the
    per-virtual-rank energy vectors with the middleware's fold order.
    No simulated communication is involved: ranks pipeline freely.
    """

    def __init__(self, system: MDSystem, vdecomp: AtomDecomposition) -> None:
        self.n_atoms = system.n_atoms
        self.vbounds = vdecomp.bounds
        self.n_ranks = vdecomp.n_ranks
        t = system.bonded_tables
        self._term_rows = {
            "bond": len(t.bond_idx),
            "angle": len(t.angle_idx),
            "dihedral": len(t.dihedral_idx),
            "improper": len(t.improper_idx),
        }
        self._bonded: dict[tuple[str, int], list] = {}
        self._pairs: dict[int, list] = {}
        self.n_steps = 0

    # ------------------------------------------------------------------
    def post_bonded(
        self, term: str, step: int, rows: np.ndarray, e_rows: np.ndarray
    ) -> None:
        """One rank's per-row energies for the term rows it owns."""
        self.n_steps = max(self.n_steps, step + 1)
        self._bonded.setdefault((term, step), []).append((rows, e_rows))

    def post_pairs(
        self,
        step: int,
        i: np.ndarray,
        j: np.ndarray,
        e_lj: np.ndarray,
        e_el: np.ndarray,
    ) -> None:
        """One rank's per-pair energies for the pairs it owns (by ``i``)."""
        self.n_steps = max(self.n_steps, step + 1)
        self._pairs.setdefault(step, []).append((i, j, e_lj, e_el))

    # ------------------------------------------------------------------
    def assemble(self, middleware: str) -> list[EnergyBreakdown]:
        """Per-step total energies, bitwise equal to the replicated log."""
        out: list[EnergyBreakdown] = []
        p = self.n_ranks
        for step in range(self.n_steps):
            term_sums: dict[str, list[float]] = {}
            for term, n_rows in self._term_rows.items():
                full = np.full(n_rows, np.nan)
                for rows, e_rows in self._bonded.get((term, step), []):
                    full[rows] = e_rows
                if n_rows and not np.isfinite(full).all():
                    missing = int(np.count_nonzero(~np.isfinite(full)))
                    raise RuntimeError(
                        f"step {step}: {missing} {term} rows were never posted "
                        "(or went NaN on an uncovered halo import)"
                    )
                b = _block_bounds(n_rows, p)
                term_sums[term] = [
                    float(np.sum(full[b[v] : b[v + 1]])) for v in range(p)
                ]

            posts = self._pairs.get(step, [])
            if posts:
                i = np.concatenate([x[0] for x in posts])
                j = np.concatenate([x[1] for x in posts])
                e_lj = np.concatenate([x[2] for x in posts])
                e_el = np.concatenate([x[3] for x in posts])
            else:
                i = j = np.empty(0, dtype=np.int64)
                e_lj = e_el = np.empty(0, dtype=np.float64)
            codes = i * np.int64(self.n_atoms) + j
            order = np.argsort(codes, kind="stable")
            codes_s = codes[order]
            if len(codes_s) and np.any(codes_s[1:] == codes_s[:-1]):
                raise RuntimeError(f"step {step}: a pair was posted twice")
            i_s = i[order]
            e_lj_s = e_lj[order]
            e_el_s = e_el[order]

            evecs = []
            for v in range(p):
                start = int(np.searchsorted(i_s, self.vbounds[v], side="left"))
                stop = int(np.searchsorted(i_s, self.vbounds[v + 1], side="left"))
                evecs.append(
                    energy_to_vector(
                        EnergyBreakdown(
                            bond=term_sums["bond"][v],
                            angle=term_sums["angle"][v],
                            dihedral=term_sums["dihedral"][v],
                            improper=term_sums["improper"][v],
                            lj=float(np.sum(e_lj_s[start:stop])),
                            elec_direct=float(np.sum(e_el_s[start:stop])),
                        )
                    )
                )
            if middleware == "mpi":
                folded = binomial_fold(evecs)
            elif middleware == "cmpi":
                # rank 0's chain over raw peer blocks, in arrival order
                folded = evecs[0]
                for k in range(1, p):
                    folded = folded + evecs[p - k]
            else:
                raise ValueError(f"unknown middleware {middleware!r} for spatial fold")
            out.append(vector_to_energy(folded))
        return out


class SpatialEngine:
    """One spatial rank's numerics: state, halo payloads, bit-exact replay."""

    def __init__(
        self,
        system: MDSystem,
        decomp: SpatialDecomposition,
        vdecomp: AtomDecomposition,
        rank: int,
        cost: MachineCostModel,
        middleware: str,
        ledger: SpatialLedger,
        positions0: np.ndarray,
        velocities0: np.ndarray,
        kernel_backend: str = "numpy",
    ) -> None:
        if middleware not in ("mpi", "cmpi"):
            raise ValueError(f"unknown middleware {middleware!r} for spatial replay")
        self.decomp = decomp
        self.vdecomp = vdecomp
        self.rank = rank
        self.cost = cost
        self.middleware = middleware
        self.ledger = ledger
        self.box = system.box
        self.scheme = system.scheme
        self.masses = system.masses
        self.n_atoms = system.n_atoms
        self.r_cut = system.scheme.r_cut
        self.vbounds = vdecomp.bounds
        self._coords = decomp.rank_coords(rank)

        self.positions = np.asarray(positions0, dtype=np.float64).copy()
        self.velocities = np.asarray(velocities0, dtype=np.float64).copy()
        self.owned_mask = decomp.owners(self.positions) == rank
        self.known_mask = self.owned_mask.copy()

        # a private kernel so per-rank pair counters do not interleave
        self.kernel = NonbondedKernel(
            system.forcefield,
            system.topology.type_names,
            system.charges,
            system.box,
            system.scheme,
            elec_mode=system.nonbonded.elec_mode,
            ewald_alpha=system.nonbonded.ewald_alpha,
            backend=kernel_backend,
        )
        excl = system.exclusions
        if excl.size:
            self._excl_codes = np.sort(
                excl[:, 0] * np.int64(self.n_atoms) + excl[:, 1]
            )
        else:
            self._excl_codes = np.empty(0, dtype=np.int64)

        t = system.bonded_tables
        p = vdecomp.n_ranks
        self._terms = (
            ("bond", t.bond_idx, _block_bounds(len(t.bond_idx), p), bond_row_terms,
             (t.bond_kb, t.bond_r0)),
            ("angle", t.angle_idx, _block_bounds(len(t.angle_idx), p), angle_row_terms,
             (t.angle_k, t.angle_t0)),
            ("dihedral", t.dihedral_idx, _block_bounds(len(t.dihedral_idx), p),
             dihedral_row_terms, (t.dihedral_k, t.dihedral_n, t.dihedral_delta)),
            ("improper", t.improper_idx, _block_bounds(len(t.improper_idx), p),
             improper_row_terms, (t.improper_k, t.improper_psi0)),
        )

        self._step = -1
        self._pulse_store: dict[tuple[int, int], np.ndarray] = {}
        self._forces_owned: np.ndarray | None = None
        self._owned_idx: np.ndarray | None = None

    # -- step lifecycle ------------------------------------------------
    def begin_step(self) -> None:
        """Reset ghosts; NaN-poison every coordinate the halo must refill."""
        self._step += 1
        self.known_mask = self.owned_mask.copy()
        self.positions[~self.known_mask] = np.nan
        self._pulse_store = {}

    def end_step(self) -> None:
        """Every owned atom must sit in this rank's cell after migration."""
        owned = np.nonzero(self.owned_mask)[0]
        owners = self.decomp.owners(self.positions[owned])
        wrong = owners != self.rank
        if np.any(wrong):
            raise RuntimeError(
                f"rank {self.rank}: atoms {owned[wrong][:8].tolist()} ended the "
                "step outside their owner's cell (moved more than one cell?)"
            )

    def outcome(self) -> SpatialOutcome:
        owned = np.nonzero(self.owned_mask)[0]
        return SpatialOutcome(
            rank=self.rank,
            owned=owned,
            positions=self.positions[owned].copy(),
            velocities=self.velocities[owned].copy(),
        )

    # -- halo exchange -------------------------------------------------
    def halo_payload(self, dim: int, pulse: int, direction: int) -> np.ndarray:
        """``(m, 4)`` rows ``[atom_index, x, y, z]`` to send this pulse.

        Pulse 0 selects the known atoms within ``r_cut`` of the departing
        face (``direction`` 0 = toward the minus neighbour, 1 = plus);
        later pulses forward the previous arrival verbatim, moving ghost
        blocks one region further per pulse (systolic multi-depth halo).
        """
        if pulse > 0:
            return self._pulse_store[(dim, direction)]
        known = np.nonzero(self.known_mask)[0]
        wrapped = self.box.wrap(self.positions[known])
        lo, hi = self.decomp.region(self.rank, dim)
        if direction == 0:
            sel = wrapped[:, dim] <= lo + self.r_cut
        else:
            sel = wrapped[:, dim] >= hi - self.r_cut
        idxs = known[sel]
        payload = np.empty((len(idxs), 4), dtype=np.float64)
        payload[:, 0] = idxs
        payload[:, 1:4] = self.positions[idxs]
        return payload

    def halo_receive(
        self, dim: int, pulse: int, direction: int, data: np.ndarray
    ) -> None:
        """Merge arrived ghosts (idempotent) and stash them for forwarding."""
        data = np.asarray(data, dtype=np.float64).reshape(-1, 4)
        self._pulse_store[(dim, direction)] = data
        if len(data):
            idxs = data[:, 0].astype(np.int64)
            self.positions[idxs] = data[:, 1:4]
            self.known_mask[idxs] = True

    # -- migration -----------------------------------------------------
    def migrate_payload(self, dim: int, direction: int) -> np.ndarray:
        """``(m, 7)`` rows ``[atom_index, pos, vel]`` leaving along ``dim``.

        ``delta = (cell - mine) mod g`` classifies crossers: ``g - 1``
        moved down, ``1`` moved up; with ``g == 2`` both faces lead to the
        same neighbour and all crossers go down.  Anything else moved more
        than one cell in a single step — a physical impossibility at MD
        timesteps — and is a hard error, matching the single-hop schedule
        the contract declares.
        """
        g = self.decomp.grid[dim]
        owned = np.nonzero(self.owned_mask)[0]
        cells = self.decomp.cell_coords(self.positions[owned])
        delta = (cells[:, dim] - self._coords[dim]) % g
        if direction == 0:
            bad = (delta != 0) & (delta != 1) & (delta != g - 1)
            if np.any(bad):
                raise RuntimeError(
                    f"rank {self.rank}: atoms {owned[bad][:8].tolist()} moved "
                    f"more than one cell along dim {dim} in one step"
                )
            sel = delta == g - 1
        else:
            sel = (delta == 1) & (delta != g - 1)
        sent = owned[sel]
        payload = np.empty((len(sent), 7), dtype=np.float64)
        payload[:, 0] = sent
        payload[:, 1:4] = self.positions[sent]
        payload[:, 4:7] = self.velocities[sent]
        self.owned_mask[sent] = False
        return payload

    def migrate_receive(self, dim: int, data: np.ndarray) -> None:
        """Adopt arrived atoms immediately so later rounds see them."""
        data = np.asarray(data, dtype=np.float64).reshape(-1, 7)
        if len(data):
            idxs = data[:, 0].astype(np.int64)
            self.owned_mask[idxs] = True
            self.known_mask[idxs] = True
            self.positions[idxs] = data[:, 1:4]
            self.velocities[idxs] = data[:, 4:7]

    # -- force replay ----------------------------------------------------
    def _candidate_pairs(self, owned: np.ndarray, known: np.ndarray) -> np.ndarray:
        """All ``i < j`` pairs within ``r_cut`` touching an owned atom.

        Two phases, and only the first changed when this went from a dense
        ``owned x known`` distance matrix to a periodic k-d tree: the tree
        merely *proposes* a candidate superset (its radius is padded so an
        ulp-level disagreement between its internal metric and ours can
        never drop a pair the exact test would accept); the accept test is
        still the replicated path's exact arithmetic — ``min_image``
        displacement, squared-distance compare against ``r_cut**2`` — so
        the surviving set is bitwise the same restriction of the
        replicated filtered pair list to pairs touching this rank:
        sorted, deduplicated, exclusions removed.  Since ``owned`` is a
        subset of ``known``, every such pair appears in the known-known
        tree enumeration; ghost-ghost proposals are discarded by the
        owned-mask filter.  Only non-NaN (known) coordinates enter the
        tree, preserving the NaN-poisoning guarantee.
        """
        n = self.n_atoms
        cut2 = self.scheme.r_cut**2
        if len(owned) and len(known):
            tree = cKDTree(
                self.box.wrap(self.positions[known]), boxsize=self.box.lengths
            )
            cand = tree.query_pairs(
                self.r_cut * (1.0 + 1e-9), output_type="ndarray"
            )
            gi = known[cand[:, 0]]
            gj = known[cand[:, 1]]
            touch = self.owned_mask[gi] | self.owned_mask[gj]
            gi, gj = gi[touch], gj[touch]
            dr = self.box.min_image(self.positions[gi] - self.positions[gj])
            d2 = np.einsum("ij,ij->i", dr, dr)
            keep = d2 <= cut2
            gi, gj = gi[keep], gj[keep]
            lo = np.minimum(gi, gj)
            hi = np.maximum(gi, gj)
            # each unordered pair is enumerated once by the tree, so the
            # codes are already unique — a plain sort replaces np.unique
            codes = np.sort(lo * np.int64(n) + hi)
        else:
            codes = np.empty(0, dtype=np.int64)
        if self._excl_codes.size and codes.size:
            at = np.searchsorted(self._excl_codes, codes)
            at[at == len(self._excl_codes)] = 0
            codes = codes[self._excl_codes[at] != codes]
        return np.stack([codes // n, codes % n], axis=1)

    def compute_forces(self) -> float:
        """Replay the replicated force path for the owned atoms; return cost.

        Every contribution is bucketed by (virtual replicated rank,
        owned-atom slot) — one extra trash slot absorbs scatter onto
        ghosts — accumulated in the replicated call order, then folded
        across virtual ranks with the middleware's exact fold.
        """
        FORCE_EVALUATIONS.increment()
        n = self.n_atoms
        p = self.vdecomp.n_ranks
        owned = np.nonzero(self.owned_mask)[0]
        known = np.nonzero(self.known_mask)[0]
        k_own = len(owned)
        slots = k_own + 1
        nbins = p * slots
        local_of = np.full(n, k_own, dtype=np.int64)
        local_of[owned] = np.arange(k_own, dtype=np.int64)

        pairs = self._candidate_pairs(owned, known)
        i, j, e_lj, e_el, fvec = self.kernel.pair_terms(self.positions, pairs)
        sel_own = self.owned_mask[i]
        self.ledger.post_pairs(
            self._step, i[sel_own], j[sel_own], e_lj[sel_own], e_el[sel_own]
        )

        acc_nb = np.zeros((nbins, 3), dtype=np.float64)
        if len(i):
            vb = np.searchsorted(self.vbounds, i, side="right") - 1
            bins_i = vb * slots + local_of[i]
            bins_j = vb * slots + local_of[j]
            c = np.ascontiguousarray(fvec.T)
            for dim in range(3):
                acc_nb[:, dim] += np.bincount(bins_i, weights=c[dim], minlength=nbins)
                acc_nb[:, dim] -= np.bincount(bins_j, weights=c[dim], minlength=nbins)

        total_rows = 0
        acc_terms: list[np.ndarray] = []
        for term, idx, bounds, row_terms, params in self._terms:
            acc = np.zeros((nbins, 3), dtype=np.float64)
            if len(idx):
                touch = np.nonzero(np.any(self.owned_mask[idx], axis=1))[0]
                if len(touch):
                    e_rows, scatter = row_terms(
                        self.positions, self.box, idx[touch],
                        *[prm[touch] for prm in params],
                    )
                    base = (np.searchsorted(bounds, touch, side="right") - 1) * slots
                    for col, frows in scatter:
                        np.add.at(acc, base + local_of[idx[touch, col]], frows)
                    sel0 = self.owned_mask[idx[touch, 0]]
                    self.ledger.post_bonded(
                        term, self._step, touch[sel0], e_rows[sel0]
                    )
                    total_rows += len(touch)
            acc_terms.append(acc)

        # replicated combine order: (((bond + angle) + dih) + imp) + nonbonded
        contrib = acc_terms[0]
        contrib += acc_terms[1]
        contrib += acc_terms[2]
        contrib += acc_terms[3]
        contrib += acc_nb
        contrib = contrib.reshape(p, slots, 3)

        if self.middleware == "mpi":
            folded = binomial_fold([contrib[v] for v in range(p)])
            forces_owned = folded[:k_own]
        else:
            # CMPI: each virtual rank's allreduce result is its own chain
            # over raw peer blocks; replay the chain of each atom's owner
            forces_owned = np.empty((k_own, 3), dtype=np.float64)
            vatom = np.searchsorted(self.vbounds, owned, side="right") - 1
            for v in np.unique(vatom):
                sel = vatom == v
                data = contrib[v, :k_own][sel]
                for k in range(1, p):
                    data = data + contrib[(v - k) % p, :k_own][sel]
                forces_owned[sel] = data

        if not np.isfinite(forces_owned).all():
            raise RuntimeError(
                f"rank {self.rank} step {self._step}: non-finite folded forces "
                "— the halo failed to cover an interaction"
            )
        self._forces_owned = forces_owned
        self._owned_idx = owned
        return (
            self.cost.neighbor_build(k_own * len(known))
            + self.cost.classic_pairs(self.kernel.last_pair_count)
            + self.cost.bonded(total_rows)
        )

    def integrate(self, dt: float) -> float:
        """Leapfrog update of the owned atoms; elementwise per atom, so
        bitwise equal to the replicated slice update."""
        owned = self._owned_idx
        accel = self._forces_owned / self.masses[owned][:, None] * ACCEL_CONVERT
        self.velocities[owned] = self.velocities[owned] + accel * dt
        self.positions[owned] = self.positions[owned] + self.velocities[owned] * dt
        return self.cost.integrate(len(owned))
