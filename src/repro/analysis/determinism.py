"""Determinism lint (REP5xx): protect the bit-identical-results invariant.

The whole experimental apparatus rests on one promise: the same inputs
produce the same virtual timings and the same trajectories, bit for bit,
on every host and in every process (DESIGN.md's reproducibility pillar;
it is what lets the Figure-7 variability statistics measure the *model*
rather than the harness).  This module walks source files with
:mod:`ast` and flags constructs that silently break that promise:

* **REP501** — unseeded random sources: ``np.random.default_rng()``
  without a seed, the legacy ``np.random.*`` global generator, the
  stdlib ``random`` module;
* **REP502** — wall-clock reads (``time.time``/``perf_counter``/
  ``datetime.now``) inside the virtual-time packages;
* **REP503** — bare iteration over an unordered set expression
  (``for x in set(..) | set(..)``): Python set order is hash-order,
  which varies with ``PYTHONHASHSEED`` for strings and with pointer
  values for objects.  Wrapping the set in ``sorted(...)`` fixes the
  order and silences the rule;
* **REP504** — float accumulation (``sum``/``math.fsum``/``np.sum``/
  ``functools.reduce``) whose iteration order is an unordered set:
  float addition is not associative, so hash order leaks into energies;
* **REP505** — process- or host-dependent values (``os.getpid``,
  ``os.urandom``, ``uuid.uuid1``/``uuid4``, ``platform.node``,
  ``socket.gethostname``, ``id()``, ``hash()``) inside the virtual-time
  packages.
* **REP506** — completion-order reductions inside the execution engine
  (``repro/parallel/exec``): ``as_completed``, ``imap_unordered``,
  ``wait(..., return_when=FIRST_COMPLETED)``.  Consuming futures in the
  order they *finish* lets thread scheduling pick the reduction order,
  which is exactly how a pool would leak nondeterminism into energies.
  The fanout collects ``f.result()`` over the submitted list in rank
  order; any completion-order construct in that package is an error.

REP502/REP505 are scoped to the packages that run under virtual time
(:data:`VIRTUAL_TIME_PACKAGES`); the tooling layers (cli, report,
instrument dashboards) may legitimately read the host clock or pid.
REP501/REP503/REP504 apply everywhere — unordered float math is wrong
in a report script too.

Suppressions: a trailing ``# repro: noqa[REP5xx]`` (or the legacy
``# noqa: REP5xx``) on the offending line; grandfathered findings live
in ``.repro-analysis-baseline.json`` (see :mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import ast
import os
from pathlib import Path

from .lint import SKIP_MARKER
from .rules import ERROR, Diagnostic

__all__ = [
    "VIRTUAL_TIME_PACKAGES",
    "is_virtual_time_path",
    "is_exec_path",
    "lint_determinism_source",
    "lint_determinism_paths",
]

#: Sub-packages of ``repro`` whose code runs under the simulated clock.
#: Wall-clock and host-identity reads there poison virtual timings.
VIRTUAL_TIME_PACKAGES = frozenset(
    {"sim", "mpi", "cmpi", "parallel", "md", "pme", "cluster"}
)

_WALLCLOCK_TIME = {
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
}
_WALLCLOCK_DATETIME = {"now", "utcnow", "today"}

_LEGACY_NP_RANDOM = {
    "rand", "randn", "random", "randint", "seed", "choice", "shuffle",
    "normal", "uniform", "permutation", "random_sample", "standard_normal",
    "exponential", "poisson", "binomial",
}
_STDLIB_RANDOM = {
    "random", "randint", "uniform", "choice", "choices", "shuffle",
    "gauss", "randrange", "sample", "seed", "betavariate", "expovariate",
}

#: dotted call -> what it leaks (REP505, virtual-time packages only)
_HOST_DEPENDENT = {
    "os.getpid": "the process id",
    "os.getppid": "the parent process id",
    "os.urandom": "kernel entropy",
    "uuid.uuid1": "host MAC address and wall clock",
    "uuid.uuid4": "kernel entropy",
    "platform.node": "the hostname",
    "socket.gethostname": "the hostname",
    "socket.gethostbyname": "host DNS state",
}

_ACCUMULATORS = {"sum", "fsum"}  # bare / math.fsum / np.sum
_REDUCE_NAMES = {"reduce"}  # functools.reduce

#: completion-order constructs (REP506, execution engine only)
_COMPLETION_ORDER_CALLS = {
    "as_completed",  # concurrent.futures.as_completed / asyncio.as_completed
    "imap_unordered",  # multiprocessing pool iterators
}


def is_virtual_time_path(path: str | Path) -> bool:
    """Does this file live in a package that runs under the virtual clock?"""
    parts = Path(path).parts
    for i, part in enumerate(parts[:-1]):
        if part == "repro" and parts[i + 1] in VIRTUAL_TIME_PACKAGES:
            return True
    return False


def is_exec_path(path: str | Path) -> bool:
    """Does this file live in the within-point execution engine?

    ``repro/parallel/exec`` is where futures are actually fanned out, so
    it is the package where a completion-order construct (REP506) would
    directly reorder the force reduction.
    """
    parts = Path(path).parts
    for i, part in enumerate(parts[:-2]):
        if part == "repro" and parts[i + 1] == "parallel" and parts[i + 2] == "exec":
            return True
    return False


def _dotted(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_set_expr(node: ast.expr) -> bool:
    """Is this expression an unordered set by construction?

    Recognized: set literals, set comprehensions, ``set(..)`` /
    ``frozenset(..)`` calls, ``dict.keys()`` is *not* flagged (insertion
    order is guaranteed), and binary combinations (``|  & - ^``) of
    recognized set expressions.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        if name in ("set", "frozenset"):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _ordered_wrapper(node: ast.expr) -> bool:
    """``sorted(...)`` / ``list(sorted(...))`` impose a canonical order."""
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        if name in ("sorted", "min", "max", "len"):
            return True
        if name == "list" and node.args and _ordered_wrapper(node.args[0]):
            return True
    return False


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str, virtual_time: bool, exec_engine: bool = False) -> None:
        self.path = path
        self.virtual_time = virtual_time
        self.exec_engine = exec_engine
        self.diags: list[Diagnostic] = []
        # iter expressions already judged by the accumulation rule
        # (REP504), so the set-iteration rule does not double-report
        self._claimed: set[int] = set()

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        self.diags.append(
            Diagnostic(
                rule=rule,
                message=message,
                path=self.path,
                line=getattr(node, "lineno", None),
                severity=ERROR,
            )
        )

    # -- REP503: bare iteration over an unordered set -------------------
    def _check_iter(self, iter_node: ast.expr, where: ast.AST) -> None:
        if id(iter_node) in self._claimed:
            return
        if _is_set_expr(iter_node):
            self._emit(
                "REP503",
                where,
                "iteration over an unordered set: Python set order is "
                "hash-order (varies with PYTHONHASHSEED); wrap the set in "
                "sorted(...) for a canonical order",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter, node)
        self.generic_visit(node)

    def _visit_comprehension_generators(self, generators) -> None:
        for gen in generators:
            self._check_iter(gen.iter, gen.iter)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    # set comprehensions over sets still build a set: order never escapes
    def visit_SetComp(self, node: ast.SetComp) -> None:
        self.generic_visit(node)

    # -- calls: REP501 / REP502 / REP504 / REP505 -----------------------
    def visit_Call(self, node: ast.Call) -> None:
        self._check_randomness(node)
        if self.virtual_time:
            self._check_wallclock(node)
            self._check_host_dependent(node)
        if self.exec_engine:
            self._check_completion_order(node)
        self._check_accumulation(node)
        self.generic_visit(node)

    # -- REP506: completion-order reductions in the exec engine ----------
    def _check_completion_order(self, node: ast.Call) -> None:
        leaf = None
        name = _dotted(node.func)
        if name is not None:
            leaf = name.rsplit(".", 1)[-1]
        elif isinstance(node.func, ast.Attribute):
            leaf = node.func.attr  # method on a non-Name chain (pool().wait)
        if leaf in _COMPLETION_ORDER_CALLS:
            self._emit(
                "REP506",
                node,
                f"{leaf}() yields results in completion order, letting "
                "thread scheduling pick the reduction order; collect "
                "f.result() over the submitted future list in rank order",
            )
            return
        if leaf == "wait":
            for kw in node.keywords:
                if kw.arg != "return_when":
                    continue
                value = kw.value
                tail = (
                    value.value
                    if isinstance(value, ast.Constant)
                    else (_dotted(value) or "").rsplit(".", 1)[-1]
                )
                if tail in ("FIRST_COMPLETED", "FIRST_EXCEPTION"):
                    self._emit(
                        "REP506",
                        node,
                        f"wait(return_when={tail}) resumes on whichever "
                        "future finishes first; the exec engine must "
                        "consume futures in rank order",
                    )

    def _check_randomness(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        if name is None:
            return
        parts = name.split(".")
        if len(parts) == 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
            leaf = parts[2]
            if leaf == "default_rng":
                unseeded = not node.args or (
                    isinstance(node.args[0], ast.Constant)
                    and node.args[0].value is None
                )
                if unseeded and not node.keywords:
                    self._emit(
                        "REP501",
                        node,
                        "np.random.default_rng() without a seed: results vary "
                        "run to run",
                    )
            elif leaf in _LEGACY_NP_RANDOM:
                self._emit(
                    "REP501",
                    node,
                    f"legacy global generator np.random.{leaf}(): use a "
                    "seeded np.random.default_rng(seed)",
                )
        elif len(parts) == 2 and parts[0] == "random" and parts[1] in _STDLIB_RANDOM:
            self._emit(
                "REP501",
                node,
                f"stdlib random.{parts[1]}() draws from unseeded "
                "process-global state; use np.random.default_rng(seed)",
            )

    def _check_wallclock(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        if name is None:
            return
        parts = name.split(".")
        if len(parts) == 2 and parts[0] == "time" and parts[1] in _WALLCLOCK_TIME:
            self._emit(
                "REP502",
                node,
                f"time.{parts[1]}() reads the host wall clock inside a "
                "virtual-time package; use the simulator clock (ep.now / sim.now)",
            )
        elif (
            parts[-1] in _WALLCLOCK_DATETIME
            and len(parts) >= 2
            and parts[-2] in ("datetime", "date")
        ):
            self._emit(
                "REP502",
                node,
                f"{name}() reads the host wall clock inside a virtual-time "
                "package; use the simulator clock (ep.now / sim.now)",
            )

    def _check_host_dependent(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        if name in _HOST_DEPENDENT:
            self._emit(
                "REP505",
                node,
                f"{name}() leaks {_HOST_DEPENDENT[name]} into virtual-time "
                "code; derive identity from (rank, seed) instead",
            )
            return
        if isinstance(node.func, ast.Name) and node.func.id in ("id", "hash"):
            self._emit(
                "REP505",
                node,
                f"builtin {node.func.id}() depends on the process memory "
                "layout / PYTHONHASHSEED; key on an explicit stable field "
                "instead",
            )

    def _check_accumulation(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        if name is None:
            return
        leaf = name.rsplit(".", 1)[-1]
        is_reduce = leaf in _REDUCE_NAMES and name in ("reduce", "functools.reduce")
        is_sum = leaf in _ACCUMULATORS and name in (
            "sum", "math.fsum", "np.sum", "numpy.sum", "fsum",
        )
        if not (is_sum or is_reduce):
            return
        # reduce(f, iterable): the iterable is the second argument
        arg_index = 1 if is_reduce else 0
        if len(node.args) <= arg_index:
            return
        arg = node.args[arg_index]
        # sum(x for x in some_set) — look through the generator
        if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
            iters = [gen.iter for gen in arg.generators]
        else:
            iters = [arg]
        for it in iters:
            self._claimed.add(id(it))
            if _ordered_wrapper(it):
                continue
            if _is_set_expr(it):
                self._emit(
                    "REP504",
                    node,
                    f"{leaf}() accumulates floats in set hash-order; float "
                    "addition is not associative — iterate sorted(...)",
                )
                return


# ---------------------------------------------------------------------------
def _suppressed(line: str, rule: str) -> bool:
    """Inline suppression: ``# repro: noqa[REP503]`` or ``# noqa: REP503``."""
    from .baseline import inline_suppressions

    codes = inline_suppressions(line)
    return codes is not None and (not codes or rule in codes)


def lint_determinism_source(
    source: str, path: str = "<string>", *, respect_skip: bool = True
) -> list[Diagnostic]:
    """Determinism-lint one source text; returns surviving diagnostics."""
    head = source.splitlines()[:5]
    if respect_skip and any(SKIP_MARKER in line for line in head):
        return []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                rule="REP100",
                message=f"syntax error: {exc.msg}",
                path=path,
                line=exc.lineno,
                severity=ERROR,
            )
        ]
    visitor = _Visitor(
        path,
        virtual_time=is_virtual_time_path(path),
        exec_engine=is_exec_path(path),
    )
    visitor.visit(tree)

    lines = source.splitlines()
    out = []
    for diag in visitor.diags:
        if diag.line is not None and 1 <= diag.line <= len(lines):
            if _suppressed(lines[diag.line - 1], diag.rule):
                continue
        out.append(diag)
    return out


def lint_determinism_paths(paths: list[str | Path]) -> list[Diagnostic]:
    """Determinism-lint every ``.py`` file under the given files/directories."""
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for dirpath, dirnames, filenames in os.walk(p):
                dirnames[:] = sorted(
                    d for d in dirnames if not d.startswith(".") and d != "__pycache__"
                )
                files.extend(
                    Path(dirpath) / f for f in sorted(filenames) if f.endswith(".py")
                )
        elif p.suffix == ".py":
            files.append(p)
    diags: list[Diagnostic] = []
    for f in files:
        diags.extend(lint_determinism_source(f.read_text(), str(f)))
    return diags
