"""SARIF 2.1.0 output for analyzer findings.

GitHub code scanning ingests SARIF (Static Analysis Results Interchange
Format) and turns each result into an annotation on the PR diff, so the
REP-rule findings surface exactly where reviewers look.  We emit the
minimal valid subset: one run, the rule table from
:data:`repro.analysis.rules.RULES`, one result per surviving diagnostic
with a physical location.

The p-condition of a static-schedule finding (e.g. ``odd p in [3, 31]``)
is folded into the message text — SARIF has no native notion of a
symbolic parameter domain.
"""

from __future__ import annotations

import json
from pathlib import Path

from .rules import RULES, WARNING, Diagnostic

__all__ = ["to_sarif", "write_sarif"]

_SCHEMA = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
_TOOL_NAME = "repro-analyze"
_INFO_URI = "https://github.com/oasis-tcs/sarif-spec"


def _level(diag: Diagnostic) -> str:
    return "warning" if diag.severity == WARNING else "error"


def _rel_uri(path: str) -> str:
    """Forward-slash path relative to the repo root when possible."""
    p = Path(path)
    try:
        p = p.resolve().relative_to(Path.cwd().resolve())
    except ValueError:
        pass
    return p.as_posix()


def to_sarif(diags: list[Diagnostic], *, tool_version: str = "1.0.0") -> dict:
    """Render diagnostics as a SARIF 2.1.0 log dictionary."""
    used_rules = sorted({d.rule for d in diags})
    rules = []
    rule_index: dict[str, int] = {}
    for i, rule_id in enumerate(used_rules):
        rule = RULES.get(rule_id)
        rule_index[rule_id] = i
        rules.append(
            {
                "id": rule_id,
                "shortDescription": {
                    "text": rule.summary if rule else rule_id,
                },
                "defaultConfiguration": {
                    "level": "warning" if rule and rule.severity == WARNING else "error",
                },
                "properties": {"layer": rule.layer if rule else "unknown"},
            }
        )

    results = []
    for d in diags:
        message = d.message
        if d.p_condition:
            message = f"[{d.p_condition}] {message}"
        result: dict = {
            "ruleId": d.rule,
            "ruleIndex": rule_index[d.rule],
            "level": _level(d),
            "message": {"text": message},
            "partialFingerprints": {"reproFingerprint/v1": d.fingerprint()},
        }
        if d.path:
            region = {}
            if d.line:
                region["startLine"] = int(d.line)
            location = {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": _rel_uri(d.path),
                        "uriBaseId": "SRCROOT",
                    },
                }
            }
            if region:
                location["physicalLocation"]["region"] = region
            result["locations"] = [location]
        results.append(result)

    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "version": tool_version,
                        "informationUri": _INFO_URI,
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }


def write_sarif(
    path: str | Path, diags: list[Diagnostic], *, tool_version: str = "1.0.0"
) -> None:
    """Write a SARIF log for the diagnostics to ``path``."""
    Path(path).write_text(json.dumps(to_sarif(diags, tool_version=tool_version), indent=2) + "\n")
