"""AST lint for the coroutine-collective protocol.

The whole communication layer is built from generator coroutines driven
with ``yield from`` (see :mod:`repro.sim.engine`): an endpoint or
middleware method that is *called* but not *yielded from* creates a
generator object and throws it away — the communication silently never
happens and the run produces wrong timings instead of a crash.  This
module walks source files with :mod:`ast` and flags that class of bug
plus the reproducibility hazards around it.

Rules (see :mod:`repro.analysis.rules` for the registry):

* **REP101** — a protocol generator (``ep.compute``/``ep.send``/
  ``mw.allreduce``/``collectives.barrier``/``req.wait``/...) called
  without ``yield from``;
* **REP105** — a protocol generator assigned to a local name that the
  enclosing scope never consumes (no ``yield from``, no driver hand-off,
  no read at all).  Assignment alone is deferred judgement, not
  consumption: ``g = ep.compute(1.0)`` is fine when ``sim.spawn(g)`` or
  ``yield from g`` follows, and flagged when nothing ever reads ``g``;
* **REP102** — a data-moving collective (``allreduce``, ``allgatherv``,
  ``alltoallv``, ``bcast``, ``recv``) yielded from as a bare statement,
  discarding the result every caller depends on;
* **REP103** — unseeded randomness (``np.random.default_rng()`` with no
  seed, the legacy ``np.random.*`` global generator, or the stdlib
  ``random`` module) — breaks the reproducibility of the Figure-7
  variability statistics;
* **REP104** — wall-clock calls (``time.time()``/``perf_counter``/
  ``datetime.now``) inside virtual-time code.

Protocol calls are recognised by the repo's naming conventions
(receivers named ``ep``/``endpoint``, ``mw``/``middleware``, the
``collectives`` module, ``*req`` request handles, and ``self`` inside
``*Middleware``/``*Endpoint`` classes).  Intentional exceptions are
suppressed with a trailing ``# noqa: REP1xx`` comment; whole files
(golden bad-program fixtures) opt out with a ``# repro-analyze:
skip-file`` marker in their first lines.
"""

from __future__ import annotations

import ast
import os
import re
from pathlib import Path

from .rules import ERROR, Diagnostic

__all__ = ["lint_source", "lint_paths", "SKIP_MARKER"]

#: Files whose first lines contain this marker are skipped by
#: :func:`lint_paths` (used for the golden bad-program test fixtures).
SKIP_MARKER = "repro-analyze: skip-file"

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)

# ---------------------------------------------------------------------------
# protocol tables (the repo's coroutine-collective conventions)

_ENDPOINT_RECEIVERS = {"ep", "endpoint"}
_ENDPOINT_METHODS = {"compute", "send", "recv", "sendrecv", "isend", "irecv"}

_MIDDLEWARE_RECEIVERS = {"mw", "middleware"}
_MIDDLEWARE_METHODS = {"barrier", "allreduce", "allgatherv", "alltoallv", "sync"}

_COLLECTIVE_MODULE = "collectives"
_COLLECTIVE_FUNCS = {"barrier", "allreduce", "allgatherv", "alltoallv", "bcast", "reduce"}

#: Collectives whose entire purpose is the returned data: discarding the
#: result of a ``yield from`` of one of these is REP102.  Point-to-point
#: ``recv`` is excluded: receive-and-ignore is a legitimate
#: synchronization idiom (one-byte control messages).
_VALUE_RETURNING = {"allreduce", "allgatherv", "alltoallv", "bcast"}

#: Functions a bare (non-yielded) generator may legitimately be passed
#: to: simulator drivers and explicit generator consumers.
_DRIVER_FUNCS = {"spawn", "drive", "drive_all", "run_generator", "list", "next", "iter"}

_LEGACY_NP_RANDOM = {
    "rand", "randn", "random", "randint", "seed", "choice", "shuffle",
    "normal", "uniform", "permutation", "random_sample", "standard_normal",
    "exponential", "poisson", "binomial",
}
_STDLIB_RANDOM = {
    "random", "randint", "uniform", "choice", "choices", "shuffle",
    "gauss", "randrange", "sample", "seed", "betavariate", "expovariate",
}
_WALLCLOCK_TIME = {
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
}
_WALLCLOCK_DATETIME = {"now", "utcnow", "today"}


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` as a string, or None for non-trivial receivers."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _call_name(func: ast.expr) -> str | None:
    """The simple name a call is made under (``spawn`` in ``sim.spawn(..)``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class _Visitor(ast.NodeVisitor):
    """Parent- and class-aware walker collecting diagnostics."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.diags: list[Diagnostic] = []
        self._parents: list[ast.AST] = []
        self._classes: list[str] = []
        # dataflow scopes: pending protocol generators stored in locals,
        # and every name the scope (or a scope nested in it) reads
        self._scopes: list[dict] = [{"pending": {}, "loaded": set()}]

    # -- traversal ------------------------------------------------------
    def visit(self, node: ast.AST) -> None:
        self._parents.append(node)
        try:
            super().visit(node)
        finally:
            self._parents.pop()

    def finish(self) -> None:
        """Flush the module scope after the walk (REP105 at top level)."""
        while self._scopes:
            self._flush_scope()

    def _flush_scope(self) -> None:
        scope = self._scopes.pop()
        for name, (node, label) in scope["pending"].items():
            if name not in scope["loaded"]:
                self._emit(
                    "REP105",
                    node,
                    f"'{name} = {label}(...)' stores a generator nothing ever "
                    f"consumes; 'yield from {name}' (or hand it to sim.spawn)",
                )

    def _visit_scope(self, node: ast.AST) -> None:
        self._scopes.append({"pending": {}, "loaded": set()})
        try:
            self.generic_visit(node)
        finally:
            self._flush_scope()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scope(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            # a read anywhere in the live scope chain consumes the name
            # (covers yield-from, driver calls and closure captures alike)
            for scope in self._scopes:
                scope["loaded"].add(node.id)
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        bases = [b for base in node.bases if (b := _dotted(base)) is not None]
        label = node.name + "|" + "|".join(bases)
        self._classes.append(label)
        try:
            self.generic_visit(node)
        finally:
            self._classes.pop()

    def _in_class(self, fragment: str) -> bool:
        return any(fragment in label for label in self._classes)

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        self.diags.append(
            Diagnostic(
                rule=rule,
                message=message,
                path=self.path,
                line=getattr(node, "lineno", None),
                severity=ERROR,
            )
        )

    # -- protocol-generator classification ------------------------------
    def _protocol_call(self, node: ast.Call) -> str | None:
        """Name of the protocol generator this call creates, or None."""
        func = node.func
        if isinstance(func, ast.Attribute):
            method = func.attr
            recv = _dotted(func.value)
            leaf = recv.rsplit(".", 1)[-1].lower() if recv else ""
            if method in _ENDPOINT_METHODS and leaf in _ENDPOINT_RECEIVERS:
                return f"{recv}.{method}"
            if method in _MIDDLEWARE_METHODS and leaf in _MIDDLEWARE_RECEIVERS:
                return f"{recv}.{method}"
            if method in _COLLECTIVE_FUNCS and leaf == _COLLECTIVE_MODULE:
                return f"{recv}.{method}"
            if method == "wait" and leaf.endswith("req"):
                return f"{recv}.wait"
            if recv == "self":
                if method in _MIDDLEWARE_METHODS and self._in_class("Middleware"):
                    return f"self.{method}"
                if method in _ENDPOINT_METHODS and self._in_class("Endpoint"):
                    return f"self.{method}"
            return None
        if isinstance(func, ast.Name) and func.id in _COLLECTIVE_FUNCS:
            # bare collective name: only when the first argument is an
            # endpoint by convention (collectives.py internal calls)
            if node.args and isinstance(node.args[0], ast.Name):
                if node.args[0].id.lower() in _ENDPOINT_RECEIVERS:
                    return func.id
        return None

    @staticmethod
    def _assign_target(parent: ast.AST | None, call: ast.Call) -> str | None:
        """Local name this call's generator is stored under, or None."""
        if (
            isinstance(parent, ast.Assign)
            and parent.value is call
            and len(parent.targets) == 1
            and isinstance(parent.targets[0], ast.Name)
        ):
            return parent.targets[0].id
        if (
            isinstance(parent, ast.AnnAssign)
            and parent.value is call
            and isinstance(parent.target, ast.Name)
        ):
            return parent.target.id
        if isinstance(parent, ast.NamedExpr) and isinstance(parent.target, ast.Name):
            return parent.target.id
        return None

    def _is_driven(self) -> bool:
        """Is the current call handed to a generator driver (sim.spawn)?"""
        # parents[-1] is the Call itself
        for ancestor in reversed(self._parents[:-1]):
            if isinstance(ancestor, ast.Call):
                name = _call_name(ancestor.func)
                return name in _DRIVER_FUNCS
            if isinstance(ancestor, (ast.keyword, ast.Starred)):
                continue
            break
        return False

    # -- the checks -----------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        parent = self._parents[-2] if len(self._parents) >= 2 else None

        label = self._protocol_call(node)
        if label is not None:
            if isinstance(parent, ast.YieldFrom):
                grandparent = self._parents[-3] if len(self._parents) >= 3 else None
                method = label.rsplit(".", 1)[-1]
                if isinstance(grandparent, ast.Expr) and method in _VALUE_RETURNING:
                    self._emit(
                        "REP102",
                        node,
                        f"result of collective '{label}' is discarded; every rank "
                        "depends on the combined value — assign it",
                    )
            elif (target := self._assign_target(parent, node)) is not None:
                # assignment defers judgement to scope-level dataflow:
                # flagged at scope exit only if the name is never read
                self._scopes[-1]["pending"][target] = (node, label)
            elif not self._is_driven():
                self._emit(
                    "REP101",
                    node,
                    f"'{label}(...)' creates a generator that is never driven; "
                    "call it with 'yield from' (or hand it to sim.spawn)",
                )

        self._check_randomness(node)
        self._check_wallclock(node)
        self.generic_visit(node)

    def _check_randomness(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        if name is None:
            return
        parts = name.split(".")
        # np.random.* / numpy.random.*
        if len(parts) == 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
            leaf = parts[2]
            if leaf == "default_rng":
                unseeded = not node.args or (
                    isinstance(node.args[0], ast.Constant) and node.args[0].value is None
                )
                if unseeded and not node.keywords:
                    self._emit(
                        "REP103",
                        node,
                        "np.random.default_rng() without a seed: run-to-run "
                        "variability becomes unreproducible",
                    )
            elif leaf in _LEGACY_NP_RANDOM:
                self._emit(
                    "REP103",
                    node,
                    f"legacy global generator np.random.{leaf}(): use a seeded "
                    "np.random.default_rng(seed) instead",
                )
        # stdlib random module
        elif len(parts) == 2 and parts[0] == "random" and parts[1] in _STDLIB_RANDOM:
            self._emit(
                "REP103",
                node,
                f"stdlib random.{parts[1]}() is unseeded process-global state; "
                "use np.random.default_rng(seed)",
            )

    def _check_wallclock(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        if name is None:
            return
        parts = name.split(".")
        if len(parts) == 2 and parts[0] == "time" and parts[1] in _WALLCLOCK_TIME:
            self._emit(
                "REP104",
                node,
                f"time.{parts[1]}() reads the host wall clock inside virtual-time "
                "code; use the simulator clock (ep.now / sim.now)",
            )
        elif (
            parts[-1] in _WALLCLOCK_DATETIME
            and len(parts) >= 2
            and parts[-2] in ("datetime", "date")
        ):
            self._emit(
                "REP104",
                node,
                f"{name}() reads the host wall clock inside virtual-time code; "
                "use the simulator clock (ep.now / sim.now)",
            )


# ---------------------------------------------------------------------------
def _noqa_codes(line: str) -> set[str] | None:
    """Codes suppressed on this line; empty set means 'suppress all'."""
    m = _NOQA_RE.search(line)
    if m is None:
        return None
    codes = m.group("codes")
    if not codes:
        return set()
    return {c.strip().upper() for c in codes.split(",") if c.strip()}


def lint_source(
    source: str, path: str = "<string>", *, respect_skip: bool = True
) -> list[Diagnostic]:
    """Lint one source text; returns the surviving diagnostics."""
    head = source.splitlines()[:5]
    if respect_skip and any(SKIP_MARKER in line for line in head):
        return []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                rule="REP100",
                message=f"syntax error: {exc.msg}",
                path=path,
                line=exc.lineno,
                severity=ERROR,
            )
        ]
    visitor = _Visitor(path)
    visitor.visit(tree)
    visitor.finish()

    lines = source.splitlines()
    out = []
    for diag in visitor.diags:
        if diag.line is not None and 1 <= diag.line <= len(lines):
            codes = _noqa_codes(lines[diag.line - 1])
            if codes is not None and (not codes or diag.rule in codes):
                continue
        out.append(diag)
    return out


def lint_paths(paths: list[str | Path]) -> list[Diagnostic]:
    """Lint every ``.py`` file under the given files/directories."""
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for dirpath, dirnames, filenames in os.walk(p):
                dirnames[:] = sorted(
                    d for d in dirnames if not d.startswith(".") and d != "__pycache__"
                )
                files.extend(
                    Path(dirpath) / f for f in sorted(filenames) if f.endswith(".py")
                )
        elif p.suffix == ".py":
            files.append(p)
    diags: list[Diagnostic] = []
    for f in files:
        diags.extend(lint_source(f.read_text(), str(f)))
    return diags
