"""Schedule contracts: what a parallel strategy promises to communicate.

A :class:`ScheduleContract` declares, per MD step, the ordered sequence
of middleware collectives a strategy issues — the *shape* of its
communication schedule, the thing the paper's characterization question
actually hinges on (all-to-all combines for replicated data, transposes
inside PME, and — once a spatial decomposition lands — halo exchanges).

Strategies declare their contract next to their implementation
(:data:`repro.parallel.pclassic.SCHEDULE_CONTRACT` etc.); the static
verifier (:mod:`repro.analysis.static_schedule`) extracts the actual
collective sequence from the rank-program AST and checks conformance
(rule REP406).  Because the check is against a *declaration*, a new
:class:`~repro.parallel.decomposition.Decomposition` implementation can
be verified against its promised schedule before any campaign executes.

Contract ops may be conditional on named feature flags (``barrier``,
``pme``) so one rank program can carry several strategies' schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ContractOp", "ScheduleContract"]


@dataclass(frozen=True)
class ContractOp:
    """One promised collective: the middleware op name plus its gate.

    ``when`` names a feature flag; the op is expected only when the flag
    is enabled.  ``note`` documents what the op moves (for reports).
    """

    op: str
    when: str | None = None
    note: str = ""


@dataclass(frozen=True)
class ScheduleContract:
    """The per-step communication schedule a strategy declares.

    ``per_step`` is the ordered collective sequence of one MD step;
    ``flags`` lists every feature-flag name the ops may reference.
    """

    name: str
    per_step: tuple[ContractOp, ...]
    flags: tuple[str, ...] = field(default_factory=tuple)

    def expected_ops(self, enabled: set[str] | frozenset[str]) -> list[str]:
        """The op-name sequence promised under the given flags."""
        unknown = set(enabled) - set(self.flags)
        if unknown:
            raise ValueError(
                f"contract {self.name!r} knows flags {sorted(self.flags)}, "
                f"not {sorted(unknown)}"
            )
        return [op.op for op in self.per_step if op.when is None or op.when in enabled]

    def describe(self, enabled: set[str] | frozenset[str]) -> str:
        ops = self.expected_ops(enabled)
        return f"{self.name}: " + (" -> ".join(ops) if ops else "(no communication)")
