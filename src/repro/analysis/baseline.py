"""Baseline suppression for analyzer findings.

Two suppression mechanisms, mirroring what mature linters converge on:

* **Inline** — a trailing ``# repro: noqa[REP503]`` comment (the legacy
  ``# noqa: REP503`` spelling is honoured too) silences a finding on
  that exact line.  Use it where the code is *deliberately* doing the
  flagged thing and a one-line justification fits in the comment.

* **Baseline file** — ``.repro-analysis-baseline.json`` at the repo
  root grandfathers pre-existing findings by fingerprint so a new rule
  can land with the gate green and the debt visible.  Fingerprints
  (:meth:`repro.analysis.rules.Diagnostic.fingerprint`) hash the rule,
  the file and the message but *not* the line number, so unrelated
  edits above a grandfathered finding do not resurrect it.

File format (version 1)::

    {
      "version": 1,
      "suppressions": [
        {"rule": "REP503", "path": "src/repro/x.py",
         "fingerprint": "ab12...", "reason": "why this is acceptable"}
      ]
    }

``--update-baseline`` regenerates the file from the current findings;
entries whose finding has disappeared are dropped automatically, so the
baseline only ever shrinks unless someone regenerates it on purpose.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from .rules import Diagnostic

__all__ = [
    "BASELINE_FILENAME",
    "inline_suppressions",
    "load_baseline",
    "apply_baseline",
    "write_baseline",
]

BASELINE_FILENAME = ".repro-analysis-baseline.json"

#: ``# repro: noqa[REP503]`` / ``# repro: noqa[REP503, REP504]`` /
#: ``# repro: noqa`` (bare = suppress everything on the line)
_REPRO_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9, ]+)\])?", re.IGNORECASE
)
#: the widespread flake8 spelling, honoured for compatibility
_LEGACY_NOQA_RE = re.compile(
    r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE
)


def inline_suppressions(line: str) -> set[str] | None:
    """Rule codes suppressed on this line, or None when no noqa comment.

    An empty set means "suppress every rule on this line".
    """
    m = _REPRO_NOQA_RE.search(line)
    if m is None:
        m = _LEGACY_NOQA_RE.search(line)
    if m is None:
        return None
    codes = m.group("codes")
    if not codes:
        return set()
    return {c.strip().upper() for c in codes.split(",") if c.strip()}


def load_baseline(path: str | Path) -> dict[str, dict]:
    """Load a baseline file; returns ``{fingerprint: entry}`` (empty if absent)."""
    p = Path(path)
    if not p.exists():
        return {}
    data = json.loads(p.read_text())
    if data.get("version") != 1:
        raise ValueError(
            f"unsupported baseline version {data.get('version')!r} in {p}"
        )
    out: dict[str, dict] = {}
    for entry in data.get("suppressions", []):
        fp = entry.get("fingerprint")
        if fp:
            out[fp] = entry
    return out


def apply_baseline(
    diags: list[Diagnostic], baseline: dict[str, dict]
) -> tuple[list[Diagnostic], list[Diagnostic]]:
    """Split findings into (surviving, suppressed) by baseline fingerprint."""
    surviving: list[Diagnostic] = []
    suppressed: list[Diagnostic] = []
    for d in diags:
        if d.fingerprint() in baseline:
            suppressed.append(d)
        else:
            surviving.append(d)
    return surviving, suppressed


def write_baseline(
    path: str | Path,
    diags: list[Diagnostic],
    previous: dict[str, dict] | None = None,
) -> int:
    """Write a baseline grandfathering exactly the given findings.

    Reasons from ``previous`` entries are preserved for findings that
    persist; new findings get a placeholder reason to be edited by hand.
    Returns the number of entries written.
    """
    previous = previous or {}
    entries = []
    seen: set[str] = set()
    for d in sorted(diags, key=lambda d: (d.path or "", d.rule, d.message)):
        fp = d.fingerprint()
        if fp in seen:
            continue
        seen.add(fp)
        old = previous.get(fp, {})
        entries.append(
            {
                "rule": d.rule,
                "path": (d.path or "").replace("\\", "/"),
                "fingerprint": fp,
                "reason": old.get("reason", "grandfathered; justify or fix"),
            }
        )
    payload = {"version": 1, "suppressions": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return len(entries)
