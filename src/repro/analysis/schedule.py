"""Message-schedule analysis: deadlock and race diagnosis from a trace.

Consumes the :class:`~repro.instrument.commstats.CommTrace` a run
records (``run_parallel_md(..., RunOptions(trace=CommTrace()))``) and diagnoses the
communication-schedule bugs that invalidate a characterization study —
the exact failure modes the paper's MPI-vs-CMPI comparison hinges on:

* **REP201/202** — sends or receive posts left unmatched at finalize,
  per ``(src, dst, tag)`` key; an unmatched *rendezvous* send is a
  blocked sender, an unmatched receive a blocked receiver;
* **REP203** — tag collisions: two messages in flight at once with the
  same ``(src, dst, tag)`` in the user tag range, indistinguishable to
  the matching engine (ordering then silently relies on FIFO);
* **REP204** — cross-rank collective-order divergence: the SPMD contract
  requires every rank to invoke the same collectives in the same order;
  divergence either deadlocks or — worse — cross-matches two different
  operations and produces wrong timings without any crash;
* **REP205** — rendezvous wait-for cycles: blocked senders/receivers
  forming a cycle across ranks, the classic message-passing deadlock;
* **REP206** — missing SMP overhead: on dual-processor nodes with an
  interrupt-driven network (the paper's TCP/IP dual case, Sec. 4.4)
  every per-message host overhead must carry the stack-contention
  multiplier.  Opt in by passing ``network=`` and ``cpus_per_node=``
  describing the run the trace came from; each send/recv event's
  recorded ``overhead`` is then checked against the cost model.

:func:`analyze_trace` returns a ranked list of
:class:`~repro.analysis.rules.Diagnostic` — errors first, then warnings,
ordered by rule and tag — so the most actionable finding leads.
"""

from __future__ import annotations

import math
from collections import defaultdict

from ..instrument.commstats import CommTrace
from ..instrument.metrics import REGISTRY
from ..mpi.endpoint import COLLECTIVE_TAG_BASE
from .rules import ERROR, Diagnostic

__all__ = ["analyze_trace"]


def _rank_diagnoses(diags: list[Diagnostic]) -> list[Diagnostic]:
    """Errors before warnings, then by rule id, tag and ranks."""
    return sorted(
        diags,
        key=lambda d: (
            0 if d.severity == ERROR else 1,
            d.rule,
            d.tag if d.tag is not None else -1,
            d.ranks,
        ),
    )


def _unmatched(trace: CommTrace) -> tuple[dict, dict]:
    """Per-key excess sends and excess receive posts at finalize."""
    sends: dict[tuple[int, int, int], list] = defaultdict(list)
    recvs: dict[tuple[int, int, int], int] = defaultdict(int)
    for ev in trace.events:
        if ev.kind == "send":
            sends[ev.key].append(ev)
        elif ev.kind == "recv":
            recvs[ev.key] += 1
    excess_sends = {}
    excess_recvs = {}
    for key in sorted(set(sends) | set(recvs)):
        n_send = len(sends.get(key, ()))
        n_recv = recvs.get(key, 0)
        if n_send > n_recv:
            # FIFO matching: the *last* sends of the key are the unmatched ones
            excess_sends[key] = sends[key][n_recv:]
        elif n_recv > n_send:
            excess_recvs[key] = n_recv - n_send
    return excess_sends, excess_recvs


def _tag_collisions(trace: CommTrace, tag_base: int) -> list[Diagnostic]:
    """User-range keys that ever had two sends in flight at once.

    Also counts every *FIFO-disambiguated* match — a receive retiring a
    send while two or more sends of the same key were outstanding, i.e.
    a match whose pairing was decided by queue order alone — into the
    metrics registry (``rep203.fifo_disambiguations``), so traced runs
    report how often they actually leaned on FIFO, not just whether.
    """
    outstanding: dict[tuple[int, int, int], int] = defaultdict(int)
    flagged: set[tuple[int, int, int]] = set()
    disambiguated: dict[tuple[int, int, int], int] = defaultdict(int)
    diags = []
    for ev in trace.events:
        if ev.tag >= tag_base or ev.kind == "collective":
            continue
        if ev.kind == "send":
            outstanding[ev.key] += 1
            if outstanding[ev.key] >= 2 and ev.key not in flagged:
                flagged.add(ev.key)
        else:  # recv post retires the oldest outstanding send of the key
            if outstanding[ev.key] >= 2:
                disambiguated[ev.key] += 1
                REGISTRY.counter("rep203.fifo_disambiguations").increment()
            if outstanding[ev.key] > 0:
                outstanding[ev.key] -= 1
    for key in sorted(flagged):
        src, dst, tag = key
        n_fifo = disambiguated.get(key, 0)
        diags.append(
            Diagnostic(
                rule="REP203",
                severity="warning",
                message=(
                    f"2+ messages {src}->{dst} with tag {tag} in flight at "
                    f"once ({n_fifo} match(es) disambiguated only by FIFO "
                    "order): indistinguishable to the matching engine — use "
                    "distinct tags per logical operation"
                ),
                ranks=(src, dst),
                tag=tag,
            )
        )
    return diags


def _collective_divergence(trace: CommTrace, n_ranks: int) -> list[Diagnostic]:
    sequences = {r: trace.collective_ops(r) for r in range(n_ranks)}
    participating = {r: s for r, s in sequences.items() if s}
    if len(participating) < 2:
        return []
    ranks = sorted(participating)
    longest = max(len(s) for s in participating.values())
    for i in range(longest):
        entries = {
            r: (s[i] if i < len(s) else None) for r, s in participating.items()
        }
        distinct = set(entries.values())
        if len(distinct) > 1:
            detail = ", ".join(
                f"rank {r}: {'—' if entries[r] is None else entries[r][0]}"
                for r in ranks
            )
            return [
                Diagnostic(
                    rule="REP204",
                    severity=ERROR,
                    message=(
                        f"collective order diverges at position {i}: {detail}. "
                        "SPMD requires every rank to invoke the same collectives "
                        "in the same order"
                    ),
                    ranks=tuple(ranks),
                )
            ]
    return []


def _wait_cycles(excess_sends: dict, excess_recvs: dict) -> list[Diagnostic]:
    """Cycles in the blocked-rank wait-for graph."""
    edges: dict[int, set[int]] = defaultdict(set)
    edge_tags: dict[tuple[int, int], set[int]] = defaultdict(set)
    for (src, dst, tag), events in excess_sends.items():
        if any(ev.rendezvous for ev in events):
            edges[src].add(dst)  # blocked sender waits for the receiver
            edge_tags[(src, dst)].add(tag)
    for (src, dst, tag), _count in excess_recvs.items():
        edges[dst].add(src)  # blocked receiver waits for the sender
        edge_tags[(dst, src)].add(tag)

    cycles: set[tuple[int, ...]] = set()

    def dfs(start: int, node: int, path: list[int], seen: set[int]) -> None:
        for nxt in sorted(edges.get(node, ())):
            if nxt == start:
                cycle = path[:]
                pivot = cycle.index(min(cycle))
                cycles.add(tuple(cycle[pivot:] + cycle[:pivot]))
            elif nxt not in seen:
                seen.add(nxt)
                dfs(start, nxt, path + [nxt], seen)

    for start in sorted(edges):
        dfs(start, start, [start], {start})

    diags = []
    for cycle in sorted(cycles):
        hops = list(cycle) + [cycle[0]]
        arrows = " -> ".join(f"rank {r}" for r in hops)
        tags = sorted(
            {t for a, b in zip(hops, hops[1:]) for t in edge_tags.get((a, b), ())}
        )
        diags.append(
            Diagnostic(
                rule="REP205",
                severity=ERROR,
                message=(
                    f"rendezvous wait-for cycle: {arrows} (tags {tags}); every "
                    "rank in the cycle is blocked on the next — deadlock"
                ),
                ranks=cycle,
            )
        )
    return diags


def _smp_overheads(trace: CommTrace, network, cpus_per_node: int) -> list[Diagnostic]:
    """Assert the SMP per-message cost multiplier on dual-CPU runs.

    Only applies when the platform pays it at all: two CPUs per node and
    an interrupt-driven protocol stack.  Every send must have charged
    ``(send_overhead + host_cost(nbytes)) * multiplier`` and every
    receive post ``recv_overhead * multiplier``; anything else means the
    run silently used uni-processor message costs and its dual-node
    timings are wrong.
    """
    if cpus_per_node != 2 or not network.uses_interrupts:
        return []
    mult = network.smp_overhead_multiplier
    bad: dict[str, list] = {}
    for ev in trace.events:
        if ev.kind == "send":
            expected = (network.send_overhead + network.host_cost(ev.nbytes)) * mult
        elif ev.kind == "recv":
            expected = network.recv_overhead * mult
        else:
            continue
        if not math.isclose(ev.overhead, expected, rel_tol=1e-9, abs_tol=0.0):
            entry = bad.setdefault(ev.kind, [0, ev, expected])
            entry[0] += 1
    diags = []
    for kind in sorted(bad):
        count, ev, expected = bad[kind]
        diags.append(
            Diagnostic(
                rule="REP206",
                severity=ERROR,
                message=(
                    f"{count} {kind} event(s) without the SMP per-message "
                    f"overhead on a dual-processor interrupt-driven network: "
                    f"e.g. rank {ev.rank} tag {ev.tag} charged "
                    f"{ev.overhead:.4g} s, cost model expects {expected:.4g} s "
                    f"(uni-processor cost x {mult})"
                ),
                ranks=(ev.rank,),
                tag=ev.tag,
            )
        )
    return diags


def analyze_trace(
    trace: CommTrace,
    n_ranks: int,
    tag_base: int = COLLECTIVE_TAG_BASE,
    network=None,
    cpus_per_node: int | None = None,
) -> list[Diagnostic]:
    """Diagnose a recorded communication schedule; ranked, errors first.

    ``network`` and ``cpus_per_node`` optionally describe the platform
    the trace was recorded on; when both are given the dual-processor
    SMP overhead assertion (REP206) runs as well.
    """
    diags: list[Diagnostic] = []

    excess_sends, excess_recvs = _unmatched(trace)
    for (src, dst, tag), events in sorted(excess_sends.items()):
        rendezvous = any(ev.rendezvous for ev in events)
        blocked = "; the sender is blocked forever" if rendezvous else ""
        diags.append(
            Diagnostic(
                rule="REP201",
                severity=ERROR,
                message=(
                    f"{len(events)} unmatched send(s) {src}->{dst} tag {tag} "
                    f"at finalize: the receiver never posted a matching "
                    f"recv{blocked}"
                ),
                ranks=(src, dst),
                tag=tag,
            )
        )
    for (src, dst, tag), count in sorted(excess_recvs.items()):
        diags.append(
            Diagnostic(
                rule="REP202",
                severity=ERROR,
                message=(
                    f"{count} unmatched receive(s) posted by rank {dst} for "
                    f"{src}->{dst} tag {tag}: no matching send ever arrived; "
                    "the receiver is blocked forever"
                ),
                ranks=(src, dst),
                tag=tag,
            )
        )

    diags.extend(_tag_collisions(trace, tag_base))
    diags.extend(_collective_divergence(trace, n_ranks))
    diags.extend(_wait_cycles(excess_sends, excess_recvs))
    if network is not None and cpus_per_node is not None:
        diags.extend(_smp_overheads(trace, network, cpus_per_node))
    return _rank_diagnoses(diags)
