"""Static communication-schedule verification (rules REP401-REP406).

An abstract interpreter over rank-program ASTs.  The restricted control
flow of :mod:`repro.parallel` rank programs — loops over ranks and FFT
planes, rank-dependent branches, tag arithmetic — is evaluated *per
(rank, p) instantiation* for every p up to a bound, while the data the
program moves stays symbolic (:mod:`repro.analysis.symbolic`).  No
simulator runs: the schedule is extracted from source, then a progress
engine matches the per-rank send/recv/collective micro-op streams
against each other to prove, for every verified p,

* deadlock-freedom under rendezvous semantics (REP401),
* every send is received and every receive is sent (REP402/REP403),
* no two in-flight messages share ``(src, dst, tag)`` (REP404),
* declared payload sizes/dtypes agree where both ends are concrete
  (REP405),
* the collective sequence is identical across ranks and conforms to the
  strategy's declared :class:`~repro.analysis.contract.ScheduleContract`
  (REP406).

Soundness model: the interpreter is *conservative where it is symbolic*.
All sends are treated as rendezvous (a program whose completion depends
on eager buffering is unsafe per the MPI standard and is reported as a
deadlock); size/dtype agreement is only checked where both sides are
concrete; a branch whose condition cannot be decided statically is
skippable only when neither arm communicates — otherwise extraction
fails loudly (REP406) instead of guessing.  Findings are grouped over
the verified p-range into a symbolic p-condition ("odd p in [3, 31]").

This module must not import :mod:`repro.parallel` at import time (the
parallel package imports :mod:`repro.analysis.contract`); target modules
are parsed from source by path instead.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from .contract import ScheduleContract
from .rules import RULES, Diagnostic
from .symbolic import Block, SymSize, SymTag, summarize_p_set

__all__ = [
    "StaticExtractionError",
    "verify_rank_program_source",
    "verify_middleware_collectives",
    "extract_strategy_collective_ops",
    "verify_contract_conformance",
    "verify_strategy",
    "verify_static",
    "static_step_events",
    "crosscheck_against_trace",
    "STRATEGIES",
    "MIDDLEWARES",
    "SPATIAL_PROFILES",
]

#: Interpreter work budget per (rank, p) instantiation — a runaway loop
#: in an analyzed program fails extraction instead of hanging the tool.
_MAX_STEPS = 2_000_000
_MAX_OPS_PER_RANK = 200_000
_MAX_CALL_DEPTH = 64

_FALLBACK_TAG_BASE = 1 << 20  # mirror of repro.mpi.endpoint, verified at load


class StaticExtractionError(Exception):
    """The program's schedule cannot be extracted statically."""

    def __init__(self, msg: str, loc: tuple[str, int] | None = None) -> None:
        super().__init__(msg)
        self.loc = loc


# ---------------------------------------------------------------------------
# the abstract value domain


class _Unknown:
    """The opaque top value: absorbs arithmetic, attributes and calls."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<unknown>"


UNKNOWN = _Unknown()


def _is_concrete(v) -> bool:
    return isinstance(v, (int, float, bool, str, bytes)) or v is None


class _Opaque:
    """A structured opaque value: known attributes, unknown everything else."""

    def __init__(self, attrs: dict | None = None) -> None:
        self.attrs = dict(attrs or {})

    def getattr(self, name: str):
        return self.attrs.get(name, UNKNOWN)

    def setattr(self, name: str, value) -> None:
        self.attrs[name] = value


class _AnyFunc:
    """A callable about which nothing is known; returns UNKNOWN."""

    def __call__(self, *a, **k):
        return UNKNOWN


_ANY_FUNC = _AnyFunc()


class _Identity:
    """np.asarray / np.ascontiguousarray: structure-preserving pass-through."""

    def __call__(self, *a, **k):
        return a[0] if a else UNKNOWN


class _NP:
    """The numpy module as the interpreter sees it."""

    _PASSTHROUGH = {"asarray", "ascontiguousarray"}

    def getattr(self, name: str):
        if name in self._PASSTHROUGH:
            return _Identity()
        if name == "fft":
            return self
        return _ANY_FUNC


_NP_SENTINEL = _NP()


# ---------------------------------------------------------------------------
# micro-ops: the extracted schedule


@dataclass
class MicroOp:
    """One schedule event of one rank, in program order."""

    kind: str  # post_send | wait_send | post_recv | wait_recv | collective | mw
    loc: tuple[str, int]
    peer: int | None = None
    tag: object = None  # SymTag | int (display form)
    abs_tag: int | None = None  # runtime matching key
    size: SymSize | None = None
    dtype: str | None = None
    op: str | None = None  # collective / middleware op name
    invocation: int | None = None  # 1-based next_collective_tag draw index
    ref: int | None = None  # send/recv id a wait refers to


# ---------------------------------------------------------------------------
# module registry: parse the analyzed modules from source by path


@dataclass
class ClassValue:
    name: str
    methods: dict  # name -> ast.FunctionDef
    consts: dict
    properties: frozenset
    module: "ModuleCtx"


@dataclass
class FuncValue:
    name: str
    node: ast.FunctionDef
    module: "ModuleCtx"


@dataclass
class ModuleValue:
    ctx: "ModuleCtx"


@dataclass
class ModuleCtx:
    name: str  # dotted, e.g. "repro.mpi.collectives"
    path: str
    globals: dict = field(default_factory=dict)


_ANALYZED_MODULES = (
    "repro.mpi.endpoint",
    "repro.mpi.collectives",
    "repro.mpi.middleware",
    "repro.cmpi.middleware",
    "repro.parallel.pfft",
    "repro.parallel.ppme",
    "repro.parallel.pclassic",
    "repro.parallel.pmd",
    "repro.parallel.spatial.program",
)


def _fold_const(node: ast.expr):
    """Best-effort compile-time value of a module-level expression."""
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd, ast.Invert)):
        v = _fold_const(node.operand)
        if _is_concrete(v) and not isinstance(v, (str, bytes)):
            return -v if isinstance(node.op, ast.USub) else (~v if isinstance(node.op, ast.Invert) else v)
    if isinstance(node, ast.BinOp):
        left, right = _fold_const(node.left), _fold_const(node.right)
        if _is_concrete(left) and _is_concrete(right):
            try:
                return _apply_binop(node.op, left, right)
            except Exception:
                return UNKNOWN
    if isinstance(node, (ast.Tuple, ast.List)):
        items = [_fold_const(e) for e in node.elts]
        if all(i is not UNKNOWN for i in items):
            return tuple(items) if isinstance(node, ast.Tuple) else items
    return UNKNOWN


def _apply_binop(op: ast.operator, a, b):
    if isinstance(op, ast.Add):
        return a + b
    if isinstance(op, ast.Sub):
        return a - b
    if isinstance(op, ast.Mult):
        return a * b
    if isinstance(op, ast.Div):
        return a / b
    if isinstance(op, ast.FloorDiv):
        return a // b
    if isinstance(op, ast.Mod):
        return a % b
    if isinstance(op, ast.Pow):
        return a**b
    if isinstance(op, ast.LShift):
        return a << b
    if isinstance(op, ast.RShift):
        return a >> b
    if isinstance(op, ast.BitAnd):
        return a & b
    if isinstance(op, ast.BitOr):
        return a | b
    if isinstance(op, ast.BitXor):
        return a ^ b
    raise TypeError(f"unsupported operator {op!r}")


class Registry:
    """The parsed analyzed modules, loaded once per process."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleCtx] = {}
        root = Path(__file__).resolve().parents[1]  # src/repro
        for dotted in _ANALYZED_MODULES:
            rel = Path(*dotted.split(".")[1:]).with_suffix(".py")
            self._load(dotted, root / rel)
        self._resolve_imports()
        ep = self.modules["repro.mpi.endpoint"]
        self.tag_base = ep.globals.get("COLLECTIVE_TAG_BASE", _FALLBACK_TAG_BASE)
        if not isinstance(self.tag_base, int):
            self.tag_base = _FALLBACK_TAG_BASE

    def _load(self, dotted: str, path: Path) -> None:
        source = path.read_text()
        tree = ast.parse(source, filename=str(path))
        ctx = ModuleCtx(name=dotted, path=str(path))
        ctx._tree = tree  # kept for deferred import resolution
        for node in tree.body:
            if isinstance(node, ast.FunctionDef):
                ctx.globals[node.name] = FuncValue(node.name, node, ctx)
            elif isinstance(node, ast.ClassDef):
                ctx.globals[node.name] = self._class_value(node, ctx)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                tgt = node.targets[0]
                if isinstance(tgt, ast.Name):
                    value = _fold_const(node.value)
                    if value is not UNKNOWN:
                        ctx.globals[tgt.id] = value
        self.modules[dotted] = ctx

    @staticmethod
    def _class_value(node: ast.ClassDef, ctx: ModuleCtx) -> ClassValue:
        methods, consts, props = {}, {}, set()
        for item in node.body:
            if isinstance(item, ast.FunctionDef):
                methods[item.name] = item
                for dec in item.decorator_list:
                    if isinstance(dec, ast.Name) and dec.id == "property":
                        props.add(item.name)
            elif isinstance(item, (ast.Assign, ast.AnnAssign)):
                tgt = item.targets[0] if isinstance(item, ast.Assign) else item.target
                value = item.value
                if isinstance(tgt, ast.Name) and value is not None:
                    folded = _fold_const(value)
                    if folded is not UNKNOWN:
                        consts[tgt.id] = folded
        return ClassValue(node.name, methods, consts, frozenset(props), ctx)

    def _resolve_imports(self) -> None:
        for ctx in self.modules.values():
            for node in ctx._tree.body:
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        bound = alias.asname or alias.name.split(".")[0]
                        if alias.name == "numpy":
                            ctx.globals[bound] = _NP_SENTINEL
                        elif alias.name in self.modules:
                            ctx.globals[bound] = ModuleValue(self.modules[alias.name])
                elif isinstance(node, ast.ImportFrom):
                    target = self._absolute(ctx.name, node.module, node.level)
                    for alias in node.names:
                        bound = alias.asname or alias.name
                        if target == "numpy" or (target or "").startswith("numpy."):
                            ctx.globals[bound] = _NP_SENTINEL if alias.name == "numpy" else _ANY_FUNC
                            continue
                        full = f"{target}.{alias.name}" if target else alias.name
                        if full in self.modules:
                            ctx.globals[bound] = ModuleValue(self.modules[full])
                        elif target in self.modules:
                            mod = self.modules[target]
                            if alias.name in mod.globals:
                                ctx.globals[bound] = mod.globals[alias.name]

    @staticmethod
    def _absolute(current: str, module: str | None, level: int) -> str | None:
        if level == 0:
            return module
        parts = current.split(".")
        base = parts[: len(parts) - level]
        if module:
            base = base + module.split(".")
        return ".".join(base) if base else None

    def module_source_ctx(self, source: str, path: str) -> ModuleCtx:
        """A standalone module context for fixture sources (no imports)."""
        tree = ast.parse(source, filename=path)
        ctx = ModuleCtx(name=f"<fixture:{path}>", path=path)
        ctx._tree = tree
        for node in tree.body:
            if isinstance(node, ast.FunctionDef):
                ctx.globals[node.name] = FuncValue(node.name, node, ctx)
            elif isinstance(node, ast.ClassDef):
                ctx.globals[node.name] = self._class_value(node, ctx)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                tgt = node.targets[0]
                if isinstance(tgt, ast.Name):
                    folded = _fold_const(node.value)
                    if folded is not UNKNOWN:
                        ctx.globals[tgt.id] = folded
        return ctx


_REGISTRY: Registry | None = None


def _registry() -> Registry:
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = Registry()
    return _REGISTRY


# ---------------------------------------------------------------------------
# model objects: python stand-ins for runtime machinery


class _NullCtx:
    """Any context manager the analyzed code enters (timeline phases)."""


class _Timeline:
    def add(self, *a, **k):
        return None

    def as_category(self, *a, **k):
        return _NullCtx()

    def phase(self, *a, **k):
        return _NullCtx()

    def total_seconds(self):
        return UNKNOWN


class _CostModel:
    """Every cost-model query yields an unknown (but effect-free) number."""

    def getattr(self, name: str):
        return _ANY_FUNC


class _MeshModel:
    """ChargeMesh: spread produces the rank's slab payload symbolically."""

    def getattr(self, name: str):
        if name == "spread":
            return lambda *a, **k: Block("pme.q_slab", SymSize(name="pme_slab"), "float64")
        if name == "last_workload":
            return _Opaque({"scattered_points": UNKNOWN})
        return _ANY_FUNC


class _SlabsModel:
    """SlabDecomposition: split() yields p per-destination blocks."""

    def __init__(self, p: int, label: str) -> None:
        self.p = p
        self.label = label

    def getattr(self, name: str):
        if name == "split":
            return lambda *a, **k: [
                Block(f"{self.label}.split[{i}]", SymSize(name=f"{self.label}[{i}]"), None)
                for i in range(self.p)
            ]
        if name == "plane_range":
            return lambda *a, **k: (UNKNOWN, UNKNOWN)
        return _ANY_FUNC


class _ClassicModel:
    """ParallelClassic: pure compute, no communication (its contract)."""

    def getattr(self, name: str):
        if name == "compute":
            return lambda *a, **k: _Opaque(
                {
                    "forces": Block("classic.forces", SymSize(name="forces"), "float64"),
                    "energies": UNKNOWN,
                    "n_pairs": UNKNOWN,
                    "n_terms": UNKNOWN,
                }
            )
        return _ANY_FUNC


class _SendReq:
    def __init__(self, ep: "_Endpoint", sid: int) -> None:
        self.ep, self.sid = ep, sid

    def getattr(self, name: str):
        if name == "wait":
            return lambda *a, **k: self.ep.emit("wait_send", ref=self.sid)
        return _ANY_FUNC


class _RecvReq:
    def __init__(self, ep: "_Endpoint", rid: int) -> None:
        self.ep, self.rid = ep, rid

    def getattr(self, name: str):
        if name == "wait":
            return lambda *a, **k: self.ep.wait_recv(self.rid)
        return _ANY_FUNC


def _payload_info(payload, loc: tuple[str, int]) -> tuple[SymSize, str | None]:
    if isinstance(payload, bytes):
        return SymSize(value=len(payload)), "bytes"
    if isinstance(payload, Block):
        return payload.size, payload.dtype
    return SymSize(name=f"?@{loc[0].rsplit('/', 1)[-1]}:{loc[1]}"), None


class _Endpoint:
    """The RankEndpoint model: records micro-ops instead of simulating."""

    def __init__(self, interp: "Interp", rank: int, size: int, tag_base: int) -> None:
        self.interp = interp
        self.rank = rank
        self.size = size
        self.tag_base = tag_base
        self.ops: list[MicroOp] = []
        self._draws = 0
        self._sends = 0
        self._recvs = 0
        self.timeline = _Timeline()
        self.now = 0.0
        self.node = 0
        self.net = _Opaque()

    # -- bookkeeping ----------------------------------------------------
    def emit(self, kind: str, **kw) -> MicroOp:
        op = MicroOp(kind=kind, loc=self.interp.loc, **kw)
        self.ops.append(op)
        if len(self.ops) > _MAX_OPS_PER_RANK:
            raise StaticExtractionError(
                f"rank {self.rank} schedule exceeds {_MAX_OPS_PER_RANK} events", self.interp.loc
            )
        return op

    def _abs_tag(self, tag) -> int:
        if isinstance(tag, SymTag):
            return tag.absolute(self.tag_base)
        if isinstance(tag, int):
            return tag
        raise StaticExtractionError(
            f"message tag is not statically known ({tag!r})", self.interp.loc
        )

    def _check_peer(self, peer, role: str) -> int:
        if not isinstance(peer, int) or isinstance(peer, bool):
            raise StaticExtractionError(
                f"{role} rank is not statically known ({peer!r})", self.interp.loc
            )
        if not 0 <= peer < self.size:
            raise StaticExtractionError(
                f"bad {role} rank {peer} for p={self.size}", self.interp.loc
            )
        if peer == self.rank:
            raise StaticExtractionError(f"self-{role} is not supported", self.interp.loc)
        return peer

    # -- the RankEndpoint surface ---------------------------------------
    def next_collective_tag(self, op="collective"):
        self._draws += 1
        name = op if isinstance(op, str) else "collective"
        self.emit("collective", op=name, invocation=self._draws)
        return SymTag(base=self._draws)

    def compute(self, seconds=None):
        return None

    def isend(self, dest, payload, tag=0):
        dest = self._check_peer(dest, "destination")
        size, dtype = _payload_info(payload, self.interp.loc)
        self._sends += 1
        self.emit(
            "post_send", peer=dest, tag=tag, abs_tag=self._abs_tag(tag),
            size=size, dtype=dtype, ref=self._sends,
        )
        return _SendReq(self, self._sends)

    def irecv(self, source, tag=0, expect_nbytes=None, expect_dtype=None):
        source = self._check_peer(source, "source")
        size = SymSize(value=expect_nbytes) if isinstance(expect_nbytes, int) else SymSize()
        dtype = expect_dtype if isinstance(expect_dtype, str) else None
        self._recvs += 1
        self.emit(
            "post_recv", peer=source, tag=tag, abs_tag=self._abs_tag(tag),
            size=size, dtype=dtype, ref=self._recvs,
        )
        return _RecvReq(self, self._recvs)

    def wait_recv(self, rid: int):
        self.emit("wait_recv", ref=rid)
        loc = self.interp.loc
        name = f"msg@{loc[0].rsplit('/', 1)[-1]}:{loc[1]}"
        return Block(name, SymSize(name=name), None)

    def send(self, dest, payload, tag=0):
        req = self.isend(dest, payload, tag)
        self.emit("wait_send", ref=req.sid)
        return None

    def recv(self, source, tag=0, expect_nbytes=None, expect_dtype=None):
        req = self.irecv(source, tag, expect_nbytes, expect_dtype)
        return self.wait_recv(req.rid)

    def sendrecv(self, dest, payload, source, tag=0, expect_nbytes=None, expect_dtype=None):
        rreq = self.irecv(source, tag, expect_nbytes, expect_dtype)
        sreq = self.isend(dest, payload, tag)
        incoming = self.wait_recv(rreq.rid)
        self.emit("wait_send", ref=sreq.sid)
        return incoming

    _METHODS = (
        "next_collective_tag", "compute", "isend", "irecv",
        "send", "recv", "sendrecv",
    )

    def getattr(self, name: str):
        if name in self._METHODS:
            return getattr(self, name)
        if name in ("rank", "size", "timeline", "now", "node", "net"):
            return getattr(self, name)
        return UNKNOWN


class _AbstractMW:
    """Contract-extraction middleware: records op names, expands nothing."""

    name = "abstract"

    def __init__(self) -> None:
        pass

    @staticmethod
    def _make(op: str):
        def call(ep, *a, **k):
            ep.emit("mw", op=op)
            if op in ("allgatherv", "alltoallv"):
                return [UNKNOWN] * ep.size
            return None if op == "barrier" else UNKNOWN

        return call

    def getattr(self, attr: str):
        if attr in ("barrier", "allreduce", "allgatherv", "alltoallv", "exchange"):
            return self._make(attr)
        if attr == "name":
            return self.name
        return UNKNOWN



# ---------------------------------------------------------------------------
# interpreted instances (objects of analyzed classes)


class Instance:
    """An object of an analyzed (AST) class: attrs + interpreted methods."""

    def __init__(self, cls: ClassValue, attrs: dict | None = None) -> None:
        self.cls = cls
        self.attrs = dict(attrs or {})


class _BoundMethod:
    def __init__(self, instance: Instance, func: ast.FunctionDef) -> None:
        self.instance = instance
        self.func = func


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value) -> None:
        self.value = value


#: attribute/function names whose calls constitute communication; a branch
#: containing none of these (nor a tag draw) is schedule-irrelevant and may
#: be skipped when its condition is not statically decidable.
_COMM_NAMES = frozenset(
    {
        "isend", "irecv", "send", "recv", "sendrecv", "next_collective_tag",
        "barrier", "allreduce", "allgatherv", "alltoallv", "bcast", "reduce",
        "sync", "wait", "reciprocal", "forward", "inverse", "exchange",
    }
)


def _has_comm_effects(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            fn = sub.func
            name = fn.attr if isinstance(fn, ast.Attribute) else (
                fn.id if isinstance(fn, ast.Name) else None
            )
            if name in _COMM_NAMES:
                return True
    return False


class _Frame:
    def __init__(self, module: ModuleCtx, locals_: dict) -> None:
        self.module = module
        self.locals = locals_


class Interp:
    """The per-(rank, p) abstract interpreter."""

    def __init__(self, registry: Registry) -> None:
        self.registry = registry
        self.steps = 0
        self.depth = 0
        self.loc: tuple[str, int] = ("<unknown>", 0)

    # -- entry ----------------------------------------------------------
    def call(self, fv, args: list, kwargs: dict, self_obj=None):
        if isinstance(fv, _BoundMethod):
            func, module, self_obj = fv.func, fv.instance.cls.module, fv.instance
        elif isinstance(fv, FuncValue):
            func, module = fv.node, fv.module
        else:
            raise StaticExtractionError(f"cannot interpret call target {fv!r}", self.loc)
        self.depth += 1
        if self.depth > _MAX_CALL_DEPTH:
            raise StaticExtractionError("call depth exceeded", self.loc)
        try:
            frame = _Frame(module, self._bind(func, args, kwargs, self_obj, module))
            try:
                self._exec_body(func.body, frame)
            except _Return as r:
                return r.value
            return None
        finally:
            self.depth -= 1

    def _bind(self, func: ast.FunctionDef, args, kwargs, self_obj, module) -> dict:
        a = func.args
        names = [arg.arg for arg in a.args]
        local: dict = {}
        pos = list(args)
        if self_obj is not None:
            pos = [self_obj] + pos
        for i, name in enumerate(names):
            if i < len(pos):
                local[name] = pos[i]
        # defaults for trailing positional params
        defaults = a.defaults
        for i, dflt in enumerate(defaults):
            name = names[len(names) - len(defaults) + i]
            if name not in local:
                local[name] = self._eval(dflt, _Frame(module, {}))
        for arg, dflt in zip(a.kwonlyargs, a.kw_defaults):
            if dflt is not None:
                local[arg.arg] = self._eval(dflt, _Frame(module, {}))
            else:
                local[arg.arg] = UNKNOWN
        for k, v in kwargs.items():
            local[k] = v
        for name in names:
            local.setdefault(name, UNKNOWN)
        return local

    # -- statements -----------------------------------------------------
    def _tick(self, node: ast.AST, frame: _Frame) -> None:
        self.steps += 1
        if self.steps > _MAX_STEPS:
            raise StaticExtractionError("interpreter work budget exceeded", self.loc)
        line = getattr(node, "lineno", None)
        if line:
            self.loc = (frame.module.path, line)

    def _exec_body(self, stmts, frame: _Frame) -> None:
        for stmt in stmts:
            self._exec(stmt, frame)

    def _exec(self, node: ast.stmt, frame: _Frame) -> None:
        self._tick(node, frame)
        if isinstance(node, ast.Expr):
            self._eval(node.value, frame)
        elif isinstance(node, ast.Assign):
            value = self._eval(node.value, frame)
            for tgt in node.targets:
                self._assign(tgt, value, frame)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._assign(node.target, self._eval(node.value, frame), frame)
        elif isinstance(node, ast.AugAssign):
            cur = self._eval_target(node.target, frame)
            value = self._binop(node.op, cur, self._eval(node.value, frame))
            self._assign(node.target, value, frame)
        elif isinstance(node, ast.If):
            self._exec_if(node, frame)
        elif isinstance(node, ast.For):
            self._exec_for(node, frame)
        elif isinstance(node, ast.While):
            self._exec_while(node, frame)
        elif isinstance(node, ast.With):
            for item in node.items:
                ctx = self._eval(item.context_expr, frame)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, ctx, frame)
            self._exec_body(node.body, frame)
        elif isinstance(node, ast.Return):
            raise _Return(self._eval(node.value, frame) if node.value else None)
        elif isinstance(node, ast.Break):
            raise _Break()
        elif isinstance(node, ast.Continue):
            raise _Continue()
        elif isinstance(node, ast.Raise):
            raise StaticExtractionError(
                f"program raises on a statically-reached path: {ast.unparse(node)}", self.loc
            )
        elif isinstance(node, (ast.Assert, ast.Pass, ast.Import, ast.ImportFrom,
                               ast.Global, ast.Nonlocal, ast.FunctionDef, ast.ClassDef)):
            pass
        elif isinstance(node, ast.Try):
            self._exec_body(node.body, frame)
            self._exec_body(node.finalbody, frame)
        else:
            raise StaticExtractionError(
                f"unsupported statement {type(node).__name__}", self.loc
            )

    def _exec_if(self, node: ast.If, frame: _Frame) -> None:
        cond = self._truth(self._eval(node.test, frame))
        if cond is True:
            self._exec_body(node.body, frame)
        elif cond is False:
            self._exec_body(node.orelse, frame)
        else:
            # undecidable condition: only schedule-irrelevant arms may be
            # skipped — guessing a communicating branch would be unsound
            if any(_has_comm_effects(s) for s in node.body):
                raise StaticExtractionError(
                    "communication guarded by a condition that is not statically "
                    f"decidable: {ast.unparse(node.test)}", self.loc,
                )
            self._exec_body(node.orelse, frame)

    def _exec_for(self, node: ast.For, frame: _Frame) -> None:
        it = self._eval(node.iter, frame)
        if isinstance(it, (list, tuple, range)):
            for item in it:
                self._assign(node.target, item, frame)
                try:
                    self._exec_body(node.body, frame)
                except _Break:
                    break
                except _Continue:
                    continue
            else:
                self._exec_body(node.orelse, frame)
            return
        if any(_has_comm_effects(s) for s in node.body):
            raise StaticExtractionError(
                f"communication inside a loop over a value that is not statically "
                f"iterable: {ast.unparse(node.iter)}", self.loc,
            )

    def _exec_while(self, node: ast.While, frame: _Frame) -> None:
        iters = 0
        while True:
            cond = self._truth(self._eval(node.test, frame))
            if cond is None:
                if any(_has_comm_effects(s) for s in node.body):
                    raise StaticExtractionError(
                        "communication inside a while-loop whose condition is not "
                        f"statically decidable: {ast.unparse(node.test)}", self.loc,
                    )
                return
            if not cond:
                return
            iters += 1
            if iters > 100_000:
                raise StaticExtractionError("while-loop iteration budget exceeded", self.loc)
            try:
                self._exec_body(node.body, frame)
            except _Break:
                return
            except _Continue:
                continue

    # -- assignment -----------------------------------------------------
    def _assign(self, target: ast.expr, value, frame: _Frame) -> None:
        if isinstance(target, ast.Name):
            frame.locals[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            elts = target.elts
            if isinstance(value, (tuple, list)) and len(value) == len(elts):
                for t, v in zip(elts, value):
                    self._assign(t, v, frame)
            else:
                for t in elts:
                    self._assign(t, UNKNOWN, frame)
        elif isinstance(target, ast.Subscript):
            obj = self._eval(target.value, frame)
            idx = self._eval(target.slice, frame)
            if isinstance(obj, list) and isinstance(idx, int) and not isinstance(idx, bool):
                if -len(obj) <= idx < len(obj):
                    obj[idx] = value
            elif isinstance(obj, dict) and _is_concrete(idx):
                obj[idx] = value
        elif isinstance(target, ast.Attribute):
            obj = self._eval(target.value, frame)
            if isinstance(obj, (Instance, _Opaque)):
                obj.attrs[target.attr] = value
        # stores into opaque objects are dropped (conservative)

    def _eval_target(self, target: ast.expr, frame: _Frame):
        try:
            return self._eval(target, frame)
        except StaticExtractionError:
            raise
        except Exception:
            return UNKNOWN

    # -- expressions ----------------------------------------------------
    def _truth(self, v) -> bool | None:
        """Concrete truthiness, or None when not statically decidable."""
        if v is UNKNOWN:
            return None
        if isinstance(v, (Block, SymTag, SymSize, Instance, _Opaque)):
            return True
        try:
            return bool(v)
        except Exception:
            return None

    def _eval(self, node: ast.expr, frame: _Frame):
        self._tick(node, frame)
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            return self._load_name(node.id, frame)
        if isinstance(node, ast.Attribute):
            return self._getattr(self._eval(node.value, frame), node.attr)
        if isinstance(node, ast.Call):
            return self._call(node, frame)
        if isinstance(node, ast.BinOp):
            return self._binop(node.op, self._eval(node.left, frame), self._eval(node.right, frame))
        if isinstance(node, ast.UnaryOp):
            v = self._eval(node.operand, frame)
            if isinstance(node.op, ast.Not):
                t = self._truth(v)
                return UNKNOWN if t is None else (not t)
            if _is_concrete(v) and not isinstance(v, (str, bytes)):
                try:
                    if isinstance(node.op, ast.USub):
                        return -v
                    if isinstance(node.op, ast.UAdd):
                        return +v
                    if isinstance(node.op, ast.Invert):
                        return ~v
                except Exception:
                    return UNKNOWN
            return UNKNOWN
        if isinstance(node, ast.BoolOp):
            return self._boolop(node, frame)
        if isinstance(node, ast.Compare):
            return self._compare(node, frame)
        if isinstance(node, ast.IfExp):
            t = self._truth(self._eval(node.test, frame))
            if t is True:
                return self._eval(node.body, frame)
            if t is False:
                return self._eval(node.orelse, frame)
            return UNKNOWN
        if isinstance(node, ast.Tuple):
            return tuple(self._eval(e, frame) for e in node.elts)
        if isinstance(node, ast.List):
            return [self._eval(e, frame) for e in node.elts]
        if isinstance(node, ast.Dict):
            out = {}
            for k, v in zip(node.keys, node.values):
                if k is None:
                    continue
                key = self._eval(k, frame)
                if _is_concrete(key):
                    out[key] = self._eval(v, frame)
            return out
        if isinstance(node, ast.Set):
            return UNKNOWN
        if isinstance(node, ast.Subscript):
            return self._subscript(node, frame)
        if isinstance(node, ast.Slice):
            return slice(
                self._eval(node.lower, frame) if node.lower else None,
                self._eval(node.upper, frame) if node.upper else None,
                self._eval(node.step, frame) if node.step else None,
            )
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return self._comprehension(node, frame)
        if isinstance(node, (ast.SetComp, ast.DictComp)):
            return UNKNOWN
        if isinstance(node, ast.JoinedStr):
            parts = []
            for v in node.values:
                if isinstance(v, ast.Constant):
                    parts.append(str(v.value))
                else:
                    inner = self._eval(v.value, frame) if isinstance(v, ast.FormattedValue) else UNKNOWN
                    parts.append(str(inner) if _is_concrete(inner) else "?")
            return "".join(parts)
        if isinstance(node, ast.YieldFrom):
            return self._eval(node.value, frame)
        if isinstance(node, ast.Yield):
            if node.value is not None:
                self._eval(node.value, frame)
            return UNKNOWN
        if isinstance(node, ast.Starred):
            return self._eval(node.value, frame)
        if isinstance(node, ast.Lambda):
            return _ANY_FUNC
        raise StaticExtractionError(f"unsupported expression {type(node).__name__}", self.loc)

    def _load_name(self, name: str, frame: _Frame):
        if name in frame.locals:
            return frame.locals[name]
        if name in frame.module.globals:
            return frame.module.globals[name]
        return _BUILTINS.get(name, UNKNOWN)

    def _getattr(self, obj, name: str):
        if obj is UNKNOWN:
            return UNKNOWN
        if isinstance(obj, (_Endpoint, _AbstractMW, _Opaque, _NP, _CostModel,
                            _MeshModel, _SlabsModel, _ClassicModel, _Timeline,
                            _SendReq, _RecvReq)):
            return obj.getattr(name) if not isinstance(obj, _Timeline) else getattr(obj, name, UNKNOWN)
        if isinstance(obj, Instance):
            if name in obj.attrs:
                return obj.attrs[name]
            cls = obj.cls
            if name in cls.consts:
                return cls.consts[name]
            if name in cls.methods:
                if name in cls.properties:
                    return self.call(_BoundMethod(obj, cls.methods[name]), [], {})
                return _BoundMethod(obj, cls.methods[name])
            return UNKNOWN
        if isinstance(obj, ModuleValue):
            return obj.ctx.globals.get(name, UNKNOWN)
        if isinstance(obj, Block):
            if name == "copy":
                return obj.copy
            return UNKNOWN
        if isinstance(obj, ClassValue):
            return obj.consts.get(name, UNKNOWN)
        if isinstance(obj, (list, tuple)) and name in ("append", "extend", "pop", "index", "count"):
            return getattr(obj, name, UNKNOWN)
        if isinstance(obj, dict) and name in ("items", "keys", "values", "get", "pop"):
            return getattr(obj, name, UNKNOWN)
        if _is_concrete(obj):
            return UNKNOWN
        return UNKNOWN

    def _subscript(self, node: ast.Subscript, frame: _Frame):
        obj = self._eval(node.value, frame)
        idx = self._eval(node.slice, frame)
        if isinstance(obj, (list, tuple, str, bytes, dict)):
            try:
                return obj[idx]
            except Exception:
                return UNKNOWN
        return UNKNOWN

    def _comprehension(self, node, frame: _Frame):
        if len(node.generators) != 1:
            return UNKNOWN
        gen = node.generators[0]
        it = self._eval(gen.iter, frame)
        if not isinstance(it, (list, tuple, range)):
            return UNKNOWN
        out = []
        for item in it:
            self._assign(gen.target, item, frame)
            keep = True
            for cond in gen.ifs:
                if self._truth(self._eval(cond, frame)) is not True:
                    keep = False
                    break
            if keep:
                out.append(self._eval(node.elt, frame))
        return out

    def _binop(self, op: ast.operator, left, right):
        if isinstance(left, SymTag) and isinstance(right, int) and isinstance(op, ast.Add):
            return left + right
        if isinstance(right, SymTag) and isinstance(left, int) and isinstance(op, ast.Add):
            return right + left
        try:
            if (_is_concrete(left) or isinstance(left, (list, tuple))) and (
                _is_concrete(right) or isinstance(right, (list, tuple))
            ):
                return _apply_binop(op, left, right)
        except Exception:
            return UNKNOWN
        return UNKNOWN

    def _boolop(self, node: ast.BoolOp, frame: _Frame):
        is_and = isinstance(node.op, ast.And)
        result = None
        for sub in node.values:
            v = self._eval(sub, frame)
            t = self._truth(v)
            if t is None:
                return UNKNOWN
            if is_and and not t:
                return v
            if not is_and and t:
                return v
            result = v
        return result

    def _compare(self, node: ast.Compare, frame: _Frame):
        left = self._eval(node.left, frame)
        result = True
        for op, comp in zip(node.ops, node.comparators):
            right = self._eval(comp, frame)
            one = self._compare_one(op, left, right)
            if one is UNKNOWN:
                return UNKNOWN
            if not one:
                return False
            left = right
        return result

    @staticmethod
    def _definitely_not_none(v) -> bool:
        return isinstance(v, (Block, SymTag, SymSize, Instance, _Opaque, _Endpoint,
                              _AbstractMW, int, float, str, bytes, list, tuple, dict,
                              _MeshModel, _SlabsModel, _ClassicModel, _CostModel))

    def _compare_one(self, op: ast.cmpop, left, right):
        if isinstance(op, (ast.Is, ast.IsNot)):
            if right is None:
                if left is None:
                    eq = True
                elif self._definitely_not_none(left):
                    eq = False
                else:
                    return UNKNOWN
                return (eq if isinstance(op, ast.Is) else not eq)
            return UNKNOWN
        if _is_concrete(left) and _is_concrete(right):
            try:
                if isinstance(op, ast.Eq):
                    return left == right
                if isinstance(op, ast.NotEq):
                    return left != right
                if isinstance(op, ast.Lt):
                    return left < right
                if isinstance(op, ast.LtE):
                    return left <= right
                if isinstance(op, ast.Gt):
                    return left > right
                if isinstance(op, ast.GtE):
                    return left >= right
            except Exception:
                return UNKNOWN
        if isinstance(op, (ast.Eq, ast.NotEq)) and isinstance(left, (SymTag, Block, SymSize)):
            eq = left == right
            return eq if isinstance(op, ast.Eq) else not eq
        if isinstance(op, (ast.In, ast.NotIn)) and isinstance(right, (list, tuple, dict)):
            try:
                found = left in right
                return found if isinstance(op, ast.In) else not found
            except Exception:
                return UNKNOWN
        return UNKNOWN

    # -- calls ----------------------------------------------------------
    def _call(self, node: ast.Call, frame: _Frame):
        func = self._eval(node.func, frame)
        args = []
        for a in node.args:
            if isinstance(a, ast.Starred):
                star = self._eval(a.value, frame)
                if isinstance(star, (list, tuple)):
                    args.extend(star)
                else:
                    args.append(UNKNOWN)
            else:
                args.append(self._eval(a, frame))
        kwargs = {}
        for kw in node.keywords:
            if kw.arg is None:  # **kwargs of unknown content
                self._eval(kw.value, frame)
                continue
            kwargs[kw.arg] = self._eval(kw.value, frame)

        if func is UNKNOWN or isinstance(func, (_AnyFunc, _NP)):
            return UNKNOWN
        if isinstance(func, _Identity):
            return func(*args)
        if isinstance(func, (FuncValue, _BoundMethod)):
            return self.call(func, args, kwargs)
        if isinstance(func, ClassValue):
            return self._construct(func, args, kwargs)
        if callable(func):
            try:
                return func(*args, **kwargs)
            except StaticExtractionError:
                raise
            except (_Return, _Break, _Continue):
                raise
            except Exception:
                return UNKNOWN
        return UNKNOWN

    def _construct(self, cls: ClassValue, args, kwargs):
        factory = _CLASS_MODELS.get(cls.name)
        if factory is not None:
            return factory(self, args, kwargs)
        # generic: attributes from keyword arguments; __init__ is NOT
        # interpreted (the analyzed constructors are numeric setup)
        return Instance(cls, dict(kwargs))


# ---------------------------------------------------------------------------
# builtins and class models


def _b_len(x=UNKNOWN):
    if isinstance(x, (list, tuple, dict, str, bytes)):
        return len(x)
    return UNKNOWN


def _b_int(x=0):
    if _is_concrete(x) and x is not None and not isinstance(x, (str, bytes)):
        try:
            return int(x)
        except Exception:
            return UNKNOWN
    return UNKNOWN


def _b_float(x=0.0):
    if _is_concrete(x) and x is not None and not isinstance(x, (str, bytes)):
        try:
            return float(x)
        except Exception:
            return UNKNOWN
    return UNKNOWN


def _b_str(x=""):
    return str(x) if _is_concrete(x) else UNKNOWN


def _b_range(*a):
    if all(isinstance(x, int) and not isinstance(x, bool) for x in a) and 1 <= len(a) <= 3:
        return range(*a)
    raise StaticExtractionError(f"range() over non-concrete bounds {a!r}")


def _b_enumerate(x=(), start=0):
    if isinstance(x, (list, tuple, range)) and isinstance(start, int):
        return list(enumerate(x, start))
    return UNKNOWN


def _b_getattr(obj=UNKNOWN, name=UNKNOWN, default=UNKNOWN):
    return UNKNOWN


_BUILTINS = {
    "len": _b_len,
    "int": _b_int,
    "float": _b_float,
    "str": _b_str,
    "bool": lambda x=False: bool(x) if _is_concrete(x) else UNKNOWN,
    "range": _b_range,
    "enumerate": _b_enumerate,
    "zip": lambda *a: list(zip(*a)) if all(isinstance(x, (list, tuple, range)) for x in a) else UNKNOWN,
    "list": lambda x=(): list(x) if isinstance(x, (list, tuple, range)) else ([] if x == () else UNKNOWN),
    "tuple": lambda x=(): tuple(x) if isinstance(x, (list, tuple, range)) else UNKNOWN,
    "dict": lambda *a, **k: dict(k) if not a else UNKNOWN,
    "min": lambda *a, **k: min(*a) if a and all(_is_concrete(x) and x is not None for x in a) else UNKNOWN,
    "max": lambda *a, **k: max(*a) if a and all(_is_concrete(x) and x is not None for x in a) else UNKNOWN,
    "abs": lambda x=0: abs(x) if _is_concrete(x) and x is not None and not isinstance(x, (str, bytes)) else UNKNOWN,
    "sum": lambda *a, **k: UNKNOWN,
    "sorted": lambda x=(), **k: sorted(x) if isinstance(x, (list, tuple, range)) else UNKNOWN,
    "getattr": _b_getattr,
    "isinstance": lambda *a, **k: UNKNOWN,
    "print": lambda *a, **k: None,
    "divmod": lambda a=0, b=1: divmod(a, b) if _is_concrete(a) and _is_concrete(b) else UNKNOWN,
    "ValueError": _ANY_FUNC,
    "TypeError": _ANY_FUNC,
    "RuntimeError": _ANY_FUNC,
    "AssertionError": _ANY_FUNC,
}


def _make_parallel_pme(interp: Interp, args, kwargs) -> Instance:
    """ParallelPME with numeric members replaced by symbolic models.

    The *methods* (``reciprocal``, ``_stencil_for``) are interpreted from
    the real AST — only the constructor's numpy setup is modelled.
    """
    reg = interp.registry
    ppme_cls = reg.modules["repro.parallel.ppme"].globals["ParallelPME"]
    fft_cls = reg.modules["repro.parallel.pfft"].globals["DistributedFFT"]
    rank = kwargs.get("rank", 0)
    p = kwargs.get("n_ranks", 1)
    if not isinstance(rank, int):
        rank = 0
    if not isinstance(p, int):
        p = 1
    fft = Instance(
        fft_cls,
        {
            "grid_shape": UNKNOWN,
            "n_ranks": p,
            "rank": rank,
            "cost": _CostModel(),
            "x_slabs": _SlabsModel(p, "fft.x"),
            "y_slabs": _SlabsModel(p, "fft.y"),
        },
    )
    return Instance(
        ppme_cls,
        {
            "pme": _Opaque({"grid_shape": UNKNOWN, "total_points": UNKNOWN, "alpha": UNKNOWN}),
            "box": UNKNOWN,
            "rank": rank,
            "n_ranks": p,
            "cost": _CostModel(),
            "charges": UNKNOWN,
            "shared": None,
            "fft": fft,
            "mesh": _MeshModel(),
            "my_exclusions": UNKNOWN,
            "self_energy_share": UNKNOWN,
            "psi_slab": UNKNOWN,
        },
    )


_CLASS_MODELS = {
    "ParallelClassic": lambda interp, args, kwargs: _ClassicModel(),
    "ParallelPME": _make_parallel_pme,
    "NeighborList": lambda interp, args, kwargs: UNKNOWN,
}


# ---------------------------------------------------------------------------
# progress engine: match the per-rank micro-op streams


def _rel(path: str) -> str:
    try:
        return str(Path(path).resolve().relative_to(Path.cwd()))
    except Exception:
        return path


def _simulate(ops_by_rank: list[list[MicroOp]]):
    """Match sends to receives under conservative rendezvous semantics.

    Returns ``(rule, group_key, message, loc)`` findings.  All sends are
    rendezvous: a wait_send only completes once the matching receive is
    posted, so any program whose completion depends on eager buffering
    is reported as deadlocked (MPI calls such programs unsafe).
    """
    p = len(ops_by_rank)
    findings: list[tuple[str, tuple, str, tuple[str, int]]] = []
    sends: dict[tuple, list[dict]] = {}
    recvs: dict[tuple, list[dict]] = {}
    send_by_ref: list[dict[int, dict]] = [{} for _ in range(p)]
    recv_by_ref: list[dict[int, dict]] = [{} for _ in range(p)]
    pc = [0] * p

    def check_agreement(send: dict, recv: dict) -> None:
        sop, rop = send["op"], recv["op"]
        ssz, rsz = sop.size, rop.size
        if ssz is not None and rsz is not None and ssz.concrete and rsz.concrete:
            if ssz.value != rsz.value:
                findings.append((
                    "REP405", ("REP405", rop.loc, "size"),
                    f"rank {send['rank']} sends {ssz} to rank {recv['rank']} "
                    f"(tag {sop.tag}) but the receiver declares {rsz}",
                    rop.loc,
                ))
        if sop.dtype is not None and rop.dtype is not None and sop.dtype != rop.dtype:
            findings.append((
                "REP405", ("REP405", rop.loc, "dtype"),
                f"rank {send['rank']} sends dtype {sop.dtype} to rank {recv['rank']} "
                f"(tag {sop.tag}) but the receiver declares {rop.dtype}",
                rop.loc,
            ))

    def match(send: dict, recv: dict) -> None:
        send["matched"] = True
        recv["matched"] = True
        check_agreement(send, recv)

    progressed = True
    while progressed:
        progressed = False
        for r in range(p):
            ops = ops_by_rank[r]
            while pc[r] < len(ops):
                op = ops[pc[r]]
                if op.kind in ("collective", "mw"):
                    pc[r] += 1
                elif op.kind == "post_send":
                    key = (r, op.peer, op.abs_tag)
                    entry = {"rank": r, "op": op, "matched": False}
                    queue = sends.setdefault(key, [])
                    if any(not e["matched"] for e in queue):
                        findings.append((
                            "REP404", ("REP404", op.loc),
                            f"rank {r} posts a second in-flight send to rank "
                            f"{op.peer} with tag {op.tag} before the first is "
                            "received (FIFO match order is ambiguous)",
                            op.loc,
                        ))
                    pending = next(
                        (e for e in recvs.get(key, []) if not e["matched"]), None
                    )
                    queue.append(entry)
                    send_by_ref[r][op.ref] = entry
                    if pending is not None:
                        match(entry, pending)
                    pc[r] += 1
                elif op.kind == "post_recv":
                    key = (op.peer, r, op.abs_tag)
                    entry = {"rank": r, "op": op, "matched": False}
                    pending = next(
                        (e for e in sends.get(key, []) if not e["matched"]), None
                    )
                    recvs.setdefault(key, []).append(entry)
                    recv_by_ref[r][op.ref] = entry
                    if pending is not None:
                        match(pending, entry)
                    pc[r] += 1
                elif op.kind == "wait_send":
                    if not send_by_ref[r][op.ref]["matched"]:
                        break
                    pc[r] += 1
                elif op.kind == "wait_recv":
                    if not recv_by_ref[r][op.ref]["matched"]:
                        break
                    pc[r] += 1
                else:  # pragma: no cover - emitter and engine share the kinds
                    raise AssertionError(f"unknown micro-op kind {op.kind}")
                progressed = True

    stalled = [r for r in range(p) if pc[r] < len(ops_by_rank[r])]
    if stalled:
        findings.extend(_explain_stall(ops_by_rank, pc, stalled, send_by_ref, recv_by_ref))
        return findings

    # clean finish: fire-and-forget posts that never matched
    for queue in sends.values():
        for e in queue:
            if not e["matched"]:
                op = e["op"]
                findings.append((
                    "REP402", ("REP402", op.loc),
                    f"rank {e['rank']} sends to rank {op.peer} with tag {op.tag} "
                    "but no rank ever posts the matching receive",
                    op.loc,
                ))
    for queue in recvs.values():
        for e in queue:
            if not e["matched"]:
                op = e["op"]
                findings.append((
                    "REP403", ("REP403", op.loc),
                    f"rank {e['rank']} expects a message from rank {op.peer} with "
                    f"tag {op.tag} but no rank ever sends it",
                    op.loc,
                ))
    return findings


def _explain_stall(ops_by_rank, pc, stalled, send_by_ref, recv_by_ref):
    """Wait-for analysis of a stalled schedule: cycles and dead peers."""
    p = len(ops_by_rank)
    findings = []
    waits_on: dict[int, tuple[int, MicroOp]] = {}
    for r in stalled:
        op = ops_by_rank[r][pc[r]]
        entry = (send_by_ref if op.kind == "wait_send" else recv_by_ref)[r][op.ref]
        waits_on[r] = (entry["op"].peer, op)

    reported_cycles: set[frozenset] = set()
    for start in stalled:
        # directly blocked on a rank that already finished: the message
        # can never arrive — an unmatched send/recv, not a deadlock
        peer, op = waits_on[start]
        blocked_entry = ops_by_rank[start][pc[start]]
        post = (send_by_ref if blocked_entry.kind == "wait_send" else recv_by_ref)[start][
            blocked_entry.ref
        ]["op"]
        if peer not in waits_on:
            if blocked_entry.kind == "wait_recv":
                findings.append((
                    "REP403", ("REP403", post.loc),
                    f"rank {start} waits for a message from rank {post.peer} with "
                    f"tag {post.tag} that is never sent",
                    post.loc,
                ))
            else:
                findings.append((
                    "REP402", ("REP402", post.loc),
                    f"rank {start} waits for rank {post.peer} to receive its send "
                    f"with tag {post.tag}, but the matching receive is never posted",
                    post.loc,
                ))
            continue
        # follow the (functional) wait-for chain looking for a cycle
        chain = []
        seen_at: dict[int, int] = {}
        node = start
        while node in waits_on and node not in seen_at:
            seen_at[node] = len(chain)
            chain.append(node)
            node = waits_on[node][0]
        if node in seen_at:
            cycle = chain[seen_at[node]:]
            locs = frozenset(waits_on[r][1].loc for r in cycle)
            if locs not in reported_cycles:
                reported_cycles.add(locs)
                desc = " -> ".join(
                    f"rank {r} (tag "
                    f"{(send_by_ref if waits_on[r][1].kind == 'wait_send' else recv_by_ref)[r][waits_on[r][1].ref]['op'].tag})"
                    for r in cycle
                )
                loc = waits_on[cycle[0]][1].loc
                findings.append((
                    "REP401", ("REP401", locs),
                    f"rendezvous wait-for cycle across ranks "
                    f"{sorted(cycle)}: {desc}",
                    loc,
                ))
    return findings


def _collective_divergence(ops_by_rank: list[list[MicroOp]]):
    """Cross-rank identity of the collective/middleware op sequence."""
    findings = []
    seqs = [
        [op.op for op in ops if op.kind in ("collective", "mw")] for ops in ops_by_rank
    ]
    for r, seq in enumerate(seqs[1:], start=1):
        if seq != seqs[0]:
            n = min(len(seq), len(seqs[0]))
            at = next((i for i in range(n) if seq[i] != seqs[0][i]), n)
            loc = None
            count = 0
            for op in ops_by_rank[r]:
                if op.kind in ("collective", "mw"):
                    if count == at:
                        loc = op.loc
                        break
                    count += 1
            loc = loc or ops_by_rank[r][-1].loc if ops_by_rank[r] else ("<program>", 0)
            findings.append((
                "REP406", ("REP406", "divergence", at),
                f"collective sequence diverges: rank 0 issues {seqs[0][at] if at < len(seqs[0]) else '<end>'} "
                f"at position {at}, rank {r} issues {seq[at] if at < len(seq) else '<end>'}",
                loc,
            ))
            break  # one divergence report per p is enough
    return findings


# ---------------------------------------------------------------------------
# instantiation drivers and p-condition grouping


def _verify_instantiations(make_ops, bound: int) -> list[Diagnostic]:
    """Run ``make_ops(p)`` for p = 1..bound; group findings symbolically."""
    groups: dict[tuple, dict] = {}

    def add(finding, p: int) -> None:
        rule, key, message, loc = finding
        g = groups.setdefault(key, {"rule": rule, "message": message, "loc": loc, "ps": set()})
        g["ps"].add(p)

    for p in range(1, bound + 1):
        try:
            ops = make_ops(p)
        except StaticExtractionError as exc:
            loc = exc.loc or ("<program>", 0)
            add(("REP406", ("REP406", "extract", loc), f"cannot statically extract the schedule: {exc}", loc), p)
            continue
        for f in _simulate(ops):
            add(f, p)
        for f in _collective_divergence(ops):
            add(f, p)

    out = []
    for g in groups.values():
        rule = g["rule"]
        path, line = g["loc"]
        out.append(
            Diagnostic(
                rule=rule,
                message=g["message"],
                path=_rel(path),
                line=line or None,
                severity=RULES[rule].severity,
                p_condition=summarize_p_set(g["ps"], bound),
            )
        )
    out.sort(key=lambda d: (d.rule, d.path or "", d.line or 0))
    return out


# ---------------------------------------------------------------------------
# public verification surface

#: The strategies the verifier knows how to instantiate, mirroring the
#: experiment design: classic-only ("pclassic"), classic+PME ("ppme"),
#: and the domain decomposition's halo-exchange schedule ("spatial").
STRATEGIES = ("pclassic", "ppme", "spatial")
MIDDLEWARES = ("mpi", "cmpi")

#: Canonical box profiles the spatial strategy is verified against:
#: ``(name, (lx, ly, lz), r_cut)``.  The paper's myoglobin cell and the
#: pure water box — an anisotropic box (grid dimensions of 1, so whole
#: dimensions carry no messages) and a cubic one whose cutoff exceeds a
#: region width at moderate p (multi-pulse halo depths).
SPATIAL_PROFILES = (
    ("myoglobin", (96.0, 43.2, 57.6), 10.0),
    ("water-box", (24.8, 24.8, 24.8), 8.0),
)


def _spatial_profile(name: str) -> tuple[str, tuple[float, float, float], float]:
    for profile in SPATIAL_PROFILES:
        if profile[0] == name:
            return profile
    known = ", ".join(p[0] for p in SPATIAL_PROFILES)
    raise ValueError(f"unknown spatial profile {name!r}; known: {known}")


def _spatial_decomposition(lengths, r_cut: float, p: int):
    """The real decomposition of one profile (runtime-only import)."""
    from ..md.box import PeriodicBox  # runtime-only: see module docstring
    from ..parallel.spatial.decomposition import SpatialDecomposition

    box = PeriodicBox(*lengths)
    return SpatialDecomposition.for_cluster(box, p, r_cut)

_MW_CLASSES = {"mpi": ("repro.mpi.middleware", "MPIMiddleware"),
               "cmpi": ("repro.cmpi.middleware", "CMPIMiddleware")}


def _mw_value(reg: Registry, middleware: str):
    if middleware == "abstract":
        return _AbstractMW()
    mod, cls = _MW_CLASSES[middleware]
    return Instance(reg.modules[mod].globals[cls], {})


def _system_opaque(uses_pme: bool) -> _Opaque:
    return _Opaque({"uses_pme": uses_pme})


def _run_spatial_rank_program(
    reg: Registry, middleware: str, p: int, n_steps: int, lengths, r_cut: float
):
    """Extract the per-rank micro-op streams of one spatial instantiation.

    The rank program's control flow depends only on the decomposition's
    ``grid`` and ``pulses`` tuples, so those two concrete values (from
    the *real* :class:`~repro.parallel.spatial.decomposition.SpatialDecomposition`
    geometry) are all the interpreter needs — the engine stays fully
    opaque and every physics call evaluates to UNKNOWN.
    """
    decomp = _spatial_decomposition(lengths, r_cut, p)
    entry = reg.modules["repro.parallel.spatial.program"].globals["spatial_rank_program"]
    ops = []
    for rank in range(p):
        interp = Interp(reg)
        ep = _Endpoint(interp, rank, p, reg.tag_base)
        kwargs = {
            "mw": _mw_value(reg, middleware),
            "decomp": _Opaque(
                {"grid": tuple(decomp.grid), "pulses": tuple(decomp.pulses)}
            ),
            "engine": UNKNOWN,
            "config": _Opaque(
                {"n_steps": n_steps, "barrier_per_step": True, "dt": 0.0005}
            ),
        }
        interp.call(entry, [ep], kwargs)
        ops.append(ep.ops)
    return ops


def _run_rank_program(reg: Registry, strategy: str, middleware: str, p: int, n_steps: int):
    """Extract the per-rank micro-op streams of one pmd instantiation."""
    if strategy not in ("pclassic", "ppme"):
        raise ValueError(f"unknown strategy {strategy!r}")
    entry = reg.modules["repro.parallel.pmd"].globals["rank_program"]
    ops = []
    for rank in range(p):
        interp = Interp(reg)
        ep = _Endpoint(interp, rank, p, reg.tag_base)
        kwargs = {
            "mw": _mw_value(reg, middleware),
            "system": _system_opaque(uses_pme=(strategy == "ppme")),
            "decomp": UNKNOWN,
            "cost": _CostModel(),
            "config": _Opaque(
                {"n_steps": n_steps, "barrier_per_step": True, "dt": 0.0005}
            ),
            "positions0": Block("positions0", SymSize(name="coords"), "float64"),
            "velocities0": UNKNOWN,
            "shared": None,
        }
        interp.call(entry, [ep], kwargs)
        ops.append(ep.ops)
    return ops


def verify_strategy(
    strategy: str, middleware: str = "mpi", bound: int = 32, n_steps: int = 1
) -> list[Diagnostic]:
    """Verify one strategy's full expanded schedule for all p up to ``bound``.

    The spatial strategy is instantiated once per canonical box profile
    (:data:`SPATIAL_PROFILES`) since its schedule depends on the box
    geometry, not just on p.
    """
    reg = _registry()
    if strategy == "spatial":
        diagnostics: list[Diagnostic] = []
        for _name, lengths, r_cut in SPATIAL_PROFILES:
            diagnostics.extend(
                _verify_instantiations(
                    lambda p, _l=lengths, _r=r_cut: _run_spatial_rank_program(
                        reg, middleware, p, n_steps, _l, _r
                    ),
                    bound,
                )
            )
        return diagnostics
    return _verify_instantiations(
        lambda p: _run_rank_program(reg, strategy, middleware, p, n_steps), bound
    )


_COLLECTIVE_ARGS = {
    "barrier": lambda p: [],
    "allreduce": lambda p: [Block("allreduce.in", SymSize(name="A"), "float64")],
    "allgatherv": lambda p: [Block("allgatherv.in", SymSize(name="B"), "float64")],
    "alltoallv": lambda p: [
        [Block(f"a2a[{i}]", SymSize(name=f"a2a[{i}]"), "float64") for i in range(p)]
    ],
    "bcast": lambda p: [Block("bcast.in", SymSize(name="C"), "float64")],
    "reduce": lambda p: [Block("reduce.in", SymSize(name="R"), "float64")],
    "sync": lambda p: [],
}


def verify_middleware_collectives(middleware: str = "mpi", bound: int = 32) -> list[Diagnostic]:
    """Verify every collective algorithm of one middleware in isolation."""
    reg = _registry()
    diagnostics: list[Diagnostic] = []
    if middleware == "mpi":
        mod = reg.modules["repro.mpi.collectives"]
        targets = [
            (name, mod.globals[name])
            for name in ("barrier", "allreduce", "allgatherv", "alltoallv", "bcast", "reduce")
        ]
    elif middleware == "cmpi":
        cls = reg.modules["repro.cmpi.middleware"].globals["CMPIMiddleware"]
        targets = [
            (name, name) for name in ("sync", "barrier", "allreduce", "allgatherv", "alltoallv")
        ]
    else:
        raise ValueError(f"unknown middleware {middleware!r}")

    for name, target in targets:
        def make_ops(p, _name=name, _target=target):
            ops = []
            for rank in range(p):
                interp = Interp(reg)
                ep = _Endpoint(interp, rank, p, reg.tag_base)
                args = [ep] + _COLLECTIVE_ARGS[_name](p)
                if middleware == "cmpi":
                    cls_value = reg.modules["repro.cmpi.middleware"].globals["CMPIMiddleware"]
                    fv = _BoundMethod(Instance(cls_value, {}), cls_value.methods[_target])
                else:
                    fv = _target
                interp.call(fv, args, {})
                ops.append(ep.ops)
            return ops

        diagnostics.extend(_verify_instantiations(make_ops, bound))
    return diagnostics


def extract_strategy_collective_ops(
    strategy: str, p: int, n_steps: int = 1, profile: str | None = None
) -> list[list[str]]:
    """The per-rank middleware-op sequences under the abstract middleware.

    For the spatial strategy ``profile`` names the box profile (default:
    the first entry of :data:`SPATIAL_PROFILES`).
    """
    reg = _registry()
    if strategy == "spatial":
        _name, lengths, r_cut = _spatial_profile(profile or SPATIAL_PROFILES[0][0])
        ops = _run_spatial_rank_program(reg, "abstract", p, n_steps, lengths, r_cut)
    else:
        ops = _run_rank_program(reg, strategy, "abstract", p, n_steps)
    return [[op.op for op in rank_ops if op.kind == "mw"] for rank_ops in ops]


def _verify_spatial_contract_conformance(
    ps: tuple[int, ...], n_steps: int
) -> list[Diagnostic]:
    """Spatial leg of the REP406 conformance check.

    The expected sequence comes from the *declared*
    :meth:`~repro.parallel.spatial.decomposition.SpatialDecomposition.schedule_contract`
    of the real geometry — per (profile, p) since halo depths depend on
    both — and must match the abstractly extracted middleware ops of
    every rank.
    """
    reg = _registry()
    path = _rel(reg.modules["repro.parallel.spatial.program"].path)
    diagnostics = []
    for name, lengths, r_cut in SPATIAL_PROFILES:
        for p in ps:
            contract = _spatial_decomposition(lengths, r_cut, p).schedule_contract()
            expected = contract.expected_ops({"barrier"}) * n_steps
            seqs = extract_strategy_collective_ops("spatial", p, n_steps, profile=name)
            for rank, seq in enumerate(seqs):
                if seq != expected:
                    diagnostics.append(
                        Diagnostic(
                            rule="REP406",
                            message=(
                                f"strategy 'spatial' ({name}, p={p}, rank {rank}) "
                                f"issues {seq} per run but contract "
                                f"{contract.name!r} promises {expected}"
                            ),
                            path=path,
                            severity=RULES["REP406"].severity,
                            p_condition=f"p in {{{p}}}",
                        )
                    )
                    break  # SPMD: one rank's divergence describes the run
    return diagnostics


def verify_contract_conformance(
    strategy: str, ps: tuple[int, ...] = (1, 2, 3, 4, 5, 8), n_steps: int = 1
) -> list[Diagnostic]:
    """Check the extracted schedule against the declared contract (REP406)."""
    if strategy == "spatial":
        return _verify_spatial_contract_conformance(ps, n_steps)

    from ..parallel.pmd import STEP_SCHEDULE_CONTRACT  # runtime-only import

    flags = {"barrier"} | ({"pme"} if strategy == "ppme" else set())
    expected = STEP_SCHEDULE_CONTRACT.expected_ops(flags) * n_steps
    pmd_path = _rel(_registry().modules["repro.parallel.pmd"].path)
    diagnostics = []
    for p in ps:
        seqs = extract_strategy_collective_ops(strategy, p, n_steps)
        for rank, seq in enumerate(seqs):
            if seq != expected:
                diagnostics.append(
                    Diagnostic(
                        rule="REP406",
                        message=(
                            f"strategy {strategy!r} (p={p}, rank {rank}) issues "
                            f"{seq} per run but contract "
                            f"{STEP_SCHEDULE_CONTRACT.name!r} promises {expected}"
                        ),
                        path=pmd_path,
                        severity=RULES["REP406"].severity,
                        p_condition=f"p in {{{p}}}",
                    )
                )
                break  # SPMD: one rank's divergence describes the run
    return diagnostics


def verify_static(bound: int = 32, strategies=STRATEGIES, middlewares=MIDDLEWARES) -> list[Diagnostic]:
    """The full static gate: collectives, strategies, contracts."""
    diagnostics: list[Diagnostic] = []
    for mw in middlewares:
        diagnostics.extend(verify_middleware_collectives(mw, bound))
    for strategy in strategies:
        conformance_ps = tuple(p for p in (1, 2, 3, 4, 5, 8) if p <= bound)
        diagnostics.extend(verify_contract_conformance(strategy, conformance_ps))
        for mw in middlewares:
            diagnostics.extend(verify_strategy(strategy, mw, bound))
    return diagnostics


def verify_rank_program_source(
    source: str, path: str = "<fixture>", bound: int = 16, entry: str | None = None
) -> list[Diagnostic]:
    """Verify a standalone rank-program source (golden fixtures, REPLs).

    The module may define helper functions and constants; the verified
    program is ``entry`` when given, else a function named
    ``rank_program``, else the first top-level function whose first
    parameter is ``ep``.  The program communicates through the
    :class:`RankEndpoint` surface of its ``ep`` argument.
    """
    reg = _registry()
    ctx = reg.module_source_ctx(source, path)
    fv = None
    if entry is not None:
        fv = ctx.globals.get(entry)
    elif "rank_program" in ctx.globals:
        fv = ctx.globals["rank_program"]
    else:
        for value in ctx.globals.values():
            if isinstance(value, FuncValue) and value.node.args.args:
                if value.node.args.args[0].arg == "ep":
                    fv = value
                    break
    if not isinstance(fv, FuncValue):
        raise ValueError(f"no rank program found in {path}")

    def make_ops(p):
        ops = []
        for rank in range(p):
            interp = Interp(reg)
            ep = _Endpoint(interp, rank, p, reg.tag_base)
            interp.call(fv, [ep], {})
            ops.append(ep.ops)
        return ops

    return _verify_instantiations(make_ops, bound)


# ---------------------------------------------------------------------------
# static-vs-executed cross-check


def static_step_events(
    strategy: str = "ppme", middleware: str = "mpi", p: int = 8, n_steps: int = 1,
    profile: str | None = None,
) -> list[list[tuple]]:
    """Per-rank trace-comparable events: (kind, peer, tag, op, nbytes, dtype).

    ``nbytes``/``dtype`` are ``None`` where the static schedule is
    symbolic; the cross-check skips those fields.  Collectives use
    peer -1 and carry the op name, mirroring
    :class:`~repro.instrument.commstats.CommEvent`.  ``profile`` selects
    the box profile for the spatial strategy.
    """
    reg = _registry()
    if strategy == "spatial":
        _name, lengths, r_cut = _spatial_profile(profile or SPATIAL_PROFILES[0][0])
        ops = _run_spatial_rank_program(reg, middleware, p, n_steps, lengths, r_cut)
    else:
        ops = _run_rank_program(reg, strategy, middleware, p, n_steps)
    out: list[list[tuple]] = []
    for rank_ops in ops:
        events = []
        for op in rank_ops:
            if op.kind == "collective":
                events.append(("collective", -1, reg.tag_base + 16 * op.invocation, op.op, None, None))
            elif op.kind == "post_send":
                nbytes = op.size.value if op.size is not None and op.size.concrete else None
                events.append(("send", op.peer, op.abs_tag, "", nbytes, op.dtype))
            elif op.kind == "post_recv":
                nbytes = op.size.value if op.size is not None and op.size.concrete else None
                events.append(("recv", op.peer, op.abs_tag, "", nbytes, op.dtype))
        out.append(events)
    return out


def crosscheck_against_trace(
    trace, strategy: str = "ppme", middleware: str = "mpi", p: int = 8, n_steps: int = 1,
    profile: str | None = None,
) -> list[str]:
    """Compare an executed CommTrace against the static schedule.

    Returns human-readable problem strings (empty = event-for-event
    match).  Kind, peer, tag and collective-op name are compared
    strictly; payload bytes and dtype only where the static side is
    concrete.  ``profile`` selects the spatial box profile.
    """
    static = static_step_events(strategy, middleware, p, n_steps, profile=profile)
    problems: list[str] = []
    for rank in range(p):
        executed = [e for e in trace.events if e.rank == rank]
        expected = static[rank]
        if len(executed) != len(expected):
            problems.append(
                f"rank {rank}: static schedule has {len(expected)} events, "
                f"executed trace has {len(executed)}"
            )
        for i, (ev, ex) in enumerate(zip(executed, expected)):
            kind, peer, tag, op, nbytes, dtype = ex
            got = (ev.kind, ev.peer, ev.tag, ev.op if kind == "collective" else "")
            want = (kind, peer, tag, op)
            if got != want:
                problems.append(f"rank {rank} event {i}: static {want} != executed {got}")
                break
            if nbytes is not None and ev.nbytes not in (-1, nbytes):
                problems.append(
                    f"rank {rank} event {i}: static {nbytes} bytes != executed {ev.nbytes}"
                )
            if dtype is not None and ev.dtype not in ("", dtype):
                problems.append(
                    f"rank {rank} event {i}: static dtype {dtype} != executed {ev.dtype}"
                )
    return problems
