"""Symbolic values for the static schedule verifier.

The static verifier (:mod:`repro.analysis.static_schedule`) evaluates
rank programs over an abstract domain: control flow is instantiated per
``(rank, p)`` up to a bound, while the *data* the program moves stays
symbolic — payload sizes and dtypes are opaque atoms, and message tags
are ``(collective invocation, offset)`` pairs rather than the runtime's
absolute integers.  This module holds those symbolic values plus the
machinery that turns a set of failing processor counts back into a
human-readable *p-condition* ("odd p in [3, 31]") for diagnostics.

Three value kinds:

* :class:`SymTag` — a message tag: the index of the
  ``next_collective_tag`` draw it derives from plus a concrete integer
  offset.  SPMD programs draw the same tag sequence on every rank, so
  two tags are equal iff base and offset agree.  Fixture programs that
  use literal integer tags get ``base=None``.
* :class:`Block` — an abstract payload: a symbolic size expression, a
  dtype and a *location name* that is identical across ranks for the
  same program point, so SPMD-symmetric payloads stay symbolically
  comparable.
* :class:`PCondition` — the summary of which ``p`` a finding holds for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SymTag", "SymSize", "Block", "PCondition", "summarize_p_set"]


@dataclass(frozen=True)
class SymTag:
    """A message tag in the symbolic domain.

    ``base`` is the 1-based index of the ``next_collective_tag`` draw the
    tag derives from (``None`` for literal user-range tags), ``offset``
    the concrete integer added to it.  ``absolute(tag_base, stride)``
    reconstructs the runtime integer for the executed-trace cross-check.
    """

    base: int | None
    offset: int = 0

    def __add__(self, other: int) -> "SymTag":
        if not isinstance(other, int):
            return NotImplemented
        return SymTag(self.base, self.offset + other)

    __radd__ = __add__

    def absolute(self, tag_base: int, stride: int = 16) -> int:
        if self.base is None:
            return self.offset
        return tag_base + stride * self.base + self.offset

    def __str__(self) -> str:
        if self.base is None:
            return str(self.offset)
        suffix = f"+{self.offset}" if self.offset else ""
        return f"T{self.base}{suffix}"


@dataclass(frozen=True)
class SymSize:
    """A payload size: either a concrete byte count or a named atom."""

    name: str | None = None
    value: int | None = None

    @property
    def concrete(self) -> bool:
        return self.value is not None

    def __str__(self) -> str:
        if self.concrete:
            return f"{self.value}B"
        return self.name or "?"


@dataclass(frozen=True)
class Block:
    """An abstract message payload.

    ``origin`` names the program point that produced the block; the
    interpreter derives it from source location and loop iteration, so
    the same point yields the same name on every rank and symbolic
    equality across SPMD ranks is structural equality.
    """

    origin: str
    size: SymSize = field(default_factory=SymSize)
    dtype: str | None = None

    def copy(self) -> "Block":
        return self

    def __str__(self) -> str:
        return f"block({self.origin}, {self.size})"


# ---------------------------------------------------------------------------
# p-condition summarization


@dataclass(frozen=True)
class PCondition:
    """The processor counts a static finding holds for, over a bound."""

    ps: tuple[int, ...]
    bound: int

    def __str__(self) -> str:
        return summarize_p_set(set(self.ps), self.bound)


def _is_pow2(p: int) -> bool:
    return p > 0 and (p & (p - 1)) == 0


def summarize_p_set(failing: set[int], bound: int) -> str:
    """A compact description of ``failing`` within ``1..bound``.

    Recognizes the shapes that matter for communication schedules —
    everything, every p past a threshold, parity classes, (non-)powers
    of two — and falls back to an explicit list.
    """
    if not failing:
        return "no p"
    lo, hi = min(failing), max(failing)
    full = set(range(1, bound + 1))
    if failing == full:
        return f"all p in [1, {bound}]"
    if failing == {p for p in full if p >= lo}:
        return f"all p in [{lo}, {bound}]"
    odd = {p for p in full if p % 2 and p >= lo}
    if failing == odd:
        return f"odd p in [{lo}, {hi}]"
    even = {p for p in full if p % 2 == 0 and p >= lo}
    if failing == even:
        return f"even p in [{lo}, {hi}]"
    pow2 = {p for p in full if _is_pow2(p) and p >= lo}
    if failing == pow2:
        return f"power-of-two p in [{lo}, {hi}]"
    nonpow2 = {p for p in full if not _is_pow2(p) and p >= lo}
    if failing == nonpow2:
        return f"non-power-of-two p in [{lo}, {hi}]"
    listed = sorted(failing)
    if len(listed) > 8:
        shown = ", ".join(map(str, listed[:8]))
        return f"p in {{{shown}, ...}} ({len(listed)} of [1, {bound}])"
    return "p in {" + ", ".join(map(str, listed)) + "}"
