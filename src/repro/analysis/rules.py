"""Rule registry and diagnostic record for the correctness analyzer.

Every diagnostic the analyzer can emit is declared here with a stable
identifier, so CI output, suppression comments (``# noqa: REP101``) and
the documentation all speak the same names.  The identifiers are grouped
by layer:

* **REP1xx** — static AST lint over the coroutine-collective protocol
  (:mod:`repro.analysis.lint`);
* **REP2xx** — message-schedule analysis of a recorded communication
  trace (:mod:`repro.analysis.schedule`);
* **REP3xx** — runtime sanitizer invariants checked during a simulated
  run (:mod:`repro.analysis.sanitizer`);
* **REP4xx** — static communication-schedule verification: schedules
  extracted from rank-program ASTs without executing a run
  (:mod:`repro.analysis.static_schedule`);
* **REP5xx** — determinism lint protecting the bit-identical-results
  invariant (:mod:`repro.analysis.determinism`).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Rule", "Diagnostic", "RULES", "ERROR", "WARNING"]

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Rule:
    """One analyzer rule: stable id, layer and a one-line summary."""

    id: str
    layer: str  # "lint" | "schedule" | "sanitizer"
    severity: str
    summary: str


_RULE_LIST = [
    # ---- static lint ---------------------------------------------------
    Rule("REP100", "lint", ERROR, "file does not parse"),
    Rule(
        "REP101",
        "lint",
        ERROR,
        "protocol generator called without 'yield from' (communication silently dropped)",
    ),
    Rule(
        "REP102",
        "lint",
        ERROR,
        "data-moving collective's return value discarded",
    ),
    Rule(
        "REP103",
        "lint",
        ERROR,
        "unseeded random source inside the simulation model (breaks reproducibility)",
    ),
    Rule(
        "REP104",
        "lint",
        ERROR,
        "wall-clock call inside virtual-time code",
    ),
    Rule(
        "REP105",
        "lint",
        ERROR,
        "protocol generator stored in a local that is never driven or consumed",
    ),
    # ---- message-schedule analysis ------------------------------------
    Rule("REP201", "schedule", ERROR, "unmatched send at finalize"),
    Rule("REP202", "schedule", ERROR, "unmatched receive at finalize"),
    Rule(
        "REP203",
        "schedule",
        WARNING,
        "tag collision: concurrent in-flight messages share (src, dst, tag)",
    ),
    Rule("REP204", "schedule", ERROR, "collective order diverges across ranks"),
    Rule("REP205", "schedule", ERROR, "rendezvous wait-for cycle (deadlock)"),
    Rule(
        "REP206",
        "schedule",
        ERROR,
        "dual-processor interrupt-driven run missing the SMP per-message overhead",
    ),
    # ---- runtime sanitizer --------------------------------------------
    Rule("REP301", "sanitizer", ERROR, "matched message size disagreement"),
    Rule("REP302", "sanitizer", ERROR, "matched message dtype disagreement"),
    Rule("REP303", "sanitizer", ERROR, "invalid transfer window from plan_transfer"),
    Rule("REP304", "sanitizer", ERROR, "timeline accounting exceeds the virtual wall clock"),
    Rule("REP305", "sanitizer", ERROR, "unclean shutdown: message queues not drained"),
    # ---- static schedule verification ---------------------------------
    Rule(
        "REP401",
        "static-schedule",
        ERROR,
        "static deadlock: wait-for cycle in the extracted schedule",
    ),
    Rule(
        "REP402",
        "static-schedule",
        ERROR,
        "static unmatched send: no rank ever posts the matching receive",
    ),
    Rule(
        "REP403",
        "static-schedule",
        ERROR,
        "static unmatched receive: no rank ever issues the matching send",
    ),
    Rule(
        "REP404",
        "static-schedule",
        WARNING,
        "static tag race: two messages in flight at once share (src, dst, tag)",
    ),
    Rule(
        "REP405",
        "static-schedule",
        ERROR,
        "static send/recv disagreement: payload size or dtype contradicts the "
        "receiver's declaration",
    ),
    Rule(
        "REP406",
        "static-schedule",
        ERROR,
        "schedule-contract violation: collective sequence diverges across ranks "
        "or from the strategy's declared contract",
    ),
    # ---- determinism lint ---------------------------------------------
    Rule(
        "REP501",
        "determinism",
        ERROR,
        "unseeded random source (run-to-run results become irreproducible)",
    ),
    Rule(
        "REP502",
        "determinism",
        ERROR,
        "wall-clock read inside virtual-time code",
    ),
    Rule(
        "REP503",
        "determinism",
        ERROR,
        "iteration over an unordered set feeds numeric state (hash-order "
        "dependent results)",
    ),
    Rule(
        "REP504",
        "determinism",
        ERROR,
        "float accumulation whose order depends on unordered iteration "
        "(rank combination must use a canonical order)",
    ),
    Rule(
        "REP505",
        "determinism",
        ERROR,
        "process/host-dependent value (pid, hostname, id, hash) feeds "
        "simulation state",
    ),
]

#: All analyzer rules, indexed by id.
RULES: dict[str, Rule] = {r.id: r for r in _RULE_LIST}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding, from any layer.

    ``p_condition`` is set by the static schedule verifier: a human-readable
    summary of the processor counts the finding holds for (e.g. ``"odd p in
    [3, 31]"``), derived symbolically over the verified bound.
    """

    rule: str
    message: str
    path: str | None = None
    line: int | None = None
    severity: str = ERROR
    ranks: tuple[int, ...] = ()
    tag: int | None = None
    p_condition: str | None = None

    def format(self) -> str:
        where = ""
        if self.path is not None:
            where = f"{self.path}:{self.line}: " if self.line else f"{self.path}: "
        cond = f" [{self.p_condition}]" if self.p_condition else ""
        return f"{where}{self.rule} [{self.severity}]{cond} {self.message}"

    def fingerprint(self) -> str:
        """Stable identity for baseline suppression.

        Deliberately excludes the line number (so unrelated edits above a
        grandfathered finding do not un-suppress it) but keeps the rule,
        the file and the message text.  Absolute paths are relativized
        against the working directory so a baseline written by the CLI
        (repo-relative paths) matches findings produced from absolute
        paths in the same checkout.
        """
        import hashlib
        from pathlib import Path, PurePosixPath

        path = PurePosixPath((self.path or "").replace("\\", "/"))
        if path.is_absolute():
            try:
                path = path.relative_to(Path.cwd().as_posix())
            except ValueError:
                pass
        raw = f"{self.rule}|{path}|{self.message}"
        return hashlib.sha256(raw.encode()).hexdigest()[:16]
