"""Rule registry and diagnostic record for the correctness analyzer.

Every diagnostic the analyzer can emit is declared here with a stable
identifier, so CI output, suppression comments (``# noqa: REP101``) and
the documentation all speak the same names.  The identifiers are grouped
by layer:

* **REP1xx** — static AST lint over the coroutine-collective protocol
  (:mod:`repro.analysis.lint`);
* **REP2xx** — message-schedule analysis of a recorded communication
  trace (:mod:`repro.analysis.schedule`);
* **REP3xx** — runtime sanitizer invariants checked during a simulated
  run (:mod:`repro.analysis.sanitizer`).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Rule", "Diagnostic", "RULES", "ERROR", "WARNING"]

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Rule:
    """One analyzer rule: stable id, layer and a one-line summary."""

    id: str
    layer: str  # "lint" | "schedule" | "sanitizer"
    severity: str
    summary: str


_RULE_LIST = [
    # ---- static lint ---------------------------------------------------
    Rule("REP100", "lint", ERROR, "file does not parse"),
    Rule(
        "REP101",
        "lint",
        ERROR,
        "protocol generator called without 'yield from' (communication silently dropped)",
    ),
    Rule(
        "REP102",
        "lint",
        ERROR,
        "data-moving collective's return value discarded",
    ),
    Rule(
        "REP103",
        "lint",
        ERROR,
        "unseeded random source inside the simulation model (breaks reproducibility)",
    ),
    Rule(
        "REP104",
        "lint",
        ERROR,
        "wall-clock call inside virtual-time code",
    ),
    Rule(
        "REP105",
        "lint",
        ERROR,
        "protocol generator stored in a local that is never driven or consumed",
    ),
    # ---- message-schedule analysis ------------------------------------
    Rule("REP201", "schedule", ERROR, "unmatched send at finalize"),
    Rule("REP202", "schedule", ERROR, "unmatched receive at finalize"),
    Rule(
        "REP203",
        "schedule",
        WARNING,
        "tag collision: concurrent in-flight messages share (src, dst, tag)",
    ),
    Rule("REP204", "schedule", ERROR, "collective order diverges across ranks"),
    Rule("REP205", "schedule", ERROR, "rendezvous wait-for cycle (deadlock)"),
    Rule(
        "REP206",
        "schedule",
        ERROR,
        "dual-processor interrupt-driven run missing the SMP per-message overhead",
    ),
    # ---- runtime sanitizer --------------------------------------------
    Rule("REP301", "sanitizer", ERROR, "matched message size disagreement"),
    Rule("REP302", "sanitizer", ERROR, "matched message dtype disagreement"),
    Rule("REP303", "sanitizer", ERROR, "invalid transfer window from plan_transfer"),
    Rule("REP304", "sanitizer", ERROR, "timeline accounting exceeds the virtual wall clock"),
    Rule("REP305", "sanitizer", ERROR, "unclean shutdown: message queues not drained"),
]

#: All analyzer rules, indexed by id.
RULES: dict[str, Rule] = {r.id: r for r in _RULE_LIST}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding, from any layer."""

    rule: str
    message: str
    path: str | None = None
    line: int | None = None
    severity: str = ERROR
    ranks: tuple[int, ...] = ()
    tag: int | None = None

    def format(self) -> str:
        where = ""
        if self.path is not None:
            where = f"{self.path}:{self.line}: " if self.line else f"{self.path}: "
        return f"{where}{self.rule} [{self.severity}] {self.message}"
