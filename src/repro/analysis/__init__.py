"""Communication-correctness analyzer for the coroutine-collective protocol.

Three layers, one rule namespace (REP1xx/2xx/3xx, see
:mod:`repro.analysis.rules`):

* :mod:`repro.analysis.lint` — static AST lint for dropped generators,
  discarded collective results, unseeded randomness and wall-clock use;
* :mod:`repro.analysis.schedule` — deadlock/race diagnosis over a
  recorded per-rank communication trace;
* :mod:`repro.analysis.sanitizer` — opt-in runtime invariant checks
  (message size/dtype agreement, transfer windows, timeline accounting,
  clean shutdown).

Entry points: ``python -m repro analyze [paths] [--sanitize-run]`` on
the command line, or the functions re-exported here as a library.
"""

from .lint import lint_paths, lint_source
from .rules import RULES, Diagnostic, Rule
from .sanitizer import Sanitizer, SanitizerError
from .schedule import analyze_trace

__all__ = [
    "analyze_trace",
    "Diagnostic",
    "lint_paths",
    "lint_source",
    "Rule",
    "RULES",
    "Sanitizer",
    "SanitizerError",
]
