"""Communication-correctness analyzer for the coroutine-collective protocol.

Five layers, one rule namespace (REP1xx–REP5xx, see
:mod:`repro.analysis.rules`):

* :mod:`repro.analysis.lint` — static AST lint for dropped generators,
  discarded collective results, unseeded randomness and wall-clock use;
* :mod:`repro.analysis.schedule` — deadlock/race diagnosis over a
  recorded per-rank communication trace;
* :mod:`repro.analysis.sanitizer` — opt-in runtime invariant checks
  (message size/dtype agreement, transfer windows, timeline accounting
  — per collective and at shutdown — clean queues);
* :mod:`repro.analysis.static_schedule` — symbolic schedule extraction
  from the rank-program sources: deadlock/tag-race/type-agreement
  proofs for every rank count up to a bound, with no run executed,
  plus conformance against declared
  :class:`~repro.analysis.contract.ScheduleContract` values;
* :mod:`repro.analysis.determinism` — lint protecting the
  bit-identical-results invariant (unseeded RNG, wall-clock reads,
  hash-order iteration, unordered float accumulation, host identity).

Findings are suppressed inline (``# repro: noqa[REP503]``) or
grandfathered by fingerprint in ``.repro-analysis-baseline.json``
(:mod:`repro.analysis.baseline`), and export as SARIF 2.1.0 for GitHub
code scanning (:mod:`repro.analysis.sarif`).

Entry points: ``python -m repro analyze [paths] [--static] [--sarif out]
[--crosscheck] [--sanitize-run]`` on the command line, or the functions
re-exported here as a library.
"""

from .baseline import apply_baseline, load_baseline, write_baseline
from .contract import ContractOp, ScheduleContract
from .determinism import lint_determinism_paths, lint_determinism_source
from .lint import lint_paths, lint_source
from .rules import RULES, Diagnostic, Rule
from .sanitizer import SanitizedMiddleware, Sanitizer, SanitizerError
from .sarif import to_sarif, write_sarif
from .schedule import analyze_trace
from .static_schedule import (
    crosscheck_against_trace,
    static_step_events,
    verify_contract_conformance,
    verify_middleware_collectives,
    verify_rank_program_source,
    verify_static,
    verify_strategy,
)
from .symbolic import Block, SymSize, SymTag, summarize_p_set

__all__ = [
    "analyze_trace",
    "apply_baseline",
    "Block",
    "ContractOp",
    "crosscheck_against_trace",
    "Diagnostic",
    "lint_determinism_paths",
    "lint_determinism_source",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "Rule",
    "RULES",
    "SanitizedMiddleware",
    "Sanitizer",
    "SanitizerError",
    "ScheduleContract",
    "static_step_events",
    "summarize_p_set",
    "SymSize",
    "SymTag",
    "to_sarif",
    "verify_contract_conformance",
    "verify_middleware_collectives",
    "verify_rank_program_source",
    "verify_static",
    "verify_strategy",
    "write_baseline",
    "write_sarif",
]
