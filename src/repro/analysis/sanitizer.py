"""Runtime sanitizer: invariant checks for a simulated MPI run.

Opt-in (``MPIWorld(..., sanitize=True)`` or ``run_parallel_md(...,
RunOptions(sanitize=True))``): the sanitizer observes a run without perturbing it —
it draws no random numbers and charges no virtual time, so a sanitized
run produces bit-identical comp/comm/sync totals to an unsanitized one.

Invariants (rule ids in :mod:`repro.analysis.rules`):

* **REP301/302** — every matched message agrees in size and dtype with
  what the receiver declared (``expect_nbytes``/``expect_dtype`` on the
  receive post) and with its own declared length;
* **REP303** — every :meth:`~repro.cluster.state.ClusterState.plan_transfer`
  window is sane: ``ready <= start <= end``, finite, efficiency in
  ``(0, 1]``;
* **REP304** — timeline accounting never exceeds the virtual wall clock:
  each rank's attributed seconds land in exactly one ``(phase,
  category)`` cell, so their sum is bounded by the simulation end time.
  Checked at end of run *and* around every middleware collective
  (:class:`SanitizedMiddleware`): a middleware that books overhead
  without sleeping it — the bug class the end-of-run aggregate can hide
  when a rank idles elsewhere — is caught at the exact operation;
* **REP305** — shutdown is clean: no unmatched messages or posted
  receives remain in the matching-engine queues.

In strict mode (the default) the first violation raises
:class:`SanitizerError`, turning silent wrong-timing bugs into crashes;
with ``strict=False`` violations accumulate on ``.violations`` for
reporting (the ``repro analyze --sanitize-run`` CLI path).
"""

from __future__ import annotations

import math

import numpy as np

from ..mpi.middleware import Middleware
from .rules import ERROR, Diagnostic

__all__ = ["Sanitizer", "SanitizedMiddleware", "SanitizerError"]

_REL_EPS = 1e-9
_ABS_EPS = 1e-9


class SanitizerError(RuntimeError):
    """A communication/accounting invariant was violated at runtime."""


def _nbytes(payload) -> int:
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    return len(payload)


def _dtype(payload) -> str:
    if isinstance(payload, np.ndarray):
        return str(payload.dtype)
    return "bytes"


class Sanitizer:
    """Collects or raises on invariant violations during a run."""

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict
        self.violations: list[Diagnostic] = []

    def _report(
        self, rule: str, message: str, ranks: tuple[int, ...] = (), tag: int | None = None
    ) -> None:
        diag = Diagnostic(
            rule=rule, message=message, severity=ERROR, ranks=ranks, tag=tag
        )
        if self.strict:
            raise SanitizerError(diag.format())
        self.violations.append(diag)

    # ------------------------------------------------------------------
    def check_match(self, msg, post) -> None:
        """Size/dtype agreement for one matched (message, receive) pair."""
        ranks = (msg.src, msg.dst)
        actual = _nbytes(msg.payload)
        if actual != msg.nbytes:
            self._report(
                "REP301",
                f"message {msg.src}->{msg.dst} tag {msg.tag} declares "
                f"{msg.nbytes} B but carries {actual} B (payload mutated "
                "after send?)",
                ranks=ranks,
                tag=msg.tag,
            )
        if post.expect_nbytes is not None and post.expect_nbytes != msg.nbytes:
            self._report(
                "REP301",
                f"message {msg.src}->{msg.dst} tag {msg.tag} carries "
                f"{msg.nbytes} B but the receiver expected "
                f"{post.expect_nbytes} B",
                ranks=ranks,
                tag=msg.tag,
            )
        if post.expect_dtype is not None:
            got = _dtype(msg.payload)
            if got != post.expect_dtype:
                self._report(
                    "REP302",
                    f"message {msg.src}->{msg.dst} tag {msg.tag} carries dtype "
                    f"{got} but the receiver expected {post.expect_dtype}",
                    ranks=ranks,
                    tag=msg.tag,
                )

    # ------------------------------------------------------------------
    def check_plan(self, plan, ready_time: float) -> None:
        """Transfer-window sanity for one planned transfer."""
        ok = (
            math.isfinite(plan.start)
            and math.isfinite(plan.end)
            and plan.end >= plan.start >= ready_time - _ABS_EPS
            and 0.0 < plan.efficiency <= 1.0
        )
        if not ok:
            self._report(
                "REP303",
                f"plan_transfer produced an invalid window: start={plan.start} "
                f"end={plan.end} ready={ready_time} "
                f"efficiency={plan.efficiency}",
            )

    # ------------------------------------------------------------------
    def check_collective_window(
        self, op: str, rank: int, booked: float, elapsed: float
    ) -> None:
        """Per-collective REP304: booked seconds within the clock window.

        ``booked`` is the timeline delta one rank attributed across one
        middleware operation; ``elapsed`` is how far its virtual clock
        actually advanced.  Booking more than elapsed means some overhead
        (the CMPI per-call constant is the historical offender) was
        charged to the timeline without being slept on the simulator —
        the end-of-run aggregate check can miss this when the same rank
        under-books elsewhere.
        """
        if booked > elapsed * (1.0 + _REL_EPS) + _ABS_EPS:
            self._report(
                "REP304",
                f"rank {rank} booked {booked:.9g} s of timeline during one "
                f"{op} but its virtual clock advanced only {elapsed:.9g} s: "
                "the middleware charged overhead it never slept",
                ranks=(rank,),
            )

    # ------------------------------------------------------------------
    def check_final(self, world) -> None:
        """End-of-run invariants: timeline accounting and drained queues."""
        now = world.sim.now
        budget = now * (1.0 + _REL_EPS) + _ABS_EPS
        for rank, ep in enumerate(world.endpoints):
            for phase, totals in ep.timeline.phases.items():
                cells = (totals.comp, totals.comm, totals.sync)
                if not all(math.isfinite(c) and c >= 0.0 for c in cells):
                    self._report(
                        "REP304",
                        f"rank {rank} phase {phase!r} has a non-finite or "
                        f"negative cell: comp={totals.comp} comm={totals.comm} "
                        f"sync={totals.sync}",
                        ranks=(rank,),
                    )
            attributed = ep.timeline.total_seconds()
            if attributed > budget:
                self._report(
                    "REP304",
                    f"rank {rank} attributed {attributed:.9g} s but the run "
                    f"lasted only {now:.9g} s: some virtual second was booked "
                    "into more than one (phase, category) cell",
                    ranks=(rank,),
                )
        leftover_msgs = {k: len(v) for k, v in world._msgs.items() if v}
        leftover_recvs = {k: len(v) for k, v in world._recvs.items() if v}
        if leftover_msgs or leftover_recvs:
            self._report(
                "REP305",
                f"queues not drained at shutdown: messages={leftover_msgs} "
                f"recvs={leftover_recvs}",
            )


class SanitizedMiddleware(Middleware):
    """Sanitizing proxy around any middleware.

    Wraps every collective generator so the sanitizer sees the timeline
    delta versus the virtual-clock delta of each individual operation
    (:meth:`Sanitizer.check_collective_window`).  Historically only
    point-to-point matches were hooked, so CMPI collectives — which book
    their per-call overhead *inside* the middleware — escaped the REP304
    accounting check until the end-of-run aggregate.  Observation is
    passive: the proxy charges no virtual time and draws no randomness,
    so sanitized runs stay bit-identical.
    """

    def __init__(self, inner: Middleware, sanitizer: Sanitizer) -> None:
        self._inner = inner
        self._sanitizer = sanitizer
        self.name = inner.name

    def __getattr__(self, attr):
        # middleware extras (e.g. CMPI's split-phase sync) pass through
        return getattr(self._inner, attr)

    def _watch(self, ep, op: str, gen):
        t0 = ep.now
        before = ep.timeline.total_seconds()
        result = yield from gen
        self._sanitizer.check_collective_window(
            op, ep.rank, ep.timeline.total_seconds() - before, ep.now - t0
        )
        return result

    def barrier(self, ep):
        yield from self._watch(ep, "barrier", self._inner.barrier(ep))

    def allreduce(self, ep, array, op=np.add):
        result = yield from self._watch(ep, "allreduce", self._inner.allreduce(ep, array, op))
        return result

    def allgatherv(self, ep, block):
        result = yield from self._watch(ep, "allgatherv", self._inner.allgatherv(ep, block))
        return result

    def alltoallv(self, ep, send_blocks):
        result = yield from self._watch(ep, "alltoallv", self._inner.alltoallv(ep, send_blocks))
        return result

    def exchange(self, ep, dest, payload, source, tag=0):
        result = yield from self._watch(
            ep, "exchange", self._inner.exchange(ep, dest, payload, source, tag=tag)
        )
        return result
