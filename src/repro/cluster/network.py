"""Network models: LogGP-style parameters plus 2001-era pathologies.

Each of the paper's interconnect levels is a :class:`NetworkParams` preset:

* ``tcp_gigabit_ethernet`` — MPICH over the kernel TCP/IP stack.  High
  per-message and per-packet overheads, interrupt-driven receive
  processing, and strong sensitivity of the achieved bandwidth to
  concurrent traffic (the TCP flow-control interaction the paper blames
  for the large throughput variability from four processors on).
* ``score_gigabit_ethernet`` — SCore's PM protocol directly on raw
  Ethernet: same wire, far lower overheads, stable bandwidth, no
  interrupt bottleneck (user-level polling), shared-memory intra-node.
* ``myrinet_gm`` — MPICH-GM with the LANai coprocessor: lowest overheads,
  highest bandwidth, large packets, shared-memory intra-node.
* ``fast_ethernet_tcp`` — the prior-work 100 Mbit/s comparison level.

All times are in seconds, sizes in bytes.  The absolute values are
calibrated to the paper's Figure 7 (per-node communication speeds) and
period microbenchmarks; the *relationships* between the levels are what
the experiments exercise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "IntranodeParams",
    "NetworkParams",
    "NETWORKS",
    "tcp_gigabit_ethernet",
    "score_gigabit_ethernet",
    "myrinet_gm",
    "fast_ethernet_tcp",
]


@dataclass(frozen=True)
class IntranodeParams:
    """The path between two ranks on the same node.

    TCP stacks of the period routed intra-node MPI through loopback (full
    protocol cost, interrupt handling); SCore and Myrinet's MPICH used a
    shared-memory device.
    """

    latency: float
    bandwidth: float
    uses_interrupts: bool


@dataclass(frozen=True)
class NetworkParams:
    """One interconnect + driver-software configuration."""

    name: str
    #: one-way wire+stack latency per message (s)
    latency: float
    #: peak payload bandwidth (B/s)
    bandwidth: float
    #: per-message CPU cost to initiate a send (s)
    send_overhead: float
    #: per-message CPU cost to post/match a receive (s)
    recv_overhead: float
    #: host CPU time per byte sent/received (copies, checksums) (s/B)
    cpu_byte_cost: float
    #: wire packet payload size (B)
    packet_size: int
    #: extra wire/host time per packet (s)
    packet_overhead: float
    #: messages larger than this use a rendezvous handshake (B)
    eager_threshold: int
    #: mean fraction of peak bandwidth a lone transfer achieves
    base_efficiency: float
    #: exponential decay of efficiency per concurrent transfer
    congestion_sensitivity: float
    #: lognormal sigma of the per-transfer efficiency at baseline
    variability: float
    #: extra sigma per concurrent transfer
    congestion_variability: float
    #: receive path goes through kernel interrupts (serialized per node)
    uses_interrupts: bool
    #: interrupt service time per packet (s)
    irq_cost: float
    intranode: IntranodeParams
    #: with two busy CPUs per node: achieved-bandwidth multiplier (<1 hurts),
    #: interrupt-cost multiplier and per-message-overhead multiplier.  Models
    #: the single-interrupt-CPU bottleneck + kernel-lock contention the paper
    #: blames for the dual-processor collapse on TCP (Sec. 4.3); 1.0 for
    #: user-level stacks (SCore) and coprocessor NICs (Myrinet).
    smp_efficiency_penalty: float = 1.0
    smp_irq_multiplier: float = 1.0
    smp_overhead_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0 or self.packet_size <= 0:
            raise ValueError("bandwidth and packet_size must be positive")
        if not 0 < self.base_efficiency <= 1:
            raise ValueError("base_efficiency must be in (0, 1]")

    def packets(self, nbytes: int) -> int:
        """Number of wire packets for a payload."""
        return max(1, math.ceil(nbytes / self.packet_size))

    def host_cost(self, nbytes: int) -> float:
        """Per-message host CPU cost for a payload of ``nbytes``."""
        return self.cpu_byte_cost * nbytes


def tcp_gigabit_ethernet() -> NetworkParams:
    """MPICH + TCP/IP over Gigabit Ethernet (the paper's focal point)."""
    return NetworkParams(
        name="tcp-gige",
        latency=65e-6,
        bandwidth=45e6,  # period GigE NICs on 32-bit PCI rarely beat this
        send_overhead=28e-6,
        recv_overhead=28e-6,
        cpu_byte_cost=4.0e-9,  # ~250 MB/s stack copies on a 1 GHz PIII
        packet_size=1460,
        packet_overhead=2.0e-6,
        eager_threshold=64 * 1024,
        base_efficiency=0.62,
        congestion_sensitivity=0.09,
        variability=0.10,
        congestion_variability=0.08,
        uses_interrupts=True,
        irq_cost=5.0e-6,
        intranode=IntranodeParams(latency=30e-6, bandwidth=90e6, uses_interrupts=True),
        smp_efficiency_penalty=0.5,
        smp_irq_multiplier=6.0,
        smp_overhead_multiplier=2.0,
    )


def score_gigabit_ethernet() -> NetworkParams:
    """SCore (PM) over the same Gigabit Ethernet wire."""
    return NetworkParams(
        name="score-gige",
        latency=18e-6,
        bandwidth=75e6,
        send_overhead=8e-6,
        recv_overhead=8e-6,
        cpu_byte_cost=1.5e-9,
        packet_size=4096,
        packet_overhead=0.8e-6,
        eager_threshold=64 * 1024,
        base_efficiency=0.92,
        congestion_sensitivity=0.02,
        variability=0.02,
        congestion_variability=0.01,
        uses_interrupts=False,
        irq_cost=0.0,
        intranode=IntranodeParams(latency=4e-6, bandwidth=180e6, uses_interrupts=False),
    )


def myrinet_gm() -> NetworkParams:
    """MPICH-GM over Myrinet (LANai coprocessor offload)."""
    return NetworkParams(
        name="myrinet",
        latency=11e-6,
        bandwidth=140e6,
        send_overhead=5e-6,
        recv_overhead=5e-6,
        cpu_byte_cost=0.6e-9,  # DMA; host barely touches the data
        packet_size=16384,
        packet_overhead=0.3e-6,
        eager_threshold=32 * 1024,
        base_efficiency=0.94,
        congestion_sensitivity=0.01,
        variability=0.015,
        congestion_variability=0.005,
        uses_interrupts=False,
        irq_cost=0.0,
        intranode=IntranodeParams(latency=4e-6, bandwidth=180e6, uses_interrupts=False),
    )


def fast_ethernet_tcp() -> NetworkParams:
    """MPICH + TCP/IP over Fast (100 Mbit/s) Ethernet (prior-work level)."""
    gige = tcp_gigabit_ethernet()
    return NetworkParams(
        name="tcp-fast-ethernet",
        latency=75e-6,
        bandwidth=11.5e6,
        send_overhead=gige.send_overhead,
        recv_overhead=gige.recv_overhead,
        cpu_byte_cost=gige.cpu_byte_cost,
        packet_size=1460,
        packet_overhead=2.0e-6,
        eager_threshold=gige.eager_threshold,
        base_efficiency=0.90,  # the slow wire, not the stack, is the bottleneck
        congestion_sensitivity=0.10,
        variability=0.06,
        congestion_variability=0.10,
        uses_interrupts=True,
        irq_cost=gige.irq_cost,
        intranode=gige.intranode,
        smp_efficiency_penalty=gige.smp_efficiency_penalty,
        smp_irq_multiplier=gige.smp_irq_multiplier,
        smp_overhead_multiplier=gige.smp_overhead_multiplier,
    )


def wide_area_grid() -> NetworkParams:
    """A wide-area (grid-computing) path, ca. 2001 Internet.

    The paper's closing remark motivates estimating CHARMM on 'widely
    distributed computing on the global computational grid'; this level
    lets the harness produce that estimate: tens of milliseconds of
    latency, ~1.5 MB/s of heavily shared bandwidth, large variability.
    """
    gige = tcp_gigabit_ethernet()
    return NetworkParams(
        name="wide-area-grid",
        latency=15e-3,
        bandwidth=1.5e6,
        send_overhead=gige.send_overhead,
        recv_overhead=gige.recv_overhead,
        cpu_byte_cost=gige.cpu_byte_cost,
        packet_size=1460,
        packet_overhead=2.0e-6,
        eager_threshold=gige.eager_threshold,
        base_efficiency=0.55,
        congestion_sensitivity=0.12,
        variability=0.35,
        congestion_variability=0.10,
        uses_interrupts=True,
        irq_cost=gige.irq_cost,
        intranode=gige.intranode,
        smp_efficiency_penalty=gige.smp_efficiency_penalty,
        smp_irq_multiplier=gige.smp_irq_multiplier,
        smp_overhead_multiplier=gige.smp_overhead_multiplier,
    )


#: Registry keyed by the level names used in the experimental design.
NETWORKS = {
    "tcp-gige": tcp_gigabit_ethernet,
    "score-gige": score_gigabit_ethernet,
    "myrinet": myrinet_gm,
    "tcp-fast-ethernet": fast_ethernet_tcp,
    "wide-area-grid": wide_area_grid,
}
