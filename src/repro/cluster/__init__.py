"""PC-cluster platform models: nodes, networks, transfer timing."""

from .machine import ClusterSpec, NodeSpec
from .network import (
    NETWORKS,
    IntranodeParams,
    NetworkParams,
    fast_ethernet_tcp,
    myrinet_gm,
    score_gigabit_ethernet,
    tcp_gigabit_ethernet,
    wide_area_grid,
)
from .state import ClusterState, TransferPlan, TransferRecord

__all__ = [
    "ClusterSpec",
    "ClusterState",
    "fast_ethernet_tcp",
    "IntranodeParams",
    "myrinet_gm",
    "NetworkParams",
    "NETWORKS",
    "NodeSpec",
    "score_gigabit_ethernet",
    "tcp_gigabit_ethernet",
    "TransferPlan",
    "TransferRecord",
    "wide_area_grid",
]
