"""Cluster topology: nodes, CPUs and rank placement.

The experimental CoPs cluster of the paper: 16 dual-Pentium-III (1 GHz)
nodes.  A :class:`ClusterSpec` fixes how many ranks run and how they map
onto nodes (one or two per node — the paper's third factor).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .network import NetworkParams

__all__ = ["NodeSpec", "ClusterSpec", "DUAL_CPU_MEMORY_CONTENTION"]

#: Compute slowdown when two ranks share one memory bus and chipset (the
#: measured SMP scaling of dual-PIII boards on memory-bound codes).
DUAL_CPU_MEMORY_CONTENTION = 1.12


@dataclass(frozen=True)
class NodeSpec:
    """One PC in the cluster.

    ``cpu_speed`` scales all compute costs (1.0 = the paper's 1 GHz
    Pentium III); it exists so extrapolation experiments can model faster
    hosts without touching the cost model.
    """

    cpus_per_node: int = 1
    cpu_speed: float = 1.0

    def __post_init__(self) -> None:
        if self.cpus_per_node not in (1, 2):
            raise ValueError("cpus_per_node must be 1 or 2 (the paper's levels)")
        if self.cpu_speed <= 0:
            raise ValueError("cpu_speed must be positive")


@dataclass(frozen=True)
class ClusterSpec:
    """A fully specified platform: ranks, placement, network, seed."""

    n_ranks: int
    network: NetworkParams
    node: NodeSpec = field(default_factory=NodeSpec)
    max_nodes: int = 16  # the CoPs cluster size
    seed: int = 2002

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        if self.n_nodes > self.max_nodes:
            raise ValueError(
                f"{self.n_ranks} ranks on {self.node.cpus_per_node}-CPU nodes "
                f"needs {self.n_nodes} nodes; the cluster has {self.max_nodes}"
            )

    @property
    def n_nodes(self) -> int:
        c = self.node.cpus_per_node
        return (self.n_ranks + c - 1) // c

    def node_of(self, rank: int) -> int:
        """Block placement: ranks 2k and 2k+1 share node k on dual nodes."""
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} out of range")
        return rank // self.node.cpus_per_node

    def ranks_on(self, node: int) -> list[int]:
        c = self.node.cpus_per_node
        return [r for r in range(node * c, min((node + 1) * c, self.n_ranks))]

    @property
    def compute_scale(self) -> float:
        """Multiplier on compute time per rank (clock + SMP bus contention)."""
        contention = DUAL_CPU_MEMORY_CONTENTION if self.node.cpus_per_node == 2 else 1.0
        return contention / self.node.cpu_speed

    def describe(self) -> str:
        return (
            f"{self.n_ranks} ranks on {self.n_nodes} nodes "
            f"({self.node.cpus_per_node} CPU/node), {self.network.name}"
        )
