"""Runtime network state: NIC occupancy, interrupt queues, congestion.

:func:`ClusterState.plan_transfer` is the single point where a message's
wire timing is decided.  It models:

* **NIC serialization** — a node's link carries one transfer at a time;
  overlapping transfers queue (``nic_free``).
* **Interrupt bottleneck** — on interrupt-driven stacks (TCP/IP) receive
  processing serializes on one CPU per node (``irq_free``); with two
  ranks per node both streams share it, which is the paper's explanation
  for the dual-processor collapse on TCP (Sec. 4.3).
* **Congestion-dependent efficiency** — each transfer samples a
  lognormal efficiency whose mean and spread degrade with the number of
  transfers in flight, reproducing the throughput variability of Figure 7
  that "starts abruptly with four processors".
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .machine import ClusterSpec
from .network import IntranodeParams, NetworkParams

__all__ = ["TransferPlan", "TransferRecord", "ClusterState"]

#: No transfer drops below 6% of peak — even a collapsed TCP stream makes
#: some progress between retransmit timeouts.
_EFFICIENCY_FLOOR = 0.06


@dataclass(frozen=True)
class TransferPlan:
    """Resolved timing of one message transfer."""

    start: float  # instant the data begins to move
    end: float  # instant the payload is fully delivered
    nbytes: int
    efficiency: float  # sampled fraction of peak bandwidth
    intranode: bool

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def rate(self) -> float:
        """Achieved payload rate in bytes/second."""
        return self.nbytes / self.duration if self.duration > 0 else float("inf")


@dataclass(frozen=True)
class TransferRecord:
    """One logged transfer (feeds the Figure 7 statistics)."""

    start: float
    end: float
    src_node: int
    dst_node: int
    nbytes: int

    @property
    def rate(self) -> float:
        return self.nbytes / (self.end - self.start) if self.end > self.start else 0.0


@dataclass
class _ActiveTransfers:
    """Interval bookkeeping for the congestion estimate.

    The congestion proxy is the *offered load*: how many transfers are
    still pending (queued on a NIC or on the wire) when a new one is
    requested.  Queued flows matter — TCP incast collapses under offered
    load even though the NIC serializes the actual wire occupancy.
    """

    ends: list[float] = field(default_factory=list)
    grace: float = 1.0  # seconds of history kept for late queries

    def count_pending(self, t: float) -> int:
        # ``ends`` is kept sorted, so "how many transfers are still pending
        # at t" is a suffix length.  Pruning drops only entries with
        # e <= t - grace, which can never satisfy e > t for this or any
        # later (grace-bounded) query — counts are unaffected.
        ends = self.ends
        if len(ends) > 4096:
            keep_from = bisect.bisect_right(ends, t - self.grace)
            if keep_from:
                del ends[:keep_from]
        return len(ends) - bisect.bisect_right(ends, t)

    def add(self, start: float, end: float) -> None:
        bisect.insort(self.ends, end)


class ClusterState:
    """Mutable per-run network state for one simulated cluster.

    ``plan_validator`` is an optional hook called as ``validator(plan,
    ready_time)`` on every planned transfer; the runtime sanitizer uses
    it to assert non-negative, causally ordered transfer windows.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        plan_validator: Callable[[TransferPlan, float], None] | None = None,
    ) -> None:
        self.spec = spec
        self._plan_validator = plan_validator
        self.net: NetworkParams = spec.network
        self.nic_free = np.zeros(spec.n_nodes, dtype=np.float64)
        self.irq_free = np.zeros(spec.n_nodes, dtype=np.float64)
        self.rng = np.random.default_rng(spec.seed)
        self._active = _ActiveTransfers()
        self.transfers: list[TransferRecord] = []
        # dual-CPU nodes on interrupt-driven stacks hit the SMP pathologies
        self._smp = spec.node.cpus_per_node == 2 and spec.network.uses_interrupts
        self._irq_cost = spec.network.irq_cost * (
            spec.network.smp_irq_multiplier if self._smp else 1.0
        )

    # ------------------------------------------------------------------
    def sample_efficiency(self, at_time: float) -> float:
        """Fraction of peak bandwidth for a transfer requested at ``at_time``."""
        net = self.net
        k = self._active.count_pending(at_time)  # queued + in-flight transfers
        mean = net.base_efficiency * float(np.exp(-net.congestion_sensitivity * k))
        sigma = min(net.variability + net.congestion_variability * k, 1.0)
        if sigma <= 0:
            # scalar clamp; min/max give the same value as np.clip without
            # the array round-trip (this runs once per transfer)
            return min(max(mean, _EFFICIENCY_FLOOR), 1.0)
        draw = mean * float(self.rng.lognormal(mean=-0.5 * sigma * sigma, sigma=sigma))
        return min(max(draw, _EFFICIENCY_FLOOR), 1.0)

    # ------------------------------------------------------------------
    def plan_transfer(
        self, src_node: int, dst_node: int, nbytes: int, ready_time: float
    ) -> TransferPlan:
        """Decide when a payload moves and when it is fully delivered.

        ``ready_time`` is the earliest instant the transfer may begin
        (sender data available, and for rendezvous messages the handshake
        completion).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        net = self.net
        if src_node == dst_node:
            plan = self._plan_intranode(dst_node, nbytes, ready_time, net.intranode)
            if self._plan_validator is not None:
                self._plan_validator(plan, ready_time)
            return plan

        start = float(max(ready_time, self.nic_free[src_node], self.nic_free[dst_node]))
        eff = self.sample_efficiency(ready_time)
        if self._smp:
            eff *= net.smp_efficiency_penalty
        occupancy = nbytes / (net.bandwidth * eff)
        wire = net.latency + occupancy + net.packets(nbytes) * net.packet_overhead
        self.nic_free[src_node] = start + occupancy
        self.nic_free[dst_node] = start + occupancy
        end = start + wire

        if net.uses_interrupts:
            irq_time = net.packets(nbytes) * self._irq_cost
            irq_start = float(max(end - irq_time, self.irq_free[dst_node]))
            end = irq_start + irq_time
            self.irq_free[dst_node] = end

        self._active.add(start, end)
        self.transfers.append(
            TransferRecord(
                start=start, end=end, src_node=src_node, dst_node=dst_node, nbytes=nbytes
            )
        )
        plan = TransferPlan(start=start, end=end, nbytes=nbytes, efficiency=eff, intranode=False)
        if self._plan_validator is not None:
            self._plan_validator(plan, ready_time)
        return plan

    # ------------------------------------------------------------------
    def _plan_intranode(
        self, node: int, nbytes: int, ready_time: float, path: IntranodeParams
    ) -> TransferPlan:
        start = float(ready_time)
        duration = path.latency + nbytes / path.bandwidth
        end = start + duration
        if path.uses_interrupts:
            # loopback still raises softirqs; serialize on the node's
            # interrupt CPU like a real receive
            irq_time = self.net.packets(nbytes) * self._irq_cost
            irq_start = float(max(end - irq_time, self.irq_free[node]))
            end = irq_start + irq_time
            self.irq_free[node] = end
        return TransferPlan(start=start, end=end, nbytes=nbytes, efficiency=1.0, intranode=True)
