"""Command-line interface: regenerate paper figures and run custom points.

Usage::

    python -m repro figures                      # list available figures
    python -m repro figures figure3 figure7      # regenerate specific ones
    python -m repro figures --all --steps 4      # everything, shorter runs
    python -m repro run --network myrinet --middleware mpi --ranks 8
    python -m repro trace --ranks 4 -o trace.json  # same run + Chrome span trace
    python -m repro workload                     # describe the benchmark system
    python -m repro analyze src tests            # communication-correctness lint
    python -m repro analyze --sanitize-run       # sanitized end-to-end runs
    python -m repro campaign run --design full --workers 4   # cached sweep
    python -m repro campaign status              # store + manifest overview
    python -m repro campaign status --metrics    # + merged metrics snapshots
    python -m repro campaign status --watch      # live dashboard (leases, ETA)
    python -m repro campaign verify --sample 4 --workers 4   # re-run cached points, diff
    python -m repro campaign gc                  # compact the result store
    python -m repro campaign analyze report --format md      # comp/comm/sync breakdown
    python -m repro campaign analyze drift                   # energy/conservation audit
    python -m repro campaign analyze trend --against BENCH_wallclock.json --candidate new.json
    python -m repro campaign analyze coverage                # factorial holes, shard health
    python -m repro campaign serve --design full --leases leases.json  # publish leases
    python -m repro campaign work --store host-a --leases leases.json  # pull + execute
    python -m repro campaign merge --store merged host-a host-b        # fold back
    python -m repro campaign coordinator --port 8765             # HTTP lease coordinator
    python -m repro campaign serve --design full --board http://localhost:8765
    python -m repro campaign work --store host-a --board http://localhost:8765
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Performance Characterization of a Molecular "
            "Dynamics Code on PC Clusters' (IPPS 2002)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figs = sub.add_parser("figures", help="regenerate paper figures")
    figs.add_argument("names", nargs="*", help="figure ids (default: list them)")
    figs.add_argument("--all", action="store_true", help="run every figure")
    figs.add_argument(
        "--steps", type=int, default=10, help="MD steps per run (paper: 10)"
    )

    def _point_flags(p):
        p.add_argument(
            "--network",
            default="tcp-gige",
            help="tcp-gige | score-gige | myrinet | tcp-fast-ethernet | wide-area-grid",
        )
        p.add_argument("--middleware", default="mpi", help="mpi | cmpi")
        p.add_argument("--ranks", type=int, default=4)
        p.add_argument("--cpus-per-node", type=int, default=1, choices=(1, 2))
        p.add_argument("--steps", type=int, default=10)
        p.add_argument("--seed", type=int, default=2002)
        p.add_argument(
            "--kernel", default="numpy", choices=("numpy", "numba"),
            help=(
                "force-kernel backend (numba is opt-in and bit-identical to "
                "the numpy reference; requires numba installed)"
            ),
        )
        p.add_argument(
            "--exec-workers", type=int, default=0,
            help=(
                "thread-pool size for the within-point rank fanout "
                "(0 = serial; wall-clock only, results are bit-identical)"
            ),
        )

    run = sub.add_parser("run", help="run one platform point")
    _point_flags(run)
    run.add_argument(
        "--strategy", default="replicated", choices=("replicated", "spatial"),
        help=(
            "decomposition strategy: replicated (CHARMM's replicated data, "
            "the default) or spatial (cell-grid domain decomposition with "
            "halo exchange; classic cutoff electrostatics, no PME)"
        ),
    )

    trace = sub.add_parser(
        "trace",
        help="run one platform point with span tracing; write Chrome trace JSON",
    )
    _point_flags(trace)
    trace.add_argument(
        "-o", "--output", default="trace.json",
        help="Chrome trace-event output file (open in Perfetto / chrome://tracing)",
    )

    sub.add_parser("workload", help="describe the 3552-atom benchmark system")

    analyze = sub.add_parser(
        "analyze",
        help="communication-correctness analyzer (lint + schedule + sanitizer)",
    )
    analyze.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: ./src and ./tests if present)",
    )
    analyze.add_argument(
        "--sanitize-run",
        action="store_true",
        help=(
            "also run a small sanitized workload (2 and 4 ranks, MPI and CMPI), "
            "check every runtime invariant, diagnose the recorded message "
            "schedule, and verify timings are identical to an unsanitized run"
        ),
    )
    analyze.add_argument(
        "--steps", type=int, default=2, help="MD steps for --sanitize-run (default 2)"
    )
    analyze.add_argument(
        "--github", action="store_true",
        help="also emit GitHub Actions annotations (::error/::warning) per finding",
    )
    analyze.add_argument(
        "--static",
        action="store_true",
        help=(
            "also run the static schedule verifier (REP4xx: symbolic "
            "deadlock/tag-race/type-agreement proof over every strategy and "
            "middleware for all p up to --bound, plus schedule-contract "
            "conformance) and the determinism lint (REP5xx) over the paths"
        ),
    )
    analyze.add_argument(
        "--bound", type=int, default=32,
        help="rank-count bound for the static verifier (default 32)",
    )
    analyze.add_argument(
        "--sarif", metavar="PATH",
        help="write surviving findings as SARIF 2.1.0 (GitHub code scanning)",
    )
    analyze.add_argument(
        "--baseline", metavar="PATH", default=".repro-analysis-baseline.json",
        help="baseline file of grandfathered fingerprints (default: %(default)s)",
    )
    analyze.add_argument(
        "--update-baseline", action="store_true",
        help="regenerate the baseline from the current findings and exit clean",
    )
    analyze.add_argument(
        "--crosscheck", action="store_true",
        help=(
            "execute the p=8 PME step (replicated strategy) and the p=8 "
            "water-box step (spatial strategy) under both middlewares and "
            "require the statically extracted schedules to match the recorded "
            "communication traces event for event"
        ),
    )

    campaign = sub.add_parser(
        "campaign",
        help="cached, parallel, resumable design-point sweeps",
    )
    csub = campaign.add_subparsers(dest="campaign_command", required=True)

    def _common(p):
        p.add_argument(
            "--store", default=".repro-cache", help="result-store directory"
        )
        p.add_argument(
            "--workload", default="myoglobin-pme",
            help="named workload (see repro.campaign.workloads)",
        )
        p.add_argument("--steps", type=int, default=10, help="MD steps per run")
        p.add_argument("--seed", type=int, default=2002, help="base platform seed")

    def _design(p):
        p.add_argument(
            "--design", default="sweep", choices=("sweep", "paper", "full"),
            help="sweep: focal point only; paper: one-factor-at-a-time; full: all 12 cases",
        )
        p.add_argument(
            "--ranks", default="1,2,4,8", help="comma-separated processor counts"
        )
        p.add_argument("--replicates", type=int, default=1)
        p.add_argument(
            "--strategy", default="replicated", choices=("replicated", "spatial"),
            help=(
                "decomposition strategy applied to every generated point "
                "(spatial needs a cutoff-only workload, e.g. --workload water-box)"
            ),
        )

    crun = csub.add_parser("run", help="execute a design-point campaign")
    _common(crun)
    _design(crun)
    crun.add_argument("--workers", type=int, default=0, help="0 = run inline")
    crun.add_argument(
        "--timeout", type=float, default=None, help="per-point wall-time limit (s)"
    )
    crun.add_argument("--retries", type=int, default=1)
    crun.add_argument(
        "--sanitize-run", action="store_true",
        help="execute every point under the runtime sanitizer (timings unchanged)",
    )
    crun.add_argument(
        "--no-shared-compute", action="store_true",
        help=(
            "disable the per-point shared-compute cache (replicated-data work "
            "deduplication across simulated ranks); results are bit-identical, "
            "only slower — useful for A/B-ing the optimization"
        ),
    )
    crun.add_argument(
        "--trace-dir", default=None,
        help=(
            "write a Chrome span trace per executed point plus the engine's "
            "host-side trace into this directory (wall-clock only; results "
            "are bit-identical)"
        ),
    )

    cstatus = csub.add_parser("status", help="store statistics and campaign manifests")
    cstatus.add_argument("--store", default=".repro-cache")
    cstatus.add_argument(
        "--metrics", action="store_true",
        help="also print each manifest's merged metrics snapshot",
    )
    cstatus.add_argument(
        "--leases", default=None,
        help="lease-board file for the live view (default: <store>/leases.json if present)",
    )
    cstatus.add_argument(
        "--board", default=None,
        help=(
            "board URL for the live view — file:PATH or http://HOST:PORT "
            "(a running coordinator); overrides --leases"
        ),
    )
    cstatus.add_argument(
        "--watch", action="store_true",
        help=(
            "repaint a live dashboard (in-flight points, throughput, lease "
            "health, ETA, latest analysis report link)"
        ),
    )
    cstatus.add_argument(
        "--runlog", default=None,
        help="runlog file to show recent activity from (torn tails tolerated)",
    )
    cstatus.add_argument(
        "--interval", type=float, default=2.0, help="--watch repaint period (s)"
    )
    cstatus.add_argument(
        "--iterations", type=int, default=None,
        help="stop --watch after N repaints (default: until interrupted)",
    )

    cgc = csub.add_parser("gc", help="compact shards, drop corrupt/stale entries")
    cgc.add_argument("--store", default=".repro-cache")

    canalyze = csub.add_parser(
        "analyze",
        help=(
            "post-hoc map-reduce analytics over a warm store: comm-breakdown "
            "report, drift/conservation checks, cross-campaign trends, "
            "coverage audit — zero force evaluations"
        ),
    )
    canalyze.add_argument(
        "kind", choices=("report", "drift", "trend", "coverage"),
        help=(
            "report: comp/comm/sync breakdown tables (the paper's tables); "
            "drift: energy consensus + phase bookkeeping; trend: diff against "
            "a baseline store/bench/manifest; coverage: factorial "
            "completeness + shard health + REP203 verdict"
        ),
    )
    canalyze.add_argument("--store", default=".repro-cache", help="store to analyze")
    canalyze.add_argument(
        "--workers", type=int, default=0,
        help="fan the map stage over N processes (0 = inline; output identical)",
    )
    canalyze.add_argument(
        "--series", default="p",
        help="report: the axis tables vary along (p, network, middleware, ...)",
    )
    canalyze.add_argument(
        "--against", default=None,
        help="trend: baseline source — a store directory, BENCH_wallclock.json, or manifest",
    )
    canalyze.add_argument(
        "--candidate", default=None,
        help="trend: candidate source (default: --store)",
    )
    canalyze.add_argument(
        "--factor", type=float, default=1.25,
        help="trend: regression gate, candidate/baseline ratio (matches the bench gate)",
    )
    canalyze.add_argument(
        "--rtol", type=float, default=1e-9,
        help="drift: relative tolerance for the energy-consensus check",
    )
    canalyze.add_argument(
        "--format", dest="fmt", default="json", choices=("json", "md", "html"),
        help="output rendering (the saved report is always canonical JSON)",
    )
    canalyze.add_argument(
        "-o", "--output", default=None,
        help="write the rendering here instead of stdout",
    )
    canalyze.add_argument(
        "--no-save", action="store_true",
        help="do not publish <store>/reports/<kind>-latest.json",
    )

    cverify = csub.add_parser(
        "verify", help="re-run a sample of cached points and diff bit-for-bit"
    )
    _common(cverify)
    cverify.add_argument("--sample", type=int, default=4)
    cverify.add_argument(
        "--workers", type=int, default=0,
        help="fan verification re-runs out over N worker processes (0 = inline)",
    )

    cserve = csub.add_parser(
        "serve", help="publish a lease board other hosts pull points from"
    )
    _common(cserve)
    _design(cserve)
    cserve.add_argument(
        "--leases", default=None,
        help="lease-board file to publish (default: <store>/leases.json)",
    )
    cserve.add_argument(
        "--board", default=None,
        help=(
            "board to publish to — file:PATH or http://HOST:PORT "
            "(a running coordinator); overrides --leases"
        ),
    )

    cwork = csub.add_parser(
        "work", help="claim leases from a board and execute them into a local store"
    )
    cwork.add_argument(
        "--store", default=".repro-cache", help="this worker's result-store directory"
    )
    cwork.add_argument("--leases", default=None, help="published lease-board file")
    cwork.add_argument(
        "--board", default=None,
        help=(
            "board to pull leases from — file:PATH or http://HOST:PORT "
            "(a running coordinator); overrides --leases"
        ),
    )
    cwork.add_argument(
        "--worker", default=None, help="worker id (default: <hostname>-<pid>)"
    )
    cwork.add_argument(
        "--ttl", type=float, default=300.0,
        help="lease time-to-live in seconds; an expired lease is reclaimable",
    )
    cwork.add_argument(
        "--max-points", type=int, default=None, help="stop after claiming N leases"
    )

    cmerge = csub.add_parser(
        "merge", help="fold worker stores/shards back into one store, with provenance"
    )
    cmerge.add_argument(
        "sources", nargs="+", help="worker store directories or .jsonl shard files"
    )
    cmerge.add_argument(
        "--store", default=".repro-cache", help="destination store directory"
    )
    cmerge.add_argument(
        "--expect", default=None,
        help=(
            "reference store directory; after merging, assert the destination "
            "matches it key-for-key with bit-identical records (exit 1 otherwise)"
        ),
    )

    ccoord = csub.add_parser(
        "coordinator",
        help=(
            "run the asyncio HTTP campaign coordinator: the lease board as "
            "a service, for workers that share no filesystem"
        ),
    )
    ccoord.add_argument("--host", default="127.0.0.1", help="bind address")
    ccoord.add_argument(
        "--port", type=int, default=8765, help="bind port (0 picks a free port)"
    )
    ccoord.add_argument(
        "--state", default="coordinator-board.json",
        help=(
            "board state file; campaigns survive coordinator restarts "
            "because this file is the persistence"
        ),
    )
    ccoord.add_argument(
        "--reports", default=None,
        help=(
            "directory of published analysis reports (a store's reports/ "
            "dir); enables read-only GET /v1/report"
        ),
    )

    return parser


def _check_kernel_flag(kernel: str) -> str | None:
    """Error string when the requested kernel backend cannot run here."""
    if kernel == "numba":
        from .parallel.exec.kernels import numba_available

        if not numba_available():
            return (
                "kernel backend 'numba' requested but numba is not installed; "
                "install numba or use --kernel numpy (the reference backend)"
            )
    return None


def _cmd_figures(args: argparse.Namespace) -> int:
    from .experiments import ALL_FIGURES, default_runner

    if not args.names and not args.all:
        print("Available figures:")
        for name, driver in ALL_FIGURES.items():
            print(f"  {name:15s} {driver.__doc__.strip().splitlines()[0]}")
        return 0

    names = list(ALL_FIGURES) if args.all else args.names
    unknown = [n for n in names if n not in ALL_FIGURES]
    if unknown:
        print(f"unknown figures: {', '.join(unknown)}", file=sys.stderr)
        return 2

    runner = default_runner(n_steps=args.steps)
    for name in names:
        result = ALL_FIGURES[name](runner)
        print(result.report)
        print()
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from . import (
        DesignPoint,
        MDRunConfig,
        PlatformConfig,
        ResponseRecord,
        RunOptions,
        myoglobin_system,
        myoglobin_workload,
        run_parallel_md,
    )
    from .core.report import breakdown_table, time_series_table

    try:
        config = PlatformConfig(
            network=args.network,
            middleware=args.middleware,
            cpus_per_node=args.cpus_per_node,
        )
        spec = config.cluster_spec(args.ranks, seed=args.seed)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    kernel_error = _check_kernel_flag(args.kernel)
    if kernel_error is not None:
        print(f"error: {kernel_error}", file=sys.stderr)
        return 2

    strategy = getattr(args, "strategy", "replicated")
    print(f"Simulating {spec.describe()}, {args.steps} MD steps...")
    mg = myoglobin_workload()
    point = DesignPoint(config=config, n_ranks=args.ranks, strategy=strategy)
    # the spatial strategy covers the classic (cutoff) path only, so it
    # runs the shift-electrostatics variant of the benchmark system
    electrostatics = "pme" if strategy == "replicated" else "shift"
    result = run_parallel_md(
        myoglobin_system(electrostatics),
        mg.positions,
        spec,
        RunOptions.for_point(
            point,
            config=MDRunConfig(n_steps=args.steps),
            exec_workers=args.exec_workers,
            kernel=args.kernel,
        ),
    )
    record = ResponseRecord.from_run(point, result)
    print(time_series_table([record]))
    print()
    print(breakdown_table([record], "classic"))
    if strategy == "replicated":
        print()
        print(breakdown_table([record], "pme"))
    stats = result.comm_stats()
    if stats.n_transfers:
        print(
            f"\ncommunication speed per node: mean {stats.mean:.1f} MB/s "
            f"[{stats.minimum:.1f}, {stats.maximum:.1f}] over {stats.n_transfers} transfers"
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run one point with the span tracer attached; write Chrome JSON."""
    from . import (
        DesignPoint,
        MDRunConfig,
        PlatformConfig,
        RunOptions,
        myoglobin_system,
        myoglobin_workload,
        run_parallel_md,
    )
    from .instrument.tracing import VIRTUAL_PID_BASE, SpanTracer, validate_chrome_trace

    try:
        config = PlatformConfig(
            network=args.network,
            middleware=args.middleware,
            cpus_per_node=args.cpus_per_node,
        )
        spec = config.cluster_spec(args.ranks, seed=args.seed)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    kernel_error = _check_kernel_flag(args.kernel)
    if kernel_error is not None:
        print(f"error: {kernel_error}", file=sys.stderr)
        return 2

    print(f"Tracing {spec.describe()}, {args.steps} MD steps...")
    mg = myoglobin_workload()
    point = DesignPoint(config=config, n_ranks=args.ranks)
    tracer = SpanTracer()
    run_parallel_md(
        myoglobin_system("pme"),
        mg.positions,
        spec,
        RunOptions.for_point(
            point,
            config=MDRunConfig(n_steps=args.steps),
            span_tracer=tracer,
            exec_workers=args.exec_workers,
            kernel=args.kernel,
        ),
    )
    path = tracer.write(args.output)
    problems = validate_chrome_trace(tracer.to_chrome())
    for line in problems:
        print(f"  INVALID {line}", file=sys.stderr)
    n_virtual = sum(1 for s in tracer.spans if s.pid >= VIRTUAL_PID_BASE)
    print(
        f"trace: {len(tracer.spans)} spans ({n_virtual} virtual) across "
        f"{args.ranks} ranks -> {path} "
        f"({'valid' if not problems else f'{len(problems)} problem(s)'}; "
        "load in Perfetto or chrome://tracing)"
    )
    return 0 if not problems else 1


def _cmd_workload(_args: argparse.Namespace) -> int:
    from . import myoglobin_workload

    mg = myoglobin_workload()
    topo = mg.topology
    by_segment: dict[str, int] = {}
    for atom in topo.atoms:
        by_segment[atom.segment] = by_segment.get(atom.segment, 0) + 1
    print("The benchmark system (paper Sec. 2.2, rebuilt synthetically):")
    print(f"  atoms:       {topo.n_atoms}")
    print(f"  charge:      {topo.total_charge():+.3f} e")
    print(f"  box:         {mg.box.lx} x {mg.box.ly} x {mg.box.lz} A")
    print(f"  PME mesh:    {mg.pme_grid[0]} x {mg.pme_grid[1]} x {mg.pme_grid[2]}")
    print(
        f"  bonded:      {len(topo.bonds)} bonds, {len(topo.angles)} angles, "
        f"{len(topo.dihedrals)} dihedrals, {len(topo.impropers)} impropers"
    )
    print("  segments:")
    for segment, count in sorted(by_segment.items()):
        print(f"    {segment:8s} {count:5d} atoms")
    return 0


def _github_annotation(diag) -> str:
    """One finding as a GitHub Actions workflow command (check annotation)."""
    level = "error" if diag.severity == "error" else "warning"
    # workflow-command syntax: property values must escape , and newlines
    message = str(diag.message).replace("%", "%25").replace("\n", "%0A")
    return f"::{level} file={diag.path},line={diag.line},title={diag.rule}::{message}"


def _analyze_lint(paths: list[str], github: bool = False) -> int:
    """Static layer of ``repro analyze``; returns the error count."""
    from pathlib import Path

    from .analysis import lint_paths

    if not paths:
        paths = [p for p in ("src", "tests") if Path(p).is_dir()]
        if not paths:
            print("error: no paths given and no ./src or ./tests here", file=sys.stderr)
            return 1
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path: {', '.join(map(str, missing))}", file=sys.stderr)
        return 1
    diags = lint_paths(paths)
    for diag in diags:
        print(diag.format())
        if github:
            print(_github_annotation(diag))
    n_files = sum(
        1 if Path(p).is_file() else sum(1 for _ in Path(p).rglob("*.py")) for p in paths
    )
    errors = sum(1 for d in diags if d.severity == "error")
    print(
        f"analyze: linted {n_files} files under {', '.join(map(str, paths))}: "
        f"{errors} error(s), {len(diags) - errors} warning(s)"
    )
    return errors


def _analyze_sanitize_run(n_steps: int) -> int:
    """Dynamic layer of ``repro analyze --sanitize-run``.

    For 2 and 4 ranks under both middlewares: run the small workload
    plain and sanitized+traced, require zero invariant violations, a
    clean schedule diagnosis, and bit-identical comp/comm/sync totals.
    Returns the number of failures.
    """
    from . import (
        MDRunConfig,
        RunOptions,
        analyze_trace,
        build_peptide_in_water,
        run_parallel_md,
    )
    from .analysis import SanitizerError
    from .analysis.rules import ERROR
    from .cluster import ClusterSpec, NodeSpec, score_gigabit_ethernet, tcp_gigabit_ethernet
    from .instrument.commstats import CommTrace
    from .instrument.metrics import REGISTRY
    from .md import CutoffScheme, MDSystem, default_forcefield

    fifo_counter = REGISTRY.counter("rep203.fifo_disambiguations")

    ff = default_forcefield()
    topo, pos, box = build_peptide_in_water(n_residues=2, n_waters=12, forcefield=ff)
    system = MDSystem(
        topo, ff, box, CutoffScheme(r_cut=8.0, skin=1.5),
        electrostatics="pme", pme_grid=(16, 16, 16),
    )
    config = MDRunConfig(n_steps=n_steps, dt=0.0004)

    failures = 0
    for mw in ("mpi", "cmpi"):
        for ranks in (2, 4):
            spec = ClusterSpec(n_ranks=ranks, network=score_gigabit_ethernet(), seed=7)
            options = RunOptions(middleware=mw, config=config)
            plain = run_parallel_md(system, pos, spec, options)
            trace = CommTrace()
            try:
                sanitized = run_parallel_md(
                    system, pos, spec, options.replace(sanitize=True, trace=trace)
                )
            except SanitizerError as exc:
                print(f"  {mw} p={ranks}: sanitizer violation: {exc}")
                failures += 1
                continue

            drift = []
            phases = {p for r in (plain, sanitized) for tl in r.timelines for p in tl.phases}
            for phase in sorted(phases):
                a, b = plain.component(phase), sanitized.component(phase)
                if (a.comp, a.comm, a.sync) != (b.comp, b.comm, b.sync):
                    drift.append(phase)
            fifo_before = fifo_counter.snapshot()
            diags = analyze_trace(trace, ranks)
            fifo_matches = fifo_counter.delta(fifo_before)
            errors = [d for d in diags if d.severity == ERROR]
            for d in diags:
                print("  " + d.format())
            status = "ok"
            if drift:
                status = f"TIMING DRIFT in phases {drift}"
                failures += 1
            if errors:
                status = f"{len(errors)} schedule error(s)"
                failures += 1
            print(
                f"  {mw} p={ranks}: {len(trace)} events, "
                f"{fifo_matches} FIFO-disambiguated tag reuse(s), "
                f"0 sanitizer violations, {status}"
            )

    # dual-processor interrupt-driven case: the trace must show the SMP
    # per-message cost multiplier on every send/recv (REP206)
    net = tcp_gigabit_ethernet()
    spec = ClusterSpec(
        n_ranks=4, network=net, node=NodeSpec(cpus_per_node=2), seed=7
    )
    trace = CommTrace()
    run_parallel_md(
        system, pos, spec,
        RunOptions(middleware="mpi", config=config, sanitize=True, trace=trace),
    )
    diags = analyze_trace(trace, 4, network=net, cpus_per_node=2)
    errors = [d for d in diags if d.severity == ERROR]
    for d in diags:
        print("  " + d.format())
    if errors:
        failures += 1
    print(
        f"  mpi p=4 dual tcp-gige: {len(trace)} events, SMP overhead "
        f"{'asserted' if not errors else 'VIOLATED'}"
    )
    print(f"analyze: sanitized runs {'passed' if failures == 0 else 'FAILED'}")
    return failures


def _analyze_static(args: argparse.Namespace) -> int:
    """The ``repro analyze --static`` layer; returns the failure count.

    Static schedule verification (REP4xx) over every strategy and
    middleware up to ``--bound`` ranks, the determinism lint (REP5xx)
    over the lint paths, baseline suppression, optional SARIF output
    and the optional static-vs-executed cross-check.
    """
    from pathlib import Path

    from .analysis.baseline import apply_baseline, load_baseline, write_baseline
    from .analysis.determinism import lint_determinism_paths
    from .analysis.static_schedule import verify_static

    paths = list(args.paths) or [p for p in ("src",) if Path(p).is_dir()]

    diags = verify_static(bound=args.bound)
    diags += lint_determinism_paths(paths)

    if args.update_baseline:
        n = write_baseline(args.baseline, diags, load_baseline(args.baseline))
        print(f"analyze: wrote {n} baseline entr{'y' if n == 1 else 'ies'} to {args.baseline}")
        return 0

    baseline = load_baseline(args.baseline)
    surviving, suppressed = apply_baseline(diags, baseline)
    for diag in surviving:
        print(diag.format())
        if args.github:
            print(_github_annotation(diag))
    if args.sarif:
        from .analysis.sarif import write_sarif

        write_sarif(args.sarif, surviving)
        print(f"analyze: SARIF written to {args.sarif}")

    failures = sum(1 for d in surviving if d.severity == "error")
    print(
        f"analyze: static verification (bound {args.bound}) + determinism lint: "
        f"{failures} error(s), {len(surviving) - failures} warning(s), "
        f"{len(suppressed)} baselined"
    )

    if args.crosscheck:
        failures += _analyze_crosscheck(args.steps)
    return failures


def _analyze_crosscheck(n_steps: int) -> int:
    """Static-vs-executed schedule cross-check at p=8; returns failures.

    Runs the small PME workload (replicated strategy) and the water box
    (spatial strategy) under both middlewares with a communication trace
    attached and requires the statically extracted per-rank schedule to
    match the recorded events one for one.
    """
    from . import MDRunConfig, RunOptions, build_peptide_in_water, run_parallel_md
    from .analysis.static_schedule import crosscheck_against_trace
    from .campaign.workloads import build_workload
    from .cluster import ClusterSpec, tcp_gigabit_ethernet
    from .instrument.commstats import CommTrace
    from .md import CutoffScheme, MDSystem, default_forcefield

    ff = default_forcefield()
    topo, pos, box = build_peptide_in_water(n_residues=2, n_waters=12, forcefield=ff)
    system = MDSystem(
        topo, ff, box, CutoffScheme(r_cut=8.0, skin=1.5),
        electrostatics="pme", pme_grid=(16, 16, 16),
    )
    config = MDRunConfig(n_steps=n_steps, dt=0.0004)
    water_system, water_pos = build_workload("water-box")

    legs = [
        ("ppme", None, system, pos),
        ("spatial", "water-box", water_system, water_pos),
    ]
    failures = 0
    for strategy, profile, leg_system, leg_pos in legs:
        for mw in ("mpi", "cmpi"):
            trace = CommTrace()
            run_parallel_md(
                leg_system, leg_pos,
                ClusterSpec(n_ranks=8, network=tcp_gigabit_ethernet(), seed=7),
                RunOptions(
                    middleware=mw, config=config, trace=trace,
                    strategy="spatial" if strategy == "spatial" else "replicated",
                ),
            )
            problems = crosscheck_against_trace(
                trace, strategy=strategy, middleware=mw, p=8, n_steps=n_steps,
                profile=profile,
            )
            for problem in problems:
                print(f"  {strategy} {mw} p=8: {problem}")
            if problems:
                failures += 1
            print(
                f"  crosscheck {strategy} {mw} p=8: {len(trace)} executed events "
                f"{'MATCH' if not problems else 'DIVERGE from'} the static schedule"
            )
    return failures


def _cmd_analyze(args: argparse.Namespace) -> int:
    failures = _analyze_lint(list(args.paths), github=args.github)
    if args.static:
        failures += _analyze_static(args)
    if args.sanitize_run:
        failures += _analyze_sanitize_run(args.steps)
    return 1 if failures else 0


def _design_points(args: argparse.Namespace):
    """The design-point list shared by ``campaign run`` and ``serve``."""
    from .core.design import DesignPoint, full_factorial, one_factor_at_a_time
    from .core.factors import FOCAL_POINT, PAPER_FACTOR_SPACE

    try:
        levels = tuple(int(p) for p in args.ranks.split(","))
    except ValueError:
        raise ValueError(f"bad --ranks {args.ranks!r}") from None
    if args.design == "full":
        points = full_factorial(
            PAPER_FACTOR_SPACE, processor_levels=levels, replicates=args.replicates
        )
    elif args.design == "paper":
        points = one_factor_at_a_time(PAPER_FACTOR_SPACE, processor_levels=levels)
    else:
        points = [
            DesignPoint(config=FOCAL_POINT, n_ranks=p, replicate=r)
            for p in levels
            for r in range(args.replicates)
        ]
    strategy = getattr(args, "strategy", "replicated")
    if strategy != "replicated":
        import dataclasses

        points = [dataclasses.replace(pt, strategy=strategy) for pt in points]
    return points


def _campaign_engine(args: argparse.Namespace, n_workers: int = 0, **kw):
    from . import CampaignEngine, MDRunConfig, ResultStore

    return CampaignEngine(
        workload=args.workload,
        config=MDRunConfig(n_steps=args.steps),
        base_seed=args.seed,
        store=ResultStore(args.store),
        n_workers=n_workers,
        **kw,
    )


def _format_metrics(metrics: dict, indent: str = "    ") -> list[str]:
    """A metrics snapshot document as readable key/value lines."""
    lines = []
    for name, doc in sorted(metrics.get("counters", {}).items()):
        lines.append(f"{indent}{name} = {doc['total']}")
        for label, count in sorted(doc.get("labels", {}).items()):
            lines.append(f"{indent}  {label}: {count}")
    for name, value in sorted(metrics.get("gauges", {}).items()):
        lines.append(f"{indent}{name} = {value}")
    for name, doc in sorted(metrics.get("histograms", {}).items()):
        mean = doc["sum"] / doc["count"] if doc.get("count") else 0.0
        lines.append(
            f"{indent}{name}: n={doc.get('count', 0)} mean={mean:.4g} "
            f"min={doc.get('min', 0):.4g} max={doc.get('max', 0):.4g}"
        )
    return lines


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    import time as time_mod
    from pathlib import Path

    from . import CampaignManifest, ResultStore
    from .campaign.board import board_from_url
    from .campaign.dashboard import dashboard
    from .campaign.leases import LeaseBoardError

    store = ResultStore(args.store)

    if args.watch:
        if args.board:
            board = board_from_url(args.board)
        else:
            leases = args.leases or str(Path(args.store) / "leases.json")
            board = board_from_url(leases) if Path(leases).exists() else None
        i = 0
        try:
            while args.iterations is None or i < args.iterations:
                if i:
                    time_mod.sleep(args.interval)  # noqa: REP104 — dashboard cadence
                    store = ResultStore(args.store)  # reload: see new results
                try:
                    print(dashboard(store, board, runlog=args.runlog))
                except LeaseBoardError as exc:
                    print(f"board unavailable: {exc}")
                print()
                i += 1
        except KeyboardInterrupt:
            pass
        return 0

    stats = store.describe()
    print(
        f"store {stats['root']}: {stats['entries']} entries in "
        f"{stats['shards']} shard(s), {stats['bytes']} bytes, "
        f"schema v{stats['schema']}"
    )
    if args.board or args.leases:
        board = board_from_url(args.board or args.leases)
        try:
            print(dashboard(store, board, runlog=args.runlog))
        except LeaseBoardError as exc:
            print(f"board unavailable: {exc}")
    manifest_dir = Path(args.store) / "manifests"
    for path in sorted(manifest_dir.glob("*.json")):
        try:
            man = CampaignManifest.read(path)
        except (ValueError, KeyError):
            print(f"  {path.name}: unreadable manifest", file=sys.stderr)
            continue
        print("  " + man.summary_line())
        if args.metrics and man.metrics:
            for line in _format_metrics(man.metrics):
                print(line)
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from pathlib import Path

    if args.campaign_command == "run":
        try:
            points = _design_points(args)
            engine = _campaign_engine(
                args,
                n_workers=args.workers,
                timeout=args.timeout,
                retries=args.retries,
                sanitize=args.sanitize_run,
                shared_compute=not args.no_shared_compute,
                trace_dir=args.trace_dir,
            )
            result = engine.run(points, progress=print)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(result.manifest.summary_line())
        return 0 if result.ok else 1

    if args.campaign_command == "status":
        return _cmd_campaign_status(args)

    if args.campaign_command == "gc":
        from . import ResultStore

        kept, dropped = ResultStore(args.store).gc()
        print(f"gc: kept {kept} entr{'y' if kept == 1 else 'ies'}, dropped {dropped}")
        return 0

    if args.campaign_command == "analyze":
        from .campaign.analytics import AnalysisError, render, run_analysis

        try:
            report = run_analysis(
                args.kind,
                args.store,
                workers=args.workers,
                series=args.series,
                against=args.against,
                candidate=args.candidate,
                factor=args.factor,
                rtol=args.rtol,
                save=not args.no_save,
            )
        except AnalysisError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        text = render(report, args.fmt)
        if args.output:
            Path(args.output).write_text(text)
            print(f"analyze {args.kind}: wrote {args.fmt} to {args.output}")
        else:
            sys.stdout.write(text)
        return 0 if report.get("ok", True) else 1

    if args.campaign_command == "verify":
        try:
            engine = _campaign_engine(args)
            mismatches = engine.verify(sample=args.sample, n_workers=args.workers)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        for m in mismatches:
            print(
                f"  MISMATCH {m['label']} field {m['field']}: "
                f"stored {m['stored']!r} != rerun {m['rerun']!r}"
            )
        status = "ok" if not mismatches else "FAILED"
        print(f"verify: sampled cached points re-ran bit-identically: {status}")
        return 0 if not mismatches else 1

    if args.campaign_command == "serve":
        from .campaign import publish_campaign
        from .campaign.leases import LeaseBoardError

        board = args.board or args.leases or str(Path(args.store) / "leases.json")
        try:
            points = _design_points(args)
            summary = publish_campaign(_campaign_engine(args), points, board)
        except (ValueError, LeaseBoardError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(
            f"serve: published {summary['leases']} leases to {board} "
            f"({summary['pending']} pending, {summary['done']} already done, "
            f"campaign {summary['campaign_id']})"
        )
        return 0

    if args.campaign_command == "work":
        import os
        import platform

        from . import ResultStore, work_campaign
        from .campaign.leases import LeaseBoardError

        board = args.board or args.leases
        if board is None:
            print("error: campaign work needs --board URL (or --leases PATH)",
                  file=sys.stderr)
            return 2
        worker = args.worker or f"{platform.node()}-{os.getpid()}"
        try:
            stats = work_campaign(
                board,
                ResultStore(args.store),
                worker,
                ttl=args.ttl,
                max_points=args.max_points,
                progress=print,
            )
        except (ValueError, LeaseBoardError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(
            f"work: {worker} claimed {stats['claimed']} "
            f"({stats['executed']} executed, {stats['hits']} already held, "
            f"{stats['failed']} failed, {stats['lost']} reclaimed mid-run)"
        )
        return 0 if stats["failed"] == 0 else 1

    if args.campaign_command == "merge":
        from . import ResultStore, merge_into_store
        from .campaign import StoreConflictError, verify_stores_match

        try:
            stats = merge_into_store(ResultStore(args.store), args.sources)
        except (StoreConflictError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        manifest = stats["manifest"]
        print(
            f"merge: {stats['imported']} imported, {stats['duplicates']} duplicate, "
            f"{stats['corrupt']} corrupt line(s) skipped from {stats['sources']} "
            f"source(s); store now holds {stats['entries']} entries "
            f"(manifest {manifest.campaign_id})"
        )
        if args.expect is not None:
            problems = verify_stores_match(ResultStore(args.store), ResultStore(args.expect))
            for line in problems:
                print(f"  MISMATCH {line}")
            verdict = "ok" if not problems else "FAILED"
            print(f"merge: destination matches {args.expect} key-for-key: {verdict}")
            return 0 if not problems else 1
        return 0

    if args.campaign_command == "coordinator":
        import asyncio

        from .campaign.coordinator import CoordinatorServer
        from .instrument.runlog import RunLog

        state = Path(args.state)
        runlog = RunLog(state.with_suffix(state.suffix + ".runlog.jsonl"))
        server = CoordinatorServer(
            state, host=args.host, port=args.port, runlog=runlog,
            report_dir=args.reports,
        )

        async def _serve() -> None:
            await server.start()
            print(
                f"coordinator: serving {server.url} (state {state}) — "
                "publish with `campaign serve --board`, pull with "
                "`campaign work --board`",
                flush=True,
            )
            await server.serve_forever()

        try:
            asyncio.run(_serve())
        except KeyboardInterrupt:
            print("coordinator: stopped")
        except OSError as exc:
            print(f"error: cannot serve on {args.host}:{args.port}: {exc}",
                  file=sys.stderr)
            return 2
        return 0

    raise AssertionError("unreachable")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "figures":
        return _cmd_figures(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "workload":
        return _cmd_workload(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":
    raise SystemExit(main())
