"""Command-line interface: regenerate paper figures and run custom points.

Usage::

    python -m repro figures                      # list available figures
    python -m repro figures figure3 figure7      # regenerate specific ones
    python -m repro figures --all --steps 4      # everything, shorter runs
    python -m repro run --network myrinet --middleware mpi --ranks 8
    python -m repro workload                     # describe the benchmark system
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Performance Characterization of a Molecular "
            "Dynamics Code on PC Clusters' (IPPS 2002)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figs = sub.add_parser("figures", help="regenerate paper figures")
    figs.add_argument("names", nargs="*", help="figure ids (default: list them)")
    figs.add_argument("--all", action="store_true", help="run every figure")
    figs.add_argument(
        "--steps", type=int, default=10, help="MD steps per run (paper: 10)"
    )

    run = sub.add_parser("run", help="run one platform point")
    run.add_argument(
        "--network",
        default="tcp-gige",
        help="tcp-gige | score-gige | myrinet | tcp-fast-ethernet | wide-area-grid",
    )
    run.add_argument("--middleware", default="mpi", help="mpi | cmpi")
    run.add_argument("--ranks", type=int, default=4)
    run.add_argument("--cpus-per-node", type=int, default=1, choices=(1, 2))
    run.add_argument("--steps", type=int, default=10)
    run.add_argument("--seed", type=int, default=2002)

    sub.add_parser("workload", help="describe the 3552-atom benchmark system")

    return parser


def _cmd_figures(args: argparse.Namespace) -> int:
    from .experiments import ALL_FIGURES, default_runner

    if not args.names and not args.all:
        print("Available figures:")
        for name, driver in ALL_FIGURES.items():
            print(f"  {name:15s} {driver.__doc__.strip().splitlines()[0]}")
        return 0

    names = list(ALL_FIGURES) if args.all else args.names
    unknown = [n for n in names if n not in ALL_FIGURES]
    if unknown:
        print(f"unknown figures: {', '.join(unknown)}", file=sys.stderr)
        return 2

    runner = default_runner(n_steps=args.steps)
    for name in names:
        result = ALL_FIGURES[name](runner)
        print(result.report)
        print()
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .core import PlatformConfig
    from .core.report import breakdown_table, time_series_table
    from .core.responses import ResponseRecord
    from .core.design import DesignPoint
    from .parallel import MDRunConfig, run_parallel_md
    from .workloads import myoglobin_system, myoglobin_workload

    try:
        config = PlatformConfig(
            network=args.network,
            middleware=args.middleware,
            cpus_per_node=args.cpus_per_node,
        )
        spec = config.cluster_spec(args.ranks, seed=args.seed)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(f"Simulating {spec.describe()}, {args.steps} MD steps...")
    mg = myoglobin_workload()
    result = run_parallel_md(
        myoglobin_system("pme"),
        mg.positions,
        spec,
        middleware=args.middleware,
        config=MDRunConfig(n_steps=args.steps),
    )
    point = DesignPoint(config=config, n_ranks=args.ranks)
    record = ResponseRecord.from_run(point, result)
    print(time_series_table([record]))
    print()
    print(breakdown_table([record], "classic"))
    print()
    print(breakdown_table([record], "pme"))
    stats = result.comm_stats()
    if stats.n_transfers:
        print(
            f"\ncommunication speed per node: mean {stats.mean:.1f} MB/s "
            f"[{stats.minimum:.1f}, {stats.maximum:.1f}] over {stats.n_transfers} transfers"
        )
    return 0


def _cmd_workload(_args: argparse.Namespace) -> int:
    from .workloads import myoglobin_workload

    mg = myoglobin_workload()
    topo = mg.topology
    by_segment: dict[str, int] = {}
    for atom in topo.atoms:
        by_segment[atom.segment] = by_segment.get(atom.segment, 0) + 1
    print("The benchmark system (paper Sec. 2.2, rebuilt synthetically):")
    print(f"  atoms:       {topo.n_atoms}")
    print(f"  charge:      {topo.total_charge():+.3f} e")
    print(f"  box:         {mg.box.lx} x {mg.box.ly} x {mg.box.lz} A")
    print(f"  PME mesh:    {mg.pme_grid[0]} x {mg.pme_grid[1]} x {mg.pme_grid[2]}")
    print(
        f"  bonded:      {len(topo.bonds)} bonds, {len(topo.angles)} angles, "
        f"{len(topo.dihedrals)} dihedrals, {len(topo.impropers)} impropers"
    )
    print("  segments:")
    for segment, count in sorted(by_segment.items()):
        print(f"    {segment:8s} {count:5d} atoms")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "figures":
        return _cmd_figures(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "workload":
        return _cmd_workload(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":
    raise SystemExit(main())
