"""Command-line interface: regenerate paper figures and run custom points.

Usage::

    python -m repro figures                      # list available figures
    python -m repro figures figure3 figure7      # regenerate specific ones
    python -m repro figures --all --steps 4      # everything, shorter runs
    python -m repro run --network myrinet --middleware mpi --ranks 8
    python -m repro workload                     # describe the benchmark system
    python -m repro analyze src tests            # communication-correctness lint
    python -m repro analyze --sanitize-run       # sanitized end-to-end runs
    python -m repro campaign run --design full --workers 4   # cached sweep
    python -m repro campaign status              # store + manifest overview
    python -m repro campaign verify --sample 4 --workers 4   # re-run cached points, diff
    python -m repro campaign gc                  # compact the result store
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Performance Characterization of a Molecular "
            "Dynamics Code on PC Clusters' (IPPS 2002)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figs = sub.add_parser("figures", help="regenerate paper figures")
    figs.add_argument("names", nargs="*", help="figure ids (default: list them)")
    figs.add_argument("--all", action="store_true", help="run every figure")
    figs.add_argument(
        "--steps", type=int, default=10, help="MD steps per run (paper: 10)"
    )

    run = sub.add_parser("run", help="run one platform point")
    run.add_argument(
        "--network",
        default="tcp-gige",
        help="tcp-gige | score-gige | myrinet | tcp-fast-ethernet | wide-area-grid",
    )
    run.add_argument("--middleware", default="mpi", help="mpi | cmpi")
    run.add_argument("--ranks", type=int, default=4)
    run.add_argument("--cpus-per-node", type=int, default=1, choices=(1, 2))
    run.add_argument("--steps", type=int, default=10)
    run.add_argument("--seed", type=int, default=2002)

    sub.add_parser("workload", help="describe the 3552-atom benchmark system")

    analyze = sub.add_parser(
        "analyze",
        help="communication-correctness analyzer (lint + schedule + sanitizer)",
    )
    analyze.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: ./src and ./tests if present)",
    )
    analyze.add_argument(
        "--sanitize-run",
        action="store_true",
        help=(
            "also run a small sanitized workload (2 and 4 ranks, MPI and CMPI), "
            "check every runtime invariant, diagnose the recorded message "
            "schedule, and verify timings are identical to an unsanitized run"
        ),
    )
    analyze.add_argument(
        "--steps", type=int, default=2, help="MD steps for --sanitize-run (default 2)"
    )

    campaign = sub.add_parser(
        "campaign",
        help="cached, parallel, resumable design-point sweeps",
    )
    csub = campaign.add_subparsers(dest="campaign_command", required=True)

    def _common(p):
        p.add_argument(
            "--store", default=".repro-cache", help="result-store directory"
        )
        p.add_argument(
            "--workload", default="myoglobin-pme",
            help="named workload (see repro.campaign.workloads)",
        )
        p.add_argument("--steps", type=int, default=10, help="MD steps per run")
        p.add_argument("--seed", type=int, default=2002, help="base platform seed")

    crun = csub.add_parser("run", help="execute a design-point campaign")
    _common(crun)
    crun.add_argument(
        "--design", default="sweep", choices=("sweep", "paper", "full"),
        help="sweep: focal point only; paper: one-factor-at-a-time; full: all 12 cases",
    )
    crun.add_argument(
        "--ranks", default="1,2,4,8", help="comma-separated processor counts"
    )
    crun.add_argument("--replicates", type=int, default=1)
    crun.add_argument("--workers", type=int, default=0, help="0 = run inline")
    crun.add_argument(
        "--timeout", type=float, default=None, help="per-point wall-time limit (s)"
    )
    crun.add_argument("--retries", type=int, default=1)
    crun.add_argument(
        "--sanitize-run", action="store_true",
        help="execute every point under the runtime sanitizer (timings unchanged)",
    )
    crun.add_argument(
        "--no-shared-compute", action="store_true",
        help=(
            "disable the per-point shared-compute cache (replicated-data work "
            "deduplication across simulated ranks); results are bit-identical, "
            "only slower — useful for A/B-ing the optimization"
        ),
    )

    cstatus = csub.add_parser("status", help="store statistics and campaign manifests")
    cstatus.add_argument("--store", default=".repro-cache")

    cgc = csub.add_parser("gc", help="compact shards, drop corrupt/stale entries")
    cgc.add_argument("--store", default=".repro-cache")

    cverify = csub.add_parser(
        "verify", help="re-run a sample of cached points and diff bit-for-bit"
    )
    _common(cverify)
    cverify.add_argument("--sample", type=int, default=4)
    cverify.add_argument(
        "--workers", type=int, default=0,
        help="fan verification re-runs out over N worker processes (0 = inline)",
    )

    return parser


def _cmd_figures(args: argparse.Namespace) -> int:
    from .experiments import ALL_FIGURES, default_runner

    if not args.names and not args.all:
        print("Available figures:")
        for name, driver in ALL_FIGURES.items():
            print(f"  {name:15s} {driver.__doc__.strip().splitlines()[0]}")
        return 0

    names = list(ALL_FIGURES) if args.all else args.names
    unknown = [n for n in names if n not in ALL_FIGURES]
    if unknown:
        print(f"unknown figures: {', '.join(unknown)}", file=sys.stderr)
        return 2

    runner = default_runner(n_steps=args.steps)
    for name in names:
        result = ALL_FIGURES[name](runner)
        print(result.report)
        print()
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .core import PlatformConfig
    from .core.report import breakdown_table, time_series_table
    from .core.responses import ResponseRecord
    from .core.design import DesignPoint
    from .parallel import MDRunConfig, run_parallel_md
    from .workloads import myoglobin_system, myoglobin_workload

    try:
        config = PlatformConfig(
            network=args.network,
            middleware=args.middleware,
            cpus_per_node=args.cpus_per_node,
        )
        spec = config.cluster_spec(args.ranks, seed=args.seed)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(f"Simulating {spec.describe()}, {args.steps} MD steps...")
    mg = myoglobin_workload()
    result = run_parallel_md(
        myoglobin_system("pme"),
        mg.positions,
        spec,
        middleware=args.middleware,
        config=MDRunConfig(n_steps=args.steps),
    )
    point = DesignPoint(config=config, n_ranks=args.ranks)
    record = ResponseRecord.from_run(point, result)
    print(time_series_table([record]))
    print()
    print(breakdown_table([record], "classic"))
    print()
    print(breakdown_table([record], "pme"))
    stats = result.comm_stats()
    if stats.n_transfers:
        print(
            f"\ncommunication speed per node: mean {stats.mean:.1f} MB/s "
            f"[{stats.minimum:.1f}, {stats.maximum:.1f}] over {stats.n_transfers} transfers"
        )
    return 0


def _cmd_workload(_args: argparse.Namespace) -> int:
    from .workloads import myoglobin_workload

    mg = myoglobin_workload()
    topo = mg.topology
    by_segment: dict[str, int] = {}
    for atom in topo.atoms:
        by_segment[atom.segment] = by_segment.get(atom.segment, 0) + 1
    print("The benchmark system (paper Sec. 2.2, rebuilt synthetically):")
    print(f"  atoms:       {topo.n_atoms}")
    print(f"  charge:      {topo.total_charge():+.3f} e")
    print(f"  box:         {mg.box.lx} x {mg.box.ly} x {mg.box.lz} A")
    print(f"  PME mesh:    {mg.pme_grid[0]} x {mg.pme_grid[1]} x {mg.pme_grid[2]}")
    print(
        f"  bonded:      {len(topo.bonds)} bonds, {len(topo.angles)} angles, "
        f"{len(topo.dihedrals)} dihedrals, {len(topo.impropers)} impropers"
    )
    print("  segments:")
    for segment, count in sorted(by_segment.items()):
        print(f"    {segment:8s} {count:5d} atoms")
    return 0


def _analyze_lint(paths: list[str]) -> int:
    """Static layer of ``repro analyze``; returns the error count."""
    from pathlib import Path

    from .analysis import lint_paths

    if not paths:
        paths = [p for p in ("src", "tests") if Path(p).is_dir()]
        if not paths:
            print("error: no paths given and no ./src or ./tests here", file=sys.stderr)
            return 1
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path: {', '.join(map(str, missing))}", file=sys.stderr)
        return 1
    diags = lint_paths(paths)
    for diag in diags:
        print(diag.format())
    n_files = sum(
        1 if Path(p).is_file() else sum(1 for _ in Path(p).rglob("*.py")) for p in paths
    )
    errors = sum(1 for d in diags if d.severity == "error")
    print(
        f"analyze: linted {n_files} files under {', '.join(map(str, paths))}: "
        f"{errors} error(s), {len(diags) - errors} warning(s)"
    )
    return errors


def _analyze_sanitize_run(n_steps: int) -> int:
    """Dynamic layer of ``repro analyze --sanitize-run``.

    For 2 and 4 ranks under both middlewares: run the small workload
    plain and sanitized+traced, require zero invariant violations, a
    clean schedule diagnosis, and bit-identical comp/comm/sync totals.
    Returns the number of failures.
    """
    from .analysis import SanitizerError, analyze_trace
    from .analysis.rules import ERROR
    from .cluster import ClusterSpec, NodeSpec, score_gigabit_ethernet, tcp_gigabit_ethernet
    from .instrument.commstats import CommTrace
    from .md import CutoffScheme, MDSystem, default_forcefield
    from .parallel import MDRunConfig, run_parallel_md
    from .workloads import build_peptide_in_water

    ff = default_forcefield()
    topo, pos, box = build_peptide_in_water(n_residues=2, n_waters=12, forcefield=ff)
    system = MDSystem(
        topo, ff, box, CutoffScheme(r_cut=8.0, skin=1.5),
        electrostatics="pme", pme_grid=(16, 16, 16),
    )
    config = MDRunConfig(n_steps=n_steps, dt=0.0004)

    failures = 0
    for mw in ("mpi", "cmpi"):
        for ranks in (2, 4):
            spec = ClusterSpec(n_ranks=ranks, network=score_gigabit_ethernet(), seed=7)
            plain = run_parallel_md(system, pos, spec, middleware=mw, config=config)
            trace = CommTrace()
            try:
                sanitized = run_parallel_md(
                    system, pos, spec, middleware=mw, config=config,
                    sanitize=True, trace=trace,
                )
            except SanitizerError as exc:
                print(f"  {mw} p={ranks}: sanitizer violation: {exc}")
                failures += 1
                continue

            drift = []
            phases = {p for r in (plain, sanitized) for tl in r.timelines for p in tl.phases}
            for phase in sorted(phases):
                a, b = plain.component(phase), sanitized.component(phase)
                if (a.comp, a.comm, a.sync) != (b.comp, b.comm, b.sync):
                    drift.append(phase)
            diags = analyze_trace(trace, ranks)
            errors = [d for d in diags if d.severity == ERROR]
            for d in diags:
                print("  " + d.format())
            status = "ok"
            if drift:
                status = f"TIMING DRIFT in phases {drift}"
                failures += 1
            if errors:
                status = f"{len(errors)} schedule error(s)"
                failures += 1
            print(
                f"  {mw} p={ranks}: {len(trace)} events, "
                f"0 sanitizer violations, {status}"
            )

    # dual-processor interrupt-driven case: the trace must show the SMP
    # per-message cost multiplier on every send/recv (REP206)
    net = tcp_gigabit_ethernet()
    spec = ClusterSpec(
        n_ranks=4, network=net, node=NodeSpec(cpus_per_node=2), seed=7
    )
    trace = CommTrace()
    run_parallel_md(
        system, pos, spec, middleware="mpi", config=config,
        sanitize=True, trace=trace,
    )
    diags = analyze_trace(trace, 4, network=net, cpus_per_node=2)
    errors = [d for d in diags if d.severity == ERROR]
    for d in diags:
        print("  " + d.format())
    if errors:
        failures += 1
    print(
        f"  mpi p=4 dual tcp-gige: {len(trace)} events, SMP overhead "
        f"{'asserted' if not errors else 'VIOLATED'}"
    )
    print(f"analyze: sanitized runs {'passed' if failures == 0 else 'FAILED'}")
    return failures


def _cmd_analyze(args: argparse.Namespace) -> int:
    failures = _analyze_lint(list(args.paths))
    if args.sanitize_run:
        failures += _analyze_sanitize_run(args.steps)
    return 1 if failures else 0


def _campaign_engine(args: argparse.Namespace, n_workers: int = 0, **kw):
    from .campaign import CampaignEngine, ResultStore
    from .parallel import MDRunConfig

    return CampaignEngine(
        workload=args.workload,
        config=MDRunConfig(n_steps=args.steps),
        base_seed=args.seed,
        store=ResultStore(args.store),
        n_workers=n_workers,
        **kw,
    )


def _cmd_campaign(args: argparse.Namespace) -> int:
    from pathlib import Path

    if args.campaign_command == "run":
        from .core.design import DesignPoint, full_factorial, one_factor_at_a_time
        from .core.factors import FOCAL_POINT, PAPER_FACTOR_SPACE

        try:
            levels = tuple(int(p) for p in args.ranks.split(","))
        except ValueError:
            print(f"error: bad --ranks {args.ranks!r}", file=sys.stderr)
            return 2
        if args.design == "full":
            points = full_factorial(
                PAPER_FACTOR_SPACE, processor_levels=levels, replicates=args.replicates
            )
        elif args.design == "paper":
            points = one_factor_at_a_time(PAPER_FACTOR_SPACE, processor_levels=levels)
        else:
            points = [
                DesignPoint(config=FOCAL_POINT, n_ranks=p, replicate=r)
                for p in levels
                for r in range(args.replicates)
            ]
        try:
            engine = _campaign_engine(
                args,
                n_workers=args.workers,
                timeout=args.timeout,
                retries=args.retries,
                sanitize=args.sanitize_run,
                shared_compute=not args.no_shared_compute,
            )
            result = engine.run(points, progress=print)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(result.manifest.summary_line())
        return 0 if result.ok else 1

    if args.campaign_command == "status":
        from .campaign import CampaignManifest, ResultStore

        store = ResultStore(args.store)
        stats = store.describe()
        print(
            f"store {stats['root']}: {stats['entries']} entries in "
            f"{stats['shards']} shard(s), {stats['bytes']} bytes, "
            f"schema v{stats['schema']}"
        )
        manifest_dir = Path(args.store) / "manifests"
        for path in sorted(manifest_dir.glob("*.json")):
            try:
                print("  " + CampaignManifest.read(path).summary_line())
            except (ValueError, KeyError):
                print(f"  {path.name}: unreadable manifest", file=sys.stderr)
        return 0

    if args.campaign_command == "gc":
        from .campaign import ResultStore

        kept, dropped = ResultStore(args.store).gc()
        print(f"gc: kept {kept} entr{'y' if kept == 1 else 'ies'}, dropped {dropped}")
        return 0

    if args.campaign_command == "verify":
        try:
            engine = _campaign_engine(args)
            mismatches = engine.verify(sample=args.sample, n_workers=args.workers)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        for m in mismatches:
            print(
                f"  MISMATCH {m['label']} field {m['field']}: "
                f"stored {m['stored']!r} != rerun {m['rerun']!r}"
            )
        status = "ok" if not mismatches else "FAILED"
        print(f"verify: sampled cached points re-ran bit-identically: {status}")
        return 0 if not mismatches else 1

    raise AssertionError("unreachable")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "figures":
        return _cmd_figures(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "workload":
        return _cmd_workload(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":
    raise SystemExit(main())
