"""Task parallelism vs data parallelism — the paper's closing trade-off.

Motivation (Sec. 1): 'In most clusters currently used for CHARMM, the
utilization of parallelism is limited to executing multiple CHARMM
calculations at the same time (task parallelism)'.  Conclusion: 'running
a single CHARMM calculation faster provides a much shorter turn-around
increasing research productivity', but 'the cost of this additional
network must be evaluated carefully'.

This driver quantifies the trade-off on a 16-node cluster with J
independent calculations queued:

* **task parallel** — each job runs serially on its own node; makespan
  is ``ceil(J / 16) * t(1)``, per-job turnaround ``t(1)``;
* **data parallel (p ranks/job)** — jobs run with p-way parallelism,
  ``16/p`` at a time; makespan ``ceil(J / (16/p)) * t(p)``.

Everything follows from the measured ``t(p)`` of the platform, so the
answer differs per network — which is exactly the paper's point about
whether Myrinet is worth buying.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.design import DesignPoint
from ..core.factors import FOCAL_POINT
from ..core.report import format_table
from ..core.responses import ResponseRecord
from ..core.runner import CharacterizationRunner

__all__ = ["ThroughputPlan", "ThroughputStudy", "throughput_study"]

CLUSTER_NODES = 16


@dataclass(frozen=True)
class ThroughputPlan:
    """One way of running ``n_jobs`` calculations on the cluster."""

    network: str
    ranks_per_job: int
    job_time: float  # turnaround of a single calculation (s)
    concurrent_jobs: int
    makespan: float  # time until the whole batch finishes (s)

    @property
    def throughput(self) -> float:
        """Jobs per second of the steady-state pipeline."""
        return self.concurrent_jobs / self.job_time


@dataclass
class ThroughputStudy:
    """All plans for a batch plus the rendered comparison table."""

    n_jobs: int
    plans: list[ThroughputPlan]
    report: str

    def best_makespan(self, network: str) -> ThroughputPlan:
        candidates = [p for p in self.plans if p.network == network]
        if not candidates:
            raise ValueError(f"no plans for network {network!r}")
        return min(candidates, key=lambda p: p.makespan)

    def best_turnaround(self, network: str) -> ThroughputPlan:
        candidates = [p for p in self.plans if p.network == network]
        if not candidates:
            raise ValueError(f"no plans for network {network!r}")
        return min(candidates, key=lambda p: p.job_time)


def _plan(network: str, record: ResponseRecord, n_jobs: int) -> ThroughputPlan:
    p = record.n_ranks
    concurrent = max(1, CLUSTER_NODES // p)
    waves = math.ceil(n_jobs / concurrent)
    return ThroughputPlan(
        network=network,
        ranks_per_job=p,
        job_time=record.total_time,
        concurrent_jobs=concurrent,
        makespan=waves * record.total_time,
    )


def throughput_study(
    runner: CharacterizationRunner,
    n_jobs: int = 32,
    networks: tuple[str, ...] = ("tcp-gige", "score-gige", "myrinet"),
    processor_levels: tuple[int, ...] = (1, 2, 4, 8),
) -> ThroughputStudy:
    """Measure t(p) per network and derive batch plans for ``n_jobs``."""
    if n_jobs < 1:
        raise ValueError("n_jobs must be >= 1")
    plans: list[ThroughputPlan] = []
    for network in networks:
        cfg = FOCAL_POINT.with_level("network", network)
        records = runner.measure(
            [DesignPoint(config=cfg, n_ranks=p) for p in processor_levels]
        )
        for record in records:
            plans.append(_plan(network, record, n_jobs))

    rows = [
        [
            p.network,
            p.ranks_per_job,
            p.job_time,
            p.concurrent_jobs,
            p.makespan,
            3600.0 * p.throughput,
        ]
        for p in plans
    ]
    report = (
        f"== Task vs data parallelism: {n_jobs} calculations on "
        f"{CLUSTER_NODES} nodes ==\n"
        + format_table(
            [
                "network",
                "ranks/job",
                "turnaround (s)",
                "jobs at once",
                "makespan (s)",
                "jobs/hour",
            ],
            rows,
            precision=2,
        )
    )
    return ThroughputStudy(n_jobs=n_jobs, plans=plans, report=report)
