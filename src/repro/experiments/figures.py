"""One driver per figure of the paper's evaluation section.

Each ``figureN`` function runs (or recalls) the design points that figure
plots, and returns a :class:`FigureResult` with the structured series and
a printable report matching the paper's rows.  The benchmark harness under
``benchmarks/`` times these drivers and prints their reports; the
integration tests assert the paper's qualitative claims on the series.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.design import DesignPoint
from ..core.factors import FOCAL_POINT
from ..core.report import breakdown_table, speed_table, time_series_table
from ..core.responses import ResponseRecord
from ..core.runner import CharacterizationRunner
from ..parallel.pmd import MDRunConfig
from ..workloads.cache import myoglobin_system, myoglobin_workload

__all__ = [
    "FigureResult",
    "default_runner",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "fast_ethernet_comparison",
    "extrapolation",
    "grid_outlook",
    "ALL_FIGURES",
]

NETWORK_LEVELS = ("tcp-gige", "score-gige", "myrinet")


@dataclass
class FigureResult:
    """Structured output of one figure driver."""

    figure: str
    description: str
    records: list[ResponseRecord]
    report: str
    series: dict = field(default_factory=dict)

    def by_platform(self) -> dict[str, list[ResponseRecord]]:
        """Records grouped by platform label, each sorted by rank count."""
        groups: dict[str, list[ResponseRecord]] = {}
        for r in self.records:
            cpus = "uni" if r.cpus_per_node == 1 else "dual"
            groups.setdefault(f"{r.network}/{r.middleware}/{cpus}", []).append(r)
        for recs in groups.values():
            recs.sort(key=lambda r: r.n_ranks)
        return groups


def default_runner(n_steps: int = 10, store=None) -> CharacterizationRunner:
    """A runner over the paper's 3552-atom benchmark system.

    ``store`` optionally names a persistent
    :class:`~repro.campaign.store.ResultStore` so regenerated figures
    share design-point results with campaign runs (and with each other,
    across processes); warm-cache regeneration then performs no MD work.
    """
    mg = myoglobin_workload()
    return CharacterizationRunner(
        system=myoglobin_system("pme"),
        positions=mg.positions,
        config=MDRunConfig(n_steps=n_steps),
        store=store,
    )


# ----------------------------------------------------------------------
def figure3(runner: CharacterizationRunner) -> FigureResult:
    """Fig. 3: classic vs PME wall time, reference case, p = 1, 2, 4, 8."""
    records = runner.sweep(FOCAL_POINT)
    series = {
        "p": [r.n_ranks for r in records],
        "classic": [r.classic_time for r in records],
        "pme": [r.pme_time for r in records],
        "total": [r.total_time for r in records],
    }
    return FigureResult(
        figure="figure3",
        description="Execution time of the total energy calculation (reference case)",
        records=records,
        report=time_series_table(records, "Figure 3: TCP/IP + MPI + uni-processor"),
        series=series,
    )


def figure4(runner: CharacterizationRunner) -> FigureResult:
    """Fig. 4: % comp/comm/sync for classic (a) and PME (b), reference case."""
    records = runner.sweep(FOCAL_POINT)
    series = {
        "p": [r.n_ranks for r in records],
        "classic_overhead": [r.classic_overhead_fraction for r in records],
        "pme_overhead": [r.pme_overhead_fraction for r in records],
    }
    report = "\n\n".join(
        [
            breakdown_table(records, "classic", "Figure 4a: reference case"),
            breakdown_table(records, "pme", "Figure 4b: reference case"),
        ]
    )
    return FigureResult(
        figure="figure4",
        description="Breakdown of classic and PME energy calculations (reference case)",
        records=records,
        report=report,
        series=series,
    )


def figure5(runner: CharacterizationRunner) -> FigureResult:
    """Fig. 5: wall times for TCP/IP vs SCore vs Myrinet (MPI, uni)."""
    records: list[ResponseRecord] = []
    for network in NETWORK_LEVELS:
        records += runner.sweep(FOCAL_POINT.with_level("network", network))
    series = {
        network: [r.total_time for r in records if r.network == network]
        for network in NETWORK_LEVELS
    }
    series["p"] = sorted({r.n_ranks for r in records})
    return FigureResult(
        figure="figure5",
        description="Execution time of the total energy calculation for different networks",
        records=records,
        report=time_series_table(records, "Figure 5: networks (MPI, uni-processor)"),
        series=series,
    )


def figure6(runner: CharacterizationRunner) -> FigureResult:
    """Fig. 6: % breakdown per network, classic (a) and PME (b)."""
    records: list[ResponseRecord] = []
    for network in NETWORK_LEVELS:
        records += runner.sweep(FOCAL_POINT.with_level("network", network))
    series = {
        f"{network}_{comp}": [
            getattr(r, f"{comp}_overhead_fraction")
            for r in records
            if r.network == network
        ]
        for network in NETWORK_LEVELS
        for comp in ("classic", "pme")
    }
    report = "\n\n".join(
        [
            breakdown_table(records, "classic", "Figure 6a: networks"),
            breakdown_table(records, "pme", "Figure 6b: networks"),
        ]
    )
    return FigureResult(
        figure="figure6",
        description="Breakdown per network (MPI, uni-processor)",
        records=records,
        report=report,
        series=series,
    )


def figure7(runner: CharacterizationRunner) -> FigureResult:
    """Fig. 7: average and min/max per-node communication speed."""
    records: list[ResponseRecord] = []
    for network in NETWORK_LEVELS:
        cfg = FOCAL_POINT.with_level("network", network)
        points = [DesignPoint(config=cfg, n_ranks=p) for p in (2, 4, 8)]
        records += runner.measure(points)
    series = {
        network: {
            "mean": [r.comm_mean_mbs for r in records if r.network == network],
            "min": [r.comm_min_mbs for r in records if r.network == network],
            "max": [r.comm_max_mbs for r in records if r.network == network],
        }
        for network in NETWORK_LEVELS
    }
    return FigureResult(
        figure="figure7",
        description="Average and variability of communication speed per node",
        records=records,
        report=speed_table(records, "Figure 7: communication speed per node"),
        series=series,
    )


def figure8(runner: CharacterizationRunner) -> FigureResult:
    """Fig. 8: MPI vs CMPI middleware (TCP/IP, uni-processor)."""
    records = runner.sweep(FOCAL_POINT)
    records += runner.sweep(FOCAL_POINT.with_level("middleware", "cmpi"))
    series = {
        mw: {
            "classic": [r.classic_time for r in records if r.middleware == mw],
            "pme": [r.pme_time for r in records if r.middleware == mw],
            "total": [r.total_time for r in records if r.middleware == mw],
            "sync": [r.total_sync for r in records if r.middleware == mw],
        }
        for mw in ("mpi", "cmpi")
    }
    report = "\n\n".join(
        [
            time_series_table(records, "Figure 8a: middleware (TCP/IP, uni)"),
            breakdown_table(records, "total", "Figure 8b: middleware"),
        ]
    )
    return FigureResult(
        figure="figure8",
        description="Impact of the middleware (MPI vs CMPI)",
        records=records,
        report=report,
        series=series,
    )


def figure9(runner: CharacterizationRunner) -> FigureResult:
    """Fig. 9: uni vs dual CPUs per node, on TCP/IP (a) and Myrinet (b)."""
    records: list[ResponseRecord] = []
    for network in ("tcp-gige", "myrinet"):
        for cpus in (1, 2):
            cfg = FOCAL_POINT.with_level("network", network).with_level(
                "cpus_per_node", cpus
            )
            records += runner.sweep(cfg)
    series = {
        f"{network}_{'uni' if cpus == 1 else 'dual'}": [
            r.total_time
            for r in records
            if r.network == network and r.cpus_per_node == cpus
        ]
        for network in ("tcp-gige", "myrinet")
        for cpus in (1, 2)
    }
    return FigureResult(
        figure="figure9",
        description="Impact of dual-processor nodes (TCP/IP and Myrinet)",
        records=records,
        report=time_series_table(records, "Figure 9: uni vs dual processors"),
        series=series,
    )


# ---------------------------------------------------------------- extensions
def fast_ethernet_comparison(runner: CharacterizationRunner) -> FigureResult:
    """Sec. 4.1 prior-work claim: Fast Ethernet ~ Gigabit Ethernet on TCP/IP."""
    records = runner.sweep(FOCAL_POINT)
    records += runner.sweep(FOCAL_POINT.with_level("network", "tcp-fast-ethernet"))
    series = {
        net: [r.total_time for r in records if r.network == net]
        for net in ("tcp-gige", "tcp-fast-ethernet")
    }
    return FigureResult(
        figure="fast_ethernet",
        description="Fast Ethernet vs Gigabit Ethernet under TCP/IP (prior-work claim)",
        records=records,
        report=time_series_table(records, "Extension: Fast Ethernet vs GigE (TCP/IP)"),
        series=series,
    )


def extrapolation(runner: CharacterizationRunner) -> FigureResult:
    """Conclusion claim: scalability limits towards 16-32 processors."""
    records: list[ResponseRecord] = []
    for network in ("tcp-gige", "score-gige", "myrinet"):
        cfg = FOCAL_POINT.with_level("network", network)
        points = [DesignPoint(config=cfg, n_ranks=p) for p in (1, 2, 4, 8, 16)]
        records += runner.measure(points)
    series = {
        network: [r.total_time for r in records if r.network == network]
        for network in ("tcp-gige", "score-gige", "myrinet")
    }
    series["p"] = sorted({r.n_ranks for r in records})
    return FigureResult(
        figure="extrapolation",
        description="Scalability extrapolation to the full 16-node cluster",
        records=records,
        report=time_series_table(records, "Extension: scaling to 16 processors"),
        series=series,
    )


def grid_outlook(runner: CharacterizationRunner) -> FigureResult:
    """Conclusion claim: migration 'to the global computational grid'
    remains a particular challenge — estimate the damage.

    Runs the reference calculation at p=2 and p=4 over a simulated
    wide-area path and reports the slowdown versus the local cluster.
    """
    records = runner.measure(
        [DesignPoint(config=FOCAL_POINT, n_ranks=p) for p in (1, 2, 4)]
    )
    grid_cfg = FOCAL_POINT.with_level("network", "wide-area-grid")
    records += runner.measure(
        [DesignPoint(config=grid_cfg, n_ranks=p) for p in (2, 4)]
    )
    local = {r.n_ranks: r.total_time for r in records if r.network == "tcp-gige"}
    grid = {r.n_ranks: r.total_time for r in records if r.network == "wide-area-grid"}
    series = {
        "p": sorted(grid),
        "local": [local[p] for p in sorted(grid)],
        "grid": [grid[p] for p in sorted(grid)],
        "serial": local[1],
        "slowdown": [grid[p] / local[p] for p in sorted(grid)],
    }
    return FigureResult(
        figure="grid_outlook",
        description="Wide-area (grid) outlook for a single parallel calculation",
        records=records,
        report=time_series_table(records, "Extension: wide-area grid outlook"),
        series=series,
    )


#: Registry used by the benchmark harness.
ALL_FIGURES = {
    "figure3": figure3,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "fast_ethernet": fast_ethernet_comparison,
    "extrapolation": extrapolation,
    "grid_outlook": grid_outlook,
}
