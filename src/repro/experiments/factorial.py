"""The full factorial design (Sec. 3.1: 'we did benchmark CHARMM for all
12 cases with factors at all levels').

The paper gathers the complete 3 x 2 x 2 design but only discusses the
one-factor-at-a-time slices; this driver produces the whole table, plus a
main-effects summary quantifying each factor's impact — the analysis step
of Jain's methodology the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.design import DesignPoint, full_factorial
from ..core.factors import PAPER_FACTOR_SPACE
from ..core.report import format_table, time_series_table
from ..core.responses import ResponseRecord
from ..core.runner import CharacterizationRunner

__all__ = ["FactorialResult", "run_full_factorial", "main_effects"]


@dataclass
class FactorialResult:
    """All 12-case records, the rendered table and the main effects."""

    records: list[ResponseRecord]
    report: str
    effects: dict[str, float] = field(default_factory=dict)


def main_effects(records: list[ResponseRecord], n_ranks: int = 8) -> dict[str, float]:
    """Mean total-time ratio between the worst and best level per factor.

    A crude main-effects measure at one processor count: for each factor,
    average the total time per level (over all other factor settings) and
    report max/min.  Ratios near 1 mean the factor barely matters.
    """
    at_p = [r for r in records if r.n_ranks == n_ranks]
    if not at_p:
        raise ValueError(f"no records at n_ranks={n_ranks}")

    def level_means(key) -> dict:
        means: dict = {}
        for level in sorted({key(r) for r in at_p}):
            group = [r.total_time for r in at_p if key(r) == level]
            means[level] = sum(group) / len(group)
        return means

    out = {}
    for name, key in (
        ("network", lambda r: r.network),
        ("middleware", lambda r: r.middleware),
        ("cpus_per_node", lambda r: r.cpus_per_node),
    ):
        means = level_means(key)
        out[name] = max(means.values()) / min(means.values())
    return out


def run_full_factorial(
    runner: CharacterizationRunner | None,
    processor_levels: tuple[int, ...] = (1, 2, 4, 8),
    engine=None,
) -> FactorialResult:
    """Execute all 12 platform cases at every processor count.

    Execution goes through ``runner`` (in-process, store-memoized) or,
    when ``engine`` is given, through the campaign engine
    (:class:`~repro.campaign.engine.CampaignEngine`): cache hits are
    recalled from the shared store and misses fan out over the engine's
    worker pool.  Exactly one of the two must be provided.
    """
    points: list[DesignPoint] = full_factorial(
        PAPER_FACTOR_SPACE, processor_levels=processor_levels
    )
    if engine is not None:
        result = engine.run(points)
        if not result.ok:
            failed = [
                p.label for p in result.manifest.points
                if p.status in ("failed", "timeout")
            ]
            raise RuntimeError(f"campaign left unresolved points: {failed}")
        records = [r for r in result.records if r is not None]
    elif runner is not None:
        records = runner.measure(points)
    else:
        raise ValueError("provide a runner or a campaign engine")
    effects = main_effects(records, n_ranks=max(processor_levels))

    effect_rows = [[name, ratio] for name, ratio in effects.items()]
    report = (
        time_series_table(records, "Full factorial design (all 12 cases)")
        + "\n\n== Main effects at p="
        + str(max(processor_levels))
        + " (worst/best level ratio of mean total time) ==\n"
        + format_table(["factor", "ratio"], effect_rows, precision=2)
    )
    return FactorialResult(records=records, report=report, effects=effects)
