"""Experiment drivers: one per table/figure of the paper's evaluation."""

from .factorial import FactorialResult, main_effects, run_full_factorial
from .throughput import ThroughputPlan, ThroughputStudy, throughput_study
from .figures import (
    ALL_FIGURES,
    FigureResult,
    default_runner,
    extrapolation,
    fast_ethernet_comparison,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    grid_outlook,
)

__all__ = [
    "ALL_FIGURES",
    "default_runner",
    "extrapolation",
    "fast_ethernet_comparison",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "FigureResult",
    "grid_outlook",
    "FactorialResult",
    "main_effects",
    "run_full_factorial",
    "ThroughputPlan",
    "ThroughputStudy",
    "throughput_study",
]
