"""HTTP campaign coordinator: the lease board as a served system.

The file board (:mod:`repro.campaign.leases`) coordinates workers
through one JSON file on a shared filesystem; this package serves the
same lease semantics — publish / claim / heartbeat / complete /
release / TTL reclamation — over plain HTTP instead, for campaigns
whose workers share nothing but a network:

* :mod:`~repro.campaign.coordinator.wire` — the JSON-over-HTTP
  contract both ends import (routes, limits, error envelope);
* :mod:`~repro.campaign.coordinator.server` — the stdlib-only asyncio
  coordinator (``repro campaign coordinator`` runs one), backed by any
  :class:`~repro.campaign.board.Board` and serving read-only
  ``status`` / ``metrics`` / ``leases`` / ``runlog`` views live;
* :mod:`~repro.campaign.coordinator.client` — the blocking
  :class:`HttpBoardClient` workers use; a drop-in
  :class:`~repro.campaign.board.Board`, selected with
  ``--board http://HOST:PORT``.

Determinism is untouched: the coordinator moves lease bookkeeping, not
results, so a campaign run through it merges bit-identically to the
same campaign run off a file board (asserted in tests and nightly CI).
"""

from .client import HttpBoardClient, HttpBoardError
from .server import CoordinatorServer, CoordinatorThread
from .wire import WIRE_SCHEMA, WireError

__all__ = [
    "CoordinatorServer",
    "CoordinatorThread",
    "HttpBoardClient",
    "HttpBoardError",
    "WIRE_SCHEMA",
    "WireError",
]
