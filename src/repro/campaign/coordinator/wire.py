"""Coordinator wire format: the JSON-over-HTTP contract, in one place.

Both ends of the coordinator speak exactly what this module defines —
the server (:mod:`repro.campaign.coordinator.server`) parses requests
with it, the client (:mod:`repro.campaign.coordinator.client`) builds
them with it — so the contract cannot drift between the two.

The protocol is deliberately small: JSON bodies over HTTP/1.1 with
``Content-Length`` framing (chunked transfer is rejected — a
coordinator request is never large enough to stream).  Mutation verbs
are ``POST``; views are ``GET``::

    POST /v1/publish    {"campaign": {...}, "leases": [<lease doc>, ...]}
    POST /v1/claim      {"worker": str, "ttl": float}  -> {"lease": doc|null}
    POST /v1/heartbeat  {"key": str, "worker": str, "ttl": float} -> {"ok": bool}
    POST /v1/complete   {"key": str, "worker": str} -> {"ok": bool}
    POST /v1/release    {"key": str, "worker": str} -> {"ok": true}
    GET  /v1/health     liveness + wire schema version
    GET  /v1/campaign   the published campaign description
    GET  /v1/leases     {"leases": [<lease doc>, ...]}
    GET  /v1/counts     {"pending": n, "leased": n, "done": n}
    GET  /v1/status     dashboard_data() over the board (live JSON)
    GET  /v1/metrics    MetricsRegistry snapshot
    GET  /v1/runlog?n=K the coordinator run log's last K events
    GET  /v1/report?kind=K  latest published analysis report (404 until
                            ``campaign analyze`` saved one; kind defaults
                            to ``report``)

Lease documents are :meth:`repro.campaign.leases.Lease.to_doc` output,
verbatim — the board file and the wire share one schema, which is what
makes file and HTTP campaigns merge bit-identically.

Errors are ``{"error": msg, "kind": "board" | "http"}``: *board* errors
are lease-protocol failures the caller maps back to
:class:`~repro.campaign.leases.LeaseBoardError`; *http* errors are
transport misuse (bad route, torn body, oversized request) and get 4xx
statuses with a clean JSON body rather than a dropped connection.
"""

from __future__ import annotations

import json

__all__ = [
    "WIRE_SCHEMA",
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "MAX_REQUEST_LINE",
    "CORRELATION_HEADER",
    "REASONS",
    "WireError",
    "dumps",
    "loads",
    "error_doc",
    "str_field",
    "num_field",
    "list_field",
    "dict_field",
]

#: Version of this wire contract; served by ``GET /v1/health`` so a
#: client can refuse to talk across an incompatible upgrade.
WIRE_SCHEMA = 1

#: Hard cap on request bodies.  The largest legitimate request is a
#: ``publish`` of a full factorial campaign — a few hundred KiB — so
#: anything past 4 MiB is a bug or abuse and is rejected with 413.
MAX_BODY_BYTES = 4 << 20

#: Caps on the HTTP envelope itself (431 past either).
MAX_HEADER_BYTES = 16 * 1024
MAX_REQUEST_LINE = 8 * 1024

#: Requests and responses carry the correlation id in this header; the
#: coordinator echoes it back and stamps it on its run-log events, so a
#: worker-side failure can be joined to the coordinator's audit trail.
CORRELATION_HEADER = "X-Correlation-ID"

#: The status lines this protocol actually uses.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    411: "Length Required",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
}


class WireError(Exception):
    """A protocol violation, carrying the HTTP status to answer with.

    ``kind`` distinguishes transport misuse (``"http"``) from lease
    protocol failures (``"board"``); the client re-raises the latter as
    :class:`~repro.campaign.leases.LeaseBoardError`.
    """

    def __init__(self, status: int, message: str, kind: str = "http") -> None:
        super().__init__(message)
        self.status = status
        self.kind = kind

    def to_doc(self) -> dict:
        return error_doc(str(self), kind=self.kind)


def error_doc(message: str, kind: str = "http") -> dict:
    return {"error": message, "kind": kind}


def dumps(doc: dict) -> bytes:
    """Canonical UTF-8 JSON bytes (sorted keys, compact separators)."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode("utf-8")


def loads(body: bytes) -> dict:
    """Parse a request/response body; a non-object or torn body is a 400."""
    if not body:
        raise WireError(400, "empty request body (expected a JSON object)")
    try:
        doc = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise WireError(400, f"unparseable JSON body: {exc}") from None
    if not isinstance(doc, dict):
        raise WireError(400, "request body must be a JSON object")
    return doc


# -- field validators (server-side request checking) -----------------------
def str_field(doc: dict, name: str) -> str:
    value = doc.get(name)
    if not isinstance(value, str) or not value:
        raise WireError(400, f"field {name!r} must be a non-empty string")
    return value


def num_field(doc: dict, name: str, default: float | None = None) -> float:
    value = doc.get(name, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise WireError(400, f"field {name!r} must be a number")
    return float(value)


def list_field(doc: dict, name: str) -> list:
    value = doc.get(name)
    if not isinstance(value, list):
        raise WireError(400, f"field {name!r} must be a list")
    return value


def dict_field(doc: dict, name: str) -> dict:
    value = doc.get(name)
    if not isinstance(value, dict):
        raise WireError(400, f"field {name!r} must be a JSON object")
    return value
