"""The asyncio HTTP campaign coordinator.

One :class:`CoordinatorServer` process replaces the shared-filesystem
lease file for campaigns whose workers share nothing but a network: it
owns a :class:`~repro.campaign.board.Board` (by default a
:class:`~repro.campaign.leases.LeaseBoard` over a local state file, so
restarts reload in-flight campaigns for free) and serves the lease
protocol plus read-only views over plain HTTP/1.1 — stdlib only, no
framework.

Concurrency model (as deliberately boring as the file board's):

* requests are parsed asynchronously, but every board mutation is a
  synchronous call made between awaits — the event loop serializes
  them, so two racing ``claim`` requests can never observe the same
  board state and double-assign a key;
* liveness stays lease expiry: the coordinator's clock (injectable for
  tests) decides TTL reclamation exactly as the file board does, so a
  worker crash costs one TTL over HTTP too;
* state survives restarts because the backing board is the persistence:
  kill the coordinator, start it on the same state file, and every
  lease — held, expired, or done — is where it was.

Observability is the repo's usual plumbing: every request increments
``coordinator.requests`` (by route) in the global
:class:`~repro.instrument.metrics.MetricsRegistry`, every mutation is
appended to a :class:`~repro.instrument.runlog.RunLog` with the
caller's correlation id, and ``GET /v1/status|metrics|leases|runlog``
serve live JSON mid-campaign.

Wall-clock reads here are real coordination time (lease deadlines, log
timestamps), hence the ``noqa: REP104`` markers; tests inject ``now``.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from pathlib import Path
from urllib.parse import parse_qs, urlsplit

from ...instrument.metrics import REGISTRY
from ...instrument.runlog import RunLog
from ..board import Board
from ..dashboard import dashboard_data
from ..leases import Lease, LeaseBoard, LeaseBoardError
from . import wire

__all__ = ["CoordinatorServer", "CoordinatorThread"]


class CoordinatorServer:
    """The coordinator: a board served over asyncio HTTP.

    Parameters
    ----------
    board:
        The backing :class:`~repro.campaign.board.Board`, or a state
        file path to open a :class:`~repro.campaign.leases.LeaseBoard`
        over (the restart-survival story).
    host, port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    now:
        Clock for TTL decisions and log timestamps; tests inject a fake.
        Only consulted when the server constructs its own ``LeaseBoard``
        (a pre-built board keeps the clock it was built with).
    runlog:
        Coordinator audit log; defaults to an in-memory
        :class:`~repro.instrument.runlog.RunLog` (served by
        ``GET /v1/runlog``).  Pass a file-backed one to persist it.
    max_body, read_timeout:
        Request hygiene: bodies over ``max_body`` bytes are rejected
        with 413; a connection idle or stalled past ``read_timeout``
        seconds mid-request is answered 408 and dropped.
    report_dir:
        Directory holding published analysis reports
        (``<kind>-latest.json``, as written by
        :func:`~repro.campaign.analytics.run_analysis` into
        ``<store>/reports``).  When set, ``GET /v1/report?kind=K``
        serves the latest document read-only; when unset the endpoint
        answers 404.
    """

    def __init__(
        self,
        board: Board | str | Path,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        now=None,
        runlog: RunLog | None = None,
        max_body: int = wire.MAX_BODY_BYTES,
        read_timeout: float = 30.0,
        report_dir: str | Path | None = None,
    ) -> None:
        self._now = now if now is not None else time.time  # noqa: REP104 — lease deadlines
        if not isinstance(board, Board):
            board = LeaseBoard(board, now=self._now)
        self.board = board
        self.host = host
        self.port = port
        self.runlog = runlog if runlog is not None else RunLog(None, now=self._now)
        self.runlog.context.setdefault("role", "coordinator")
        self.max_body = max_body
        self.read_timeout = read_timeout
        self.report_dir = Path(report_dir) if report_dir is not None else None
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.Task] = set()

    # -- lifecycle ------------------------------------------------------
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def start(self) -> None:
        """Bind and start accepting; resolves :attr:`port` when it was 0."""
        self._server = await asyncio.start_server(self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self.runlog.log("coordinator_start", url=self.url, board=self.board.describe())

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
            self.runlog.log("coordinator_stop", url=self.url)
        # wait_closed() covers the listener only; drop the established
        # keep-alive connections too, so stop() leaves no pending tasks
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # -- one connection -------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except wire.WireError as exc:
                    # protocol misuse: answer cleanly, then drop the
                    # connection (framing can no longer be trusted)
                    REGISTRY.counter("coordinator.http_errors").increment(status=exc.status)
                    writer.write(self._format_response(exc.status, exc.to_doc(), close=True))
                    await writer.drain()
                    break
                if request is None:  # clean EOF between requests
                    break
                method, path, query, headers, body = request
                corr = headers.get(wire.CORRELATION_HEADER.lower())
                status, doc = self._dispatch(method, path, query, body, corr)
                writer.write(self._format_response(status, doc, corr=corr))
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass  # peer vanished or stop() cancelled us; lease TTLs recover
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader):
        """Parse one HTTP/1.1 request; None on clean EOF before a request."""
        try:
            line = await asyncio.wait_for(reader.readline(), self.read_timeout)
        except asyncio.TimeoutError:
            raise wire.WireError(408, "timed out waiting for a request line") from None
        if not line:
            return None
        if len(line) > wire.MAX_REQUEST_LINE:
            raise wire.WireError(431, "request line too long")
        parts = line.decode("latin-1").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
            raise wire.WireError(400, "malformed HTTP request line")
        method, target = parts[0], parts[1]
        split = urlsplit(target)
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}

        headers: dict[str, str] = {}
        header_bytes = 0
        while True:
            try:
                raw = await asyncio.wait_for(reader.readline(), self.read_timeout)
            except asyncio.TimeoutError:
                raise wire.WireError(408, "timed out reading headers") from None
            if raw in (b"\r\n", b"\n"):
                break
            if not raw:
                raise wire.WireError(400, "connection closed mid-headers")
            header_bytes += len(raw)
            if header_bytes > wire.MAX_HEADER_BYTES:
                raise wire.WireError(431, f"headers over {wire.MAX_HEADER_BYTES} byte limit")
            name, sep, value = raw.decode("latin-1").partition(":")
            if not sep:
                raise wire.WireError(400, f"malformed header line {raw[:64]!r}")
            headers[name.strip().lower()] = value.strip()

        body = b""
        if "transfer-encoding" in headers:
            raise wire.WireError(411, "chunked bodies not supported; send Content-Length")
        length = headers.get("content-length")
        if length is not None:
            try:
                n = int(length)
            except ValueError:
                raise wire.WireError(400, f"unparseable Content-Length {length!r}") from None
            if n < 0:
                raise wire.WireError(400, "negative Content-Length")
            if n > self.max_body:
                raise wire.WireError(413, f"request body over {self.max_body} byte limit")
            try:
                body = await asyncio.wait_for(reader.readexactly(n), self.read_timeout)
            except asyncio.IncompleteReadError as exc:
                raise wire.WireError(
                    400,
                    f"torn request body: got {len(exc.partial)} of {n} declared bytes",
                ) from None
            except asyncio.TimeoutError:
                raise wire.WireError(408, "timed out reading the request body") from None
        return method, split.path, query, headers, body

    def _format_response(self, status, doc, corr=None, close=False) -> bytes:
        payload = wire.dumps(doc)
        head = [
            f"HTTP/1.1 {status} {wire.REASONS.get(status, 'Error')}",
            "Content-Type: application/json",
            f"Content-Length: {len(payload)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        if corr:
            head.append(f"{wire.CORRELATION_HEADER}: {corr}")
        return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + payload

    # -- routing --------------------------------------------------------
    #: route table: (method, path) -> handler attribute.  Mutations POST,
    #: views GET; a known path with the wrong method answers 405.
    ROUTES = {
        ("POST", "/v1/publish"): "_do_publish",
        ("POST", "/v1/claim"): "_do_claim",
        ("POST", "/v1/heartbeat"): "_do_heartbeat",
        ("POST", "/v1/complete"): "_do_complete",
        ("POST", "/v1/release"): "_do_release",
        ("GET", "/v1/health"): "_get_health",
        ("GET", "/v1/campaign"): "_get_campaign",
        ("GET", "/v1/leases"): "_get_leases",
        ("GET", "/v1/counts"): "_get_counts",
        ("GET", "/v1/status"): "_get_status",
        ("GET", "/v1/metrics"): "_get_metrics",
        ("GET", "/v1/runlog"): "_get_runlog",
        ("GET", "/v1/report"): "_get_report",
    }

    def _dispatch(self, method, path, query, body, corr):
        """Route one parsed request; returns ``(status, response doc)``.

        Handlers run synchronously (no awaits), which is the
        double-assignment guarantee: the event loop cannot interleave
        two mutations.
        """
        name = self.ROUTES.get((method, path))
        if name is None:
            known_paths = {p for _, p in self.ROUTES}
            status = 405 if path in known_paths else 404
            REGISTRY.counter("coordinator.http_errors").increment(status=status)
            return status, wire.error_doc(
                f"method {method} not allowed for {path}" if status == 405
                else f"unknown endpoint {path}"
            )
        REGISTRY.counter("coordinator.requests").increment(route=path.rsplit("/", 1)[-1])
        try:
            doc = wire.loads(body) if method == "POST" else {}
            return 200, getattr(self, name)(doc, query, corr)
        except wire.WireError as exc:
            REGISTRY.counter("coordinator.http_errors").increment(status=exc.status)
            return exc.status, exc.to_doc()
        except LeaseBoardError as exc:
            # lease-protocol failure (e.g. nothing published yet): a
            # board-kind error the client maps back to LeaseBoardError
            return 409, wire.error_doc(str(exc), kind="board")
        except Exception as exc:  # a handler bug must not kill the server
            REGISTRY.counter("coordinator.http_errors").increment(status=500)
            self.runlog.log("coordinator_error", error=f"{type(exc).__name__}: {exc}")
            return 500, wire.error_doc(f"{type(exc).__name__}: {exc}")

    # -- mutation handlers ----------------------------------------------
    def _do_publish(self, doc, query, corr):
        campaign = wire.dict_field(doc, "campaign")
        lease_docs = wire.list_field(doc, "leases")
        try:
            leases = [Lease.from_doc(entry) for entry in lease_docs]
        except (KeyError, TypeError) as exc:
            raise wire.WireError(400, f"malformed lease document: {exc}") from None
        self.board.publish(campaign, leases)
        self.runlog.log("publish", leases=len(leases), correlation=corr)
        return {"ok": True, "leases": len(leases)}

    def _do_claim(self, doc, query, corr):
        worker = wire.str_field(doc, "worker")
        ttl = wire.num_field(doc, "ttl", 300.0)
        lease = self.board.claim(worker, ttl=ttl)
        if lease is not None:
            self.runlog.log(
                "claim", key=lease.key, worker=worker,
                attempt=lease.attempts, correlation=corr,
            )
        return {"lease": None if lease is None else lease.to_doc()}

    def _do_heartbeat(self, doc, query, corr):
        key = wire.str_field(doc, "key")
        worker = wire.str_field(doc, "worker")
        ttl = wire.num_field(doc, "ttl", 300.0)
        ok = self.board.heartbeat(key, worker, ttl=ttl)
        self.runlog.log("heartbeat", key=key, worker=worker, ok=ok, correlation=corr)
        return {"ok": ok}

    def _do_complete(self, doc, query, corr):
        key = wire.str_field(doc, "key")
        worker = wire.str_field(doc, "worker")
        ok = self.board.complete(key, worker)
        self.runlog.log("complete", key=key, worker=worker, ok=ok, correlation=corr)
        return {"ok": ok}

    def _do_release(self, doc, query, corr):
        key = wire.str_field(doc, "key")
        worker = wire.str_field(doc, "worker")
        self.board.release(key, worker)
        self.runlog.log("release", key=key, worker=worker, correlation=corr)
        return {"ok": True}

    # -- view handlers ---------------------------------------------------
    def _get_health(self, doc, query, corr):
        return {"ok": True, "schema": wire.WIRE_SCHEMA, "board": self.board.describe()}

    def _get_campaign(self, doc, query, corr):
        return self.board.campaign()

    def _get_leases(self, doc, query, corr):
        return {"leases": [lease.to_doc() for lease in self.board.leases()]}

    def _get_counts(self, doc, query, corr):
        return self.board.counts()

    def _get_status(self, doc, query, corr):
        try:
            return dashboard_data(None, self.board, now=self._now())
        except LeaseBoardError:
            return dashboard_data(None, None, now=self._now())  # nothing published yet

    def _get_metrics(self, doc, query, corr):
        return REGISTRY.snapshot()

    def _get_runlog(self, doc, query, corr):
        try:
            n = int(query.get("n", 100))
        except ValueError:
            raise wire.WireError(400, "query parameter 'n' must be an integer") from None
        events = self.runlog.events[-max(n, 0):] if n else []
        return {"events": events}

    def _get_report(self, doc, query, corr):
        """Serve the latest published analysis report, read-only.

        ``kind`` selects the analyzer (default ``report``); the bytes
        come straight from the canonical JSON ``run_analysis`` saved, so
        what the endpoint serves is exactly what the byte-identity
        contract covers.
        """
        if self.report_dir is None:
            raise wire.WireError(404, "coordinator started without --reports")
        kind = query.get("kind", "report")
        if not kind.isidentifier():  # path-traversal hygiene before building the name
            raise wire.WireError(400, f"invalid report kind {kind!r}")
        path = self.report_dir / f"{kind}-latest.json"
        if not path.is_file():
            raise wire.WireError(404, f"no {kind!r} report published yet")
        try:
            return json.loads(path.read_text())
        except ValueError as exc:
            raise wire.WireError(500, f"saved {kind!r} report is unreadable: {exc}") from None


class CoordinatorThread:
    """Run a :class:`CoordinatorServer` on a daemon thread.

    The embedding idiom for tests and in-process tooling::

        with CoordinatorThread(tmp_path / "board.json") as coord:
            client = HttpBoardClient(coord.url)
            ...

    The CLI (``repro campaign coordinator``) runs the server on the
    main thread instead; this helper exists so a synchronous caller can
    stand a live coordinator up without touching asyncio.
    """

    def __init__(self, board: Board | str | Path, **kw) -> None:
        self.server = CoordinatorServer(board, **kw)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return self.server.url

    def __enter__(self) -> "CoordinatorThread":
        started = threading.Event()
        failure: list[BaseException] = []
        self._loop = asyncio.new_event_loop()

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            try:
                self._loop.run_until_complete(self.server.start())
            except BaseException as exc:  # bind failure: surface in __enter__
                failure.append(exc)
                started.set()
                return
            started.set()
            self._loop.run_forever()

        self._thread = threading.Thread(target=run, name="repro-coordinator", daemon=True)
        self._thread.start()
        if not started.wait(timeout=10.0):
            raise RuntimeError("coordinator failed to start within 10 s")
        if failure:
            raise failure[0]
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is None:
            return
        future = asyncio.run_coroutine_threadsafe(self.server.stop(), self._loop)
        try:
            future.result(timeout=10.0)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
            self._loop.close()
            self._loop = None
