"""``HttpBoardClient``: the lease board spoken over HTTP.

A thin, blocking, stdlib-only (:mod:`http.client`) implementation of
:class:`~repro.campaign.board.Board` against a running
:class:`~repro.campaign.coordinator.server.CoordinatorServer`.  Workers
are synchronous loops — claim, execute for seconds-to-minutes,
complete — so a blocking client with one keep-alive connection is the
right shape; the coordinator end is where concurrency lives.

Failure mapping keeps worker code backend-agnostic:

* lease-protocol failures the server reports (``kind: "board"``) are
  re-raised as :class:`~repro.campaign.leases.LeaseBoardError`, exactly
  what the file board raises;
* transport failures (unreachable coordinator, torn response) raise
  :class:`HttpBoardError`, a ``LeaseBoardError`` subclass, so existing
  ``except LeaseBoardError`` call sites (the CLI, tests) already handle
  them.  Idempotent requests retry once over a fresh connection before
  giving up — a coordinator restart mid-campaign costs workers one
  reconnect, not the campaign.

Each client stamps every request with a correlation id
(``<worker-guess>-<seq>`` under a random session prefix) that the
coordinator echoes back and records in its run log, joining worker-side
and coordinator-side audit trails.

A client instance is not thread-safe (one underlying connection); give
each worker thread its own.
"""

from __future__ import annotations

import http.client
import itertools
import uuid
from urllib.parse import urlsplit

from ..board import Board
from ..leases import Lease, LeaseBoardError
from . import wire

__all__ = ["HttpBoardClient", "HttpBoardError"]


class HttpBoardError(LeaseBoardError):
    """The coordinator is unreachable or answered with transport misuse."""


class HttpBoardClient(Board):
    """A :class:`~repro.campaign.board.Board` backed by a coordinator URL.

    Parameters
    ----------
    url:
        ``http://HOST:PORT`` (an optional path prefix is honoured, for
        a coordinator mounted behind a reverse proxy).
    timeout:
        Per-request socket timeout in seconds.
    retries:
        Extra attempts over a fresh connection after a transport error.
    """

    def __init__(self, url: str, *, timeout: float = 30.0, retries: int = 1) -> None:
        split = urlsplit(url if "//" in url else "http://" + url)
        if split.scheme not in ("http", "https"):
            raise ValueError(f"unsupported board URL scheme {split.scheme!r}")
        if not split.hostname:
            raise ValueError(f"no host in board URL {url!r}")
        self.url = url
        self.scheme = split.scheme
        self.host = split.hostname
        self.port = split.port or (443 if split.scheme == "https" else 80)
        self.prefix = split.path.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self._conn: http.client.HTTPConnection | None = None
        self._corr_prefix = uuid.uuid4().hex[:8]
        self._corr_seq = itertools.count(1)

    def describe(self) -> str:
        return f"http board {self.url}"

    # -- transport ------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            factory = (
                http.client.HTTPSConnection if self.scheme == "https"
                else http.client.HTTPConnection
            )
            self._conn = factory(self.host, self.port, timeout=self.timeout)
        return self._conn

    def _drop_connection(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None

    def close(self) -> None:
        """Drop the keep-alive connection (idempotent)."""
        self._drop_connection()

    def __enter__(self) -> "HttpBoardClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(self, method: str, path: str, doc: dict | None = None) -> dict:
        """One round trip; returns the parsed response document.

        Transport errors retry ``self.retries`` times over a fresh
        connection (every protocol verb is idempotent or safely
        re-runnable: ``claim`` re-finds the same lease for the same
        worker, ``complete``/``release``/``heartbeat`` are absorbing).
        """
        body = wire.dumps(doc) if doc is not None else None
        corr = f"{self._corr_prefix}-{next(self._corr_seq)}"
        headers = {wire.CORRELATION_HEADER: corr, "Accept": "application/json"}
        if body is not None:
            headers["Content-Type"] = "application/json"
        last_error: Exception | None = None
        for _attempt in range(self.retries + 1):
            conn = self._connection()
            try:
                conn.request(method, self.prefix + path, body=body, headers=headers)
                response = conn.getresponse()
                payload = response.read()
            except (ConnectionError, http.client.HTTPException, OSError, TimeoutError) as exc:
                last_error = exc
                self._drop_connection()
                continue
            if response.will_close:
                self._drop_connection()
            try:
                answer = wire.loads(payload)
            except wire.WireError as exc:
                raise HttpBoardError(
                    f"coordinator at {self.url} answered unparseable JSON "
                    f"(status {response.status}): {exc}"
                ) from None
            if response.status >= 400:
                message = answer.get("error", f"HTTP {response.status}")
                if answer.get("kind") == "board":
                    raise LeaseBoardError(message)
                raise HttpBoardError(
                    f"coordinator at {self.url} rejected {method} {path}: "
                    f"{message} (HTTP {response.status})"
                )
            return answer
        raise HttpBoardError(
            f"coordinator at {self.url} unreachable after "
            f"{self.retries + 1} attempt(s): {last_error}"
        )

    # -- the Board protocol ---------------------------------------------
    def publish(self, campaign: dict, leases: list[Lease]) -> None:
        self._request(
            "POST", "/v1/publish",
            {"campaign": campaign, "leases": [lease.to_doc() for lease in leases]},
        )

    def claim(self, worker: str, ttl: float = 300.0) -> Lease | None:
        answer = self._request("POST", "/v1/claim", {"worker": worker, "ttl": ttl})
        doc = answer.get("lease")
        return None if doc is None else Lease.from_doc(doc)

    def heartbeat(self, key: str, worker: str, ttl: float = 300.0) -> bool:
        answer = self._request(
            "POST", "/v1/heartbeat", {"key": key, "worker": worker, "ttl": ttl}
        )
        return bool(answer.get("ok"))

    def complete(self, key: str, worker: str) -> bool:
        answer = self._request("POST", "/v1/complete", {"key": key, "worker": worker})
        return bool(answer.get("ok"))

    def release(self, key: str, worker: str) -> None:
        self._request("POST", "/v1/release", {"key": key, "worker": worker})

    def campaign(self) -> dict:
        return self._request("GET", "/v1/campaign")

    def leases(self) -> list[Lease]:
        answer = self._request("GET", "/v1/leases")
        return [Lease.from_doc(doc) for doc in answer.get("leases", [])]

    def counts(self) -> dict[str, int]:
        # one GET instead of shipping every lease document back
        return {str(k): int(v) for k, v in self._request("GET", "/v1/counts").items()}

    # -- coordinator views beyond the Board protocol ---------------------
    def health(self) -> dict:
        return self._request("GET", "/v1/health")

    def status(self) -> dict:
        """The coordinator's live dashboard document (board-side view)."""
        return self._request("GET", "/v1/status")

    def metrics(self) -> dict:
        """The coordinator process's MetricsRegistry snapshot."""
        return self._request("GET", "/v1/metrics")

    def runlog_tail(self, n: int = 100) -> list[dict]:
        """The last ``n`` events of the coordinator's audit run log."""
        answer = self._request("GET", f"/v1/runlog?n={int(n)}")
        return list(answer.get("events", []))

    def report(self, kind: str = "report") -> dict:
        """The latest published analysis report of one kind.

        Raises :class:`HttpBoardError` (404) until the coordinator was
        started with ``--reports`` and a ``campaign analyze`` run has
        saved that report.
        """
        return self._request("GET", f"/v1/report?kind={kind}")
