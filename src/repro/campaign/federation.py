"""Multi-host campaign fan-out: publish, work, merge, audit.

The three verbs of a federated campaign:

* :func:`publish_campaign` — one host enumerates the design points and
  writes the lease board (:mod:`repro.campaign.leases`);
* :func:`work_campaign` — any number of hosts pull leases, execute the
  points through the exact single-host path
  (:func:`repro.campaign.engine.execute_point`) into their *own* result
  stores, and mark leases done;
* :func:`merge_into_store` — the worker stores fold back into one, with
  per-host provenance recorded in a merge manifest.

Everything rests on determinism: cache keys and per-point platform
seeds are pure functions of the published campaign description, so any
host computes the same key for the same point, and any two hosts that
execute the same point produce bit-identical records.  That is what
makes merging trivially safe (duplicates dedup, disagreements raise)
and what :func:`verify_stores_match` audits after a merge.
"""

from __future__ import annotations

import hashlib
import time
from pathlib import Path
from typing import Callable, Iterable

import json

from ..core.design import DesignPoint
from ..instrument.metrics import REGISTRY, merge_metrics
from ..instrument.runlog import RunLog
from ..parallel.costmodel import PIII_1GHZ, MachineCostModel
from ..parallel.pmd import MDRunConfig
from . import manifest as mf
from .board import Board, board_from_url
from .engine import CampaignEngine, execute_point
from .keys import SCHEMA_VERSION, cost_fingerprint
from .leases import Lease
from .store import ResultStore, record_digest

__all__ = [
    "publish_campaign",
    "work_campaign",
    "merge_into_store",
    "verify_stores_match",
]


# ---------------------------------------------------------------------------
def publish_campaign(
    engine: CampaignEngine,
    points: Iterable[DesignPoint],
    board: Board | str | Path,
    now: Callable[[], float] | None = None,
) -> dict:
    """Publish one campaign to a lease board; returns a summary dict.

    ``board`` is any :class:`~repro.campaign.board.Board`, or a board
    URL / file path resolved through
    :func:`~repro.campaign.board.board_from_url` (the historical
    path-only call form keeps working).

    The board carries everything a worker needs to reconstruct the
    engine *exactly* — workload name, every run-config field, base seed,
    sanitize flag — plus the cost-model fingerprint so a worker whose
    build carries a different calibration refuses to run rather than
    poison the store.  Points already satisfied by the serving store are
    published as ``done`` (workers skip them).
    """
    points = list(points)
    board = board_from_url(board, now=now)
    campaign = {
        "schema": SCHEMA_VERSION,
        "workload": engine.workload,
        "config": {
            name: getattr(engine.config, name)
            for name in ("n_steps", "dt", "temperature", "velocity_seed", "barrier_per_step")
        },
        "base_seed": engine.base_seed,
        "cost": cost_fingerprint(engine.cost),
        "sanitize": engine.sanitize,
    }
    leases = []
    n_done = 0
    for point in points:
        key = engine.key_for(point)
        state = "done" if key in engine.store else "pending"
        n_done += state == "done"
        leases.append(
            Lease(key=key, label=point.label(), point=point.to_doc(), state=state)
        )
    board.publish(campaign, leases)
    return {
        "leases": len(leases),
        "pending": len(leases) - n_done,
        "done": n_done,
        "campaign_id": campaign_id_for([lease.key for lease in leases]),
    }


def campaign_id_for(keys: Iterable[str]) -> str:
    """The same id :class:`CampaignEngine` derives for this point set."""
    h = hashlib.sha256()
    for k in sorted(keys):
        h.update(k.encode())
    return h.hexdigest()[:12]


def engine_for_board(
    board: Board,
    store: ResultStore,
    cost: MachineCostModel = PIII_1GHZ,
) -> CampaignEngine:
    """Reconstruct the published campaign's engine over a local store.

    Raises ``ValueError`` when this build's cost model does not match
    the published fingerprint — a mis-calibrated worker would execute
    runs whose keys disagree with the board, so it must not start.
    """
    campaign = board.campaign()
    if cost_fingerprint(cost) != campaign["cost"]:
        raise ValueError(
            "this worker's machine cost model does not match the published "
            "campaign (fingerprint mismatch) — refusing to execute"
        )
    if campaign["schema"] != SCHEMA_VERSION:
        raise ValueError(
            f"lease board published under schema v{campaign['schema']}, "
            f"this build speaks v{SCHEMA_VERSION}"
        )
    return CampaignEngine(
        workload=campaign["workload"],
        config=MDRunConfig(**campaign["config"]),
        cost=cost,
        base_seed=campaign["base_seed"],
        store=store,
        sanitize=campaign["sanitize"],
    )


# ---------------------------------------------------------------------------
def work_campaign(
    board: Board | str | Path,
    store: ResultStore,
    worker: str,
    ttl: float = 300.0,
    max_points: int | None = None,
    cost: MachineCostModel = PIII_1GHZ,
    now: Callable[[], float] | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict:
    """Pull leases and execute them until the board runs dry.

    ``board`` is any :class:`~repro.campaign.board.Board`, or a board
    URL / file path resolved through
    :func:`~repro.campaign.board.board_from_url` — ``file:PATH`` (or a
    bare path, the historical call form) for the shared-filesystem
    board, ``http://HOST:PORT`` for a running coordinator.

    Each claimed point runs through :func:`execute_point` — the same
    code path as every single-host mode — and lands in this worker's
    ``store`` with host/worker provenance in the entry metadata.  The
    lease's deadline is re-extended (heartbeat) after execution, then
    marked done; a point that raises is released back to the board.

    Defence in depth: the lease key must equal the key this worker
    derives for the point.  A mismatch means the board and the build
    disagree about what a point *is*, and executing would store a record
    under an address other hosts cannot reproduce.
    """
    board = board_from_url(board, now=now)
    engine = engine_for_board(board, store, cost=cost)
    campaign_id = campaign_id_for(lease.key for lease in board.leases())
    log_path = None
    if store.root is not None:
        log_path = store.root / "logs" / f"worker-{worker}.jsonl"
    runlog = RunLog(log_path, campaign=campaign_id, worker=worker)
    metrics_before = REGISTRY.snapshot()
    stats = {"claimed": 0, "executed": 0, "hits": 0, "failed": 0, "lost": 0}
    while max_points is None or stats["claimed"] < max_points:
        lease = board.claim(worker, ttl=ttl)
        if lease is None:
            break
        stats["claimed"] += 1
        attempt = lease.attempts
        plog = runlog.bind(key=lease.key, label=lease.label, attempt=attempt)
        plog.log("lease_claim")
        point = DesignPoint.from_doc(lease.point)
        derived = engine.key_for(point)
        if derived != lease.key:
            board.release(lease.key, worker)
            plog.log("lease_release", reason="key mismatch")
            raise ValueError(
                f"lease {lease.key[:12]}… does not match this build's key "
                f"{derived[:12]}… for {lease.label!r} — board and worker "
                "disagree about the campaign"
            )
        if lease.key in store:
            # already satisfied locally (a resumed worker); just settle it
            stats["hits"] += 1
            board.complete(lease.key, worker)
            plog.log("point_hit")
            continue
        t0 = time.monotonic()  # noqa: REP104 — harness wall time
        try:
            record = execute_point(
                engine.workload, point, engine.config, engine.cost,
                engine.base_seed, sanitize=engine.sanitize,
                shared_compute=engine.shared_compute,
                span_trace_path=engine._point_trace(lease.key),
            )
        except Exception as exc:
            stats["failed"] += 1
            board.release(lease.key, worker)
            plog.log("lease_release", error=f"{type(exc).__name__}: {exc}")
            if progress is not None:
                progress(f"{worker}: {lease.label} FAILED ({type(exc).__name__}: {exc})")
            continue
        elapsed = time.monotonic() - t0  # noqa: REP104
        meta = engine._meta(point, elapsed, attempts=lease.attempts + 1)
        meta["worker"] = worker
        store.put(lease.key, record, meta)
        stats["executed"] += 1
        plog.log("point_executed", elapsed=elapsed)
        if board.complete(lease.key, worker):
            plog.log("lease_complete", elapsed=elapsed)
            if progress is not None:
                progress(f"{worker}: {lease.label} done ({elapsed:.2f} s)")
        else:
            # our lease expired mid-run and someone reclaimed it; the
            # record is still valid (deterministic) and merges as a dup
            stats["lost"] += 1
            plog.log("lease_lost", elapsed=elapsed)
            if progress is not None:
                progress(f"{worker}: {lease.label} done but lease was reclaimed")
    delta = REGISTRY.delta(metrics_before)
    if store.root is not None:
        path = store.root / f"metrics-{worker}.json"
        path.write_text(json.dumps(delta, indent=2, sort_keys=True) + "\n")
    runlog.log("worker_done", **stats)
    return {**stats, "metrics": delta}


# ---------------------------------------------------------------------------
def merge_into_store(
    dest: ResultStore,
    sources: Iterable[ResultStore | str | Path],
    workload: str | None = None,
) -> dict:
    """Fold worker stores (or shard files) into ``dest``, with provenance.

    Each source may be a loaded :class:`ResultStore`, a store directory,
    or a single ``.jsonl`` shard file.  Returns the summed merge stats
    plus a :class:`~repro.campaign.manifest.CampaignManifest` (under
    ``"manifest"``) whose points record which host produced which key;
    when ``dest`` is disk-backed the manifest is also written under
    ``dest.root/manifests/``.
    """
    totals = {"imported": 0, "duplicates": 0, "conflicts": 0, "corrupt": 0,
              "stale_schema": 0, "sources": 0}
    metric_docs: list[dict] = []
    for source in sources:
        totals["sources"] += 1
        source_root = None
        if isinstance(source, ResultStore):
            stats = dest.merge(source)
            source_root = source.root
        else:
            path = Path(source)
            if path.is_dir():
                stats = dest.merge(ResultStore(path))
                source_root = path
            else:
                stats = dest.import_shard(path)
        for name, value in stats.items():
            totals[name] = totals.get(name, 0) + value
        if source_root is not None:
            metric_docs.extend(_gather_observability(source_root, dest))

    entries = sorted(dest.entries(), key=lambda e: e.key)
    manifest = mf.CampaignManifest(
        campaign_id="merge-" + campaign_id_for([e.key for e in entries]),
        workload=workload or _merged_workloads(entries),
        created_at=mf.timestamp(),
        git_rev=mf.git_revision(),
        host=mf.host_info(),
        schema=SCHEMA_VERSION,
        points=[
            mf.PointStatus(
                label=e.meta.get("label", e.key[:12]),
                key=e.key,
                status="ran",
                attempts=e.meta.get("attempts", 0),
                wall_time=e.meta.get("elapsed", 0.0),
                host=e.meta.get("host"),
            )
            for e in entries
        ],
        metrics=merge_metrics(*metric_docs) if metric_docs else {},
    )
    if dest.root is not None:
        manifest.write(dest.root / "manifests" / f"{manifest.campaign_id}.json")
    return {**totals, "entries": len(entries), "manifest": manifest}


def _gather_observability(source_root: Path, dest: ResultStore) -> list[dict]:
    """Collect a worker store's metrics dumps; copy its run logs to ``dest``.

    Returns the parsed ``metrics-*.json`` documents (merged into the merge
    manifest by the caller).  Run logs are copied verbatim into
    ``dest.root/logs/`` so :func:`~repro.instrument.runlog.reconstruct_history`
    over the merged store sees every participant's events.
    """
    docs: list[dict] = []
    source_root = Path(source_root)
    for path in sorted(source_root.glob("metrics-*.json")):
        try:
            docs.append(json.loads(path.read_text()))
        except ValueError:
            continue  # torn write on a crashed worker; metrics are advisory
    if dest.root is not None and dest.root != source_root:
        log_dir = dest.root / "logs"
        for path in sorted(source_root.glob("logs/*.jsonl")):
            log_dir.mkdir(parents=True, exist_ok=True)
            target = log_dir / path.name
            with target.open("a") as fh:
                fh.write(path.read_text())
    return docs


def _merged_workloads(entries) -> str:
    names = sorted({e.meta.get("workload", "?") for e in entries}) or ["?"]
    return "+".join(names)


def verify_stores_match(a: ResultStore, b: ResultStore) -> list[str]:
    """Audit two stores for key-for-key, bit-for-bit record equality.

    Returns human-readable discrepancy lines (empty = identical).  This
    is the post-merge acceptance check: a federated campaign's merged
    store must match a single-host run of the same campaign exactly.
    """
    problems = []
    keys_a = {e.key for e in a.entries()}
    keys_b = {e.key for e in b.entries()}
    for key in sorted(keys_a - keys_b):
        problems.append(f"key {key[:16]}… only in first store")
    for key in sorted(keys_b - keys_a):
        problems.append(f"key {key[:16]}… only in second store")
    for key in sorted(keys_a & keys_b):
        da = record_digest(a.entry(key).record)
        db = record_digest(b.entry(key).record)
        if da != db:
            problems.append(
                f"key {key[:16]}…: record digests differ ({da[:12]}… vs {db[:12]}…)"
            )
    return problems
