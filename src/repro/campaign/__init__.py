"""Campaign engine: persistent, parallel, resumable design-point sweeps.

The paper's characterization is a full factorial sweep whose points are
independent — the classic embarrassingly-parallel shape.  This package
owns the execution of such sweeps end to end:

* :mod:`repro.campaign.keys` — canonical content-addressed cache keys
  over (workload fingerprint, design point, run config, cost model,
  schema version);
* :mod:`repro.campaign.store` — the persistent JSON-lines result store
  under ``.repro-cache/`` with atomic writes and corruption-tolerant
  loading;
* :mod:`repro.campaign.engine` — cache partitioning plus a
  ``multiprocessing`` fan-out with per-point timeout, bounded retry and
  deterministic seeding; completed records stream back into the store,
  so a killed campaign resumes where it stopped;
* :mod:`repro.campaign.manifest` — campaign provenance and per-point
  status, as a machine-readable JSON manifest and a live progress line;
* :mod:`repro.campaign.workloads` — named, rebuild-anywhere workload
  registry so worker processes receive names, not pickled systems.

CLI: ``python -m repro campaign run|status|gc|verify``.
"""

from .engine import CampaignEngine, CampaignResult, execute_point
from .keys import (
    SCHEMA_VERSION,
    cache_key,
    config_fingerprint,
    cost_fingerprint,
    point_seed,
    workload_fingerprint,
)
from .manifest import CampaignManifest, PointStatus, progress_line
from .store import ResultStore, StoreEntry, shared_memory_store
from .workloads import build_workload, register_workload, workload_names

__all__ = [
    "build_workload",
    "cache_key",
    "CampaignEngine",
    "CampaignManifest",
    "CampaignResult",
    "config_fingerprint",
    "cost_fingerprint",
    "execute_point",
    "point_seed",
    "PointStatus",
    "progress_line",
    "register_workload",
    "ResultStore",
    "SCHEMA_VERSION",
    "shared_memory_store",
    "StoreEntry",
    "workload_fingerprint",
    "workload_names",
]
