"""Campaign engine: persistent, parallel, resumable design-point sweeps.

The paper's characterization is a full factorial sweep whose points are
independent — the classic embarrassingly-parallel shape.  This package
owns the execution of such sweeps end to end:

* :mod:`repro.campaign.keys` — canonical content-addressed cache keys
  over (workload fingerprint, design point, run config, cost model,
  schema version);
* :mod:`repro.campaign.store` — the persistent JSON-lines result store
  under ``.repro-cache/`` with atomic writes and corruption-tolerant
  loading;
* :mod:`repro.campaign.engine` — cache partitioning plus a
  ``multiprocessing`` fan-out with per-point timeout, bounded retry and
  deterministic seeding; completed records stream back into the store,
  so a killed campaign resumes where it stopped;
* :mod:`repro.campaign.manifest` — campaign provenance and per-point
  status, as a machine-readable JSON manifest and a live progress line;
* :mod:`repro.campaign.workloads` — named, rebuild-anywhere workload
  registry so worker processes receive names, not pickled systems;
* :mod:`repro.campaign.board` — the abstract :class:`Board` protocol
  every coordination backend implements, plus the ``--board`` URL
  factory :func:`board_from_url`;
* :mod:`repro.campaign.leases` — the worker-pull file lease board one
  ``serve`` host publishes and any number of hosts claim from, with
  expiry-based reclamation of crashed workers' points;
* :mod:`repro.campaign.coordinator` — the same lease semantics served
  by an asyncio HTTP coordinator (``repro campaign coordinator``) for
  workers that share no filesystem, with live ``status`` / ``metrics``
  / ``leases`` / ``runlog`` endpoints;
* :mod:`repro.campaign.federation` — publish / work / merge across
  hosts, ending in one store bit-identical to a single-host run;
* :mod:`repro.campaign.analytics` — post-hoc map-reduce over a warm
  store: comm-breakdown reports (the paper's tables regenerated from
  records alone), drift/conservation checks, cross-campaign trend
  diffs, and coverage audits — byte-identical output regardless of
  worker count, zero force evaluations.

CLI: ``python -m repro campaign
run|status|gc|analyze|verify|serve|work|merge|coordinator``.
"""

from .analytics import AnalysisError, run_analysis
from .board import Board, board_from_url
from .coordinator import CoordinatorServer, CoordinatorThread, HttpBoardClient
from .dashboard import dashboard, dashboard_data, report_link
from .engine import CampaignEngine, CampaignResult, execute_point, point_trace_path
from .federation import (
    merge_into_store,
    publish_campaign,
    verify_stores_match,
    work_campaign,
)
from .keys import (
    SCHEMA_VERSION,
    cache_key,
    config_fingerprint,
    cost_fingerprint,
    point_seed,
    workload_fingerprint,
)
from .leases import Lease, LeaseBoard, LeaseBoardError
from .manifest import CampaignManifest, PointStatus, progress_line
from .store import (
    ResultStore,
    StoreConflictError,
    StoreEntry,
    record_digest,
    shared_memory_store,
)
from .workloads import build_workload, register_workload, workload_names

__all__ = [
    "AnalysisError",
    "Board",
    "board_from_url",
    "build_workload",
    "cache_key",
    "CampaignEngine",
    "CampaignManifest",
    "CampaignResult",
    "config_fingerprint",
    "CoordinatorServer",
    "CoordinatorThread",
    "cost_fingerprint",
    "dashboard",
    "dashboard_data",
    "execute_point",
    "HttpBoardClient",
    "point_trace_path",
    "Lease",
    "LeaseBoard",
    "LeaseBoardError",
    "merge_into_store",
    "point_seed",
    "PointStatus",
    "progress_line",
    "publish_campaign",
    "record_digest",
    "register_workload",
    "report_link",
    "ResultStore",
    "run_analysis",
    "SCHEMA_VERSION",
    "shared_memory_store",
    "StoreConflictError",
    "StoreEntry",
    "verify_stores_match",
    "work_campaign",
    "workload_fingerprint",
    "workload_names",
]
