"""Named campaign workloads: buildable in any process by name.

Worker processes receive only a workload *name* and rebuild the system
locally through this registry, so design points cross the process
boundary as a few hundred bytes instead of a pickled 3552-atom system.
Builders must be deterministic — the engine hashes the built arrays into
the cache key, and a nondeterministic builder would never hit.

Tests and downstream code can :func:`register_workload` additional
builders; runtime-registered closures are visible to worker processes
only under the ``fork`` start method (the built-ins below always work,
since workers import this module themselves).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable

import numpy as np

from ..md.cutoff import CutoffScheme
from ..md.forcefield import default_forcefield
from ..md.system import MDSystem
from ..workloads import (
    build_peptide_in_water,
    build_water_box,
    myoglobin_system,
    myoglobin_workload,
)

__all__ = ["WORKLOADS", "register_workload", "build_workload", "workload_names"]

Builder = Callable[[], tuple[MDSystem, np.ndarray]]


def _myoglobin_pme() -> tuple[MDSystem, np.ndarray]:
    """The paper's 3552-atom benchmark with PME (the measured setup)."""
    return myoglobin_system("pme"), myoglobin_workload().positions


def _myoglobin_shift() -> tuple[MDSystem, np.ndarray]:
    """The classic-only variant (Figure 2, left)."""
    return myoglobin_system("shift"), myoglobin_workload().positions


def _peptide_tiny() -> tuple[MDSystem, np.ndarray]:
    """The small solvated peptide of the CI sanitize gate (fast smoke runs)."""
    ff = default_forcefield()
    topo, pos, box = build_peptide_in_water(n_residues=2, n_waters=12, forcefield=ff)
    system = MDSystem(
        topo, ff, box, CutoffScheme(r_cut=8.0, skin=1.5),
        electrostatics="pme", pme_grid=(16, 16, 16),
    )
    return system, pos


def _water_box() -> tuple[MDSystem, np.ndarray]:
    """A pure 1536-atom water box (512 waters, 24.8 A cubic cell).

    Homogeneous density makes it the natural workload for the spatial
    decomposition strategy: every cell of the rank grid carries the same
    load, so the neighbour-only communication shape shows undiluted.
    """
    ff = default_forcefield()
    topo, pos, box = build_water_box(n_side=8, spacing=3.1, forcefield=ff)
    system = MDSystem(
        topo, ff, box, CutoffScheme(r_cut=8.0, skin=1.5), electrostatics="shift"
    )
    return system, pos


WORKLOADS: dict[str, Builder] = {
    "myoglobin-pme": _myoglobin_pme,
    "myoglobin-shift": _myoglobin_shift,
    "peptide-tiny": _peptide_tiny,
    "water-box": _water_box,
}


def register_workload(name: str, builder: Builder) -> None:
    """Add (or replace) a named workload builder."""
    WORKLOADS[name] = builder
    build_workload.cache_clear()


def workload_names() -> list[str]:
    return sorted(WORKLOADS)


@lru_cache(maxsize=4)
def build_workload(name: str) -> tuple[MDSystem, np.ndarray]:
    """Build (once per process) the named workload."""
    try:
        builder = WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; available: {', '.join(workload_names())}"
        ) from None
    return builder()
