"""Canonical cache keys for design-point results.

A cached :class:`~repro.core.responses.ResponseRecord` is addressed by a
content hash over everything that determines the run's output:

* the **workload fingerprint** — the actual initial coordinates, charges,
  masses, box, cutoff scheme and electrostatics configuration (hashed
  from the array bytes, so a rebuilt-but-identical workload hits and a
  changed one misses);
* the **design point** — network, middleware, CPUs per node, rank count,
  replicate;
* the **run configuration** — every :class:`MDRunConfig` field plus the
  runner's ``base_seed`` the per-point platform seeds derive from;
* the **cost-model fingerprint** — every :class:`MachineCostModel`
  constant (recalibration invalidates the cache);
* the **schema version** — bumped by hand whenever the meaning of a
  stored record changes (response fields, seeding discipline, run
  semantics).

Keys are hex SHA-256 digests of a canonical JSON document: no ``repr``,
no ``hash()``, no dict-order dependence — the same inputs produce the
same key in every process on every host.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import fields

import numpy as np

from ..core.design import DesignPoint
from ..md.system import MDSystem
from ..parallel.costmodel import MachineCostModel
from ..parallel.pmd import MDRunConfig

__all__ = [
    "SCHEMA_VERSION",
    "workload_fingerprint",
    "cost_fingerprint",
    "config_fingerprint",
    "cache_key",
    "point_seed",
]

#: Bump when the stored record's meaning changes (new response fields,
#: different seeding discipline, changed run semantics).  Entries written
#: under another schema version never hit and are dropped by ``gc``.
SCHEMA_VERSION = 1


def _digest_array(h: "hashlib._Hash", arr: np.ndarray) -> None:
    a = np.ascontiguousarray(arr)
    h.update(str(a.dtype).encode())
    h.update(str(a.shape).encode())
    h.update(a.tobytes())


def workload_fingerprint(system: MDSystem, positions: np.ndarray) -> str:
    """Content hash of the physical problem one runner executes."""
    h = hashlib.sha256()
    _digest_array(h, positions)
    _digest_array(h, system.charges)
    _digest_array(h, system.masses)
    h.update(json.dumps(
        {
            "n_atoms": system.n_atoms,
            "box": [system.box.lx, system.box.ly, system.box.lz],
            "r_cut": system.scheme.r_cut,
            "r_on": system.scheme.r_on,
            "skin": system.scheme.skin,
            "electrostatics": system.electrostatics,
            "pme_grid": list(system.pme.grid_shape) if system.uses_pme else None,
            "ewald_alpha": system.nonbonded.ewald_alpha,
        },
        sort_keys=True,
    ).encode())
    return h.hexdigest()


def cost_fingerprint(cost: MachineCostModel) -> str:
    """Hash of every cost-model constant (recalibration invalidates)."""
    doc = {f.name: getattr(cost, f.name) for f in fields(cost)}
    return hashlib.sha256(json.dumps(doc, sort_keys=True).encode()).hexdigest()


def config_fingerprint(config: MDRunConfig) -> dict:
    """The run-configuration fields as a canonical JSON-able dict."""
    return {f.name: getattr(config, f.name) for f in fields(config)}


def cache_key(
    workload_fp: str,
    point: DesignPoint,
    config: MDRunConfig,
    cost: MachineCostModel,
    base_seed: int,
) -> str:
    """The content address of one design-point result.

    The strategy axis enters the key only when off-default, so every
    replicated-data result cached before the axis existed keeps its
    address (a default-strategy key is byte-identical to the historical
    document).
    """
    point_doc = {
        "network": point.config.network,
        "middleware": point.config.middleware,
        "cpus_per_node": point.config.cpus_per_node,
        "n_ranks": point.n_ranks,
        "replicate": point.replicate,
    }
    strategy = getattr(point, "strategy", "replicated")
    if strategy != "replicated":
        point_doc["strategy"] = strategy
    doc = {
        "schema": SCHEMA_VERSION,
        "workload": workload_fp,
        "point": point_doc,
        "config": config_fingerprint(config),
        "cost": cost_fingerprint(cost),
        "base_seed": base_seed,
    }
    return hashlib.sha256(json.dumps(doc, sort_keys=True).encode()).hexdigest()


def point_seed(base_seed: int, point: DesignPoint) -> int:
    """Deterministic, distinct platform seed per design point.

    Uses a stable digest, not ``hash()``: string hashing is randomized
    per process (PYTHONHASHSEED), which would give every run of the same
    experiment different platform noise.  This is the historical
    :class:`CharacterizationRunner` formula, shared so engine-run points
    are bit-identical to runner-run ones.
    """
    key = (
        point.config.network,
        point.config.middleware,
        point.config.cpus_per_node,
        point.n_ranks,
        point.replicate,
    )
    # off-default strategies extend the tuple; the default keeps the
    # historical repr so replicated-data seeds are unchanged
    strategy = getattr(point, "strategy", "replicated")
    if strategy != "replicated":
        key = key + (strategy,)
    digest = zlib.crc32(repr(key).encode())
    return (base_seed + digest) % (2**31 - 1)
