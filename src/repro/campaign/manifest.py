"""Campaign manifests: machine-readable progress and provenance.

A manifest records one campaign — the design-point set, how each point
was satisfied (cache hit, executed, failed, timed out), attempt counts,
per-point and total wall time, plus provenance (git revision, host,
workload, schema version).  It is rewritten atomically after every
completed point, so a killed campaign leaves an accurate account of what
finished, and the next run of the same campaign id resumes from the
store rather than from zero.

This module is campaign bookkeeping, not simulation: the wall-clock
reads below measure *real* elapsed time of the harness itself, which is
why they carry ``noqa: REP104`` (the analyzer's virtual-time rule).
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import subprocess
from dataclasses import asdict, dataclass, field
from pathlib import Path

__all__ = [
    "PointStatus",
    "CampaignManifest",
    "git_revision",
    "host_info",
    "progress_line",
]

#: The statuses one design point can end a campaign in.
STATUSES = ("hit", "ran", "failed", "timeout", "pending")


@dataclass
class PointStatus:
    """How one design point was satisfied."""

    label: str
    key: str
    status: str = "pending"
    attempts: int = 0
    wall_time: float = 0.0
    error: str | None = None
    #: which host produced this point (federated campaigns; None = local)
    host: str | None = None


@dataclass
class CampaignManifest:
    """Everything one campaign run did, as one JSON document."""

    campaign_id: str
    workload: str
    created_at: str
    git_rev: str
    host: dict
    schema: int
    points: list[PointStatus] = field(default_factory=list)
    total_wall: float = 0.0
    #: metrics snapshot delta for this campaign (see
    #: :mod:`repro.instrument.metrics`); merged across hosts for
    #: federated campaigns
    metrics: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def counts(self) -> dict[str, int]:
        out = {s: 0 for s in STATUSES}
        for p in self.points:
            out[p.status] = out.get(p.status, 0) + 1
        return out

    @property
    def n_points(self) -> int:
        return len(self.points)

    def summary_line(self) -> str:
        c = self.counts
        done = self.n_points - c["pending"]
        return (
            f"campaign {self.campaign_id}: {done}/{self.n_points} points — "
            f"{c['hit']} hit, {c['ran']} ran, {c['failed']} failed, "
            f"{c['timeout']} timeout ({self.total_wall:.1f} s)"
        )

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        doc = asdict(self)
        doc["counts"] = self.counts
        doc["n_points"] = self.n_points
        return json.dumps(doc, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignManifest":
        doc = json.loads(text)
        points = [PointStatus(**p) for p in doc["points"]]
        return cls(
            campaign_id=doc["campaign_id"],
            workload=doc["workload"],
            created_at=doc["created_at"],
            git_rev=doc["git_rev"],
            host=doc["host"],
            schema=doc["schema"],
            points=points,
            total_wall=doc["total_wall"],
            metrics=doc.get("metrics", {}),  # absent in pre-metrics manifests
        )

    def write(self, path: str | Path) -> None:
        """Atomic write: a reader never sees a half manifest."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(self.to_json() + "\n")
        os.replace(tmp, path)

    @classmethod
    def read(cls, path: str | Path) -> "CampaignManifest":
        return cls.from_json(Path(path).read_text())


# ---------------------------------------------------------------------------
def git_revision() -> str:
    """The working tree's commit, or ``unknown`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def host_info() -> dict:
    """Where this campaign ran (manifest provenance)."""
    return {
        "node": platform.node(),
        "machine": platform.machine(),
        "system": platform.system(),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
    }


def timestamp() -> str:
    """ISO-8601 creation stamp (real time — manifest provenance)."""
    now = datetime.datetime.now(datetime.timezone.utc)  # noqa: REP104
    return now.isoformat(timespec="seconds")


def progress_line(campaign_id: str, done: int, total: int, counts: dict[str, int]) -> str:
    """The live one-line progress readout the engine emits."""
    return (
        f"campaign {campaign_id}: {done}/{total} "
        f"({counts.get('hit', 0)} hit, {counts.get('ran', 0)} ran, "
        f"{counts.get('failed', 0)} failed, {counts.get('timeout', 0)} timeout)"
    )
