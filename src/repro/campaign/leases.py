"""Worker-pull lease board: coordinating a campaign across hosts.

One JSON file — typically on a shared filesystem — is the whole
coordinator.  ``repro campaign serve`` publishes it; any number of
``repro campaign work`` processes pull from it.  A lease is one design
point::

    {"schema": 1,
     "campaign": {"workload": ..., "config": {...}, "base_seed": ...,
                  "cost": "<fingerprint>", "sanitize": false},
     "leases": [{"key": "<sha256>", "label": "...", "point": {...},
                 "state": "pending" | "leased" | "done",
                 "worker": null, "expires": 0.0, "attempts": 0}]}

Concurrency model (deliberately boring):

* every mutation is read → modify → write-temp → ``os.replace``, so a
  reader never sees a half board;
* mutations serialize through a sidecar lock file created with
  ``O_CREAT | O_EXCL`` (the one primitive NFS gets right); a lock older
  than ``stale_lock_after`` is presumed abandoned by a dead worker and
  broken;
* liveness is lease *expiry*, not worker heartbeat infrastructure: a
  claim carries an ``expires`` deadline, :meth:`LeaseBoard.heartbeat`
  extends it, and a lease whose deadline passed is claimable again
  (``attempts`` incremented) — a crashed worker costs one TTL, nothing
  more.

Duplicate execution after a reclaim is *safe* (records are
content-addressed and deterministic, so a resurrected worker's late
``put`` merges as a duplicate), merely wasted work.

Wall-clock reads here are real coordination time (lease deadlines, lock
staleness), hence the ``noqa: REP104`` markers; tests inject ``now``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

from ..instrument.metrics import REGISTRY
from .board import STATES, Board

__all__ = ["Lease", "LeaseBoard", "LeaseBoardError", "STATES"]

#: Lease-board wire-format version.
BOARD_SCHEMA = 1


class LeaseBoardError(Exception):
    """The board is unreadable, locked beyond patience, or inconsistent."""


@dataclass
class Lease:
    """One design point's claim state on the board."""

    key: str
    label: str
    point: dict
    state: str = "pending"
    worker: str | None = None
    expires: float = 0.0
    attempts: int = 0

    def to_doc(self) -> dict:
        return {
            "key": self.key,
            "label": self.label,
            "point": self.point,
            "state": self.state,
            "worker": self.worker,
            "expires": self.expires,
            "attempts": self.attempts,
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "Lease":
        return cls(**{k: doc[k] for k in ("key", "label", "point")},
                   state=doc.get("state", "pending"),
                   worker=doc.get("worker"),
                   expires=doc.get("expires", 0.0),
                   attempts=doc.get("attempts", 0))


class LeaseBoard(Board):
    """The lease file plus its mutation discipline.

    Parameters
    ----------
    path:
        The board file (shared between serve and every worker).
    now:
        Clock returning seconds-since-epoch; tests inject a fake to
        drive expiry deterministically.
    stale_lock_after:
        Age in seconds past which a sidecar lock is presumed abandoned.
    """

    def __init__(self, path: str | Path, now=None, stale_lock_after: float = 30.0) -> None:
        self.path = Path(path)
        self._now = now if now is not None else time.time  # noqa: REP104
        self.stale_lock_after = stale_lock_after

    # -- file plumbing -------------------------------------------------
    @property
    def _lock_path(self) -> Path:
        return self.path.with_suffix(self.path.suffix + ".lock")

    def _acquire_lock(self, timeout: float = 10.0) -> None:
        deadline = time.monotonic() + timeout  # noqa: REP104 — real coordination time
        while True:
            try:
                fd = os.open(self._lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    age = time.time() - self._lock_path.stat().st_mtime  # noqa: REP104
                except FileNotFoundError:
                    continue  # holder released between open and stat; retry
                if age > self.stale_lock_after:
                    self._lock_path.unlink(missing_ok=True)  # break a dead worker's lock
                    continue
                if time.monotonic() > deadline:  # noqa: REP104
                    raise LeaseBoardError(
                        f"lease board {self.path} locked for > {timeout} s"
                    ) from None
                time.sleep(0.02)
            else:
                os.close(fd)
                return

    def _release_lock(self) -> None:
        self._lock_path.unlink(missing_ok=True)

    def _read(self) -> dict:
        try:
            return json.loads(self.path.read_text())
        except FileNotFoundError:
            raise LeaseBoardError(f"no lease board at {self.path}") from None
        except ValueError as exc:
            raise LeaseBoardError(f"unreadable lease board {self.path}: {exc}") from None

    def _write(self, doc: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, self.path)

    def _mutate(self, fn):
        """Locked read-modify-write; ``fn(doc)`` returns the call's result."""
        self._acquire_lock()
        try:
            doc = self._read()
            result = fn(doc)
            self._write(doc)
            return result
        finally:
            self._release_lock()

    # -- the protocol --------------------------------------------------
    def publish(self, campaign: dict, leases: list[Lease]) -> None:
        """Write a fresh board (atomic; replaces any previous board)."""
        self._write(
            {
                "schema": BOARD_SCHEMA,
                "campaign": campaign,
                "leases": [lease.to_doc() for lease in leases],
            }
        )

    def campaign(self) -> dict:
        """The published campaign description (what workers reconstruct)."""
        return self._read()["campaign"]

    def claim(self, worker: str, ttl: float = 300.0) -> Lease | None:
        """Claim the next runnable lease for ``worker``, or ``None``.

        Runnable means ``pending``, or ``leased`` with an expired
        deadline (the previous worker is presumed dead; ``attempts`` is
        incremented so the reclaim is visible in the audit trail).
        """

        def fn(doc: dict):
            # One clock read per mutation pass, taken *after* the lock is
            # held: every candidate's TTL-expiry decision in this claim
            # uses the same instant, and a long lock wait cannot make a
            # stale reading resurrect (or miss) an expiring lease.
            now = self._now()
            for entry in doc["leases"]:
                expired = entry["state"] == "leased" and entry["expires"] <= now
                if entry["state"] == "pending" or expired:
                    if expired:
                        entry["attempts"] += 1
                        REGISTRY.counter("leases.reclaimed").increment()
                    entry["state"] = "leased"
                    entry["worker"] = worker
                    entry["expires"] = now + ttl
                    REGISTRY.counter("leases.claimed").increment(worker=worker)
                    return Lease.from_doc(entry)
            return None

        return self._mutate(fn)

    def heartbeat(self, key: str, worker: str, ttl: float = 300.0) -> bool:
        """Extend a held lease's deadline; False if no longer ours."""

        def fn(doc: dict) -> bool:
            now = self._now()  # one read per mutation, under the lock
            for entry in doc["leases"]:
                if entry["key"] == key:
                    if entry["state"] != "leased" or entry["worker"] != worker:
                        return False
                    entry["expires"] = now + ttl
                    return True
            return False

        return self._mutate(fn)

    def complete(self, key: str, worker: str) -> bool:
        """Mark a lease done; False if it was reclaimed from us meanwhile."""

        def fn(doc: dict) -> bool:
            for entry in doc["leases"]:
                if entry["key"] == key:
                    if entry["state"] == "leased" and entry["worker"] != worker:
                        return False  # expired under us and reclaimed
                    entry["state"] = "done"
                    entry["worker"] = worker
                    return True
            return False

        return self._mutate(fn)

    def release(self, key: str, worker: str) -> None:
        """Give a claimed lease back (worker failed but lived to say so)."""

        def fn(doc: dict) -> None:
            for entry in doc["leases"]:
                if (
                    entry["key"] == key
                    and entry["state"] == "leased"
                    and entry["worker"] == worker
                ):
                    entry["state"] = "pending"
                    entry["worker"] = None
                    entry["expires"] = 0.0

        self._mutate(fn)

    # -- read-only views -----------------------------------------------
    def leases(self) -> list[Lease]:
        return [Lease.from_doc(entry) for entry in self._read()["leases"]]

    def describe(self) -> str:
        return f"file board {self.path}"
