"""The campaign runner: parallel, resumable design-point execution.

A *campaign* is any iterable of :class:`DesignPoint` over one named
workload.  The engine partitions points into cache hits and misses
against the :class:`ResultStore`, fans the misses out over a
``multiprocessing`` worker pool (design points are independent — the
classic embarrassingly-parallel sweep shape), and streams every
completed record straight back into the store, so a killed campaign
resumes exactly where it stopped.  Each point gets a per-point timeout
(the worker is killed, not abandoned), bounded retries with exponential
backoff, and the same deterministic crc32-derived platform seed the
:class:`CharacterizationRunner` uses — an engine-run record is
bit-identical to a runner-run one.

Wall-clock reads in this module time the *harness itself* (scheduling,
per-point elapsed time for the manifest), never the simulation — hence
the ``noqa: REP104`` markers on those lines.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import queue as queue_mod
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from ..core.design import DesignPoint
from ..core.responses import ResponseRecord
from ..instrument.commstats import communication_speeds
from ..instrument.metrics import REGISTRY, merge_metrics
from ..instrument.runlog import RunLog
from ..instrument.tracing import SpanTracer
from ..parallel.costmodel import PIII_1GHZ, MachineCostModel
from ..parallel.pmd import MDRunConfig
from ..parallel.run import RunOptions, run_parallel_md
from . import manifest as mf
from .keys import SCHEMA_VERSION, cache_key, point_seed, workload_fingerprint
from .store import ResultStore, record_from_dict, record_to_dict
from .workloads import build_workload

__all__ = [
    "CampaignEngine",
    "CampaignResult",
    "execute_point",
    "point_trace_path",
    "pool_map",
]


def point_trace_path(trace_dir, key: str) -> Path:
    """Where one executed point's span trace lands under ``trace_dir``."""
    return Path(trace_dir) / f"point-{key[:16]}.trace.json"


def execute_point(
    workload: str,
    point: DesignPoint,
    config: MDRunConfig,
    cost: MachineCostModel,
    base_seed: int,
    sanitize: bool = False,
    shared_compute: bool = True,
    span_trace_path=None,
) -> ResponseRecord:
    """Run one design point from scratch, in whatever process this is.

    This is the single execution path shared by the inline engine, the
    worker processes and ``verify`` — and it performs exactly the calls
    :meth:`CharacterizationRunner.run_point` makes, so records agree
    bit-for-bit however a point was produced.  ``shared_compute``
    constructs one :class:`~repro.parallel.shared.SharedComputeCache` per
    point inside :func:`run_parallel_md`; it changes wall-clock only, so
    it participates in neither the cache key nor the record.
    ``span_trace_path``, when given, attaches a fresh
    :class:`~repro.instrument.tracing.SpanTracer` to the run and writes
    its Chrome trace-event JSON there — equally wall-clock-only.
    """
    system, positions = build_workload(workload)
    spec = point.config.cluster_spec(point.n_ranks, seed=point_seed(base_seed, point))
    tracer = SpanTracer() if span_trace_path is not None else None
    options = RunOptions.for_point(
        point, config=config, cost=cost, sanitize=sanitize,
        span_tracer=tracer, shared_compute=shared_compute,
    )
    if tracer is not None:
        with tracer.span("execute_point", track="engine", label=point.label()):
            result = run_parallel_md(system, positions, spec, options)
        tracer.write(span_trace_path)
    else:
        result = run_parallel_md(system, positions, spec, options)
    stats = communication_speeds(result.transfers)
    if stats.n_transfers:
        REGISTRY.histogram("run.comm_speed_mbs").observe(stats.mean)
    REGISTRY.counter("run.points_executed").increment()
    return ResponseRecord.from_run(point, result)


def _worker_main(task: dict, out_queue) -> None:
    """Worker-process entry: run one point, post the record (or the error).

    The posted tuple carries the worker's own metrics delta (work
    counters, comm-speed observations) so the parent can fold
    per-process observability back into one campaign-wide snapshot.
    """
    before = REGISTRY.snapshot()  # fork copies the parent's live counters
    try:
        record = execute_point(
            task["workload"],
            task["point"],
            task["config"],
            task["cost"],
            task["base_seed"],
            sanitize=task["sanitize"],
            shared_compute=task.get("shared_compute", True),
            span_trace_path=task.get("trace_path"),
        )
        out_queue.put(
            (task["key"], "ok", record_to_dict(record), None, REGISTRY.delta(before))
        )
    except BaseException as exc:  # the parent decides whether to retry
        out_queue.put(
            (task["key"], "error", None, f"{type(exc).__name__}: {exc}",
             REGISTRY.delta(before))
        )


class _InlineQueue:
    """A list pretending to be a queue, for the ``n_workers <= 0`` path."""

    def __init__(self) -> None:
        self.items: list[tuple] = []

    def put(self, item) -> None:
        self.items.append(item)


def pool_map(target, payloads, n_workers: int, mp_context=None):
    """Fan independent payloads out over single-task worker processes.

    The generic pool shape every fan-out in this package shares (the
    engine's verify re-runs, the analytics map stage): ``target(payload,
    out_queue)`` runs in its own process and must post exactly one
    ``(key, status, doc, error, metrics_delta)`` tuple, where ``key`` is
    ``payload["key"]`` and ``status`` is ``"ok"`` for a result.  No
    timeout, no retries — callers that need those use
    :class:`CampaignEngine` itself.

    Returns ``(docs, errors, deltas)``: per-key result documents, per-key
    error strings (including workers that died without posting), and the
    workers' metrics deltas for the parent to fold back into its own
    registry view.

    ``n_workers <= 0`` runs every payload inline, in order, through the
    same posting protocol (no subprocesses) — the reference path that
    parallel output is asserted byte-identical against.
    """
    docs: dict[str, object] = {}
    errors: dict[str, str] = {}
    deltas: list[dict] = []

    def fold(item) -> None:
        key, status, doc, error, delta = item
        if delta:
            deltas.append(delta)
        if status == "ok":
            docs[key] = doc
        else:
            errors[key] = error

    if n_workers <= 0:
        out = _InlineQueue()
        for payload in payloads:
            target(payload, out)
        for item in out.items:
            fold(item)
        return docs, errors, deltas

    ctx = mp_context if mp_context is not None else CampaignEngine._mp_context()
    out_queue = ctx.Queue()
    todo = deque(payloads)
    live: dict[str, object] = {}  # key -> process

    def settle(item) -> None:
        proc = live.pop(item[0], None)
        if proc is not None:
            proc.join(timeout=5)
        fold(item)

    while todo or live:
        while todo and len(live) < n_workers:
            payload = todo.popleft()
            proc = ctx.Process(target=target, args=(payload, out_queue), daemon=True)
            proc.start()
            live[payload["key"]] = proc
        try:
            item = out_queue.get(timeout=0.05)
        except queue_mod.Empty:
            for key in list(live):
                proc = live.get(key)
                if proc is None or proc.is_alive():
                    continue
                # died without posting; give its message a moment to land
                try:
                    item2 = out_queue.get(timeout=0.5)
                except queue_mod.Empty:
                    settle(
                        (key, "error", None,
                         f"worker exited with code {proc.exitcode}", None)
                    )
                else:
                    settle(item2)
        else:
            settle(item)
    return docs, errors, deltas


@dataclass
class CampaignResult:
    """What one :meth:`CampaignEngine.run` call produced."""

    manifest: mf.CampaignManifest
    #: one record per input point, in input order (None for failed/timeout)
    records: list[ResponseRecord | None]

    @property
    def ok(self) -> bool:
        c = self.manifest.counts
        return c["failed"] == 0 and c["timeout"] == 0 and c["pending"] == 0


@dataclass
class _Task:
    key: str
    index: int
    point: DesignPoint
    attempts: int = 0
    not_before: float = 0.0
    elapsed: float = 0.0


@dataclass
class CampaignEngine:
    """Executes design-point campaigns over one named workload.

    Parameters
    ----------
    workload:
        A name from :mod:`repro.campaign.workloads`.
    store:
        Result store; defaults to a fresh memory-only store.  Hand every
        engine and runner the same persistent store and they share work.
    n_workers:
        ``0`` executes inline (no subprocesses, no timeout enforcement);
        ``n >= 1`` fans out over ``n`` single-point worker processes.
    timeout:
        Per-point wall-time budget in seconds (workers only).  An
        overrunning worker is terminated, and the point retried until
        ``retries`` is exhausted, then marked ``timeout``.
    retries:
        Extra attempts after the first, for failed or timed-out points.
    backoff:
        Base of the exponential retry delay (seconds).
    shared_compute:
        Deduplicate replicated-data work across simulated ranks inside
        each point (one :class:`~repro.parallel.shared.SharedComputeCache`
        per point).  Wall-clock only — records are bit-identical either
        way, so this is not part of the cache key.
    trace_dir:
        When set, every executed point writes a Chrome span trace
        (``point-<key>.trace.json``) there, and the engine writes its own
        host-side trace (``campaign-<id>-host.trace.json``) covering
        scheduling, launches and retires.  Wall-clock only.
    """

    workload: str = "myoglobin-pme"
    config: MDRunConfig = field(default_factory=MDRunConfig)
    cost: MachineCostModel = PIII_1GHZ
    base_seed: int = 2002
    store: ResultStore = field(default_factory=ResultStore)
    n_workers: int = 0
    timeout: float | None = None
    retries: int = 1
    backoff: float = 0.25
    sanitize: bool = False
    shared_compute: bool = True
    trace_dir: str | None = None

    _fingerprint: str | None = field(default=None, init=False, repr=False)

    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        if self._fingerprint is None:
            system, positions = build_workload(self.workload)
            self._fingerprint = workload_fingerprint(system, positions)
        return self._fingerprint

    def key_for(self, point: DesignPoint) -> str:
        return cache_key(self.fingerprint, point, self.config, self.cost, self.base_seed)

    def _campaign_id(self, keys: list[str]) -> str:
        h = hashlib.sha256()
        for k in sorted(keys):
            h.update(k.encode())
        return h.hexdigest()[:12]

    def _meta(self, point: DesignPoint, elapsed: float, attempts: int) -> dict:
        return {
            "workload": self.workload,
            "label": point.label(),
            "elapsed": elapsed,
            "attempts": attempts,
            "git_rev": mf.git_revision(),
            "host": mf.host_info()["node"],
        }

    # ------------------------------------------------------------------
    def run(self, points, progress=None) -> CampaignResult:
        """Execute a campaign; cache hits cost nothing, misses fan out.

        ``progress`` is an optional callable receiving one human-readable
        line after every resolved point.
        """
        points = list(points)
        keys = [self.key_for(p) for p in points]
        man = mf.CampaignManifest(
            campaign_id=self._campaign_id(keys),
            workload=self.workload,
            created_at=mf.timestamp(),
            git_rev=mf.git_revision(),
            host=mf.host_info(),
            schema=SCHEMA_VERSION,
            points=[
                mf.PointStatus(label=p.label(), key=k) for p, k in zip(points, keys)
            ],
        )
        by_key = {k: i for i, k in enumerate(keys)}
        records: list[ResponseRecord | None] = [None] * len(points)

        t_start = time.monotonic()  # noqa: REP104 — harness wall time
        metrics_before = REGISTRY.snapshot()
        runlog = self._runlog(man.campaign_id)
        runlog.log("campaign_start", n_points=len(points), n_workers=self.n_workers)
        tracer = SpanTracer() if self.trace_dir is not None else None

        misses: list[_Task] = []
        for i, (point, key) in enumerate(zip(points, keys)):
            cached = self.store.get(key)
            if cached is not None:
                records[i] = cached
                man.points[i].status = "hit"
                REGISTRY.counter("campaign.points").increment(status="hit")
                REGISTRY.counter("campaign.cache_hits").increment()
                runlog.log("point_hit", key=key, label=point.label())
            elif key in by_key and by_key[key] != i:
                # duplicate point in the input: resolved by the first copy
                continue
            else:
                REGISTRY.counter("campaign.cache_misses").increment()
                misses.append(_Task(key=key, index=i, point=point))

        def note() -> None:
            man.total_wall = time.monotonic() - t_start  # noqa: REP104
            if self.store.root is not None:
                man.write(self._manifest_path(man.campaign_id))
            if progress is not None:
                c = man.counts
                progress(
                    mf.progress_line(
                        man.campaign_id, man.n_points - c["pending"], man.n_points, c
                    )
                )

        note()
        worker_deltas: list[dict] = []
        if self.n_workers <= 0:
            self._run_inline(misses, man, records, note, runlog, tracer)
        else:
            self._run_pool(misses, man, records, note, runlog, tracer, worker_deltas)

        # duplicate inputs share the first copy's outcome
        for i, key in enumerate(keys):
            if records[i] is None and self.store.get(key) is not None:
                records[i] = self.store.get(key)
                if man.points[i].status == "pending":
                    man.points[i].status = "hit"

        man.total_wall = time.monotonic() - t_start  # noqa: REP104
        man.metrics = merge_metrics(REGISTRY.delta(metrics_before), *worker_deltas)
        runlog.log("campaign_end", total_wall=man.total_wall, **man.counts)
        if tracer is not None:
            tracer.write(
                Path(self.trace_dir) / f"campaign-{man.campaign_id}-host.trace.json"
            )
        note()
        return CampaignResult(manifest=man, records=records)

    def _runlog(self, campaign_id: str) -> RunLog:
        """The engine's structured event log (in-memory for memory stores)."""
        path = None
        if self.store.root is not None:
            path = self.store.root / "logs" / f"campaign-{campaign_id}.jsonl"
        return RunLog(path, campaign=campaign_id, workload=self.workload)

    def _point_trace(self, key: str):
        """This point's span-trace output path, or None when untraced."""
        if self.trace_dir is None:
            return None
        return point_trace_path(self.trace_dir, key)

    # ------------------------------------------------------------------
    def _resolve(
        self,
        man: mf.CampaignManifest,
        records: list,
        task: _Task,
        status: str,
        record: ResponseRecord | None,
        error: str | None,
    ) -> None:
        ps = man.points[task.index]
        ps.status = status
        ps.attempts = task.attempts
        ps.wall_time = task.elapsed
        ps.error = error
        REGISTRY.counter("campaign.points").increment(status=status)
        REGISTRY.counter("campaign.attempts").increment(task.attempts)
        if task.attempts > 1:
            REGISTRY.counter("campaign.retries").increment(task.attempts - 1)
        REGISTRY.histogram("campaign.point_wall_seconds").observe(task.elapsed)
        if record is not None:
            records[task.index] = record
            self.store.put(
                task.key, record, self._meta(task.point, task.elapsed, task.attempts)
            )

    def _run_inline(self, misses, man, records, note, runlog, tracer) -> None:
        for task in misses:
            last_error = None
            plog = runlog.bind(key=task.key, label=task.point.label())
            while task.attempts <= self.retries:
                task.attempts += 1
                plog.log("point_launch", attempt=task.attempts)
                span = None
                if tracer is not None:
                    span = tracer.begin(
                        "point", track="engine",
                        key=task.key[:16], attempt=task.attempts,
                    )
                t0 = time.monotonic()  # noqa: REP104 — harness wall time
                try:
                    record = execute_point(
                        self.workload, task.point, self.config, self.cost,
                        self.base_seed, sanitize=self.sanitize,
                        shared_compute=self.shared_compute,
                        span_trace_path=self._point_trace(task.key),
                    )
                except Exception as exc:
                    task.elapsed = time.monotonic() - t0  # noqa: REP104
                    last_error = f"{type(exc).__name__}: {exc}"
                    if span is not None:
                        span.end(status="error")
                    plog.log("point_retry", attempt=task.attempts, error=last_error)
                    continue
                task.elapsed = time.monotonic() - t0  # noqa: REP104
                if span is not None:
                    span.end(status="ran")
                self._resolve(man, records, task, "ran", record, None)
                plog.log("point_retire", attempt=task.attempts, status="ran",
                         elapsed=task.elapsed)
                break
            else:
                self._resolve(man, records, task, "failed", None, last_error)
                plog.log("point_retire", attempt=task.attempts, status="failed",
                         error=last_error)
            note()

    def _run_pool(self, misses, man, records, note, runlog, tracer, worker_deltas) -> None:
        ctx = self._mp_context()
        out_queue = ctx.Queue()
        pending: deque[_Task] = deque(misses)
        live: dict[str, tuple] = {}  # key -> (process, started, task)
        spans: dict[str, object] = {}  # key -> open wall span (traced runs)

        def launch(task: _Task) -> None:
            task.attempts += 1
            payload = {
                "key": task.key,
                "workload": self.workload,
                "point": task.point,
                "config": self.config,
                "cost": self.cost,
                "base_seed": self.base_seed,
                "sanitize": self.sanitize,
                "shared_compute": self.shared_compute,
                "trace_path": self._point_trace(task.key),
            }
            proc = ctx.Process(target=_worker_main, args=(payload, out_queue), daemon=True)
            proc.start()
            live[task.key] = (proc, time.monotonic(), task)  # noqa: REP104
            runlog.log("point_launch", key=task.key, label=task.point.label(),
                       attempt=task.attempts, pid=proc.pid)
            if tracer is not None:
                spans[task.key] = tracer.begin(
                    "point", track="pool", key=task.key[:16], attempt=task.attempts
                )

        def retire(key: str, status: str, record_doc, error, metrics=None) -> None:
            proc, started, task = live.pop(key)
            task.elapsed = time.monotonic() - started  # noqa: REP104
            proc.join(timeout=5)
            if metrics:
                worker_deltas.append(metrics)
            span = spans.pop(key, None)
            if span is not None:
                span.end(status=status)
            if status == "ok":
                self._resolve(man, records, task, "ran", record_from_dict(record_doc), None)
                runlog.log("point_retire", key=key, attempt=task.attempts,
                           status="ran", elapsed=task.elapsed)
            elif task.attempts <= self.retries:
                delay = self.backoff * (2 ** (task.attempts - 1))
                task.not_before = time.monotonic() + delay  # noqa: REP104
                runlog.log("point_retry", key=key, attempt=task.attempts,
                           status=status, error=error)
                pending.append(task)
                return
            else:
                final = "timeout" if status == "timeout" else "failed"
                self._resolve(man, records, task, final, None, error)
                runlog.log("point_retire", key=key, attempt=task.attempts,
                           status=final, error=error)
            note()

        while pending or live:
            now = time.monotonic()  # noqa: REP104 — harness wall time
            while pending and len(live) < self.n_workers:
                if pending[0].not_before > now:
                    break
                launch(pending.popleft())

            try:
                key, status, record_doc, error, wdelta = out_queue.get(timeout=0.05)
            except queue_mod.Empty:
                pass
            else:
                if key in live:
                    retire(key, "ok" if status == "ok" else "failed",
                           record_doc, error, wdelta)
                continue

            now = time.monotonic()  # noqa: REP104
            for key in list(live):
                if key not in live:
                    continue
                proc, started, task = live[key]
                if self.timeout is not None and now - started > self.timeout:
                    proc.terminate()
                    retire(key, "timeout", None, f"timed out after {self.timeout} s")
                elif not proc.is_alive():
                    # died without posting; give its message a moment to land
                    try:
                        k2, s2, doc2, err2, wd2 = out_queue.get(timeout=0.5)
                    except queue_mod.Empty:
                        retire(
                            key, "crashed", None,
                            f"worker exited with code {proc.exitcode}",
                        )
                    else:
                        if k2 in live:
                            retire(k2, "ok" if s2 == "ok" else "failed", doc2, err2, wd2)
            if not live and pending and pending[0].not_before > now:
                time.sleep(min(0.05, pending[0].not_before - now))

    @staticmethod
    def _mp_context():
        """Fork where available (shares the built workload pages); else spawn."""
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context("fork" if "fork" in methods else "spawn")

    def _manifest_path(self, campaign_id: str):
        assert self.store.root is not None
        return self.store.root / "manifests" / f"{campaign_id}.json"

    # ------------------------------------------------------------------
    def verify(self, sample: int = 4, seed: int = 0, n_workers: int = 0) -> list[dict]:
        """Re-run a sample of cached points; diff responses bit-for-bit.

        Only entries addressable by *this* engine (same workload, config,
        cost model and base seed) are eligible.  Returns one dict per
        mismatching field; an empty list means every sampled record
        reproduced exactly.

        ``n_workers`` fans the re-runs out over worker processes exactly
        like :meth:`run` does for misses (verification is embarrassingly
        parallel over sampled points); ``0`` re-runs inline.  A worker
        that dies or errors surfaces as a ``__rerun__`` mismatch.
        """
        import numpy as np

        eligible = []
        for entry in self.store.entries():
            point = self._point_from_record(entry.record)
            if self.key_for(point) == entry.key:
                eligible.append((entry, point))
        eligible.sort(key=lambda pair: pair[0].key)
        rng = np.random.default_rng(seed)
        if len(eligible) > sample:
            idx = rng.choice(len(eligible), size=sample, replace=False)
            eligible = [eligible[i] for i in sorted(idx)]

        fresh_by_key, rerun_errors = self._rerun_points(eligible, n_workers)

        mismatches = []
        for entry, point in eligible:
            if entry.key in rerun_errors:
                mismatches.append(
                    {
                        "key": entry.key,
                        "label": point.label(),
                        "field": "__rerun__",
                        "stored": None,
                        "rerun": rerun_errors[entry.key],
                    }
                )
                continue
            fresh = fresh_by_key[entry.key]
            stored, rerun = record_to_dict(entry.record), record_to_dict(fresh)
            for name in stored:
                if stored[name] != rerun[name] and not (
                    isinstance(stored[name], float)
                    and isinstance(rerun[name], float)
                    and np.isnan(stored[name])
                    and np.isnan(rerun[name])
                ):
                    mismatches.append(
                        {
                            "key": entry.key,
                            "label": point.label(),
                            "field": name,
                            "stored": stored[name],
                            "rerun": rerun[name],
                        }
                    )
        return mismatches

    def _rerun_points(
        self, pairs: list[tuple], n_workers: int
    ) -> tuple[dict[str, ResponseRecord], dict[str, str]]:
        """Re-execute (entry, point) pairs; return records and errors by key.

        Reuses the package's generic worker pool (:func:`pool_map` over
        :func:`_worker_main`); no timeout or retries — verification
        re-runs points that already executed successfully once.
        """
        if n_workers <= 0:
            fresh = {}
            for entry, point in pairs:
                fresh[entry.key] = execute_point(
                    self.workload, point, self.config, self.cost, self.base_seed,
                    shared_compute=self.shared_compute,
                )
            return fresh, {}

        payloads = [
            {
                "key": entry.key,
                "workload": self.workload,
                "point": point,
                "config": self.config,
                "cost": self.cost,
                "base_seed": self.base_seed,
                "sanitize": False,
                "shared_compute": self.shared_compute,
            }
            for entry, point in pairs
        ]
        docs, errors, _ = pool_map(_worker_main, payloads, n_workers)
        return {key: record_from_dict(doc) for key, doc in docs.items()}, errors

    @staticmethod
    def _point_from_record(record: ResponseRecord) -> DesignPoint:
        from ..core.factors import PlatformConfig

        return DesignPoint(
            config=PlatformConfig(
                network=record.network,
                middleware=record.middleware,
                cpus_per_node=record.cpus_per_node,
            ),
            n_ranks=record.n_ranks,
            replicate=record.replicate,
        )
