"""Persistent content-addressed result store.

Layout under the store root (``.repro-cache/`` by default)::

    .repro-cache/
        shard-<pid>.jsonl       one append-only shard per writing process
        shard-compact.jsonl     product of ``gc()``
        manifests/<id>.json     campaign manifests (see campaign.manifest)

Each shard line is one JSON document::

    {"key": "<sha256>", "schema": 1, "record": {...}, "meta": {...}}

Durability model: a writer appends whole lines and flushes them to the
OS after every put, so a killed campaign loses at most the line being
written.  The loader tolerates exactly that failure: a line that does
not parse (truncated tail of a crashed shard) is skipped with a warning
and every earlier line survives.  ``gc()`` rewrites the surviving
entries into one compact shard via an atomic rename, dropping corrupt
tails, stale schema versions and superseded duplicates.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Iterator

from ..core.responses import ResponseRecord
from .keys import SCHEMA_VERSION

__all__ = ["ResultStore", "StoreEntry", "shared_memory_store"]

_RECORD_FIELDS = [f.name for f in fields(ResponseRecord)]


def record_to_dict(record: ResponseRecord) -> dict:
    return {name: getattr(record, name) for name in _RECORD_FIELDS}


def record_from_dict(doc: dict) -> ResponseRecord:
    return ResponseRecord(**{name: doc[name] for name in _RECORD_FIELDS})


@dataclass(frozen=True)
class StoreEntry:
    """One cached result: its address, the record, and run metadata."""

    key: str
    record: ResponseRecord
    meta: dict
    schema: int = SCHEMA_VERSION


class ResultStore:
    """Content-addressed store of design-point responses.

    ``root=None`` gives a memory-only store (same interface, nothing
    persisted) — the default backing of in-process runner sharing.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else None
        self._index: dict[str, StoreEntry] = {}
        self._shard_file = None
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        assert self.root is not None
        for shard in sorted(self.root.glob("*.jsonl")):
            for lineno, line in enumerate(shard.read_text().splitlines(), start=1):
                if not line.strip():
                    continue
                try:
                    doc = json.loads(line)
                    entry = StoreEntry(
                        key=doc["key"],
                        record=record_from_dict(doc["record"]),
                        meta=doc.get("meta", {}),
                        schema=doc.get("schema", -1),
                    )
                except (ValueError, KeyError, TypeError):
                    warnings.warn(
                        f"{shard.name}:{lineno}: corrupt store line skipped "
                        "(truncated write from an interrupted campaign?)",
                        stacklevel=2,
                    )
                    continue
                if entry.schema == SCHEMA_VERSION:
                    self._index[entry.key] = entry

    def _shard(self):
        assert self.root is not None
        if self._shard_file is None or self._shard_file.closed:
            path = self.root / f"shard-{os.getpid()}.jsonl"
            self._shard_file = open(path, "a", encoding="utf-8")
        return self._shard_file

    # ------------------------------------------------------------------
    def get(self, key: str) -> ResponseRecord | None:
        entry = self._index.get(key)
        return entry.record if entry is not None else None

    def entry(self, key: str) -> StoreEntry | None:
        return self._index.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._index)

    def entries(self) -> Iterator[StoreEntry]:
        yield from self._index.values()

    def put(self, key: str, record: ResponseRecord, meta: dict | None = None) -> None:
        """Insert (or supersede) one result; persists immediately."""
        entry = StoreEntry(key=key, record=record, meta=dict(meta or {}))
        self._index[key] = entry
        if self.root is not None:
            line = json.dumps(
                {
                    "key": entry.key,
                    "schema": entry.schema,
                    "record": record_to_dict(entry.record),
                    "meta": entry.meta,
                }
            )
            f = self._shard()
            f.write(line + "\n")
            f.flush()
            os.fsync(f.fileno())

    # ------------------------------------------------------------------
    def gc(self) -> tuple[int, int]:
        """Compact shards into one; returns ``(kept, dropped)`` line counts.

        Drops corrupt tails, entries written under another schema
        version, and duplicate lines superseded by a later put.
        """
        if self.root is None:
            return (len(self._index), 0)
        shards = sorted(self.root.glob("*.jsonl"))
        total_lines = 0
        for shard in shards:
            total_lines += sum(1 for line in shard.read_text().splitlines() if line.strip())
        if self._shard_file is not None and not self._shard_file.closed:
            self._shard_file.close()
            self._shard_file = None

        tmp = self.root / "shard-compact.jsonl.tmp"
        with open(tmp, "w", encoding="utf-8") as f:
            for entry in self._index.values():
                f.write(
                    json.dumps(
                        {
                            "key": entry.key,
                            "schema": entry.schema,
                            "record": record_to_dict(entry.record),
                            "meta": entry.meta,
                        }
                    )
                    + "\n"
                )
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, self.root / "shard-compact.jsonl")
        for shard in shards:
            if shard.name != "shard-compact.jsonl":
                shard.unlink(missing_ok=True)
        kept = len(self._index)
        return (kept, total_lines - kept)

    def close(self) -> None:
        if self._shard_file is not None and not self._shard_file.closed:
            self._shard_file.close()
        self._shard_file = None

    def describe(self) -> dict:
        """Store statistics for ``repro campaign status``."""
        n_shards = nbytes = 0
        if self.root is not None:
            for shard in self.root.glob("*.jsonl"):
                n_shards += 1
                nbytes += shard.stat().st_size
        return {
            "root": str(self.root) if self.root is not None else None,
            "entries": len(self._index),
            "shards": n_shards,
            "bytes": nbytes,
            "schema": SCHEMA_VERSION,
        }


_PROCESS_STORE: ResultStore | None = None


def shared_memory_store() -> ResultStore:
    """The process-wide in-memory store runners share by default.

    Two :class:`CharacterizationRunner` instances over the same workload
    resolve to the same keys here, so neither repeats the other's work.
    """
    global _PROCESS_STORE
    if _PROCESS_STORE is None:
        _PROCESS_STORE = ResultStore(None)
    return _PROCESS_STORE
