"""Persistent content-addressed result store.

Layout under the store root (``.repro-cache/`` by default)::

    .repro-cache/
        shard-<pid>.jsonl       one append-only shard per writing process
        shard-compact.jsonl     product of ``gc()``
        manifests/<id>.json     campaign manifests (see campaign.manifest)

Each shard line is one JSON document::

    {"key": "<sha256>", "schema": 1, "record": {...}, "meta": {...}}

Durability model: a writer appends whole lines and flushes them to the
OS after every put, so a killed campaign loses at most the line being
written.  The loader tolerates exactly that failure: a line that does
not parse (truncated tail of a crashed shard) is skipped with a warning
and every earlier line survives.  ``gc()`` rewrites the surviving
entries into one compact shard via an atomic rename, dropping corrupt
tails, stale schema versions and superseded duplicates.

Federation: stores merge.  ``export_shard()`` snapshots a store into one
portable shard file, ``import_shard()`` / ``merge()`` absorb another
store's entries with content-hash deduplication — an entry whose key is
already present with an identical record is skipped without writing a
byte, so replaying the same shard is bit-for-bit idempotent; the same
key arriving with a *different* record raises :class:`StoreConflictError`
(content addresses are deterministic, so a collision means corruption or
a non-reproducible producer, never a legitimate update).
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Iterable, Iterator

from ..core.responses import ResponseRecord
from .keys import SCHEMA_VERSION

__all__ = [
    "ResultStore",
    "StoreConflictError",
    "StoreEntry",
    "record_digest",
    "shared_memory_store",
]

_RECORD_FIELDS = [f.name for f in fields(ResponseRecord)]


def record_to_dict(record: ResponseRecord) -> dict:
    return {name: getattr(record, name) for name in _RECORD_FIELDS}


def record_from_dict(doc: dict) -> ResponseRecord:
    # fields absent from older records (e.g. ``strategy``) fall back to
    # their dataclass defaults; missing required fields still raise
    return ResponseRecord(**{name: doc[name] for name in _RECORD_FIELDS if name in doc})


def record_digest(record: ResponseRecord) -> str:
    """Content hash of one response record (canonical JSON, stable).

    Two hosts that executed the same design point deterministically
    produce the same digest — the federation layer compares these, never
    floats, when auditing that a merged store matches a single-host run.
    """
    doc = record_to_dict(record)
    return hashlib.sha256(json.dumps(doc, sort_keys=True).encode()).hexdigest()


class StoreConflictError(Exception):
    """Same key, different record: the content address lied.

    Keys hash everything that determines a run's output, so two stores
    can only disagree about a key if one of them is corrupt or one
    producer was not reproducible.  Merging refuses to pick a winner.
    """


@dataclass(frozen=True)
class StoreEntry:
    """One cached result: its address, the record, and run metadata."""

    key: str
    record: ResponseRecord
    meta: dict
    schema: int = SCHEMA_VERSION


class ResultStore:
    """Content-addressed store of design-point responses.

    ``root=None`` gives a memory-only store (same interface, nothing
    persisted) — the default backing of in-process runner sharing.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else None
        self._index: dict[str, StoreEntry] = {}
        self._shard_file = None
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            self._load()

    # ------------------------------------------------------------------
    @staticmethod
    def _parse_shard(path: Path, stats: dict | None = None) -> Iterator[StoreEntry]:
        """Yield the readable entries of one shard file, skipping damage.

        A line that does not parse (the truncated tail of a crashed
        writer) is skipped with a warning; entries written under another
        schema version are dropped silently.  ``stats`` (if given)
        accumulates ``corrupt`` and ``stale_schema`` counts.
        """
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            if not line.strip():
                continue
            try:
                doc = json.loads(line)
                entry = StoreEntry(
                    key=doc["key"],
                    record=record_from_dict(doc["record"]),
                    meta=doc.get("meta", {}),
                    schema=doc.get("schema", -1),
                )
            except (ValueError, KeyError, TypeError):
                warnings.warn(
                    f"{path.name}:{lineno}: corrupt store line skipped "
                    "(truncated write from an interrupted campaign?)",
                    stacklevel=2,
                )
                if stats is not None:
                    stats["corrupt"] = stats.get("corrupt", 0) + 1
                continue
            if entry.schema != SCHEMA_VERSION:
                if stats is not None:
                    stats["stale_schema"] = stats.get("stale_schema", 0) + 1
                continue
            yield entry

    def _load(self) -> None:
        assert self.root is not None
        for shard in sorted(self.root.glob("*.jsonl")):
            for entry in self._parse_shard(shard):
                self._index[entry.key] = entry

    def _shard(self):
        assert self.root is not None
        if self._shard_file is None or self._shard_file.closed:
            path = self.root / f"shard-{os.getpid()}.jsonl"
            self._shard_file = open(path, "a", encoding="utf-8")
        return self._shard_file

    # ------------------------------------------------------------------
    def get(self, key: str) -> ResponseRecord | None:
        entry = self._index.get(key)
        return entry.record if entry is not None else None

    def entry(self, key: str) -> StoreEntry | None:
        return self._index.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._index)

    def entries(self) -> Iterator[StoreEntry]:
        yield from self._index.values()

    def put(self, key: str, record: ResponseRecord, meta: dict | None = None) -> None:
        """Insert (or supersede) one result; persists immediately."""
        entry = StoreEntry(key=key, record=record, meta=dict(meta or {}))
        self._index[key] = entry
        if self.root is not None:
            line = self._entry_line(entry)
            f = self._shard()
            f.write(line + "\n")
            f.flush()
            os.fsync(f.fileno())

    # ------------------------------------------------------------------
    def gc(self) -> tuple[int, int]:
        """Compact shards into one; returns ``(kept, dropped)`` line counts.

        Drops corrupt tails, entries written under another schema
        version, and duplicate lines superseded by a later put.
        """
        if self.root is None:
            return (len(self._index), 0)
        shards = sorted(self.root.glob("*.jsonl"))
        total_lines = 0
        for shard in shards:
            total_lines += sum(1 for line in shard.read_text().splitlines() if line.strip())
        if self._shard_file is not None and not self._shard_file.closed:
            self._shard_file.close()
            self._shard_file = None

        tmp = self.root / "shard-compact.jsonl.tmp"
        with open(tmp, "w", encoding="utf-8") as f:
            for entry in self._index.values():
                f.write(self._entry_line(entry) + "\n")
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, self.root / "shard-compact.jsonl")
        for shard in shards:
            if shard.name != "shard-compact.jsonl":
                shard.unlink(missing_ok=True)
        kept = len(self._index)
        return (kept, total_lines - kept)

    # ------------------------------------------------------------------
    # federation: stores merge
    @staticmethod
    def _entry_line(entry: StoreEntry) -> str:
        return json.dumps(
            {
                "key": entry.key,
                "schema": entry.schema,
                "record": record_to_dict(entry.record),
                "meta": entry.meta,
            }
        )

    def export_shard(self, path: str | Path) -> int:
        """Snapshot every entry into one portable shard file.

        The write is atomic (temp file + rename), so a reader — or a
        concurrent ``import_shard`` on another host — never sees a half
        shard.  Returns the number of entries exported.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        with open(tmp, "w", encoding="utf-8") as f:
            for entry in self._index.values():
                f.write(self._entry_line(entry) + "\n")
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
        return len(self._index)

    def _absorb(self, entries: Iterable[StoreEntry]) -> dict:
        """Fold foreign entries in; the core of every merge path.

        * unknown key — adopted (and persisted, for a disk-backed store);
        * known key, identical record — deduplicated: nothing is written,
          which is what makes replaying a shard bit-for-bit idempotent
          (the destination's files do not change);
        * known key, different record — :class:`StoreConflictError`.
          Nothing is adopted from the offending entry; everything
          absorbed before it remains (each adoption was already durable).
        """
        stats = {"imported": 0, "duplicates": 0, "conflicts": 0}
        for entry in entries:
            mine = self._index.get(entry.key)
            if mine is None:
                self.put(entry.key, entry.record, entry.meta)
                stats["imported"] += 1
            elif record_to_dict(mine.record) == record_to_dict(entry.record):
                stats["duplicates"] += 1
            else:
                stats["conflicts"] += 1
                raise StoreConflictError(
                    f"key {entry.key[:12]}… carries a different record than "
                    "this store's copy (same content address, different "
                    "content) — refusing to merge"
                )
        return stats

    def import_shard(self, path: str | Path) -> dict:
        """Absorb one shard file; returns merge statistics.

        Tolerates the same damage ``_load`` does — a truncated tail or a
        corrupt line is skipped (counted under ``corrupt``), every
        readable entry merges.  Importing the same shard twice changes
        nothing: the second pass is all duplicates and writes no bytes.
        """
        path = Path(path)
        stats: dict = {}
        absorbed = self._absorb(self._parse_shard(path, stats))
        return {**absorbed, **{k: stats.get(k, 0) for k in ("corrupt", "stale_schema")}}

    def merge(self, other: "ResultStore") -> dict:
        """Absorb every entry of another (already loaded) store."""
        return self._absorb(other.entries())

    def close(self) -> None:
        if self._shard_file is not None and not self._shard_file.closed:
            self._shard_file.close()
        self._shard_file = None

    def describe(self) -> dict:
        """Store statistics for ``repro campaign status``."""
        n_shards = nbytes = 0
        if self.root is not None:
            for shard in self.root.glob("*.jsonl"):
                n_shards += 1
                nbytes += shard.stat().st_size
        return {
            "root": str(self.root) if self.root is not None else None,
            "entries": len(self._index),
            "shards": n_shards,
            "bytes": nbytes,
            "schema": SCHEMA_VERSION,
        }


_PROCESS_STORE: ResultStore | None = None


def shared_memory_store() -> ResultStore:
    """The process-wide in-memory store runners share by default.

    Two :class:`CharacterizationRunner` instances over the same workload
    resolve to the same keys here, so neither repeats the other's work.
    """
    global _PROCESS_STORE
    if _PROCESS_STORE is None:
        _PROCESS_STORE = ResultStore(None)
    return _PROCESS_STORE
