"""Live campaign dashboard: a read-only rendering of board + store.

``repro campaign status --watch`` repaints :func:`dashboard` every few
seconds.  The function is pure observation — it reads the lease board
and the result store exactly as any worker would and mutates neither,
so watching a campaign can never disturb it.  All inputs are injectable
(``now`` in particular) so the rendering is deterministic under test.

What it shows, per the operator's questions in order:

* **progress** — done / leased / pending counts off the board (or, with
  no board, the store's entry count);
* **in-flight** — every leased point with its worker and the seconds
  left on its lease (negative = expired, reclaimable);
* **per-worker throughput** — points completed and mean wall seconds
  per point, from the store entries' metadata;
* **lease health** — expired-lease count and total reclaim attempts;
* **ETA** — pending work over aggregate observed throughput.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # annotation-only: avoids the store -> core import cycle
    from .board import Board
    from .store import ResultStore

__all__ = ["dashboard", "dashboard_data"]


def dashboard_data(
    store: ResultStore | None,
    board: Board | None = None,
    now: float | None = None,
) -> dict:
    """The dashboard's numbers as one plain dict (rendering-free)."""
    if now is None:
        now = time.time()  # noqa: REP104 — dashboard wall time
    data: dict = {"now": now}

    per_worker: dict[str, dict] = {}
    n_entries = 0
    if store is not None:
        for entry in store.entries():
            n_entries += 1
            who = entry.meta.get("worker") or entry.meta.get("host") or "local"
            slot = per_worker.setdefault(who, {"points": 0, "wall": 0.0})
            slot["points"] += 1
            slot["wall"] += float(entry.meta.get("elapsed", 0.0))
    for slot in per_worker.values():
        slot["mean_wall"] = slot["wall"] / slot["points"] if slot["points"] else 0.0
    data["entries"] = n_entries
    data["workers"] = per_worker

    if board is not None:
        leases = board.leases()
        counts = {"pending": 0, "leased": 0, "done": 0}
        in_flight = []
        expired = 0
        reclaims = 0
        for lease in leases:
            counts[lease.state] = counts.get(lease.state, 0) + 1
            reclaims += lease.attempts
            if lease.state == "leased":
                left = lease.expires - now
                expired += left <= 0
                in_flight.append(
                    {"label": lease.label, "key": lease.key,
                     "worker": lease.worker, "seconds_left": left}
                )
        in_flight.sort(key=lambda x: x["seconds_left"])
        data["counts"] = counts
        data["in_flight"] = in_flight
        data["expired"] = expired
        data["reclaims"] = reclaims

        # ETA: pending points over the summed observed rate of the
        # workers that have completed anything yet.
        rate = sum(
            s["points"] / s["wall"] for s in per_worker.values() if s["wall"] > 0
        )
        remaining = counts["pending"] + counts["leased"]
        data["eta_seconds"] = remaining / rate if rate > 0 and remaining else None
    return data


def dashboard(
    store: ResultStore | None,
    board: Board | None = None,
    now: float | None = None,
) -> str:
    """Render the live campaign view as a fixed-width text panel."""
    d = dashboard_data(store, board, now=now)
    lines: list[str] = []

    if "counts" in d:
        c = d["counts"]
        total = sum(c.values())
        lines.append(
            f"campaign: {c['done']}/{total} done — "
            f"{c['leased']} in flight, {c['pending']} pending"
        )
        health = f"lease health: {d['expired']} expired, {d['reclaims']} reclaim(s)"
        if d.get("eta_seconds") is not None:
            health += f" — ETA {d['eta_seconds']:.0f} s"
        lines.append(health)
        if d["in_flight"]:
            lines.append("in flight:")
            for item in d["in_flight"]:
                state = (
                    f"{item['seconds_left']:.0f} s left"
                    if item["seconds_left"] > 0
                    else "EXPIRED (reclaimable)"
                )
                lines.append(
                    f"  {item['label']:<24} {item['worker'] or '?':<12} {state}"
                )
    else:
        lines.append(f"store: {d['entries']} cached result(s)")

    if d["workers"]:
        lines.append("throughput:")
        for who in sorted(d["workers"]):
            s = d["workers"][who]
            lines.append(
                f"  {who:<16} {s['points']:>4} point(s)"
                f"  mean {s['mean_wall']:.2f} s/point"
            )
    return "\n".join(lines)
