"""Live campaign dashboard: a read-only rendering of board + store.

``repro campaign status --watch`` repaints :func:`dashboard` every few
seconds.  The function is pure observation — it reads the lease board
and the result store exactly as any worker would and mutates neither,
so watching a campaign can never disturb it.  All inputs are injectable
(``now`` in particular) so the rendering is deterministic under test.

What it shows, per the operator's questions in order:

* **progress** — done / leased / pending counts off the board (or, with
  no board, the store's entry count);
* **in-flight** — every leased point with its worker and the seconds
  left on its lease (negative = expired, reclaimable);
* **per-worker throughput** — points completed and mean wall seconds
  per point, from the store entries' metadata;
* **lease health** — expired-lease count and total reclaim attempts;
* **ETA** — pending work over aggregate observed throughput (an explicit
  ``n/a`` until at least one worker has finished a point — a worker that
  holds leases but has completed nothing contributes no rate);
* **recent activity** — event count and age of the freshest runlog line,
  tolerant of torn tails (a log holding only a half-written line shows
  ``n/a``, it never raises);
* **report** — where the latest post-hoc analysis report is served
  (the coordinator's ``/v1/report`` when watching over HTTP, the
  on-disk ``reports/report-latest.json`` otherwise).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from ..instrument.runlog import read_runlog

if TYPE_CHECKING:  # annotation-only: avoids the store -> core import cycle
    from .board import Board
    from .store import ResultStore

__all__ = ["dashboard", "dashboard_data", "report_link"]


def report_link(store: ResultStore | None, board: Board | None = None) -> str | None:
    """Where the freshest analysis report lives, if anywhere.

    An HTTP board means a coordinator is (or was) serving — link its
    ``/v1/report`` endpoint.  Otherwise link the saved canonical JSON
    beside the store, when an analysis has actually been published.
    """
    url = getattr(board, "url", None)
    if url:
        return url.rstrip("/") + "/v1/report"
    root = getattr(store, "root", None)
    if root is not None:
        saved = root / "reports" / "report-latest.json"
        if saved.is_file():
            return str(saved)
    return None


def dashboard_data(
    store: ResultStore | None,
    board: Board | None = None,
    now: float | None = None,
    runlog: str | None = None,
) -> dict:
    """The dashboard's numbers as one plain dict (rendering-free)."""
    if now is None:
        now = time.time()  # noqa: REP104 — dashboard wall time
    data: dict = {"now": now}

    per_worker: dict[str, dict] = {}
    n_entries = 0
    if store is not None:
        for entry in store.entries():
            n_entries += 1
            who = entry.meta.get("worker") or entry.meta.get("host") or "local"
            slot = per_worker.setdefault(who, {"points": 0, "wall": 0.0})
            slot["points"] += 1
            slot["wall"] += float(entry.meta.get("elapsed", 0.0))
    data["entries"] = n_entries
    data["workers"] = per_worker

    if board is not None:
        leases = board.leases()
        counts = {"pending": 0, "leased": 0, "done": 0}
        in_flight = []
        expired = 0
        reclaims = 0
        for lease in leases:
            counts[lease.state] = counts.get(lease.state, 0) + 1
            reclaims += lease.attempts
            if lease.state == "leased":
                left = lease.expires - now
                expired += left <= 0
                in_flight.append(
                    {"label": lease.label, "key": lease.key,
                     "worker": lease.worker, "seconds_left": left}
                )
                # A worker that is mid-lease but has completed nothing
                # still deserves a throughput row — with an n/a mean,
                # not a divide-by-zero.
                if lease.worker:
                    per_worker.setdefault(lease.worker, {"points": 0, "wall": 0.0})
        in_flight.sort(key=lambda x: x["seconds_left"])
        data["counts"] = counts
        data["in_flight"] = in_flight
        data["expired"] = expired
        data["reclaims"] = reclaims

        # ETA: pending points over the summed observed rate of the
        # workers that have completed anything yet.  Zero-point or
        # zero-wall workers contribute no rate (and cannot divide by
        # zero); with no rate at all the ETA is explicitly unknown.
        rate = sum(
            s["points"] / s["wall"]
            for s in per_worker.values()
            if s["points"] > 0 and s["wall"] > 0
        )
        remaining = counts["pending"] + counts["leased"]
        data["eta_seconds"] = remaining / rate if rate > 0 and remaining else None

    for slot in per_worker.values():
        slot["mean_wall"] = (
            slot["wall"] / slot["points"]
            if slot["points"] > 0 and slot["wall"] > 0
            else None
        )

    if runlog is not None:
        events = last = None
        try:
            events = 0
            for record in read_runlog(runlog):
                events += 1
                last = record
        except OSError:
            events = None  # unreadable log: activity unknown, not fatal
        data["activity"] = {
            "events": events,
            "last_event": last.get("event") if last else None,
            "last_age_s": (now - last["ts"]) if last and "ts" in last else None,
        }

    data["report"] = report_link(store, board)
    return data


def dashboard(
    store: ResultStore | None,
    board: Board | None = None,
    now: float | None = None,
    runlog: str | None = None,
) -> str:
    """Render the live campaign view as a fixed-width text panel."""
    d = dashboard_data(store, board, now=now, runlog=runlog)
    lines: list[str] = []

    if "counts" in d:
        c = d["counts"]
        total = sum(c.values())
        lines.append(
            f"campaign: {c['done']}/{total} done — "
            f"{c['leased']} in flight, {c['pending']} pending"
        )
        health = f"lease health: {d['expired']} expired, {d['reclaims']} reclaim(s)"
        remaining = c["pending"] + c["leased"]
        if d.get("eta_seconds") is not None:
            health += f" — ETA {d['eta_seconds']:.0f} s"
        elif remaining:
            health += " — ETA n/a"
        lines.append(health)
        if d["in_flight"]:
            lines.append("in flight:")
            for item in d["in_flight"]:
                state = (
                    f"{item['seconds_left']:.0f} s left"
                    if item["seconds_left"] > 0
                    else "EXPIRED (reclaimable)"
                )
                lines.append(
                    f"  {item['label']:<24} {item['worker'] or '?':<12} {state}"
                )
    else:
        lines.append(f"store: {d['entries']} cached result(s)")

    if d["workers"]:
        lines.append("throughput:")
        for who in sorted(d["workers"]):
            s = d["workers"][who]
            mean = (
                f"mean {s['mean_wall']:.2f} s/point"
                if s["mean_wall"] is not None
                else "mean n/a"
            )
            lines.append(f"  {who:<16} {s['points']:>4} point(s)  {mean}")

    activity = d.get("activity")
    if activity is not None:
        if activity["events"] and activity["last_age_s"] is not None:
            lines.append(
                f"activity: {activity['events']} event(s), last "
                f"'{activity['last_event']}' {activity['last_age_s']:.0f} s ago"
            )
        else:
            lines.append("activity: n/a")

    if d.get("report"):
        lines.append(f"report: {d['report']}")
    return "\n".join(lines)
