"""The ``Board`` protocol: one lease-coordination surface, many backends.

A *board* is whatever coordinates a worker-pull campaign: it hands out
leases, keeps them alive, and records completion.  Two implementations
ship:

* :class:`~repro.campaign.leases.LeaseBoard` — one JSON file on a
  (possibly shared) filesystem, zero dependencies, the original and
  fallback backend;
* :class:`~repro.campaign.coordinator.HttpBoardClient` — a thin blocking
  client speaking the coordinator wire format
  (:mod:`repro.campaign.coordinator.wire`) to the asyncio HTTP
  coordinator, for campaigns whose workers share no filesystem.

Everything downstream — :mod:`repro.campaign.federation`,
:mod:`repro.campaign.dashboard`, the ``campaign serve/work/status`` CLI
— accepts any :class:`Board`; callers pick a backend with one URL
through :func:`board_from_url`::

    board_from_url("file:leases.json")       # file board, explicit
    board_from_url("leases.json")            # file board, bare path
    board_from_url("http://host:8765")       # HTTP coordinator client

The contract every backend must honour (the file board's semantics,
verbatim):

* :meth:`Board.claim` returns each runnable lease to exactly one caller
  — concurrent claims never double-assign a key;
* a ``leased`` entry whose deadline passed is runnable again, with
  ``attempts`` incremented (expiry *is* the liveness story);
* :meth:`Board.complete` returns ``False`` when the lease was reclaimed
  from the caller meanwhile (late completion after a reclaim);
* :meth:`Board.release` silently no-ops unless the caller still holds
  the lease.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # annotation-only: leases imports this module
    from .leases import Lease

__all__ = ["Board", "board_from_url"]

#: Lease/board states every backend shares.
STATES = ("pending", "leased", "done")


class Board(ABC):
    """Abstract lease board: the campaign-coordination protocol.

    Subclasses implement the seven primitives; ``counts``/``done`` are
    derived here so every backend agrees on what "finished" means.
    """

    # -- mutations ------------------------------------------------------
    @abstractmethod
    def publish(self, campaign: dict, leases: list["Lease"]) -> None:
        """Replace the board's contents with a fresh campaign."""

    @abstractmethod
    def claim(self, worker: str, ttl: float = 300.0) -> "Lease | None":
        """Claim the next runnable lease for ``worker``, or ``None``."""

    @abstractmethod
    def heartbeat(self, key: str, worker: str, ttl: float = 300.0) -> bool:
        """Extend a held lease's deadline; False if no longer ours."""

    @abstractmethod
    def complete(self, key: str, worker: str) -> bool:
        """Mark a lease done; False if it was reclaimed from us meanwhile."""

    @abstractmethod
    def release(self, key: str, worker: str) -> None:
        """Give a claimed lease back (worker failed but lived to say so)."""

    # -- read-only views ------------------------------------------------
    @abstractmethod
    def campaign(self) -> dict:
        """The published campaign description (what workers reconstruct)."""

    @abstractmethod
    def leases(self) -> list["Lease"]:
        """Every lease on the board, as :class:`~repro.campaign.leases.Lease`."""

    def counts(self) -> dict[str, int]:
        out = {state: 0 for state in STATES}
        for lease in self.leases():
            out[lease.state] = out.get(lease.state, 0) + 1
        return out

    def done(self) -> bool:
        counts = self.counts()
        return counts["pending"] == 0 and counts["leased"] == 0

    def describe(self) -> str:
        """One-line human identity of the backend (for logs and errors)."""
        return type(self).__name__


def board_from_url(url: "str | Path | Board", *, now=None) -> "Board":
    """Resolve one ``--board`` argument to a live :class:`Board`.

    Accepted forms:

    * an existing :class:`Board` — returned unchanged (so every call
      site can normalize through this one function);
    * ``http://HOST:PORT`` / ``https://HOST:PORT`` — an
      :class:`~repro.campaign.coordinator.HttpBoardClient` against a
      running coordinator;
    * ``file:PATH`` — the file board at ``PATH``;
    * any other string or :class:`~pathlib.Path` — treated as a bare
      file-board path (the historical call form; pinned by tests so old
      callers keep working).

    ``now`` is the injectable clock for file boards; HTTP boards ignore
    it because expiry is decided by the coordinator's clock.
    """
    if isinstance(url, Board):
        return url
    text = str(url)
    if text.startswith(("http://", "https://")):
        from .coordinator.client import HttpBoardClient

        return HttpBoardClient(text)
    from .leases import LeaseBoard

    if text.startswith("file:"):
        text = text[len("file:"):]
        if not text:
            raise ValueError("empty path in 'file:' board URL")
    return LeaseBoard(text, now=now)
