"""Completeness and coverage audit over a campaign store.

Answers three questions no single manifest can:

* **factorial completeness** — per (workload, strategy), which cells of
  the observed factorial grid (network x middleware x cpus_per_node x
  p x replicate) are missing?  A half-run nightly or a crashed worker
  leaves holes this report names explicitly.
* **shard health** — how many corrupt lines and stale-schema entries
  does each shard carry, and which shards are fully *orphaned* (every
  entry superseded by a later shard — safe to garbage-collect)?
* **REP203 promotion** — does the accumulated nightly evidence support
  promoting the tag-collision FIFO-disambiguation warning to a hard
  error?  The verdict folds the rep203 aggregate from merged manifests.

``ok`` reflects *damage* only (corrupt lines, stale schema, orphans);
missing factorial cells are reported but do not fail the audit — a
deliberately sparse campaign is not an error.
"""

from __future__ import annotations

from .breakdown import aggregate_rep203

__all__ = ["COVERAGE_SCHEMA", "coverage_report", "rep203_verdict"]

COVERAGE_SCHEMA = 1

#: Cap on the missing-cell listing so a near-empty grid cannot bloat
#: the report; the total is always reported exactly.
_MISSING_CAP = 50

_GRID_AXES = ("network", "middleware", "cpus_per_node", "n_ranks", "replicate")


def rep203_verdict(agg: dict) -> dict:
    """Decide whether nightly data supports promoting REP203 to an error.

    Promotion is justified only when a meaningful sample of manifests
    carries the counter *and* it never fired — then tag reuse is shown
    to be absent in practice and an error costs nothing.  Any non-zero
    count proves legitimate FIFO-disambiguated reuse exists, so the
    warning must stay a warning.
    """
    manifests = agg["manifests_with_counter"]
    total = agg["fifo_disambiguations"]
    if total > 0:
        return {
            "promote": False,
            "reason": (
                f"keep REP203 a warning: {total} FIFO disambiguation(s) observed "
                f"across {manifests} manifest(s) — tag reuse is legitimate in "
                "practice and an error would reject real schedules"
            ),
        }
    if manifests == 0:
        return {
            "promote": False,
            "reason": (
                "keep REP203 a warning: no merged manifest carries the "
                "rep203.fifo_disambiguations counter yet (no data)"
            ),
        }
    if manifests < 5:
        return {
            "promote": False,
            "reason": (
                f"keep REP203 a warning: zero disambiguations so far, but only "
                f"{manifests} manifest(s) carry the counter — insufficient "
                "nightly evidence (need >= 5)"
            ),
        }
    return {
        "promote": True,
        "reason": (
            f"promote REP203 to an error: {manifests} manifests carry the "
            "counter and none recorded a FIFO disambiguation — tag reuse "
            "does not occur in practice"
        ),
    }


def _shard_docs(partials: list[dict], rows: list[dict]) -> list[dict]:
    """Per-shard health, including how many entries survive the merge."""
    live_keys = {row["key"] for row in rows}
    winner: dict[str, str] = {}
    per_shard_keys: dict[str, set] = {}
    for partial in partials:  # sorted-shard order: later shard wins
        keys = {row["key"] for row in partial["rows"]}
        per_shard_keys[partial["shard"]] = keys
        for key in keys:
            winner[key] = partial["shard"]
    docs = []
    for partial in partials:
        shard = partial["shard"]
        live = sum(
            1
            for key in per_shard_keys[shard]
            if winner[key] == shard and key in live_keys
        )
        docs.append(
            {
                "shard": shard,
                "entries": len(partial["rows"]),
                "live": live,
                "corrupt": partial["corrupt"],
                "stale_schema": partial["stale_schema"],
            }
        )
    return docs


def _grid_docs(rows: list[dict]) -> list[dict]:
    """Expected-vs-observed factorial grid per (workload, strategy)."""
    by_group: dict[tuple, list[dict]] = {}
    for row in rows:
        by_group.setdefault((row["workload"], row["strategy"]), []).append(row)

    docs = []
    for gkey in sorted(by_group):
        members = by_group[gkey]
        levels = {
            axis: sorted({row[axis] for row in members}, key=str)
            for axis in _GRID_AXES
        }
        observed = {tuple(row[axis] for axis in _GRID_AXES) for row in members}
        expected = 1
        for axis_levels in levels.values():
            expected *= len(axis_levels)

        missing = []
        n_missing = 0

        def _walk(prefix: tuple, remaining: tuple) -> None:
            nonlocal n_missing
            if not remaining:
                if prefix not in observed:
                    n_missing += 1
                    if len(missing) < _MISSING_CAP:
                        missing.append(dict(zip(_GRID_AXES, prefix)))
                return
            for level in levels[remaining[0]]:
                _walk(prefix + (level,), remaining[1:])

        _walk((), _GRID_AXES)
        docs.append(
            {
                "workload": gkey[0],
                "strategy": gkey[1],
                "levels": {
                    "p" if axis == "n_ranks" else axis: vals
                    for axis, vals in levels.items()
                },
                "expected_cells": expected,
                "observed_cells": len(observed),
                "missing_cells": n_missing,
                "missing": missing,
                "missing_truncated": n_missing - len(missing),
            }
        )
    return docs


def coverage_report(
    partials: list[dict], rows: list[dict], manifests=None
) -> dict:
    """Reduce map partials + merged rows into the coverage audit."""
    shard_docs = _shard_docs(partials, rows)
    orphaned = [doc["shard"] for doc in shard_docs if doc["live"] == 0]
    corrupt = sum(doc["corrupt"] for doc in shard_docs)
    stale = sum(doc["stale_schema"] for doc in shard_docs)
    grids = _grid_docs(rows)
    rep203 = aggregate_rep203(manifests or [])
    return {
        "analyzer": "coverage",
        "schema": COVERAGE_SCHEMA,
        "n_records": len(rows),
        "shards": shard_docs,
        "orphaned_shards": orphaned,
        "corrupt_lines": corrupt,
        "stale_schema_entries": stale,
        "grids": grids,
        "missing_cells": sum(g["missing_cells"] for g in grids),
        "rep203": {**rep203, "verdict": rep203_verdict(rep203)},
        "ok": not (corrupt or stale or orphaned),
    }
