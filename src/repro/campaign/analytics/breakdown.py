"""The comm-breakdown analyzer: the paper's tables from stored records.

The paper's entire contribution is a decomposition of wall time into
computation / communication / synchronization per energy path (classic
cutoff vs PME), per platform factor.  This reducer regenerates that
decomposition from :class:`~repro.core.responses.ResponseRecord` rows
alone — zero force evaluations — grouped along any campaign axis.

For each group (every axis fixed except the *series* axis) the report
carries one point per series level: mean phase seconds and percentages
over replicates, plus — when the series axis is the processor count —
speedup and parallel efficiency against the smallest measured p and the
*crossover* point, the smallest p at which communication +
synchronization overtakes computation.  The crossover table is the
quantitative answer to the title question: classic stays
computation-dominated where PME crosses early.
"""

from __future__ import annotations

from .mapreduce import AnalysisError

__all__ = ["AXES", "REPORT_SCHEMA", "aggregate_rep203", "breakdown_report"]

REPORT_SCHEMA = 1

#: The campaign axes a report can group or series along.  ``p`` is the
#: processor count (``n_ranks`` on the record).
AXES = ("workload", "strategy", "network", "middleware", "cpus_per_node", "p")

_PHASES = ("classic", "pme")


def _axis(row: dict, axis: str):
    return row["n_ranks"] if axis == "p" else row[axis]


def _mean(rows: list[dict], field: str) -> float:
    return sum(row[field] for row in rows) / len(rows)


def _phase_doc(rows: list[dict], prefix: str) -> dict:
    comp = _mean(rows, f"{prefix}_comp")
    comm = _mean(rows, f"{prefix}_comm")
    sync = _mean(rows, f"{prefix}_sync")
    total = _mean(rows, f"{prefix}_time")
    doc = {
        "total": total,
        "seconds": {"comp": comp, "comm": comm, "sync": sync},
    }
    if total > 0:
        doc["pct"] = {
            "comp": round(100.0 * comp / total, 4),
            "comm": round(100.0 * comm / total, 4),
            "sync": round(100.0 * sync / total, 4),
        }
        doc["overhead_fraction"] = round((comm + sync) / total, 6)
    return doc


def _total_phase_doc(point_phases: dict) -> dict:
    comp = sum(point_phases[p]["seconds"]["comp"] for p in _PHASES)
    comm = sum(point_phases[p]["seconds"]["comm"] for p in _PHASES)
    sync = sum(point_phases[p]["seconds"]["sync"] for p in _PHASES)
    total = sum(point_phases[p]["total"] for p in _PHASES)
    doc = {"total": total, "seconds": {"comp": comp, "comm": comm, "sync": sync}}
    if total > 0:
        doc["pct"] = {
            "comp": round(100.0 * comp / total, 4),
            "comm": round(100.0 * comm / total, 4),
            "sync": round(100.0 * sync / total, 4),
        }
        doc["overhead_fraction"] = round((comm + sync) / total, 6)
    return doc


def _crossover(points: list[dict], phase: str):
    """Smallest series level where comm + sync > comp (None: never)."""
    for point in points:
        seconds = point["phases"][phase]["seconds"]
        if seconds["comm"] + seconds["sync"] > seconds["comp"]:
            return point["series"]
    return None


def breakdown_report(rows: list[dict], series: str = "p", manifests=None) -> dict:
    """Reduce rows into the comm-breakdown report document.

    ``rows`` must already be merged and key-sorted
    (:func:`~repro.campaign.analytics.mapreduce.merge_rows`); iteration
    order here is therefore deterministic, which fixes floating-point
    summation order and makes the output byte-stable.
    """
    if series not in AXES:
        raise AnalysisError(f"unknown series axis {series!r} (one of {', '.join(AXES)})")
    group_axes = [axis for axis in AXES if axis != series]

    groups: dict[tuple, dict] = {}
    for row in rows:
        gkey = tuple(_axis(row, axis) for axis in group_axes)
        groups.setdefault(gkey, {}).setdefault(_axis(row, series), []).append(row)

    group_docs = []
    for gkey in sorted(groups, key=lambda k: tuple(map(str, k))):
        points = []
        for svalue in sorted(groups[gkey]):
            reps = groups[gkey][svalue]
            phases = {prefix: _phase_doc(reps, prefix) for prefix in _PHASES}
            phases["total"] = _total_phase_doc(phases)
            points.append(
                {
                    "series": svalue,
                    "replicates": len(reps),
                    "wall_time": _mean(reps, "wall_time"),
                    "final_energy": _mean(reps, "final_energy"),
                    "comm_mean_mbs": _mean(reps, "comm_mean_mbs"),
                    "phases": phases,
                }
            )
        doc = {"group": dict(zip(group_axes, gkey)), "points": points}
        if series == "p" and points:
            ref = points[0]
            for point in points:
                if ref["wall_time"] > 0 and point["wall_time"] > 0:
                    speedup = ref["wall_time"] / point["wall_time"]
                    point["speedup"] = round(speedup, 6)
                    point["efficiency"] = round(
                        speedup * ref["series"] / point["series"], 6
                    )
            doc["speedup_ref_p"] = ref["series"]
            doc["crossover"] = {
                phase: _crossover(points, phase) for phase in (*_PHASES, "total")
            }
        group_docs.append(doc)

    return {
        "analyzer": "report",
        "schema": REPORT_SCHEMA,
        "series": series,
        "n_records": len(rows),
        "n_groups": len(group_docs),
        "groups": group_docs,
        "rep203": aggregate_rep203(manifests or []),
    }


def aggregate_rep203(manifest_docs: list[dict]) -> dict:
    """Fold ``rep203.fifo_disambiguations`` across campaign manifests.

    The REP203 tag-collision rule counts FIFO-disambiguated tag reuse at
    runtime; merged (federated) manifests carry the counter in their
    metrics snapshot.  This aggregate is what the coverage analyzer's
    promotion verdict reads.
    """
    total = with_counter = 0
    for doc in manifest_docs:
        counter = doc.get("metrics", {}).get("counters", {}).get(
            "rep203.fifo_disambiguations"
        )
        if counter is not None:
            with_counter += 1
            total += int(counter.get("total", 0))
    return {
        "fifo_disambiguations": total,
        "manifests": len(manifest_docs),
        "manifests_with_counter": with_counter,
    }
