"""Cross-campaign trend reports: diff two timing sources, flag regressions.

A *source* is anything that carries named timings:

* a **store directory** — every record becomes one series named by its
  design identity, carrying the virtual wall / classic / PME times plus
  the six per-phase splits;
* a **BENCH_wallclock.json** document — the committed host-seconds
  baseline (``seconds``, ``exec_ab``, ``spatial`` keys, and the
  ``breakdown`` virtual splits when recorded with ``--breakdown``);
* a **campaign manifest** — per-point harness wall seconds of the
  points that actually executed.

The tolerance policy mirrors the bench gate: candidate/baseline ratios
above ``factor`` are regressions (non-zero exit in the CLI, a failed
job in CI), below ``1/factor`` improvements.  When both sides carry
per-phase splits, each regression is *attributed*: virtual splits are
deterministic, so a changed split names the phase that grew, while
unchanged splits prove the slowdown is host-side (interpreter, cache,
machine) rather than a schedule or physics change.
"""

from __future__ import annotations

import json
from pathlib import Path

from .mapreduce import AnalysisError, map_shards, merge_rows

__all__ = ["TREND_SCHEMA", "load_trend_source", "trend_report"]

TREND_SCHEMA = 1

_SPLIT_FIELDS = (
    "classic_comp", "classic_comm", "classic_sync",
    "pme_comp", "pme_comm", "pme_sync",
)


def _row_name(row: dict) -> str:
    return (
        f"{row['workload']}:{row['strategy']}:{row['network']}:"
        f"{row['middleware']}:c{row['cpus_per_node']}:p{row['n_ranks']}:"
        f"r{row['replicate']}"
    )


def _store_source(root: Path, n_workers: int) -> dict:
    rows = merge_rows(map_shards(root, n_workers))
    series: dict[str, dict] = {}
    for row in rows:  # key-sorted; identity collisions resolve to the last key
        series[_row_name(row)] = {
            "metrics": {
                "wall_time": row["wall_time"],
                "classic_time": row["classic_time"],
                "pme_time": row["pme_time"],
            },
            "splits": {field: row[field] for field in _SPLIT_FIELDS},
        }
    return {"kind": "store", "name": root.name, "series": series}


def _bench_source(doc: dict, name: str) -> dict:
    series: dict[str, dict] = {}
    breakdown = doc.get("breakdown", {})
    for key, value in doc.get("seconds", {}).items():
        entry: dict = {"metrics": {"seconds": float(value)}}
        if key in breakdown:
            entry["splits"] = {
                field: breakdown[key][field]
                for field in _SPLIT_FIELDS
                if field in breakdown[key]
            }
        series[f"bench/{key}"] = entry
    for leg, value in doc.get("exec_ab", {}).get("seconds", {}).items():
        series[f"bench/exec_ab.{leg}"] = {"metrics": {"seconds": float(value)}}
    for key, value in doc.get("spatial", {}).get("seconds", {}).items():
        series[f"bench/spatial.{key}"] = {"metrics": {"seconds": float(value)}}
    return {"kind": "bench", "name": name, "series": series}


def _manifest_source(doc: dict, name: str) -> dict:
    series = {
        point["label"]: {"metrics": {"wall_time": float(point["wall_time"])}}
        for point in doc.get("points", [])
        if point.get("status") == "ran" and point.get("wall_time", 0) > 0
    }
    return {"kind": "manifest", "name": name, "series": series}


def load_trend_source(path: str | Path, n_workers: int = 0) -> dict:
    """Load one trend source: a store directory or a JSON document."""
    p = Path(path)
    if p.is_dir():
        return _store_source(p, n_workers)
    if not p.is_file():
        raise AnalysisError(f"trend source {p} does not exist")
    try:
        doc = json.loads(p.read_text())
    except ValueError as exc:
        raise AnalysisError(f"trend source {p} is not valid JSON: {exc}") from None
    if "seconds" in doc:
        return _bench_source(doc, p.name)
    if "points" in doc:
        return _manifest_source(doc, p.name)
    raise AnalysisError(
        f"trend source {p} is neither a bench document (no 'seconds' key) "
        "nor a campaign manifest (no 'points' key)"
    )


_ABS_DELTA = 1e-9


def _attribute(base_splits: dict | None, cand_splits: dict | None) -> dict | None:
    """Name the phase a regression grew in, from the virtual splits."""
    if not base_splits or not cand_splits:
        return None
    common = set(base_splits) & set(cand_splits)
    if not common.issuperset(_SPLIT_FIELDS):
        return None
    deltas = {
        "classic": cand_splits["classic_comp"] - base_splits["classic_comp"],
        "pme": cand_splits["pme_comp"] - base_splits["pme_comp"],
        "comm": sum(
            cand_splits[f] - base_splits[f]
            for f in _SPLIT_FIELDS
            if f.endswith(("_comm", "_sync"))
        ),
    }
    deltas = {k: round(v, 9) for k, v in deltas.items()}
    dominant = max(sorted(deltas), key=lambda k: deltas[k])
    if deltas[dominant] <= _ABS_DELTA:
        return {
            "deltas": deltas,
            "dominant_phase": None,
            "note": (
                "virtual splits unchanged — the slowdown is host-side, "
                "not a schedule or physics change"
            ),
        }
    return {"deltas": deltas, "dominant_phase": dominant}


def trend_report(baseline: dict, candidate: dict, factor: float = 1.25) -> dict:
    """Diff two loaded sources; classify every shared metric by ratio."""
    if factor <= 1.0:
        raise AnalysisError(f"trend --factor must be > 1 (got {factor})")
    base_series, cand_series = baseline["series"], candidate["series"]
    common = sorted(set(base_series) & set(cand_series))

    compared = 0
    regressions: list[dict] = []
    improvements: list[dict] = []
    for name in common:
        base_entry, cand_entry = base_series[name], cand_series[name]
        metrics = sorted(set(base_entry["metrics"]) & set(cand_entry["metrics"]))
        for metric in metrics:
            base = base_entry["metrics"][metric]
            cand = cand_entry["metrics"][metric]
            if base <= 0:
                continue
            compared += 1
            ratio = cand / base
            if ratio <= factor and ratio >= 1.0 / factor:
                continue
            entry = {
                "name": name,
                "metric": metric,
                "baseline": base,
                "candidate": cand,
                "ratio": round(ratio, 6),
            }
            if ratio > factor:
                entry["status"] = "regression"
                attribution = _attribute(
                    base_entry.get("splits"), cand_entry.get("splits")
                )
                if attribution is not None:
                    entry["attribution"] = attribution
                regressions.append(entry)
            else:
                entry["status"] = "improvement"
                improvements.append(entry)

    return {
        "analyzer": "trend",
        "schema": TREND_SCHEMA,
        "factor": factor,
        "baseline": {"kind": baseline["kind"], "name": baseline["name"]},
        "candidate": {"kind": candidate["kind"], "name": candidate["name"]},
        "compared": compared,
        "common_series": len(common),
        "only_in_baseline": sorted(set(base_series) - set(cand_series)),
        "only_in_candidate": sorted(set(cand_series) - set(base_series)),
        "regressions": regressions,
        "improvements": improvements,
        "ok": not regressions,
    }
