"""Energy-drift and conservation checks over stored trajectories.

Two families of findings:

* **energy consensus** — within one (workload, strategy) the simulator
  is deterministic and decomposition-independent, so every record's
  final energy must agree to a relative tolerance.  Records are
  clustered by energy; anything outside the consensus cluster (largest
  cluster, ties broken toward the lowest energy) is flagged, and a
  non-finite energy is always flagged.
* **timeline conservation** — per record, each phase's virtual wall
  time must equal its computation + communication + synchronization
  parts (the two-clock bookkeeping invariant), and no component may be
  negative.

A corrupted record — a bit flip in a shard, a non-reproducible producer
— surfaces here without re-running anything.
"""

from __future__ import annotations

import math

__all__ = ["DRIFT_SCHEMA", "drift_report"]

DRIFT_SCHEMA = 1

_PHASES = ("classic", "pme")
_ABS_TOL = 1e-12


def _close(a: float, b: float, rtol: float) -> bool:
    return abs(a - b) <= max(rtol * max(abs(a), abs(b)), _ABS_TOL)


def _consensus_findings(rows: list[dict], rtol: float, findings: list[dict]) -> list[dict]:
    """Cluster per-(workload, strategy) energies; flag non-consensus rows."""
    by_group: dict[tuple, list[dict]] = {}
    for row in rows:
        by_group.setdefault((row["workload"], row["strategy"]), []).append(row)

    group_docs = []
    for gkey in sorted(by_group):
        members = by_group[gkey]
        finite = []
        for row in members:
            energy = row["final_energy"]
            if isinstance(energy, float) and not math.isfinite(energy):
                findings.append(
                    {
                        "check": "finite-energy",
                        "key": row["key"],
                        "label": row["label"],
                        "detail": f"final_energy is {energy!r}",
                    }
                )
            else:
                finite.append(row)

        clusters: list[list[dict]] = []
        for row in finite:  # rows arrive key-sorted: deterministic clustering
            for cluster in clusters:
                if _close(row["final_energy"], cluster[0]["final_energy"], rtol):
                    cluster.append(row)
                    break
            else:
                clusters.append([row])
        clusters.sort(key=lambda c: (-len(c), c[0]["final_energy"]))

        consensus = clusters[0][0]["final_energy"] if clusters else None
        for cluster in clusters[1:]:
            for row in cluster:
                findings.append(
                    {
                        "check": "energy-consensus",
                        "key": row["key"],
                        "label": row["label"],
                        "detail": (
                            f"final_energy {row['final_energy']!r} disagrees with "
                            f"the consensus {consensus!r} (rtol {rtol})"
                        ),
                    }
                )
        group_docs.append(
            {
                "workload": gkey[0],
                "strategy": gkey[1],
                "n_records": len(members),
                "consensus_energy": consensus,
                "clusters": [
                    {"energy": c[0]["final_energy"], "n": len(c)} for c in clusters
                ],
            }
        )
    return group_docs


def _conservation_findings(rows: list[dict], findings: list[dict]) -> None:
    for row in rows:
        for prefix in _PHASES:
            total = row[f"{prefix}_time"]
            parts = {
                name: row[f"{prefix}_{name}"] for name in ("comp", "comm", "sync")
            }
            for name, value in parts.items():
                if value < 0:
                    findings.append(
                        {
                            "check": "negative-component",
                            "key": row["key"],
                            "label": row["label"],
                            "detail": f"{prefix}_{name} = {value!r} < 0",
                        }
                    )
            gap = abs(total - sum(parts.values()))
            if gap > max(1e-9 * max(abs(total), 1.0), _ABS_TOL):
                findings.append(
                    {
                        "check": "phase-bookkeeping",
                        "key": row["key"],
                        "label": row["label"],
                        "detail": (
                            f"{prefix}_time {total!r} != comp+comm+sync "
                            f"{sum(parts.values())!r} (gap {gap:.3e})"
                        ),
                    }
                )


def drift_report(rows: list[dict], rtol: float = 1e-9) -> dict:
    """Reduce key-sorted rows into the drift/conservation report."""
    findings: list[dict] = []
    group_docs = _consensus_findings(rows, rtol, findings)
    _conservation_findings(rows, findings)
    findings.sort(key=lambda f: (f["check"], f["key"]))
    return {
        "analyzer": "drift",
        "schema": DRIFT_SCHEMA,
        "rtol": rtol,
        "n_records": len(rows),
        "workloads": group_docs,
        "findings": findings,
        "ok": not findings,
    }
