"""Deterministic map-reduce over content-addressed store shards.

The map unit is one shard file: a worker parses it with the store's own
corruption-tolerant reader and projects every surviving entry into a
flat *row* (the record fields plus the axes and provenance the reducers
group on).  The reduce side then merges partials under exactly the
semantics ``ResultStore._load`` uses — shards in sorted-filename order,
the later shard winning on a key collision — and hands every analyzer
one list of rows **sorted by cache key**.

That pipeline is what makes every report byte-identical regardless of
worker count or shard arrival order:

* partials are re-ordered by shard filename before merging, so pool
  scheduling cannot influence which duplicate wins;
* rows reach the reducers sorted by key, so iteration order (and
  therefore floating-point summation order) is fixed;
* reducers never read the wall clock, worker count, or host identity
  into the report document.

The fan-out itself reuses the campaign engine's generic worker pool
(:func:`repro.campaign.engine.pool_map`), the same plumbing ``campaign
run`` and ``verify --workers`` execute points with.
"""

from __future__ import annotations

import warnings
from pathlib import Path

from ..engine import pool_map
from ..store import ResultStore, record_to_dict

__all__ = [
    "AnalysisError",
    "discover_shards",
    "map_shard",
    "map_shards",
    "map_stats",
    "merge_rows",
]


class AnalysisError(Exception):
    """A post-hoc analysis cannot run (no shards, bad arguments, ...)."""


def discover_shards(store_root: str | Path) -> list[Path]:
    """The store's shard files in canonical (sorted-filename) order."""
    root = Path(store_root)
    if not root.is_dir():
        raise AnalysisError(f"store directory {root} does not exist")
    shards = sorted(root.glob("*.jsonl"))
    if not shards:
        raise AnalysisError(f"store {root} has no shards (nothing to analyze)")
    return shards


def _row_from_entry(entry) -> dict:
    """Flatten one store entry into the row shape reducers consume."""
    row = dict(record_to_dict(entry.record))
    meta = entry.meta or {}
    row["key"] = entry.key
    row["workload"] = meta.get("workload", "?")
    row["label"] = meta.get("label", "")
    row["producer"] = meta.get("worker") or meta.get("host") or "local"
    return row


def map_shard(path: str | Path) -> dict:
    """Map one shard file to its partial document (pure, process-safe).

    Within a shard the last occurrence of a key wins, mirroring the
    append-then-supersede write model.  Damage is counted, not raised:
    corrupt lines and stale-schema entries land in the partial's stats
    for the coverage analyzer (the store reader's per-line warnings are
    suppressed here — damage *is* the data being reported).
    """
    path = Path(path)
    stats: dict = {}
    rows: dict[str, dict] = {}
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        for entry in ResultStore._parse_shard(path, stats):
            rows[entry.key] = _row_from_entry(entry)
    return {
        "shard": path.name,
        "rows": list(rows.values()),
        "corrupt": stats.get("corrupt", 0),
        "stale_schema": stats.get("stale_schema", 0),
    }


def _map_worker(payload: dict, out_queue) -> None:
    """Worker-process entry for the map stage (pool_map protocol)."""
    try:
        out_queue.put((payload["key"], "ok", map_shard(payload["path"]), None, None))
    except BaseException as exc:
        out_queue.put((payload["key"], "error", None, f"{type(exc).__name__}: {exc}", None))


def map_shards(store_root: str | Path, n_workers: int = 0) -> list[dict]:
    """Map every shard of a store; partials return in sorted-shard order.

    ``n_workers`` fans the map stage out over the engine's worker pool;
    ``0`` maps inline.  The returned list is identical either way.
    """
    shards = discover_shards(store_root)
    payloads = [{"key": str(p), "path": str(p)} for p in shards]
    docs, errors, _ = pool_map(_map_worker, payloads, n_workers)
    if errors:
        key, error = sorted(errors.items())[0]
        raise AnalysisError(f"map stage failed on {Path(key).name}: {error}")
    return [docs[str(p)] for p in shards]


def merge_rows(partials: list[dict]) -> list[dict]:
    """Fold partials into one row list, sorted by cache key.

    Later shards (in the sorted-filename order ``map_shards`` already
    established) win on key collisions — the exact supersede rule the
    store's loader applies.
    """
    by_key: dict[str, dict] = {}
    for partial in partials:
        for row in partial["rows"]:
            by_key[row["key"]] = row
    return [by_key[key] for key in sorted(by_key)]


def map_stats(partials: list[dict]) -> dict:
    """Aggregate damage counts across partials (for report front matter)."""
    return {
        "shards": len(partials),
        "corrupt": sum(p["corrupt"] for p in partials),
        "stale_schema": sum(p["stale_schema"] for p in partials),
    }
