"""Post-hoc campaign analytics: parallel map-reduce over the result store.

The campaign layer *produces* records; this package *consumes* them.  A
warm store answers the paper's questions — where does the time go, does
the physics hold, did anything regress, did the factorial complete —
without a single new force evaluation.  :func:`run_analysis` is the one
entry point: it fans the map stage over store shards using the engine's
worker pool, reduces into one of four report documents, asserts the
zero-force-evaluation contract, and atomically publishes the canonical
JSON next to the store it describes (which is what the coordinator's
``GET /v1/report`` endpoint serves).

Determinism contract (tested byte-for-byte): the report produced over a
given store is identical regardless of worker count and of shard
arrival order.  See :mod:`~repro.campaign.analytics.mapreduce` for the
mechanics.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from ...instrument.counters import FORCE_EVALUATIONS
from ...instrument.metrics import REGISTRY
from ...instrument.runlog import RunLog
from .breakdown import AXES, breakdown_report
from .coverage import coverage_report, rep203_verdict
from .drift import drift_report
from .mapreduce import (
    AnalysisError,
    discover_shards,
    map_shard,
    map_shards,
    map_stats,
    merge_rows,
)
from .render import FORMATS, render, to_json_bytes
from .trend import load_trend_source, trend_report

__all__ = [
    "ANALYZERS",
    "AXES",
    "AnalysisError",
    "FORMATS",
    "breakdown_report",
    "coverage_report",
    "discover_shards",
    "drift_report",
    "load_trend_source",
    "map_shard",
    "map_shards",
    "map_stats",
    "merge_rows",
    "render",
    "rep203_verdict",
    "run_analysis",
    "to_json_bytes",
    "trend_report",
]

ANALYZERS = ("report", "drift", "trend", "coverage")


def _load_manifests(store_root: Path) -> list[dict]:
    """Merged campaign manifests living beside the store, sorted by name."""
    manifest_dir = store_root / "manifests"
    if not manifest_dir.is_dir():
        return []
    docs = []
    for path in sorted(manifest_dir.glob("*.json")):
        try:
            docs.append(json.loads(path.read_text()))
        except ValueError:
            continue  # a torn manifest is a coverage finding, not a crash
    return docs


def _analysis_id(kind: str, shard_names: list[str]) -> str:
    """Correlation ID for the analysis run: content-addressed, not clocked."""
    digest = hashlib.sha256()
    digest.update(kind.encode())
    for name in shard_names:
        digest.update(b"\0")
        digest.update(name.encode())
    return digest.hexdigest()[:12]


def _save_report(store_root: Path, kind: str, doc: dict) -> Path:
    """Atomically publish ``<store>/reports/<kind>-latest.json``."""
    report_dir = store_root / "reports"
    report_dir.mkdir(parents=True, exist_ok=True)
    target = report_dir / f"{kind}-latest.json"
    tmp = report_dir / f".{kind}-latest.json.tmp"
    tmp.write_bytes(to_json_bytes(doc))
    os.replace(tmp, target)
    return target


def run_analysis(
    kind: str,
    store: str | Path,
    *,
    workers: int = 0,
    series: str = "p",
    against: str | Path | None = None,
    candidate: str | Path | None = None,
    factor: float = 1.25,
    rtol: float = 1e-9,
    save: bool = True,
) -> dict:
    """Run one analyzer over a warm store and return its report document.

    ``workers`` fans the map stage out over the engine's process pool
    (``0`` maps inline; the report bytes are identical either way).  For
    ``trend``, ``against`` names the baseline source and ``candidate``
    defaults to ``store``.  With ``save`` the canonical JSON also lands
    at ``<store>/reports/<kind>-latest.json`` for the coordinator's
    ``/v1/report`` endpoint.

    Raises :class:`AnalysisError` on unusable inputs and
    :class:`RuntimeError` if the analysis triggered any force
    evaluation — reports are read-only by contract.
    """
    if kind not in ANALYZERS:
        raise AnalysisError(f"unknown analyzer {kind!r} (one of {', '.join(ANALYZERS)})")
    store_root = Path(store)
    force_mark = FORCE_EVALUATIONS.snapshot()

    if kind == "trend":
        if against is None:
            raise AnalysisError("trend needs --against <baseline store|bench|manifest>")
        baseline = load_trend_source(against, workers)
        cand = load_trend_source(candidate if candidate is not None else store_root, workers)
        shard_names = [baseline["name"], cand["name"]]
        n_records = len(cand["series"])
        builder = lambda: trend_report(baseline, cand, factor)  # noqa: E731
    else:
        partials = map_shards(store_root, workers)
        rows = merge_rows(partials)
        manifests = _load_manifests(store_root)
        shard_names = [p["shard"] for p in partials]
        n_records = len(rows)
        if kind == "report":
            builder = lambda: breakdown_report(rows, series, manifests)  # noqa: E731
        elif kind == "drift":
            builder = lambda: drift_report(rows, rtol)  # noqa: E731
        else:
            builder = lambda: coverage_report(partials, rows, manifests)  # noqa: E731

    analysis_id = _analysis_id(kind, shard_names)
    runlog = RunLog(store_root / "logs" / f"analyze-{kind}.jsonl").bind(
        analysis_id=analysis_id, analyzer=kind
    )
    runlog.log("analysis_start", store=str(store_root), inputs=shard_names,
               workers=workers)
    doc = builder()
    doc["analysis_id"] = analysis_id

    force_delta = FORCE_EVALUATIONS.delta(force_mark)
    if force_delta:
        raise RuntimeError(
            f"analysis {kind!r} triggered {force_delta} force evaluation(s); "
            "reports over a warm store must be read-only"
        )
    REGISTRY.counter("analytics.runs").increment(kind=kind)
    REGISTRY.counter("analytics.records").increment(n_records)

    saved = None
    if save:
        saved = _save_report(store_root, kind, doc)
    runlog.log("analysis_end", ok=doc.get("ok", True), n_records=n_records,
               saved=str(saved) if saved else None)
    return doc
