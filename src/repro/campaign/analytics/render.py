"""Render analysis report documents as canonical JSON, Markdown, or HTML.

``to_json_bytes`` is the byte-identity surface the determinism contract
is stated against: sorted keys, two-space indent, one trailing newline.
The Markdown and HTML renderers are projections of the same document —
a shared section model keeps them in lockstep — and inherit determinism
from the document itself.
"""

from __future__ import annotations

import html
import json

__all__ = ["FORMATS", "render", "to_json_bytes"]

FORMATS = ("json", "md", "html")


def to_json_bytes(doc: dict) -> bytes:
    """Canonical report encoding: the bytes saved, served, and compared."""
    return (json.dumps(doc, indent=2, sort_keys=True) + "\n").encode("utf-8")


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    if value is None:
        return "—"
    return str(value)


def _phase_cells(phases: dict, name: str) -> list[str]:
    phase = phases[name]
    cells = [_fmt(phase["total"])]
    pct = phase.get("pct")
    if pct:
        cells.append(
            f"{pct['comp']:.1f}/{pct['comm']:.1f}/{pct['sync']:.1f}"
        )
    else:
        cells.append("—")
    return cells


def _report_sections(doc: dict) -> list[dict]:
    sections = []
    for group in doc["groups"]:
        axes = ", ".join(f"{k}={v}" for k, v in sorted(group["group"].items()))
        headers = [
            doc["series"], "reps", "wall", "speedup", "eff",
            "classic", "c%/m/s", "pme", "c%/m/s", "overhead",
        ]
        table_rows = []
        for point in group["points"]:
            table_rows.append(
                [
                    _fmt(point["series"]),
                    _fmt(point["replicates"]),
                    _fmt(point["wall_time"]),
                    _fmt(point.get("speedup")),
                    _fmt(point.get("efficiency")),
                    *_phase_cells(point["phases"], "classic"),
                    *_phase_cells(point["phases"], "pme"),
                    _fmt(point["phases"]["total"].get("overhead_fraction")),
                ]
            )
        lines = []
        crossover = group.get("crossover")
        if crossover:
            lines.append(
                "crossover (comm+sync > comp): "
                + ", ".join(
                    f"{phase} at p={_fmt(crossover[phase])}"
                    for phase in ("classic", "pme", "total")
                )
            )
        sections.append(
            {"title": axes or "all records", "lines": lines,
             "table": (headers, table_rows)}
        )
    rep203 = doc.get("rep203", {})
    if rep203.get("manifests"):
        sections.append(
            {
                "title": "REP203 aggregate",
                "lines": [
                    f"fifo_disambiguations: {rep203['fifo_disambiguations']} "
                    f"across {rep203['manifests_with_counter']}/"
                    f"{rep203['manifests']} manifests with the counter"
                ],
                "table": None,
            }
        )
    return sections


def _drift_sections(doc: dict) -> list[dict]:
    rows = [
        [g["workload"], g["strategy"], _fmt(g["n_records"]),
         _fmt(g["consensus_energy"]), _fmt(len(g["clusters"]))]
        for g in doc["workloads"]
    ]
    sections = [
        {
            "title": f"energy consensus (rtol {doc['rtol']:g})",
            "lines": [],
            "table": (
                ["workload", "strategy", "records", "consensus", "clusters"],
                rows,
            ),
        }
    ]
    if doc["findings"]:
        sections.append(
            {
                "title": f"findings ({len(doc['findings'])})",
                "lines": [],
                "table": (
                    ["check", "key", "detail"],
                    [[f["check"], f["key"][:12], f["detail"]]
                     for f in doc["findings"]],
                ),
            }
        )
    else:
        sections.append(
            {"title": "findings", "lines": ["none — store is clean"],
             "table": None}
        )
    return sections


def _trend_sections(doc: dict) -> list[dict]:
    lines = [
        f"baseline: {doc['baseline']['name']} ({doc['baseline']['kind']})",
        f"candidate: {doc['candidate']['name']} ({doc['candidate']['kind']})",
        f"{doc['compared']} metrics compared over {doc['common_series']} "
        f"shared series at factor {doc['factor']:g}",
    ]
    for side in ("only_in_baseline", "only_in_candidate"):
        if doc[side]:
            lines.append(f"{side.replace('_', ' ')}: {len(doc[side])} series")
    sections = [{"title": "comparison", "lines": lines, "table": None}]
    for label, entries in (
        ("regressions", doc["regressions"]),
        ("improvements", doc["improvements"]),
    ):
        if not entries:
            continue
        rows = []
        for entry in entries:
            attribution = entry.get("attribution") or {}
            note = attribution.get("dominant_phase") or attribution.get("note", "")
            rows.append(
                [entry["name"], entry["metric"], _fmt(entry["baseline"]),
                 _fmt(entry["candidate"]), _fmt(entry["ratio"]), note]
            )
        sections.append(
            {
                "title": f"{label} ({len(entries)})",
                "lines": [],
                "table": (
                    ["series", "metric", "baseline", "candidate", "ratio",
                     "attribution"],
                    rows,
                ),
            }
        )
    if not doc["regressions"]:
        sections.append(
            {"title": "verdict", "lines": ["no regressions beyond the gate"],
             "table": None}
        )
    return sections


def _coverage_sections(doc: dict) -> list[dict]:
    sections = [
        {
            "title": "shards",
            "lines": [
                f"corrupt lines: {doc['corrupt_lines']}, stale schema: "
                f"{doc['stale_schema_entries']}, orphaned shards: "
                f"{len(doc['orphaned_shards'])}"
            ],
            "table": (
                ["shard", "entries", "live", "corrupt", "stale"],
                [[s["shard"], _fmt(s["entries"]), _fmt(s["live"]),
                  _fmt(s["corrupt"]), _fmt(s["stale_schema"])]
                 for s in doc["shards"]],
            ),
        }
    ]
    rows = [
        [g["workload"], g["strategy"], _fmt(g["expected_cells"]),
         _fmt(g["observed_cells"]), _fmt(g["missing_cells"])]
        for g in doc["grids"]
    ]
    sections.append(
        {
            "title": f"factorial coverage ({doc['missing_cells']} missing)",
            "lines": [],
            "table": (
                ["workload", "strategy", "expected", "observed", "missing"],
                rows,
            ),
        }
    )
    verdict = doc["rep203"]["verdict"]
    sections.append(
        {
            "title": "REP203 verdict",
            "lines": [
                ("PROMOTE" if verdict["promote"] else "KEEP WARNING")
                + " — " + verdict["reason"]
            ],
            "table": None,
        }
    )
    return sections


_SECTIONS = {
    "report": _report_sections,
    "drift": _drift_sections,
    "trend": _trend_sections,
    "coverage": _coverage_sections,
}


def _sections(doc: dict) -> list[dict]:
    builder = _SECTIONS.get(doc.get("analyzer"))
    if builder is None:
        return [{"title": "document", "lines": [json.dumps(doc, sort_keys=True)],
                 "table": None}]
    return builder(doc)


def _title(doc: dict) -> str:
    name = doc.get("analyzer", "analysis")
    ok = doc.get("ok")
    suffix = "" if ok is None else (" — ok" if ok else " — FAIL")
    return f"campaign {name}{suffix}"


def _render_md(doc: dict) -> str:
    out = [f"# {_title(doc)}", ""]
    for section in _sections(doc):
        out.append(f"## {section['title']}")
        out.append("")
        for line in section["lines"]:
            out.append(line)
            out.append("")
        if section["table"]:
            headers, rows = section["table"]
            out.append("| " + " | ".join(headers) + " |")
            out.append("|" + "---|" * len(headers))
            for row in rows:
                out.append("| " + " | ".join(str(c) for c in row) + " |")
            out.append("")
    return "\n".join(out).rstrip() + "\n"


def _render_html(doc: dict) -> str:
    esc = html.escape
    out = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{esc(_title(doc))}</title>",
        "<style>body{font-family:sans-serif;margin:2em}"
        "table{border-collapse:collapse;margin:0.5em 0}"
        "td,th{border:1px solid #999;padding:0.25em 0.6em;text-align:right}"
        "th{background:#eee}td:first-child,th:first-child{text-align:left}"
        ".fail{color:#b00}</style></head><body>",
        f"<h1>{esc(_title(doc))}</h1>",
    ]
    for section in _sections(doc):
        out.append(f"<h2>{esc(section['title'])}</h2>")
        for line in section["lines"]:
            out.append(f"<p>{esc(line)}</p>")
        if section["table"]:
            headers, rows = section["table"]
            out.append("<table><tr>" +
                       "".join(f"<th>{esc(h)}</th>" for h in headers) + "</tr>")
            for row in rows:
                out.append(
                    "<tr>" + "".join(f"<td>{esc(str(c))}</td>" for c in row)
                    + "</tr>"
                )
            out.append("</table>")
    out.append("</body></html>")
    return "\n".join(out) + "\n"


def render(doc: dict, fmt: str = "json") -> str:
    """Render a report document in one of :data:`FORMATS`."""
    if fmt == "json":
        return to_json_bytes(doc).decode("utf-8")
    if fmt == "md":
        return _render_md(doc)
    if fmt == "html":
        return _render_html(doc)
    raise ValueError(f"unknown format {fmt!r} (one of {', '.join(FORMATS)})")
