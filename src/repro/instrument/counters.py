"""Process-wide work counters for cache-effectiveness assertions.

The campaign store promises that warm-cache figure regeneration does
*zero* MD work.  That promise is only testable if the MD layer counts
its own work: :data:`FORCE_EVALUATIONS` increments on every non-bonded
kernel evaluation (the irreducible unit of MD force work — every serial
or parallel energy step performs at least one).  Tests snapshot the
counter, run a driver, and assert the delta.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EventCounter", "FORCE_EVALUATIONS", "NEIGHBOR_BUILDS"]


@dataclass
class EventCounter:
    """A named monotonic event count with snapshot/delta support."""

    name: str
    count: int = 0

    def increment(self, n: int = 1) -> None:
        self.count += n

    def reset(self) -> None:
        self.count = 0

    def snapshot(self) -> int:
        return self.count

    def delta(self, since: int) -> int:
        return self.count - since


#: Incremented once per non-bonded kernel evaluation (see
#: :meth:`repro.md.nonbonded.NonbondedKernel.compute`).
FORCE_EVALUATIONS = EventCounter("force_evaluations")

#: Incremented once per *real* neighbour-list construction (see
#: :meth:`repro.md.neighborlist.NeighborList.build`).  The shared-compute
#: layer (:mod:`repro.parallel.shared`) promises one real build per rebuild
#: event regardless of the simulated rank count; tests assert the delta.
NEIGHBOR_BUILDS = EventCounter("neighbor_builds")
