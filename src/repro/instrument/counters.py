"""Process-wide work counters for cache-effectiveness assertions.

The campaign store promises that warm-cache figure regeneration does
*zero* MD work.  That promise is only testable if the MD layer counts
its own work: :data:`FORCE_EVALUATIONS` increments on every non-bonded
kernel evaluation (the irreducible unit of MD force work — every serial
or parallel energy step performs at least one).  Tests snapshot the
counter, run a driver, and assert the delta.

These are now views into the default :data:`~repro.instrument.metrics.REGISTRY`
(``md.force_evaluations`` / ``md.neighbor_builds``), so campaign
manifests pick them up automatically; the historical ``EventCounter``
name is an alias of :class:`~repro.instrument.metrics.Counter` and keeps
the same ``increment``/``snapshot``/``delta``/``reset`` surface.
"""

from __future__ import annotations

from .metrics import REGISTRY, Counter

__all__ = ["EventCounter", "FORCE_EVALUATIONS", "NEIGHBOR_BUILDS"]

#: Back-compat alias: the old ad-hoc counter class is now the registry's.
EventCounter = Counter

#: Incremented once per non-bonded kernel evaluation (see
#: :meth:`repro.md.nonbonded.NonbondedKernel.compute`).
FORCE_EVALUATIONS = REGISTRY.counter("md.force_evaluations")

#: Incremented once per *real* neighbour-list construction (see
#: :meth:`repro.md.neighborlist.NeighborList.build`).  The shared-compute
#: layer (:mod:`repro.parallel.shared`) promises one real build per rebuild
#: event regardless of the simulated rank count; tests assert the delta.
NEIGHBOR_BUILDS = REGISTRY.counter("md.neighbor_builds")
