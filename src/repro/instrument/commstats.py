"""Communication-rate statistics (the paper's Figure 7 metric) and the
per-rank communication event trace.

Figure 7 plots, per network and processor count, the *average and
variability of the communication speed per node* in MByte/s: how fast the
data actually moved when a node was transferring, with min/max whiskers
exposing the TCP flow-control instability.

:class:`CommTrace` is the raw material for the message-schedule analyzer
(:mod:`repro.analysis.schedule`): an opt-in, passive log of every send,
receive post and collective invocation with ``(src, dst, tag, nbytes,
dtype)``, in a global deterministic order.  Recording draws no random
numbers and charges no virtual time, so a traced run is bit-identical to
an untraced one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.state import TransferRecord

__all__ = [
    "CommSpeedStats",
    "communication_speeds",
    "CommEvent",
    "CommTrace",
]

#: Transfers smaller than this are latency-dominated and excluded from the
#: rate statistics, mirroring how the paper measures data-transfer speed.
MIN_DATA_BYTES = 8 * 1024


@dataclass(frozen=True)
class CommSpeedStats:
    """Per-node communication speed summary in MByte/s."""

    mean: float
    minimum: float
    maximum: float
    n_transfers: int

    @property
    def spread(self) -> float:
        return self.maximum - self.minimum


def communication_speeds(
    transfers: list[TransferRecord], min_bytes: int = MIN_DATA_BYTES
) -> CommSpeedStats:
    """Summarize achieved per-transfer rates across all nodes.

    Only inter-node data transfers at least ``min_bytes`` long count; the
    mean weights every transfer equally (each is one observation of what a
    node achieved), matching the paper's per-node speed plot.
    """
    rates = np.array(
        [t.rate for t in transfers if t.nbytes >= min_bytes and t.end > t.start],
        dtype=np.float64,
    )
    if len(rates) == 0:
        return CommSpeedStats(mean=0.0, minimum=0.0, maximum=0.0, n_transfers=0)
    mb = rates / 1e6
    return CommSpeedStats(
        mean=float(mb.mean()),
        minimum=float(mb.min()),
        maximum=float(mb.max()),
        n_transfers=len(mb),
    )


# ---------------------------------------------------------------------------
# communication event trace


@dataclass(frozen=True)
class CommEvent:
    """One communication call as seen from the calling rank.

    ``kind`` is ``"send"``, ``"recv"`` or ``"collective"``.  For sends,
    ``peer`` is the destination; for receive posts, the source; for
    collectives it is ``-1`` and ``op`` names the operation.  ``nbytes``
    and ``dtype`` describe the payload for sends and the *expected*
    payload for receives (``-1`` / ``""`` when the receiver declares no
    expectation).  ``overhead`` is the per-message host overhead the
    calling rank charged for this operation (seconds of virtual time) —
    on dual-processor nodes with interrupt-driven networks it must carry
    the SMP stack-contention multiplier, which the schedule analyzer
    asserts (REP206).
    """

    kind: str
    rank: int
    peer: int
    tag: int
    nbytes: int
    dtype: str
    op: str
    time: float
    seq: int
    rendezvous: bool = False
    overhead: float = 0.0

    @property
    def key(self) -> tuple[int, int, int]:
        """The matching key ``(src, dst, tag)`` of a send or receive."""
        if self.kind == "send":
            return (self.rank, self.peer, self.tag)
        return (self.peer, self.rank, self.tag)


class CommTrace:
    """Append-only log of communication events across all ranks."""

    def __init__(self) -> None:
        self.events: list[CommEvent] = []

    def _record(self, **kw) -> None:
        self.events.append(CommEvent(seq=len(self.events), **kw))

    def record_send(
        self,
        rank: int,
        dst: int,
        tag: int,
        nbytes: int,
        dtype: str,
        time: float,
        rendezvous: bool = False,
        overhead: float = 0.0,
    ) -> None:
        self._record(
            kind="send", rank=rank, peer=dst, tag=tag, nbytes=nbytes,
            dtype=dtype, op="", time=time, rendezvous=rendezvous,
            overhead=overhead,
        )

    def record_recv(
        self,
        rank: int,
        src: int,
        tag: int,
        time: float,
        nbytes: int = -1,
        dtype: str = "",
        overhead: float = 0.0,
    ) -> None:
        self._record(
            kind="recv", rank=rank, peer=src, tag=tag, nbytes=nbytes,
            dtype=dtype, op="", time=time, overhead=overhead,
        )

    def record_collective(self, rank: int, op: str, tag: int, time: float) -> None:
        self._record(
            kind="collective", rank=rank, peer=-1, tag=tag, nbytes=0,
            dtype="", op=op, time=time,
        )

    # ------------------------------------------------------------------
    def by_kind(self, kind: str) -> list[CommEvent]:
        return [e for e in self.events if e.kind == kind]

    def collective_ops(self, rank: int) -> list[tuple[str, int]]:
        """The ordered ``(op, tag)`` collective sequence of one rank."""
        return [
            (e.op, e.tag)
            for e in self.events
            if e.kind == "collective" and e.rank == rank
        ]

    def __len__(self) -> int:
        return len(self.events)
