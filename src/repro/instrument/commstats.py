"""Communication-rate statistics (the paper's Figure 7 metric).

Figure 7 plots, per network and processor count, the *average and
variability of the communication speed per node* in MByte/s: how fast the
data actually moved when a node was transferring, with min/max whiskers
exposing the TCP flow-control instability.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.state import TransferRecord

__all__ = ["CommSpeedStats", "communication_speeds"]

#: Transfers smaller than this are latency-dominated and excluded from the
#: rate statistics, mirroring how the paper measures data-transfer speed.
MIN_DATA_BYTES = 8 * 1024


@dataclass(frozen=True)
class CommSpeedStats:
    """Per-node communication speed summary in MByte/s."""

    mean: float
    minimum: float
    maximum: float
    n_transfers: int

    @property
    def spread(self) -> float:
        return self.maximum - self.minimum


def communication_speeds(
    transfers: list[TransferRecord], min_bytes: int = MIN_DATA_BYTES
) -> CommSpeedStats:
    """Summarize achieved per-transfer rates across all nodes.

    Only inter-node data transfers at least ``min_bytes`` long count; the
    mean weights every transfer equally (each is one observation of what a
    node achieved), matching the paper's per-node speed plot.
    """
    rates = np.array(
        [t.rate for t in transfers if t.nbytes >= min_bytes and t.end > t.start],
        dtype=np.float64,
    )
    if len(rates) == 0:
        return CommSpeedStats(mean=0.0, minimum=0.0, maximum=0.0, n_transfers=0)
    mb = rates / 1e6
    return CommSpeedStats(
        mean=float(mb.mean()),
        minimum=float(mb.min()),
        maximum=float(mb.max()),
        n_transfers=len(mb),
    )
