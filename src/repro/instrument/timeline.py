"""Per-rank time accounting: computation / communication / synchronization.

The paper's response variables (Sec. 3.2): wall-clock time per energy
component, split into *computation*, time spent moving data
(*communication*) and time spent in control transfer and waiting
(*synchronization*).  Every virtual second a rank spends is attributed to
exactly one ``(phase, category)`` cell of its :class:`Timeline`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

__all__ = ["Category", "PhaseTotals", "Timeline", "KNOWN_PHASES", "register_phase"]


class Category:
    """Time categories (string enum)."""

    COMP = "comp"
    COMM = "comm"
    SYNC = "sync"

    ALL = (COMP, COMM, SYNC)


#: Phase names a :class:`Timeline` accepts.  The paper's breakdown has
#: exactly two measured phases plus the implicit default; a typo'd phase
#: used to create a silent new bucket and skew every fraction downstream,
#: so ``add`` now rejects anything not registered here.
KNOWN_PHASES: set[str] = {"default", "classic", "pme"}


def register_phase(name: str) -> None:
    """Allow ``name`` as a :class:`Timeline` phase (new workloads, tests)."""
    if not name or not isinstance(name, str):
        raise ValueError(f"phase name must be a non-empty string, got {name!r}")
    KNOWN_PHASES.add(name)


@dataclass
class PhaseTotals:
    """Seconds per category inside one phase."""

    comp: float = 0.0
    comm: float = 0.0
    sync: float = 0.0

    @property
    def total(self) -> float:
        return self.comp + self.comm + self.sync

    def add(self, category: str, dt: float) -> None:
        if dt < 0:
            raise ValueError(f"negative time increment {dt}")
        if category == Category.COMP:
            self.comp += dt
        elif category == Category.COMM:
            self.comm += dt
        elif category == Category.SYNC:
            self.sync += dt
        else:
            raise ValueError(f"unknown category {category!r}")

    def __add__(self, other: "PhaseTotals") -> "PhaseTotals":
        return PhaseTotals(
            comp=self.comp + other.comp,
            comm=self.comm + other.comm,
            sync=self.sync + other.sync,
        )

    def fractions(self) -> dict[str, float]:
        """Category shares of the phase total (all zero for an empty phase)."""
        t = self.total
        if t <= 0:
            return {c: 0.0 for c in Category.ALL}
        return {"comp": self.comp / t, "comm": self.comm / t, "sync": self.sync / t}


@dataclass
class Timeline:
    """Accumulates attributed time for one rank.

    The *current phase* is a dynamic label (``"classic"``, ``"pme"``, ...)
    set with the :meth:`phase` context manager; all ``add`` calls attribute
    to it.
    """

    phases: dict[str, PhaseTotals] = field(default_factory=dict)
    _current: str = "default"
    _forced: str | None = None
    #: optional span-tracer hook called as ``sink(phase, category, dt)``
    #: after every accepted attribution; see
    #: :meth:`repro.instrument.tracing.SpanTracer.attach_rank`.  Never
    #: part of equality or repr — a traced timeline equals an untraced one.
    _sink: Callable[[str, str, float], None] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def current_phase(self) -> str:
        return self._current

    def attach_sink(self, sink: Callable[[str, str, float], None] | None) -> None:
        """Install (or clear) the per-attribution observer hook."""
        self._sink = sink

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        if name not in KNOWN_PHASES:
            raise ValueError(
                f"unknown phase {name!r}; known: {sorted(KNOWN_PHASES)} "
                "(register_phase() to extend)"
            )
        previous = self._current
        self._current = name
        try:
            yield
        finally:
            self._current = previous

    @contextmanager
    def as_category(self, category: str) -> Iterator[None]:
        """Force every ``add`` in the block into ``category``.

        Used for barriers and middleware synchronization: the paper books
        the whole cost of control-transfer operations as *synchronization*
        even though they move (one-byte) messages.
        """
        if category not in Category.ALL:
            raise ValueError(f"unknown category {category!r}")
        previous = self._forced
        self._forced = category
        try:
            yield
        finally:
            self._forced = previous

    def add(self, category: str, dt: float) -> None:
        if self._current not in KNOWN_PHASES:
            raise ValueError(
                f"unknown phase {self._current!r}; known: {sorted(KNOWN_PHASES)} "
                "(register_phase() to extend)"
            )
        effective = self._forced if self._forced is not None else category
        totals = self.phases.get(self._current)
        if totals is None:  # avoid a fresh PhaseTotals per call (hot path)
            totals = self.phases[self._current] = PhaseTotals()
        totals.add(effective, dt)
        if self._sink is not None:
            self._sink(self._current, effective, dt)

    # ------------------------------------------------------------------
    def phase_totals(self, name: str) -> PhaseTotals:
        return self.phases.get(name, PhaseTotals())

    def grand_total(self) -> PhaseTotals:
        out = PhaseTotals()
        for totals in self.phases.values():
            out = out + totals
        return out

    def total_seconds(self) -> float:
        return self.grand_total().total
