"""Structured JSONL run logs with correlation IDs.

Every host-side actor in a campaign — the engine, each federated
worker, the CLI — appends one JSON object per event to its own log
file.  Events carry the correlation chain

    ``campaign`` (campaign id) → ``key`` (design-point cache key) →
    ``attempt`` → ``host`` / ``worker``

so a federated run can be reconstructed post-hoc by concatenating the
logs of every participant and grouping on the chain
(:func:`reconstruct_history`).  Writes are line-buffered appends of
whole lines — the same durability story as the result store: a crash
loses at most the line being written, and every earlier line survives.

Logging is observability, not simulation: timestamps are real wall
clock (hence the ``noqa: REP104``) and nothing here ever touches the
virtual clock.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Iterable, Iterator

__all__ = ["RunLog", "read_runlog", "reconstruct_history"]


class RunLog:
    """An append-only JSONL event log with bound context fields.

    ``bind(**fields)`` returns a child logger sharing the same file but
    carrying extra fields on every event — the idiom for threading the
    correlation chain through call layers without passing kwargs around.
    ``path=None`` gives an in-memory log (the ``events`` list), which is
    what memory-only stores use.
    """

    def __init__(self, path: str | Path | None, *, now=None, _parent: "RunLog | None" = None,
                 **context) -> None:
        if _parent is not None:
            self.path = _parent.path
            self._now = _parent._now
            self.events = _parent.events
            self.context = {**_parent.context, **context}
            return
        self.path = Path(path) if path is not None else None
        self._now = now if now is not None else time.time  # noqa: REP104 — log timestamps
        self.events: list[dict] = []
        self.context = {"host": platform.node(), **context}
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)

    def bind(self, **context) -> "RunLog":
        """A child logger with ``context`` merged into every event."""
        return RunLog(None, _parent=self, **context)

    def log(self, event: str, **fields) -> dict:
        """Append one event; returns the record written."""
        record = {"ts": self._now(), "event": event, **self.context, **fields}
        self.events.append(record)
        if self.path is not None:
            with self.path.open("a") as fh:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        return record


def read_runlog(path: str | Path) -> Iterator[dict]:
    """Yield the parseable events of one log file, skipping a torn tail."""
    path = Path(path)
    if not path.exists():
        return
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        try:
            yield json.loads(line)
        except ValueError:
            continue  # truncated tail of a crashed writer


def reconstruct_history(
    sources: Iterable[str | Path | Iterable[dict]],
) -> dict[str, list[dict]]:
    """Merge logs and group the events of each design point.

    ``sources`` may be log file paths or already-loaded event iterables.
    Returns ``{point key: [events]}`` with each point's events ordered by
    timestamp (ties broken by attempt then event name, so the order is
    deterministic even across hosts with equal clock reads).  Events
    without a ``key`` (campaign-level markers) group under ``""``.
    """
    merged: dict[str, list[dict]] = {}
    for source in sources:
        events = read_runlog(source) if isinstance(source, (str, Path)) else source
        for ev in events:
            merged.setdefault(str(ev.get("key", "")), []).append(ev)
    for events in merged.values():
        events.sort(key=lambda e: (e.get("ts", 0.0), e.get("attempt", 0), e.get("event", "")))
    return merged
