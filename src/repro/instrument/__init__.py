"""Instrumentation: timelines, communication statistics, metrics, tracing.

The observability layer in one place:

* :mod:`~repro.instrument.timeline` — per-rank virtual-time attribution
  (the paper's comp/comm/sync breakdown);
* :mod:`~repro.instrument.commstats` — communication-rate statistics and
  the raw communication event trace;
* :mod:`~repro.instrument.metrics` — the counters/gauges/histograms
  registry with snapshot/delta/merge (campaign manifests embed these);
* :mod:`~repro.instrument.tracing` — two-clock span tracing exported as
  Chrome trace-event JSON (Perfetto-loadable);
* :mod:`~repro.instrument.runlog` — structured JSONL event logs with
  correlation IDs (campaign → point → attempt → host).

Everything here is passive: enabled or not, energies, trajectories and
virtual timelines are bit-identical, and no instrument ever charges
virtual seconds.
"""

from .commstats import MIN_DATA_BYTES, CommEvent, CommSpeedStats, CommTrace, communication_speeds
from .counters import FORCE_EVALUATIONS, NEIGHBOR_BUILDS, EventCounter
from .metrics import REGISTRY, Counter, Gauge, Histogram, MetricsRegistry, merge_metrics
from .runlog import RunLog, read_runlog, reconstruct_history
from .timeline import KNOWN_PHASES, Category, PhaseTotals, Timeline, register_phase
from .tracing import SpanTracer, validate_chrome_trace

__all__ = [
    "Category",
    "CommEvent",
    "CommSpeedStats",
    "CommTrace",
    "communication_speeds",
    "Counter",
    "EventCounter",
    "FORCE_EVALUATIONS",
    "Gauge",
    "Histogram",
    "KNOWN_PHASES",
    "merge_metrics",
    "MetricsRegistry",
    "MIN_DATA_BYTES",
    "NEIGHBOR_BUILDS",
    "PhaseTotals",
    "read_runlog",
    "reconstruct_history",
    "register_phase",
    "REGISTRY",
    "RunLog",
    "SpanTracer",
    "Timeline",
    "validate_chrome_trace",
]
