"""Instrumentation: per-rank timelines and communication-rate statistics."""

from .commstats import MIN_DATA_BYTES, CommSpeedStats, communication_speeds
from .timeline import Category, PhaseTotals, Timeline

__all__ = [
    "Category",
    "CommSpeedStats",
    "communication_speeds",
    "MIN_DATA_BYTES",
    "PhaseTotals",
    "Timeline",
]
