"""Instrumentation: timelines, communication statistics, work counters."""

from .commstats import MIN_DATA_BYTES, CommEvent, CommSpeedStats, CommTrace, communication_speeds
from .counters import FORCE_EVALUATIONS, EventCounter
from .timeline import Category, PhaseTotals, Timeline

__all__ = [
    "Category",
    "CommEvent",
    "CommSpeedStats",
    "CommTrace",
    "communication_speeds",
    "EventCounter",
    "FORCE_EVALUATIONS",
    "MIN_DATA_BYTES",
    "PhaseTotals",
    "Timeline",
]
