"""Metrics registry: counters, gauges and histograms with snapshot/delta.

One :class:`MetricsRegistry` replaces the ad-hoc module-global event
counters: every piece of the system that counts work — MD kernels,
neighbour-list builds, campaign attempts/retries/timeouts, store cache
hits, lease reclaims, analyzer telemetry — registers a named instrument
here and increments it.  The registry is *passive* observability: it
never charges virtual time, never draws random numbers, and its values
never feed back into execution, so instrumented runs stay bit-identical
to uninstrumented ones.

Three instrument kinds:

* :class:`Counter` — monotonic event count, optionally split by labels
  (``counter.increment(tag="send")``).  Back-compatible with the old
  ``EventCounter`` surface (``increment``/``snapshot``/``delta``/
  ``reset``/``count``).
* :class:`Gauge` — a last-written value (queue depths, board sizes).
* :class:`Histogram` — streaming count/sum/min/max of observations
  (per-point wall seconds, per-run communication speeds).

Snapshots are plain JSON documents (:meth:`MetricsRegistry.snapshot`),
subtractable (:meth:`MetricsRegistry.delta`) so a caller can report only
what happened during its own window, and mergeable
(:func:`merge_metrics`) so federated workers' snapshots fold into one
campaign-wide view in the merge manifest.
"""

from __future__ import annotations

import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "merge_metrics",
]


def _label_key(labels: dict) -> str:
    """Canonical string form of one label set (sorted ``k=v`` pairs)."""
    return ",".join(f"{k}={labels[k]}" for k in sorted(labels))


#: The exec-layer rank fanout increments counters from pool threads; a
#: single shared lock keeps ``count += n`` from losing updates.  One
#: uncontended acquire per increment is noise next to the work counted.
_COUNTER_LOCK = threading.Lock()


class Counter:
    """A named monotonic event count with snapshot/delta support.

    ``increment`` accepts optional labels; the total is always kept in
    addition to the per-label split, so label-free callers pay one dict
    lookup and nothing more.
    """

    __slots__ = ("name", "count", "labels")

    def __init__(self, name: str, count: int = 0) -> None:
        self.name = name
        self.count = count
        self.labels: dict[str, int] = {}

    def increment(self, n: int = 1, **labels) -> None:
        with _COUNTER_LOCK:
            self.count += n
            if labels:
                key = _label_key(labels)
                self.labels[key] = self.labels.get(key, 0) + n

    def reset(self) -> None:
        self.count = 0
        self.labels.clear()

    def snapshot(self) -> int:
        return self.count

    def delta(self, since: int) -> int:
        return self.count - since

    def __repr__(self) -> str:  # matches the old EventCounter dataclass repr
        return f"Counter(name={self.name!r}, count={self.count!r})"


class Gauge:
    """A named last-written value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0.0) -> None:
        self.name = name
        self.value = value

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Streaming count/sum/min/max of observed values."""

    __slots__ = ("name", "count", "total", "minimum", "maximum")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_doc(self) -> dict:
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
        }


class MetricsRegistry:
    """Named instruments plus snapshot/delta/merge plumbing."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- get-or-create ---------------------------------------------------
    def counter(self, name: str) -> Counter:
        try:
            return self.counters[name]
        except KeyError:
            c = self.counters.setdefault(name, Counter(name))
            return c

    def gauge(self, name: str) -> Gauge:
        try:
            return self.gauges[name]
        except KeyError:
            return self.gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str) -> Histogram:
        try:
            return self.histograms[name]
        except KeyError:
            return self.histograms.setdefault(name, Histogram(name))

    def reset(self) -> None:
        for c in self.counters.values():
            c.reset()
        self.gauges.clear()
        self.histograms.clear()

    # -- snapshots ---------------------------------------------------------
    def snapshot(self) -> dict:
        """The whole registry as one JSON-serializable document."""
        return {
            "counters": {
                name: {"total": c.count, "labels": dict(c.labels)}
                for name, c in self.counters.items()
            },
            "gauges": {name: g.value for name, g in self.gauges.items()},
            "histograms": {
                name: h.to_doc() for name, h in self.histograms.items()
            },
        }

    def delta(self, since: dict) -> dict:
        """What happened after ``since`` (an earlier :meth:`snapshot`).

        Counters and histogram count/sum subtract; instruments whose
        delta is zero are dropped, so the result reads as "what this
        window did".  Histogram min/max cannot be un-merged, so the delta
        carries the current extrema (a superset of the window's).
        """
        now = self.snapshot()
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        before_counters = since.get("counters", {})
        for name, doc in now["counters"].items():
            base = before_counters.get(name, {"total": 0, "labels": {}})
            total = doc["total"] - base.get("total", 0)
            labels = {
                k: v - base.get("labels", {}).get(k, 0)
                for k, v in doc["labels"].items()
                if v - base.get("labels", {}).get(k, 0)
            }
            if total or labels:
                out["counters"][name] = {"total": total, "labels": labels}
        before_hists = since.get("histograms", {})
        for name, doc in now["histograms"].items():
            base = before_hists.get(name, {"count": 0, "sum": 0.0})
            count = doc["count"] - base.get("count", 0)
            if count:
                out["histograms"][name] = {
                    "count": count,
                    "sum": doc["sum"] - base.get("sum", 0.0),
                    "min": doc["min"],
                    "max": doc["max"],
                }
        # gauges are last-written values; report the ones that exist now
        out["gauges"] = dict(now["gauges"])
        return out


def merge_metrics(*docs: dict) -> dict:
    """Fold several snapshot/delta documents into one.

    Counters and histogram count/sum add; histogram extrema widen;
    gauges keep the largest magnitude seen (merged gauges answer "how
    big did this get anywhere").  Used when federated workers' metrics
    files fold into one campaign manifest.
    """
    out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for doc in docs:
        for name, c in doc.get("counters", {}).items():
            dst = out["counters"].setdefault(name, {"total": 0, "labels": {}})
            dst["total"] += c.get("total", 0)
            for k, v in c.get("labels", {}).items():
                dst["labels"][k] = dst["labels"].get(k, 0) + v
        for name, value in doc.get("gauges", {}).items():
            prev = out["gauges"].get(name)
            if prev is None or abs(value) > abs(prev):
                out["gauges"][name] = value
        for name, h in doc.get("histograms", {}).items():
            dst = out["histograms"].get(name)
            if dst is None:
                out["histograms"][name] = dict(h)
            elif h.get("count", 0):
                merged_count = dst["count"] + h["count"]
                dst.update(
                    count=merged_count,
                    sum=dst["sum"] + h["sum"],
                    min=min(dst["min"], h["min"]) if dst["count"] else h["min"],
                    max=max(dst["max"], h["max"]) if dst["count"] else h["max"],
                )
    return out


#: The process-wide default registry.  Module-level instruments (MD work
#: counters, lease telemetry, analyzer telemetry) live here; the campaign
#: engine snapshots it around a run and stores the delta in the manifest.
REGISTRY = MetricsRegistry()
