"""Two-clock span tracing exported as Chrome trace-event JSON.

One :class:`SpanTracer` records nested spans on two clocks at once:

* **virtual seconds** for simulated ranks — every
  :meth:`~repro.instrument.timeline.Timeline.add` attribution becomes
  one span carrying its phase, category and rank.  Placement needs no
  clock at all: a rank's attributions tile its virtual time ("every
  virtual second is attributed to exactly one cell"), so a per-rank
  cursor that advances by each attribution's duration reconstructs the
  exact span layout.  Recording is an append to a Python list — the
  simulation's event order, random streams and virtual clocks are
  untouched, so a traced run is bit-identical to an untraced one and
  observability charges **zero virtual seconds**.
* **wall-clock seconds** for host-side harness work — campaign engine
  scheduling, worker launch/retire, lease claims, store merges — via the
  :meth:`span` context manager or the :meth:`begin`/``end`` pair.

The export (:meth:`to_chrome`) is the Chrome trace-event format
(``chrome://tracing`` / Perfetto): complete ``"X"`` events with one
synthetic *process* per simulated rank and one per host-side track, plus
``"M"`` metadata naming them.  The two clocks share the file but not an
epoch — virtual processes start at t=0, wall processes at tracer
construction — which is exactly what you want when comparing a rank's
phase layout against the harness's scheduling behaviour side by side.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["SpanTracer", "Span", "validate_chrome_trace", "VIRTUAL_PID_BASE"]

#: Simulated rank r exports as process ``VIRTUAL_PID_BASE + r``; host-side
#: tracks take small pids below it, so the two families never collide.
VIRTUAL_PID_BASE = 1000


@dataclass(frozen=True)
class Span:
    """One complete span (either clock), in seconds on its timebase."""

    name: str
    cat: str
    pid: int
    tid: int
    start: float
    duration: float
    args: dict = field(default_factory=dict)


class _OpenSpan:
    """Handle for a wall-clock span whose end is not lexically scoped."""

    __slots__ = ("_tracer", "name", "track", "args", "_t0")

    def __init__(self, tracer: "SpanTracer", name: str, track: str, args: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.track = track
        self.args = args
        self._t0 = tracer._wall_now()

    def end(self, **more_args) -> float:
        """Close the span; returns its wall duration in seconds."""
        dur = self._tracer._wall_now() - self._t0
        self._tracer._emit_wall(self.name, self.track, self._t0, dur,
                                {**self.args, **more_args})
        return dur

    # context-manager sugar: ``with tracer.span(...)``
    def __enter__(self) -> "_OpenSpan":
        return self

    def __exit__(self, *exc) -> None:
        self.end()


class SpanTracer:
    """Records spans on the virtual and wall clocks; exports Chrome JSON.

    Purely passive: attaching one to a run changes no virtual timestamp,
    no random stream and no result bit.  ``clock`` injects the wall clock
    for deterministic tests.
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        # hot path: raw tuples, materialized into Span objects on demand —
        # a frozen-dataclass construction per Timeline.add would cost real
        # wall time on long runs (tens of thousands of attributions)
        self._raw: list[tuple] = []
        self._process_names: dict[int, str] = {}
        self._thread_names: dict[tuple[int, int], str] = {}
        self._cursors: dict[int, float] = {}
        self._host_pids: dict[str, int] = {}

    @property
    def spans(self) -> list[Span]:
        """All recorded spans (materialized from the raw append log)."""
        out: list[Span] = []
        for rec in self._raw:
            if rec[0] == "v":
                _, rank, phase, category, start, dt = rec
                out.append(Span(
                    name=f"{phase}:{category}", cat=phase,
                    pid=VIRTUAL_PID_BASE + rank, tid=0, start=start,
                    duration=dt,
                    args={"phase": phase, "category": category, "rank": rank},
                ))
            else:
                _, name, pid, start, dur, args = rec
                out.append(Span(name=name, cat="host", pid=pid, tid=0,
                                start=start, duration=dur, args=args))
        return out

    # -- virtual (simulated-rank) side ----------------------------------
    def attach_rank(self, rank: int, timeline) -> None:
        """Mirror every attribution of ``timeline`` as a span of ``rank``."""
        pid = VIRTUAL_PID_BASE + rank
        self._process_names.setdefault(pid, f"rank {rank} (virtual)")
        self._thread_names.setdefault((pid, 0), "timeline")
        timeline.attach_sink(
            lambda phase, category, dt, _rank=rank: self.record_virtual(
                _rank, phase, category, dt
            )
        )

    def record_virtual(self, rank: int, phase: str, category: str, dt: float) -> None:
        """One ``Timeline.add`` attribution as a span on the virtual clock.

        The per-rank cursor *is* the rank's attributed virtual time, so
        spans tile without ever reading the simulator's clock.
        Zero-duration attributions are skipped (they carry no area).
        """
        cursor = self._cursors.get(rank, 0.0)
        if dt > 0.0:
            self._raw.append(("v", rank, phase, category, cursor, dt))
        self._cursors[rank] = cursor + dt

    def virtual_seconds(self, rank: int) -> float:
        """Total virtual time attributed by ``rank`` so far (its cursor)."""
        return self._cursors.get(rank, 0.0)

    # -- wall (host-side) side -------------------------------------------
    def _wall_now(self) -> float:
        return self._clock() - self._epoch

    def _host_pid(self, track: str) -> int:
        pid = self._host_pids.get(track)
        if pid is None:
            pid = len(self._host_pids) + 1
            self._host_pids[track] = pid
            self._process_names[pid] = f"{track} (wall)"
            self._thread_names[(pid, 0)] = track
        return pid

    def _emit_wall(self, name: str, track: str, start: float, dur: float,
                   args: dict) -> None:
        self._raw.append(("w", name, self._host_pid(track), start, dur, args))

    def span(self, name: str, track: str = "host", **args) -> _OpenSpan:
        """Wall-clock span, usable as a context manager or via ``.end()``."""
        return _OpenSpan(self, name, track, args)

    begin = span  # explicit begin/end reads better around split control flow

    def instant(self, name: str, track: str = "host", **args) -> None:
        """A zero-duration wall marker (rendered as a slice boundary)."""
        self._emit_wall(name, track, self._wall_now(), 0.0, args)

    # -- export -----------------------------------------------------------
    def to_chrome(self) -> dict:
        """The Chrome trace-event document (Perfetto-loadable)."""
        events: list[dict] = []
        for pid, name in sorted(self._process_names.items()):
            events.append(
                {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                 "args": {"name": name}}
            )
        for (pid, tid), name in sorted(self._thread_names.items()):
            events.append(
                {"ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                 "args": {"name": name}}
            )
        for span in sorted(self.spans, key=lambda s: (s.pid, s.start, s.tid)):
            events.append(
                {
                    "ph": "X",
                    "name": span.name,
                    "cat": span.cat,
                    "pid": span.pid,
                    "tid": span.tid,
                    "ts": span.start * 1e6,  # trace-event ts is microseconds
                    "dur": span.duration * 1e6,
                    "args": span.args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write(self, path: str | Path) -> Path:
        """Write the Chrome trace JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_chrome()) + "\n")
        return path


def validate_chrome_trace(doc: dict) -> list[str]:
    """Structural lint of a trace document; returns problem strings.

    Checks what a viewer needs: a ``traceEvents`` list, every slice a
    complete ``"X"`` event with non-negative ``ts``/``dur`` and a
    pid/tid, and every pid named by a ``process_name`` metadata event.
    Used by the tests and the nightly CI artifact step.
    """
    problems: list[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["no traceEvents list"]
    named_pids = set()
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "process_name":
            named_pids.add(ev.get("pid"))
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph == "M":
            continue
        if ph != "X":
            problems.append(f"event {i}: ph {ph!r} is not a complete ('X') event")
            continue
        if not isinstance(ev.get("ts"), (int, float)) or ev["ts"] < 0:
            problems.append(f"event {i} ({ev.get('name')}): bad ts {ev.get('ts')!r}")
        if not isinstance(ev.get("dur"), (int, float)) or ev["dur"] < 0:
            problems.append(f"event {i} ({ev.get('name')}): bad dur {ev.get('dur')!r}")
        if "pid" not in ev or "tid" not in ev:
            problems.append(f"event {i} ({ev.get('name')}): missing pid/tid")
        elif ev["pid"] not in named_pids:
            problems.append(f"event {i} ({ev.get('name')}): unnamed pid {ev['pid']}")
        if not ev.get("name"):
            problems.append(f"event {i}: unnamed slice")
    return problems
