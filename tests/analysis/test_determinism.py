"""The determinism lint (REP5xx) and the repo-wide self-clean gate."""

from pathlib import Path

from repro.analysis.baseline import BASELINE_FILENAME, apply_baseline, load_baseline
from repro.analysis.determinism import (
    is_virtual_time_path,
    lint_determinism_paths,
    lint_determinism_source,
)

REPO = Path(__file__).resolve().parents[2]

VIRTUAL = "src/repro/mpi/fake.py"
TOOLING = "src/repro/report/fake.py"


def _rules(source, path=VIRTUAL):
    return [d.rule for d in lint_determinism_source(source, path)]


class TestScoping:
    def test_virtual_time_packages(self):
        assert is_virtual_time_path("src/repro/sim/engine.py")
        assert is_virtual_time_path("src/repro/parallel/pmd.py")
        assert not is_virtual_time_path("src/repro/report/tables.py")
        assert not is_virtual_time_path("src/repro/cli.py")


class TestRep501Randomness:
    def test_unseeded_default_rng(self):
        assert _rules("rng = np.random.default_rng()\n") == ["REP501"]

    def test_seeded_is_fine(self):
        assert _rules("rng = np.random.default_rng(2002)\n") == []

    def test_legacy_global_generator(self):
        assert _rules("x = np.random.normal(0, 1)\n") == ["REP501"]

    def test_stdlib_random(self):
        assert _rules("x = random.random()\n") == ["REP501"]

    def test_applies_outside_virtual_time_too(self):
        assert _rules("x = random.random()\n", TOOLING) == ["REP501"]


class TestRep502Wallclock:
    def test_wallclock_in_virtual_time(self):
        assert _rules("t = time.perf_counter()\n") == ["REP502"]

    def test_datetime_now(self):
        assert _rules("t = datetime.now()\n") == ["REP502"]

    def test_tooling_layer_may_read_the_clock(self):
        assert _rules("t = time.perf_counter()\n", TOOLING) == []


class TestRep503SetIteration:
    def test_for_over_set_call(self):
        assert _rules("for k in set(xs):\n    f(k)\n") == ["REP503"]

    def test_for_over_set_union(self):
        assert _rules("for k in set(a) | set(b):\n    f(k)\n") == ["REP503"]

    def test_for_over_set_literal(self):
        assert _rules("for k in {1, 2}:\n    f(k)\n") == ["REP503"]

    def test_comprehension_over_set(self):
        assert _rules("ys = [f(k) for k in set(a) - set(b)]\n") == ["REP503"]

    def test_sorted_fixes_it(self):
        assert _rules("for k in sorted(set(a) | set(b)):\n    f(k)\n") == []

    def test_set_comprehension_output_stays_a_set(self):
        # {f(k) for k in set(a)} builds a set: order never escapes
        assert _rules("ys = {f(k) for k in set(a)}\n") == []

    def test_list_iteration_is_fine(self):
        assert _rules("for k in [1, 2]:\n    f(k)\n") == []


class TestRep504FloatAccumulation:
    def test_sum_over_set(self):
        assert _rules("e = sum(set(energies))\n") == ["REP504"]

    def test_sum_generator_over_set(self):
        assert _rules("e = sum(x * x for x in set(xs))\n") == ["REP504"]

    def test_fsum_over_set(self):
        assert _rules("e = math.fsum({a, b, c})\n") == ["REP504"]

    def test_reduce_over_set(self):
        assert _rules("e = functools.reduce(f, set(xs))\n") == ["REP504"]

    def test_sum_over_sorted_is_fine(self):
        assert _rules("e = sum(sorted(set(xs)))\n") == []

    def test_sum_over_list_is_fine(self):
        assert _rules("e = sum(xs)\n") == []


class TestRep505HostDependence:
    def test_getpid(self):
        assert _rules("seed = os.getpid()\n") == ["REP505"]

    def test_uuid4(self):
        assert _rules("run_id = uuid.uuid4()\n") == ["REP505"]

    def test_hostname(self):
        assert _rules("h = socket.gethostname()\n") == ["REP505"]

    def test_builtin_id_and_hash(self):
        assert _rules("k = id(obj)\n") == ["REP505"]
        assert _rules("k = hash(name)\n") == ["REP505"]

    def test_tooling_layer_may_know_its_host(self):
        # federation provenance legitimately records hostname/pid
        assert _rules("h = socket.gethostname()\n", TOOLING) == []


class TestRep506CompletionOrder:
    """Completion-order reductions are banned inside repro/parallel/exec."""

    EXEC = "src/repro/parallel/exec/pool.py"

    def test_scoping(self):
        from repro.analysis.determinism import is_exec_path

        assert is_exec_path(self.EXEC)
        assert is_exec_path("src/repro/parallel/exec/kernels.py")
        assert not is_exec_path("src/repro/parallel/pmd.py")
        assert not is_exec_path("src/repro/cli.py")

    def test_as_completed_flagged(self):
        src = "for f in as_completed(futures):\n    out.append(f.result())\n"
        assert _rules(src, self.EXEC) == ["REP506"]

    def test_dotted_as_completed_flagged(self):
        src = "for f in concurrent.futures.as_completed(futures):\n    pass\n"
        assert _rules(src, self.EXEC) == ["REP506"]

    def test_imap_unordered_flagged(self):
        src = "for r in pool.imap_unordered(fn, items):\n    out.append(r)\n"
        assert _rules(src, self.EXEC) == ["REP506"]

    def test_first_completed_wait_flagged(self):
        src = "done, _ = wait(futures, return_when=FIRST_COMPLETED)\n"
        assert _rules(src, self.EXEC) == ["REP506"]

    def test_rank_order_collection_is_fine(self):
        src = "results = [f.result() for f in futures]\n"
        assert _rules(src, self.EXEC) == []

    def test_all_completed_wait_is_fine(self):
        src = "done, _ = wait(futures, return_when=ALL_COMPLETED)\n"
        assert _rules(src, self.EXEC) == []

    def test_outside_the_exec_engine_not_flagged(self):
        # the rule is scoped: completion order elsewhere is someone
        # else's judgement call (e.g. campaign workers feed a store,
        # not a float reduction)
        src = "for f in as_completed(futures):\n    pass\n"
        assert _rules(src, VIRTUAL) == []
        assert _rules(src, TOOLING) == []

    def test_exec_package_is_rep506_clean(self):
        diags = lint_determinism_paths([REPO / "src" / "repro" / "parallel" / "exec"])
        findings = [d for d in diags if d.rule == "REP506"]
        assert findings == [], [d.format() for d in findings]


class TestSuppression:
    def test_repro_noqa_spelling(self):
        src = "for k in set(xs):  # repro: noqa[REP503]\n    f(k)\n"
        assert _rules(src) == []

    def test_legacy_noqa_spelling(self):
        src = "for k in set(xs):  # noqa: REP503\n    f(k)\n"
        assert _rules(src) == []

    def test_noqa_for_a_different_rule_does_not_suppress(self):
        src = "for k in set(xs):  # repro: noqa[REP501]\n    f(k)\n"
        assert _rules(src) == ["REP503"]

    def test_skip_file_marker(self):
        src = "# repro-analyze: skip-file\nfor k in set(xs):\n    f(k)\n"
        assert lint_determinism_source(src, VIRTUAL) == []


class TestSelfCleanGate:
    """src/repro must pass its own determinism lint (modulo the baseline)."""

    def test_src_is_determinism_clean(self):
        diags = lint_determinism_paths([REPO / "src" / "repro"])
        baseline = load_baseline(REPO / BASELINE_FILENAME)
        surviving, suppressed = apply_baseline(diags, baseline)
        formatted = "\n".join(d.format() for d in surviving)
        assert surviving == [], f"determinism findings in src/repro:\n{formatted}"
        # every baseline entry must still correspond to a real finding —
        # fixed code means the entry must be dropped, keeping debt honest
        live = {d.fingerprint() for d in suppressed}
        stale = set(baseline) - live
        assert not stale, f"stale baseline entries (finding fixed): {stale}"
