"""The symbolic value domain of the static schedule verifier."""

from repro.analysis.symbolic import Block, SymSize, SymTag, summarize_p_set


class TestSymTag:
    def test_absolute_reconstructs_the_runtime_tag(self):
        # the Nth next_collective_tag() draw is BASE + 16*N at runtime
        base = 1 << 20
        assert SymTag(base=0).absolute(base) == base
        assert SymTag(base=3).absolute(base) == base + 48

    def test_integer_offsets_compose(self):
        t = SymTag(base=2) + 5
        assert t.offset == 5
        assert t.absolute(1 << 20) == (1 << 20) + 32 + 5
        assert (3 + SymTag(base=0)).offset == 3

    def test_plain_offset_tag(self):
        assert SymTag(base=None, offset=7).absolute(1 << 20) == 7

    def test_str(self):
        assert "T2" in str(SymTag(base=2))


class TestSymSize:
    def test_concrete(self):
        assert SymSize(name="n", value=24).concrete
        assert not SymSize(name="n").concrete


class TestBlock:
    def test_copy_is_identity(self):
        b = Block("origin", SymSize(name="s"), "float64")
        assert b.copy() is b


class TestSummarizePSet:
    def test_all(self):
        assert summarize_p_set({1, 2, 3, 4}, 4) == "all p in [1, 4]"

    def test_tail(self):
        assert summarize_p_set({2, 3, 4}, 4) == "all p in [2, 4]"

    def test_odd(self):
        assert summarize_p_set({3, 5, 7, 9}, 9) == "odd p in [3, 9]"

    def test_even(self):
        assert summarize_p_set({2, 4, 6, 8}, 8) == "even p in [2, 8]"

    def test_powers_of_two(self):
        assert "power-of-two" in summarize_p_set({2, 4, 8, 16}, 16)

    def test_non_powers_of_two(self):
        failing = {p for p in range(2, 17) if p & (p - 1)}
        assert "non-power-of-two" in summarize_p_set(failing, 16)

    def test_explicit_list(self):
        s = summarize_p_set({3, 7}, 16)
        assert "3" in s and "7" in s

    def test_empty(self):
        assert summarize_p_set(set(), 8) == "no p"
