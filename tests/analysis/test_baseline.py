"""Baseline suppression: fingerprints, the JSON file, inline noqa."""

import json

import pytest

from repro.analysis.baseline import (
    apply_baseline,
    inline_suppressions,
    load_baseline,
    write_baseline,
)
from repro.analysis.rules import Diagnostic

D1 = Diagnostic(rule="REP503", message="set order leaks", path="src/a.py", line=10)
D2 = Diagnostic(rule="REP501", message="unseeded rng", path="src/b.py", line=3)


class TestFingerprint:
    def test_line_free(self):
        moved = Diagnostic(rule="REP503", message="set order leaks", path="src/a.py", line=99)
        assert moved.fingerprint() == D1.fingerprint()

    def test_distinguishes_rule_path_message(self):
        assert D1.fingerprint() != D2.fingerprint()

    def test_path_separator_normalized(self):
        windows = Diagnostic(rule="REP503", message="set order leaks", path="src\\a.py")
        assert windows.fingerprint() == D1.fingerprint()


class TestInlineSuppressions:
    def test_repro_spelling(self):
        assert inline_suppressions("x = 1  # repro: noqa[REP503]") == {"REP503"}

    def test_multiple_codes(self):
        assert inline_suppressions("# repro: noqa[REP503, REP504]") == {"REP503", "REP504"}

    def test_bare_suppresses_all(self):
        assert inline_suppressions("x = 1  # repro: noqa") == set()

    def test_legacy_spelling(self):
        assert inline_suppressions("x = 1  # noqa: REP503") == {"REP503"}

    def test_no_comment(self):
        assert inline_suppressions("x = 1") is None


class TestBaselineFile:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "baseline.json"
        n = write_baseline(path, [D1, D2])
        assert n == 2
        baseline = load_baseline(path)
        assert set(baseline) == {D1.fingerprint(), D2.fingerprint()}
        surviving, suppressed = apply_baseline([D1, D2], baseline)
        assert surviving == [] and len(suppressed) == 2

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "suppressions": []}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)

    def test_new_findings_survive(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [D1])
        surviving, suppressed = apply_baseline([D1, D2], load_baseline(path))
        assert surviving == [D2] and suppressed == [D1]

    def test_rewrite_preserves_reasons_and_drops_fixed(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [D1, D2])
        data = json.loads(path.read_text())
        for entry in data["suppressions"]:
            entry["reason"] = f"because {entry['rule']}"
        path.write_text(json.dumps(data))
        previous = load_baseline(path)
        # D2's finding is fixed: regenerating from [D1] drops its entry
        write_baseline(path, [D1], previous)
        rewritten = load_baseline(path)
        assert set(rewritten) == {D1.fingerprint()}
        assert rewritten[D1.fingerprint()]["reason"] == "because REP503"
