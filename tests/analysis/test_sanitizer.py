"""Runtime sanitizer: each invariant, plus passivity on real workloads."""

import numpy as np
import pytest

from repro.analysis import SanitizedMiddleware, Sanitizer, SanitizerError
from repro.cluster import ClusterSpec, score_gigabit_ethernet
from repro.cluster.state import TransferPlan
from repro.instrument.timeline import Category
from repro.mpi import MPIWorld
from repro.parallel import MDRunConfig, RunOptions, run_parallel_md
from repro.sim import Simulator


def _spec(n_ranks=2, seed=1):
    return ClusterSpec(n_ranks=n_ranks, network=score_gigabit_ethernet(), seed=seed)


def _run_sanitized(program, n_ranks=2):
    sim = Simulator()
    world = MPIWorld(sim, _spec(n_ranks), sanitize=True)
    for r in range(n_ranks):
        sim.spawn(program(world.endpoints[r]), name=f"r{r}")
    sim.run()
    return world


class TestMessageInvariants:
    def test_size_mismatch_rep301(self):
        def prog(ep):
            if ep.rank == 0:
                yield from ep.send(1, np.ones(10), tag=2)
            else:
                yield from ep.recv(0, tag=2, expect_nbytes=4)

        with pytest.raises(SanitizerError, match="REP301"):
            _run_sanitized(prog)

    def test_dtype_mismatch_rep302(self):
        def prog(ep):
            if ep.rank == 0:
                yield from ep.send(1, np.ones(10, dtype=np.float64), tag=2)
            else:
                yield from ep.recv(0, tag=2, expect_dtype="int32")

        with pytest.raises(SanitizerError, match="REP302"):
            _run_sanitized(prog)

    def test_agreeing_expectations_pass(self):
        def prog(ep):
            if ep.rank == 0:
                yield from ep.send(1, np.ones(10), tag=2)
            else:
                data = yield from ep.recv(
                    0, tag=2, expect_nbytes=80, expect_dtype="float64"
                )
                np.testing.assert_array_equal(data, np.ones(10))

        world = _run_sanitized(prog)
        world.sanitizer.check_final(world)  # also clean at shutdown


class TestPlanInvariants:
    def _plan(self, **kw):
        base = dict(start=0.0, end=1.0, nbytes=100, efficiency=0.5, intranode=False)
        base.update(kw)
        return TransferPlan(**base)

    def test_valid_plan_passes(self):
        Sanitizer().check_plan(self._plan(), ready_time=0.0)

    def test_negative_window_rep303(self):
        with pytest.raises(SanitizerError, match="REP303"):
            Sanitizer().check_plan(self._plan(start=5.0, end=4.0), ready_time=0.0)

    def test_start_before_ready_rep303(self):
        with pytest.raises(SanitizerError, match="REP303"):
            Sanitizer().check_plan(self._plan(start=0.0, end=1.0), ready_time=2.0)

    def test_bad_efficiency_rep303(self):
        with pytest.raises(SanitizerError, match="REP303"):
            Sanitizer().check_plan(self._plan(efficiency=0.0), ready_time=0.0)

    def test_non_strict_accumulates(self):
        san = Sanitizer(strict=False)
        san.check_plan(self._plan(start=5.0, end=4.0), ready_time=0.0)
        san.check_plan(self._plan(efficiency=2.0), ready_time=0.0)
        assert [d.rule for d in san.violations] == ["REP303", "REP303"]


class TestFinalInvariants:
    def test_overbooked_timeline_rep304(self):
        def prog(ep):
            yield from ep.compute(1.0)

        world = _run_sanitized(prog)
        # book a virtual second that never existed on the clock
        world.endpoints[0].timeline.add(Category.COMP, 1e9)
        with pytest.raises(SanitizerError, match="REP304"):
            world.sanitizer.check_final(world)

    def test_unclean_shutdown_rep305(self):
        def prog(ep):
            if ep.rank == 0:
                yield from ep.isend(1, b"x", tag=3)  # eager; never received

        world = _run_sanitized(prog)
        with pytest.raises(SanitizerError, match="REP305"):
            world.sanitizer.check_final(world)


class TestCollectiveWindow:
    """Per-collective REP304: middlewares that book time they never sleep.

    Historically only point-to-point matches were sanitizer-hooked, so a
    CMPI-style middleware charging per-call overhead inside the
    collective escaped the accounting check until (at best) the
    end-of-run aggregate.  The :class:`SanitizedMiddleware` proxy closes
    that: every collective is checked in its own clock window.
    """

    def _drive(self, inner_mw, n_ranks=2):
        from repro.sim import Simulator

        sim = Simulator()
        world = MPIWorld(sim, _spec(n_ranks), sanitize=True)
        mw = SanitizedMiddleware(inner_mw, world.sanitizer)

        def prog(ep):
            yield from mw.barrier(ep)
            result = yield from mw.allreduce(ep, np.ones(4))
            np.testing.assert_array_equal(result, n_ranks * np.ones(4))

        for r in range(n_ranks):
            sim.spawn(prog(world.endpoints[r]), name=f"r{r}")
        sim.run()
        return world

    def test_overbooking_collective_rep304(self):
        from repro.mpi.middleware import MPIMiddleware

        class OverbookingMiddleware(MPIMiddleware):
            name = "overbooking"

            def barrier(self, ep):
                # charge overhead to the timeline without sleeping it —
                # the bug class this hook exists to catch
                ep.timeline.add(Category.COMM, 1e-3)
                yield from super().barrier(ep)

        with pytest.raises(SanitizerError, match="REP304"):
            self._drive(OverbookingMiddleware())

    @pytest.mark.parametrize("name", ["mpi", "cmpi"])
    def test_shipped_middlewares_book_what_they_sleep(self, name):
        from repro.parallel.run import make_middleware

        world = self._drive(make_middleware(name))
        world.sanitizer.check_final(world)

    def test_proxy_preserves_name_and_extras(self):
        from repro.parallel.run import make_middleware

        cmpi = SanitizedMiddleware(make_middleware("cmpi"), Sanitizer())
        assert cmpi.name == "cmpi"
        assert callable(cmpi.sync)  # CMPI extra passes through
        assert cmpi.call_overhead == 4.0e-6


class TestPassivity:
    """Sanitizing must not perturb the measurement — bit-identical totals."""

    @pytest.mark.parametrize("middleware", ["mpi", "cmpi"])
    def test_sanitized_run_matches_plain(self, peptide_system, middleware):
        system, positions = peptide_system
        config = MDRunConfig(n_steps=2, dt=0.0004)
        spec = _spec(n_ranks=2, seed=7)
        options = RunOptions(middleware=middleware, config=config)
        plain = run_parallel_md(system, positions, spec, options)
        sanitized = run_parallel_md(
            system, positions, spec, options.replace(sanitize=True)
        )
        phases = {p for tl in plain.timelines for p in tl.phases}
        for phase in sorted(phases):
            a, b = plain.component(phase), sanitized.component(phase)
            assert (a.comp, a.comm, a.sync) == (b.comp, b.comm, b.sync), phase
        np.testing.assert_array_equal(
            plain.final_positions, sanitized.final_positions
        )
