"""Golden bad programs: each fixture must trigger its lint rule."""

from pathlib import Path

from repro.analysis import lint_paths, lint_source

FIXTURES = Path(__file__).parent / "fixtures"


def _rules(diags):
    return [d.rule for d in diags]


def _lint_fixture(name):
    source = (FIXTURES / name).read_text()
    return lint_source(source, path=name, respect_skip=False)


class TestDroppedGenerator:
    def test_every_dropped_call_is_flagged(self):
        diags = _lint_fixture("bad_dropped_generator.py")
        assert _rules(diags) == ["REP101"] * 4
        lines = sorted(d.line for d in diags)
        assert len(set(lines)) == 4, "one diagnostic per dropped call site"

    def test_driven_and_yielded_calls_are_clean(self):
        diags = _lint_fixture("bad_dropped_generator.py")
        flagged = {d.line for d in diags}
        source = (FIXTURES / "bad_dropped_generator.py").read_text()
        for lineno, line in enumerate(source.splitlines(), start=1):
            if "must NOT be flagged" in line:
                assert lineno not in flagged, line


class TestStoredGenerator:
    def test_stored_never_consumed_flagged(self):
        diags = _lint_fixture("bad_stored_generator.py")
        assert _rules(diags) == ["REP105"] * 2
        messages = " ".join(d.message for d in diags)
        assert "'g = " in messages and "'pending = " in messages

    def test_consumed_spawned_and_captured_locals_are_clean(self):
        diags = _lint_fixture("bad_stored_generator.py")
        flagged = {d.line for d in diags}
        source = (FIXTURES / "bad_stored_generator.py").read_text()
        for lineno, line in enumerate(source.splitlines(), start=1):
            if "must NOT be flagged" in line:
                assert lineno not in flagged, line

    def test_assignment_no_longer_misfires_rep101(self):
        src = (
            "def f(ep, sim):\n"
            "    g = ep.compute(1.0)\n"
            "    sim.spawn(g)\n"
        )
        assert lint_source(src) == []

    def test_reassignment_without_read_still_flags_last(self):
        src = (
            "def f(ep):\n"
            "    g = ep.compute(1.0)\n"
            "    g = ep.compute(2.0)\n"
            "    yield from g\n"
        )
        # the first store is shadowed before any read; conservative
        # name-level dataflow treats the later read as consuming 'g'
        assert lint_source(src) == []

    def test_module_level_store_flagged(self):
        src = "g = ep.compute(1.0)\n"
        assert _rules(lint_source(src)) == ["REP105"]

    def test_noqa_suppresses_rep105(self):
        src = "def f(ep):\n    g = ep.compute(1.0)  # noqa: REP105\n"
        assert lint_source(src) == []


class TestDiscardedResult:
    def test_discarded_collectives_flagged(self):
        diags = _lint_fixture("bad_discarded_result.py")
        assert _rules(diags) == ["REP102"] * 2

    def test_barrier_and_recv_discard_allowed(self):
        diags = _lint_fixture("bad_discarded_result.py")
        messages = " ".join(d.message for d in diags)
        assert "barrier" not in messages
        assert "recv" not in messages


class TestUnseededRandomness:
    def test_all_three_generators_flagged(self):
        diags = _lint_fixture("bad_unseeded_rng.py")
        assert _rules(diags) == ["REP103"] * 3

    def test_seeded_rng_is_clean(self):
        diags = lint_source("import numpy as np\nrng = np.random.default_rng(2002)\n")
        assert diags == []


class TestWallClock:
    def test_wallclock_reads_flagged(self):
        diags = _lint_fixture("bad_wallclock.py")
        assert _rules(diags) == ["REP104"] * 3


class TestParseError:
    def test_syntax_error_becomes_rep100(self):
        diags = lint_source("def broken(:\n", path="broken.py")
        assert _rules(diags) == ["REP100"]
        assert diags[0].path == "broken.py"


class TestSuppression:
    def test_noqa_with_matching_code(self):
        src = "def f(ep):\n    ep.compute(1.0)  # noqa: REP101\n"
        assert lint_source(src) == []

    def test_noqa_bare_suppresses_all(self):
        src = "def f(ep):\n    ep.compute(1.0)  # noqa\n"
        assert lint_source(src) == []

    def test_noqa_with_other_code_does_not_suppress(self):
        src = "def f(ep):\n    ep.compute(1.0)  # noqa: REP104\n"
        assert _rules(lint_source(src)) == ["REP101"]

    def test_skip_file_marker(self):
        src = "# repro-analyze: skip-file\ndef f(ep):\n    ep.compute(1.0)\n"
        assert lint_source(src) == []
        assert lint_source(src, respect_skip=False) != []


class TestLintPaths:
    def test_fixture_files_are_skipped_on_disk(self):
        assert lint_paths([FIXTURES]) == []

    def test_single_file_path(self, tmp_path):
        bad = tmp_path / "prog.py"
        bad.write_text("def f(ep):\n    ep.send(1, b'x')\n")
        diags = lint_paths([bad])
        assert _rules(diags) == ["REP101"]
        assert diags[0].path == str(bad)
