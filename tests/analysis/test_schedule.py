"""Schedule analyzer: synthetic traces and end-to-end buggy runs."""

import numpy as np
import pytest

from repro.analysis import analyze_trace
from repro.cluster import ClusterSpec, NodeSpec, score_gigabit_ethernet, tcp_gigabit_ethernet
from repro.instrument.commstats import CommTrace
from repro.mpi import MPIWorld, collectives
from repro.sim import SimulationError, Simulator


def _run_traced(n_ranks, program, seed=1, expect_deadlock=False, network=None, cpus=1):
    """Drive one program per rank with a trace attached; return the trace."""
    sim = Simulator()
    trace = CommTrace()
    world = MPIWorld(
        sim,
        ClusterSpec(
            n_ranks=n_ranks,
            network=network or score_gigabit_ethernet(),
            node=NodeSpec(cpus_per_node=cpus),
            seed=seed,
        ),
        trace=trace,
    )
    for r in range(n_ranks):
        sim.spawn(program(world.endpoints[r]), name=f"r{r}")
    if expect_deadlock:
        with pytest.raises(SimulationError):
            sim.run()
    else:
        sim.run()
    return trace


def _rules(diags):
    return [d.rule for d in diags]


class TestSyntheticTraces:
    def test_clean_matched_traffic(self):
        trace = CommTrace()
        trace.record_send(0, 1, 5, nbytes=8, dtype="float64", time=0.0)
        trace.record_recv(1, 0, 5, time=0.0)
        assert analyze_trace(trace, 2) == []

    def test_unmatched_send_rep201(self):
        trace = CommTrace()
        trace.record_send(0, 1, 5, nbytes=8, dtype="float64", time=0.0)
        diags = analyze_trace(trace, 2)
        assert _rules(diags) == ["REP201"]
        assert diags[0].ranks == (0, 1)
        assert diags[0].tag == 5

    def test_unmatched_rendezvous_send_reports_blocked_sender(self):
        trace = CommTrace()
        trace.record_send(
            0, 1, 5, nbytes=1 << 20, dtype="float64", time=0.0, rendezvous=True
        )
        (diag,) = analyze_trace(trace, 2)
        assert diag.rule == "REP201"
        assert "blocked" in diag.message

    def test_unmatched_recv_rep202(self):
        trace = CommTrace()
        trace.record_recv(1, 0, 7, time=0.0)
        diags = analyze_trace(trace, 2)
        assert "REP202" in _rules(diags)

    def test_fifo_matching_leaves_last_sends_unmatched(self):
        trace = CommTrace()
        trace.record_send(0, 1, 5, nbytes=8, dtype="float64", time=0.0)
        trace.record_send(0, 1, 5, nbytes=8, dtype="float64", time=1.0)
        trace.record_recv(1, 0, 5, time=0.5)
        diags = [d for d in analyze_trace(trace, 2) if d.rule == "REP201"]
        assert len(diags) == 1
        assert "1 unmatched" in diags[0].message

    def test_tag_collision_rep203_is_a_warning(self):
        trace = CommTrace()
        trace.record_send(0, 1, 5, nbytes=8, dtype="float64", time=0.0)
        trace.record_send(0, 1, 5, nbytes=8, dtype="float64", time=0.1)
        trace.record_recv(1, 0, 5, time=0.2)
        trace.record_recv(1, 0, 5, time=0.3)
        diags = analyze_trace(trace, 2)
        assert _rules(diags) == ["REP203"]
        assert diags[0].severity == "warning"

    def test_collective_range_tags_never_collide(self):
        from repro.mpi.endpoint import COLLECTIVE_TAG_BASE

        tag = COLLECTIVE_TAG_BASE + 16
        trace = CommTrace()
        trace.record_send(0, 1, tag, nbytes=8, dtype="float64", time=0.0)
        trace.record_send(0, 1, tag, nbytes=8, dtype="float64", time=0.1)
        trace.record_recv(1, 0, tag, time=0.2)
        trace.record_recv(1, 0, tag, time=0.3)
        assert analyze_trace(trace, 2) == []

    def test_collective_order_divergence_rep204(self):
        trace = CommTrace()
        trace.record_collective(0, "allreduce", 100, time=0.0)
        trace.record_collective(1, "barrier", 100, time=0.0)
        diags = analyze_trace(trace, 2)
        assert _rules(diags) == ["REP204"]
        assert "position 0" in diags[0].message

    def test_identical_collective_sequences_are_clean(self):
        trace = CommTrace()
        for rank in (0, 1):
            trace.record_collective(rank, "allreduce", 100, time=0.0)
            trace.record_collective(rank, "allgatherv", 116, time=1.0)
        assert analyze_trace(trace, 2) == []

    def test_wait_for_cycle_rep205(self):
        trace = CommTrace()
        trace.record_recv(0, 1, 3, time=0.0)  # rank 0 waits for rank 1
        trace.record_recv(1, 0, 3, time=0.0)  # rank 1 waits for rank 0
        diags = analyze_trace(trace, 2)
        rules = _rules(diags)
        assert "REP205" in rules
        cycle = next(d for d in diags if d.rule == "REP205")
        assert cycle.ranks == (0, 1)
        assert "deadlock" in cycle.message

    def test_errors_rank_before_warnings(self):
        trace = CommTrace()
        trace.record_send(0, 1, 5, nbytes=8, dtype="float64", time=0.0)
        trace.record_send(0, 1, 5, nbytes=8, dtype="float64", time=0.1)
        diags = analyze_trace(trace, 2)
        severities = [d.severity for d in diags]
        assert severities == sorted(severities, key=lambda s: s != "error")


class TestEndToEnd:
    def test_clean_collective_run_is_clean(self):
        def prog(ep):
            data = yield from collectives.allreduce(ep, np.ones(4))
            yield from collectives.barrier(ep)
            return data

        trace = _run_traced(4, prog)
        assert len(trace) > 0
        assert analyze_trace(trace, 4) == []

    def test_forgotten_receive_diagnosed(self):
        big = np.zeros(100_000)  # 800 KB — rendezvous on this network

        def prog(ep):
            if ep.rank == 0:
                yield from ep.isend(1, big, tag=9)
            else:
                yield from ep.compute(1.0)  # never posts the receive

        trace = _run_traced(2, prog)
        diags = analyze_trace(trace, 2)
        assert _rules(diags) == ["REP201"]
        assert diags[0].tag == 9

    def test_mutual_recv_deadlock_diagnosed(self):
        def prog(ep):
            other = 1 - ep.rank
            payload = yield from ep.recv(other, tag=4)  # nobody ever sends
            return payload

        trace = _run_traced(2, prog, expect_deadlock=True)
        diags = analyze_trace(trace, 2)
        assert "REP205" in _rules(diags)

    def test_dual_processor_events_carry_smp_multiplier(self):
        """The paper's dual-CPU TCP case: every per-message overhead in
        the trace must be the uni-processor cost times the SMP
        stack-contention multiplier, asserted from trace events."""

        def prog(ep):
            data = yield from collectives.allreduce(ep, np.ones(64))
            yield from collectives.barrier(ep)
            return data

        net = tcp_gigabit_ethernet()
        dual = _run_traced(4, prog, network=net, cpus=2)
        uni = _run_traced(4, prog, network=net, cpus=1)
        assert analyze_trace(dual, 4, network=net, cpus_per_node=2) == []

        mult = net.smp_overhead_multiplier
        dual_msgs = [e for e in dual.events if e.kind in ("send", "recv")]
        uni_msgs = [e for e in uni.events if e.kind in ("send", "recv")]
        assert dual_msgs and len(dual_msgs) == len(uni_msgs)
        dual_by_key = sorted(dual_msgs, key=lambda e: (e.kind, e.key, e.seq))
        uni_by_key = sorted(uni_msgs, key=lambda e: (e.kind, e.key, e.seq))
        for d, u in zip(dual_by_key, uni_by_key):
            assert (d.kind, d.key, d.nbytes) == (u.kind, u.key, u.nbytes)
            assert d.overhead == pytest.approx(u.overhead * mult)
            assert d.overhead > u.overhead

    def test_uni_cost_dual_trace_flagged_rep206(self):
        net = tcp_gigabit_ethernet()
        trace = CommTrace()
        trace.record_send(
            0, 1, 5, nbytes=1024, dtype="float64", time=0.0,
            overhead=net.send_overhead + net.host_cost(1024),  # no multiplier
        )
        trace.record_recv(1, 0, 5, time=0.0, overhead=net.recv_overhead)
        diags = analyze_trace(trace, 2, network=net, cpus_per_node=2)
        assert _rules(diags) == ["REP206", "REP206"]
        assert all("SMP" in d.message for d in diags)

    def test_smp_assertion_only_applies_where_the_cost_exists(self):
        trace = CommTrace()
        trace.record_send(0, 1, 5, nbytes=8, dtype="float64", time=0.0)
        trace.record_recv(1, 0, 5, time=0.0)
        # uni-processor nodes: no SMP cost to assert
        assert analyze_trace(trace, 2, network=tcp_gigabit_ethernet(), cpus_per_node=1) == []
        # OS-bypass network (no interrupts): exempt even on dual nodes
        assert analyze_trace(trace, 2, network=score_gigabit_ethernet(), cpus_per_node=2) == []
        # platform not described: the check never runs
        assert analyze_trace(trace, 2) == []

    def test_divergent_collective_order_detected_from_trace(self):
        """The silent SPMD killer: ranks disagree on which collective runs.

        At p=2 both operations draw the same tag from the SPMD sequence,
        so the simulator may cross-match them and produce wrong timings
        with no crash — only the trace reveals the divergence.
        """
        trace = CommTrace()
        trace.record_collective(0, "allreduce", 1048592, time=0.0)
        trace.record_collective(1, "barrier", 1048592, time=0.0)
        trace.record_collective(0, "allgatherv", 1048608, time=1.0)
        trace.record_collective(1, "allgatherv", 1048608, time=1.0)
        diags = analyze_trace(trace, 2)
        assert _rules(diags) == ["REP204"]
        assert "rank 0: allreduce" in diags[0].message
        assert "rank 1: barrier" in diags[0].message
