# repro-analyze: skip-file — golden bad program for REP103
"""Unseeded randomness: irreproducible Figure-7 variability statistics."""

import random

import numpy as np


def sample_efficiency():
    rng = np.random.default_rng()  # REP103: no seed
    noise = np.random.normal(0.0, 1.0)  # REP103: legacy global generator
    jitter = random.uniform(0.0, 1.0)  # REP103: stdlib process-global state
    good = np.random.default_rng(2002)  # correct — seeded
    return rng, noise, jitter, good
