# repro-analyze: skip-file — golden bad program for REP104
"""Host wall-clock reads inside virtual-time code."""

import time
from datetime import datetime


def rank_program(ep):
    t0 = time.time()  # REP104: host clock, not the simulator clock
    t1 = time.perf_counter()  # REP104
    stamp = datetime.now()  # REP104
    yield from ep.compute(1.0)
    return t0, t1, stamp, ep.now  # ep.now is the correct clock
