# repro-analyze: skip-file — golden bad program for REP105
"""Rank programs that *store* protocol generators without driving them.

Assigning ``ep.compute(...)`` to a local is deferred judgement, not an
error: the lint tracks the name through the enclosing scope and flags it
only when nothing ever consumes it — then the stored generator silently
never runs, exactly like a dropped call.
"""


def leaky_program(ep, mw):
    g = ep.compute(1.0)  # REP105: stored, never consumed
    pending = mw.allreduce(ep, None)  # REP105: stored, never consumed
    yield from ep.send(1, b"x", tag=3)


def correct_program(ep, sim):
    ok = ep.compute(1.0)
    yield from ok  # consumed — must NOT be flagged
    handle = ep.isend(1, b"y", tag=2)
    sim.spawn(handle)  # handed to a driver — must NOT be flagged


def closure_program(ep, sim):
    work = ep.compute(2.0)

    def run():
        yield from work  # captured by a closure — must NOT be flagged

    sim.spawn(run())
