# repro-analyze: skip-file — golden bad program for REP101
"""A rank program that *calls* protocol generators without yield-from.

Every call below creates a generator object and throws it away: the
communication silently never happens and the run produces wrong timings
instead of a crash.  The lint pass must flag each one.
"""


def rank_program(ep, mw, collectives):
    ep.compute(1.0)  # REP101: generator never driven
    ep.send(1, b"x", tag=3)  # REP101
    mw.barrier(ep)  # REP101
    collectives.allreduce(ep, None)  # REP101
    yield from ep.compute(0.5)  # correct — must NOT be flagged


def correct_program(ep, sim):
    sim.spawn(ep.compute(1.0))  # handed to a driver — must NOT be flagged
    yield from ep.send(1, b"x")
