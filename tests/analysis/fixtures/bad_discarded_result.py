# repro-analyze: skip-file — golden bad program for REP102
"""Yields from data-moving collectives but discards their results.

An allreduce whose combined value is thrown away means every rank keeps
its own partial forces — the physics silently diverges across ranks.
"""


def rank_program(ep, mw, collectives):
    yield from mw.allreduce(ep, None)  # REP102: combined value discarded
    yield from collectives.allgatherv(ep, None)  # REP102
    forces = yield from mw.allreduce(ep, None)  # correct — assigned
    yield from mw.barrier(ep)  # correct — barrier returns nothing
    yield from ep.recv(0)  # correct — receive-and-ignore sync idiom
    return forces
