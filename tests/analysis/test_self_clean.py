"""The shipped tree must pass its own analyzer (the dogfood gate)."""

from pathlib import Path

from repro.analysis import lint_paths

REPO = Path(__file__).resolve().parents[2]


def test_src_and_tests_lint_clean():
    diags = lint_paths([REPO / "src", REPO / "tests"])
    formatted = "\n".join(d.format() for d in diags)
    assert not diags, f"analyzer findings in the shipped tree:\n{formatted}"


def test_cli_analyze_exits_zero():
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, "-m", "repro", "analyze", "src", "tests"],
        cwd=REPO,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
