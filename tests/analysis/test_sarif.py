"""SARIF output: the subset GitHub code scanning ingests."""

import json

from repro.analysis.rules import RULES, Diagnostic
from repro.analysis.sarif import to_sarif, write_sarif

DIAGS = [
    Diagnostic(rule="REP401", message="deadlock", path="src/x.py", line=12,
               p_condition="odd p in [3, 31]"),
    Diagnostic(rule="REP404", message="tag race", path="src/y.py", line=7,
               severity="warning"),
]


class TestToSarif:
    def test_schema_and_version(self):
        log = to_sarif(DIAGS)
        assert log["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in log["$schema"]
        assert len(log["runs"]) == 1

    def test_rule_table_covers_used_rules(self):
        run = to_sarif(DIAGS)["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        ids = [r["id"] for r in rules]
        assert ids == ["REP401", "REP404"]
        assert rules[0]["shortDescription"]["text"] == RULES["REP401"].summary

    def test_results(self):
        results = to_sarif(DIAGS)["runs"][0]["results"]
        assert len(results) == 2
        first = results[0]
        assert first["ruleId"] == "REP401"
        assert first["level"] == "error"
        loc = first["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "src/x.py"
        assert loc["region"]["startLine"] == 12

    def test_p_condition_folded_into_message(self):
        results = to_sarif(DIAGS)["runs"][0]["results"]
        assert results[0]["message"]["text"].startswith("[odd p in [3, 31]]")

    def test_warning_level(self):
        results = to_sarif(DIAGS)["runs"][0]["results"]
        assert results[1]["level"] == "warning"

    def test_fingerprints_for_alert_tracking(self):
        results = to_sarif(DIAGS)["runs"][0]["results"]
        fp = results[0]["partialFingerprints"]["reproFingerprint/v1"]
        assert fp == DIAGS[0].fingerprint()

    def test_empty_findings_is_a_valid_log(self):
        log = to_sarif([])
        assert log["runs"][0]["results"] == []


class TestWriteSarif:
    def test_writes_parseable_json(self, tmp_path):
        out = tmp_path / "findings.sarif"
        write_sarif(out, DIAGS)
        parsed = json.loads(out.read_text())
        assert parsed["version"] == "2.1.0"
