"""The static communication-schedule verifier (REP4xx).

The verifier must (a) prove the shipped strategies and middleware
collectives deadlock-free symbolically, with no run executed, (b) catch
each archetypal schedule bug in the golden fixtures with the exact rule
and symbolic p-condition, and (c) agree event-for-event with what an
executed run actually records.
"""

from pathlib import Path

import pytest

from repro.analysis.static_schedule import (
    crosscheck_against_trace,
    extract_strategy_collective_ops,
    static_step_events,
    verify_contract_conformance,
    verify_middleware_collectives,
    verify_rank_program_source,
    verify_static,
    verify_strategy,
)

FIXTURES = Path(__file__).parent / "static"


def _verify_fixture(name: str, bound: int):
    path = FIXTURES / f"{name}.py"
    return verify_rank_program_source(path.read_text(), str(path), bound=bound)


class TestGoldenFixtures:
    """Each archetypal schedule bug: exact rule, exact p-condition."""

    def test_deadlocking_exchange(self):
        diags = _verify_fixture("deadlock_exchange", bound=8)
        assert [d.rule for d in diags] == ["REP401"]
        assert diags[0].p_condition == "all p in [2, 8]"
        assert "wait-for cycle" in diags[0].message

    def test_tag_race(self):
        diags = _verify_fixture("tag_race", bound=4)
        assert [d.rule for d in diags] == ["REP404"]
        assert diags[0].p_condition == "all p in [2, 4]"
        assert diags[0].severity == "warning"
        assert "tag 3" in diags[0].message

    def test_odd_p_only_mismatch(self):
        """The bug every even-p local test misses; symbolic p finds it."""
        diags = _verify_fixture("odd_p_mismatch", bound=9)
        assert [d.rule for d in diags] == ["REP402"]
        assert diags[0].p_condition == "odd p in [3, 9]"
        assert "never posted" in diags[0].message

    def test_halo_exchange_ring_proves_clean(self):
        """The distilled spatial halo/migrate ring is deadlock-free."""
        assert _verify_fixture("halo_exchange", bound=9) == []

    def test_halo_exchange_seeded_bad_variant(self):
        """Send-before-recv in the same ring deadlocks at every p >= 2."""
        path = FIXTURES / "halo_exchange.py"
        diags = verify_rank_program_source(
            path.read_text(), str(path), bound=8, entry="bad_rank_program"
        )
        assert [d.rule for d in diags] == ["REP401"]
        assert diags[0].p_condition == "all p in [2, 8]"
        assert "wait-for cycle" in diags[0].message


class TestInlinePrograms:
    def test_size_disagreement_rep405(self):
        src = (
            "def rank_program(ep, mw):\n"
            "    if ep.size < 2:\n"
            "        return\n"
            "    if ep.rank == 0:\n"
            "        yield from ep.send(1, b'four', tag=2)\n"
            "    elif ep.rank == 1:\n"
            "        yield from ep.recv(0, tag=2, expect_nbytes=8)\n"
        )
        diags = verify_rank_program_source(src, "inline.py", bound=4)
        assert "REP405" in {d.rule for d in diags}
        rep405 = next(d for d in diags if d.rule == "REP405")
        assert "4" in rep405.message and "8" in rep405.message

    def test_clean_ring_passes(self):
        """A correct shift pattern (irecv-before-send) proves clean."""
        src = (
            "def rank_program(ep, mw):\n"
            "    if ep.size < 2:\n"
            "        return\n"
            "    right = (ep.rank + 1) % ep.size\n"
            "    left = (ep.rank - 1) % ep.size\n"
            "    req = yield from ep.irecv(left, tag=9)\n"
            "    yield from ep.send(right, b'data', tag=9)\n"
            "    yield from req.wait()\n"
        )
        assert verify_rank_program_source(src, "inline.py", bound=8) == []

    def test_undecidable_comm_branch_is_rep406(self):
        """Communication behind an unextractable condition is refused,
        not silently skipped — soundness over convenience."""
        src = (
            "def rank_program(ep, mw, flag):\n"
            "    if flag:\n"
            "        yield from mw.barrier(ep)\n"
        )
        diags = verify_rank_program_source(src, "inline.py", bound=4)
        assert [d.rule for d in diags] == ["REP406"]
        assert "statically" in diags[0].message

    def test_undecidable_comm_free_branch_is_fine(self):
        src = (
            "def rank_program(ep, mw, flag):\n"
            "    x = 0\n"
            "    if flag:\n"
            "        x = 1\n"
            "    yield from mw.barrier(ep)\n"
        )
        assert verify_rank_program_source(src, "inline.py", bound=4) == []


class TestShippedStrategiesProveClean:
    """The acceptance bar: both strategies, both middlewares, symbolically."""

    @pytest.mark.parametrize("strategy", ["pclassic", "ppme", "spatial"])
    @pytest.mark.parametrize("middleware", ["mpi", "cmpi"])
    def test_strategy_clean(self, strategy, middleware):
        diags = verify_strategy(strategy, middleware, bound=6)
        formatted = "\n".join(d.format() for d in diags)
        assert diags == [], f"static findings:\n{formatted}"

    @pytest.mark.parametrize("middleware", ["mpi", "cmpi"])
    def test_middleware_collectives_clean(self, middleware):
        diags = verify_middleware_collectives(middleware, bound=8)
        formatted = "\n".join(d.format() for d in diags)
        assert diags == [], f"static findings:\n{formatted}"

    def test_verify_static_clean(self):
        assert verify_static(bound=5) == []


class TestContractConformance:
    def test_extracted_pme_schedule_matches_figure_2(self):
        ops = extract_strategy_collective_ops("ppme", p=4)
        for rank_ops in ops:
            assert rank_ops == [
                "barrier", "alltoallv", "alltoallv", "allreduce", "allgatherv",
            ]

    def test_extracted_classic_schedule(self):
        ops = extract_strategy_collective_ops("pclassic", p=4)
        for rank_ops in ops:
            assert rank_ops == ["barrier", "allreduce", "allgatherv"]

    def test_extracted_spatial_schedule_is_neighbour_only(self):
        """p=8 water box splits (2,2,2): one halo pulse per dim and one
        migration round-trip per dim — no collective reductions at all."""
        ops = extract_strategy_collective_ops("spatial", p=8, profile="water-box")
        for rank_ops in ops:
            assert rank_ops == ["barrier"] + ["exchange"] * 12
            assert "allreduce" not in rank_ops

    @pytest.mark.parametrize("strategy", ["pclassic", "ppme", "spatial"])
    def test_conformance(self, strategy):
        diags = verify_contract_conformance(strategy, ps=(1, 2, 3, 4, 5, 8))
        formatted = "\n".join(d.format() for d in diags)
        assert diags == [], f"contract violations:\n{formatted}"


class TestStaticStepEvents:
    def test_event_shape(self):
        events = static_step_events("ppme", "mpi", p=2, n_steps=1)
        assert len(events) == 2
        for rank_events in events:
            assert rank_events, "every rank communicates"
            for kind, peer, tag, op, nbytes, dtype in rank_events:
                assert kind in ("send", "recv", "collective")
                assert isinstance(tag, int)

    def test_collective_tags_use_the_runtime_scheme(self):
        """Static tags are absolute integers in the collective range."""
        from repro.mpi.endpoint import COLLECTIVE_TAG_BASE

        events = static_step_events("ppme", "mpi", p=2, n_steps=1)
        tags = {t for rank in events for (_, _, t, _, _, _) in rank}
        assert all(t >= COLLECTIVE_TAG_BASE for t in tags)


class TestCrosscheckAgainstExecution:
    """Static extraction vs a really-executed trace, event for event."""

    @pytest.mark.parametrize("middleware", ["mpi", "cmpi"])
    def test_p8_pme_step(self, peptide_system, middleware):
        from repro.cluster import ClusterSpec, tcp_gigabit_ethernet
        from repro.instrument.commstats import CommTrace
        from repro.parallel import MDRunConfig, RunOptions, run_parallel_md

        system, pos = peptide_system
        trace = CommTrace()
        run_parallel_md(
            system, pos,
            ClusterSpec(n_ranks=8, network=tcp_gigabit_ethernet(), seed=7),
            RunOptions(
                middleware=middleware,
                config=MDRunConfig(n_steps=1, dt=0.0004),
                trace=trace,
            ),
        )
        problems = crosscheck_against_trace(
            trace, strategy="ppme", middleware=middleware, p=8, n_steps=1
        )
        assert problems == [], "\n".join(problems)

    @pytest.mark.parametrize("middleware", ["mpi", "cmpi"])
    def test_p8_spatial_step(self, middleware):
        from repro.campaign.workloads import build_workload
        from repro.cluster import ClusterSpec, tcp_gigabit_ethernet
        from repro.instrument.commstats import CommTrace
        from repro.parallel import MDRunConfig, RunOptions, run_parallel_md

        system, pos = build_workload("water-box")
        trace = CommTrace()
        run_parallel_md(
            system, pos,
            ClusterSpec(n_ranks=8, network=tcp_gigabit_ethernet(), seed=7),
            RunOptions(
                middleware=middleware,
                config=MDRunConfig(n_steps=1, dt=0.0004),
                trace=trace,
                strategy="spatial",
            ),
        )
        problems = crosscheck_against_trace(
            trace, strategy="spatial", middleware=middleware, p=8,
            n_steps=1, profile="water-box",
        )
        assert problems == [], "\n".join(problems)
