"""Schedule contracts: declarations the static verifier holds us to."""

import pytest

from repro.analysis.contract import ContractOp, ScheduleContract
from repro.parallel.decomposition import AtomDecomposition, Decomposition
from repro.parallel.pclassic import SCHEDULE_CONTRACT as CLASSIC_CONTRACT
from repro.parallel.pmd import STEP_SCHEDULE_CONTRACT
from repro.parallel.ppme import SCHEDULE_CONTRACT as PME_CONTRACT


class TestScheduleContract:
    def test_flags_gate_ops(self):
        c = ScheduleContract(
            name="t",
            per_step=(
                ContractOp("barrier", when="barrier"),
                ContractOp("allreduce"),
            ),
            flags=("barrier",),
        )
        assert c.expected_ops(set()) == ["allreduce"]
        assert c.expected_ops({"barrier"}) == ["barrier", "allreduce"]

    def test_unknown_flag_rejected(self):
        c = ScheduleContract(name="t", per_step=())
        with pytest.raises(ValueError, match="knows flags"):
            c.expected_ops({"pme"})

    def test_describe(self):
        assert "(no communication)" in CLASSIC_CONTRACT.describe(set())
        assert "alltoallv" in PME_CONTRACT.describe(set())


class TestStepContract:
    """The rank program's declared Figure-2 schedule."""

    def test_full_pme_step(self):
        ops = STEP_SCHEDULE_CONTRACT.expected_ops({"barrier", "pme"})
        assert ops == ["barrier", "alltoallv", "alltoallv", "allreduce", "allgatherv"]

    def test_classic_only_step(self):
        ops = STEP_SCHEDULE_CONTRACT.expected_ops({"barrier"})
        assert ops == ["barrier", "allreduce", "allgatherv"]

    def test_composes_from_the_phase_contracts(self):
        """The step's PME ops are exactly the PME phase's declaration."""
        pme_ops = [op.op for op in PME_CONTRACT.per_step]
        step_pme_ops = [
            op.op for op in STEP_SCHEDULE_CONTRACT.per_step if op.when == "pme"
        ]
        assert step_pme_ops == pme_ops
        assert [op.op for op in CLASSIC_CONTRACT.per_step] == []


class TestDecompositionContract:
    def test_decomposition_is_abstract(self):
        with pytest.raises(TypeError):
            Decomposition()  # type: ignore[abstract]

    def test_atom_decomposition_declares_the_step_schedule(self):
        decomp = AtomDecomposition(n_atoms=100, n_ranks=4)
        assert decomp.schedule_contract() is STEP_SCHEDULE_CONTRACT
