# repro-analyze: skip-file
"""Golden bad program: two in-flight messages share (src, dst, tag).

Rank 0 posts two non-blocking sends to rank 1 with the same tag before
either is received; the receiver's two posts match in FIFO order *by
luck of the matching engine*, not by the program's declared intent —
a payload swap away from silent corruption.  Rule REP404.
"""


def rank_program(ep, mw):
    if ep.size < 2:
        return
    if ep.rank == 0:
        a = yield from ep.isend(1, b"first", tag=3)
        b = yield from ep.isend(1, b"second", tag=3)
        yield from a.wait()
        yield from b.wait()
    elif ep.rank == 1:
        yield from ep.recv(0, tag=3)
        yield from ep.recv(0, tag=3)
