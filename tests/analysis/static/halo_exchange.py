# repro-analyze: skip-file
"""Golden good/bad pair: the spatial halo-exchange ring.

``rank_program`` is the distilled communication skeleton of one spatial
domain-decomposition step (:mod:`repro.parallel.spatial.program`): per
halo pulse, a fresh collective tag per direction and a receive-first
paired exchange with the two ring neighbours, followed by the two
migration exchanges.  Neighbour-only and deadlock-free at every p —
the static verifier must prove it clean for the whole bound.

``bad_rank_program`` is the seeded broken variant: the same ring, but
every rank blocking-sends its halo before posting the matching receive.
Under rendezvous semantics (all MPI guarantees you) no send can
complete, so every p >= 2 deadlocks in a wait-for cycle (REP401).
"""


def rank_program(ep, mw):
    if ep.size == 1:
        return
    minus = (ep.rank - 1) % ep.size
    plus = (ep.rank + 1) % ep.size
    # multi-depth halo: two pulses once the ring is wide enough for the
    # cutoff to span more than one neighbour region
    pulses = 2 if ep.size > 2 else 1
    for _pulse in range(pulses):
        tag_down = ep.next_collective_tag("halo")
        yield from ep.sendrecv(minus, b"halo-down", plus, tag=tag_down)
        tag_up = ep.next_collective_tag("halo")
        yield from ep.sendrecv(plus, b"halo-up", minus, tag=tag_up)
    tag_down = ep.next_collective_tag("migrate")
    yield from ep.sendrecv(minus, b"migrate-down", plus, tag=tag_down)
    tag_up = ep.next_collective_tag("migrate")
    yield from ep.sendrecv(plus, b"migrate-up", minus, tag=tag_up)


def bad_rank_program(ep, mw):
    if ep.size == 1:
        return
    minus = (ep.rank - 1) % ep.size
    plus = (ep.rank + 1) % ep.size
    tag = ep.next_collective_tag("halo")
    yield from ep.send(minus, b"halo-down", tag=tag)
    yield from ep.recv(plus, tag=tag)
