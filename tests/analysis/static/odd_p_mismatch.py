# repro-analyze: skip-file
"""Golden bad program: half-split exchange that only works for even p.

The upper half sends its block down to ``rank - p//2``; the lower half
receives from ``rank + p//2``.  For even p this is a perfect matching.
For odd p the halves have unequal sizes: the top rank sends to a rank
that sits in the *upper* half and therefore never posts a receive — the
send blocks forever under rendezvous semantics.  The bug is invisible
at p = 2, 4, 8 (the counts a quick local test uses) and fatal on the
first odd production run; the verifier must report it with the symbolic
p-condition (rule REP402).
"""


def rank_program(ep, mw):
    half = ep.size // 2
    if ep.size < 2:
        return
    if ep.rank >= half:
        yield from ep.send(ep.rank - half, b"data", tag=5)
    else:
        yield from ep.recv(ep.rank + half, tag=5)
