# repro-analyze: skip-file
"""Golden bad program: head-to-head blocking exchange.

Every rank blocking-sends to its ring neighbour before posting the
matching receive.  Under rendezvous semantics (what MPI guarantees you
— eager buffering is an implementation courtesy) no send can complete,
so every p >= 2 deadlocks in a wait-for cycle.  The static verifier
must prove this without running anything (rule REP401).
"""


def rank_program(ep, mw):
    peer = (ep.rank + 1) % ep.size
    if ep.size > 1:
        yield from ep.send(peer, b"ping", tag=7)
        yield from ep.recv((ep.rank - 1) % ep.size, tag=7)
