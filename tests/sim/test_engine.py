"""Discrete-event kernel: ordering, sleeping, futures, deadlock detection."""

import pytest

from repro.sim import Await, Future, SimulationError, Simulator, Sleep


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, lambda: log.append("b"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(3.0, lambda: log.append("c"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_fire_in_schedule_order(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: log.append(i))
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_run_until(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(5.0, lambda: log.append(5))
        sim.run(until=2.0)
        assert log == [1]
        assert sim.now == 2.0

    def test_final_time(self):
        sim = Simulator()
        sim.schedule(4.5, lambda: None)
        assert sim.run() == pytest.approx(4.5)


class TestProcesses:
    def test_sleep_advances_clock(self):
        sim = Simulator()

        def proc():
            yield Sleep(1.5)
            yield Sleep(2.5)
            return sim.now

        p = sim.spawn(proc())
        sim.run()
        assert p.done
        assert p.result == pytest.approx(4.0)

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            Sleep(-0.1)

    def test_two_processes_interleave(self):
        sim = Simulator()
        log = []

        def proc(name, dt):
            for _ in range(3):
                yield Sleep(dt)
                log.append((name, sim.now))

        sim.spawn(proc("fast", 1.0))
        sim.spawn(proc("slow", 1.6))
        sim.run()
        names = [n for n, _ in log]
        times = [t for _, t in log]
        assert names == ["fast", "slow", "fast", "fast", "slow", "slow"]
        assert times == pytest.approx([1.0, 1.6, 2.0, 3.0, 3.2, 4.8])

    def test_bad_yield_raises(self):
        sim = Simulator()

        def proc():
            yield 42

        sim.spawn(proc())
        with pytest.raises(SimulationError):
            sim.run()


class TestFutures:
    def test_await_blocks_until_resolve(self):
        sim = Simulator()
        fut = Future()
        times = {}

        def waiter():
            value = yield Await(fut)
            times["resumed"] = (sim.now, value)

        def resolver():
            yield Sleep(3.0)
            fut.resolve(sim, "hello")

        sim.spawn(waiter())
        sim.spawn(resolver())
        sim.run()
        assert times["resumed"] == (3.0, "hello")

    def test_await_resolved_future_is_instant(self):
        sim = Simulator()
        fut = Future()

        def proc():
            yield Sleep(1.0)
            fut.resolve(sim, 7)
            value = yield Await(fut)
            return sim.now, value

        p = sim.spawn(proc())
        sim.run()
        assert p.result == (1.0, 7)

    def test_double_resolve_raises(self):
        sim = Simulator()
        fut = Future()
        fut.resolve(sim, 1)
        with pytest.raises(SimulationError):
            fut.resolve(sim, 2)

    def test_multiple_waiters_all_resume(self):
        sim = Simulator()
        fut = Future()
        resumed = []

        def waiter(i):
            yield Await(fut)
            resumed.append(i)

        for i in range(3):
            sim.spawn(waiter(i))
        sim.schedule(1.0, lambda: fut.resolve(sim, None))
        sim.run()
        assert sorted(resumed) == [0, 1, 2]


class TestDeadlock:
    def test_blocked_process_raises(self):
        sim = Simulator()
        fut = Future()  # never resolved

        def proc():
            yield Await(fut)

        sim.spawn(proc(), name="stuck")
        with pytest.raises(SimulationError, match="stuck"):
            sim.run()

    def test_clean_shutdown_when_all_finish(self):
        sim = Simulator()

        def proc():
            yield Sleep(1.0)

        sim.spawn(proc())
        sim.run()  # must not raise
